//! Cross-crate integration tests: full FedMP training loops exercising
//! every subsystem together (data → models → pruning → bandit → edgesim
//! → FL engine → metrics).

use fedmp::prelude::*;
use fedmp_core::run_fedmp_custom;
use fedmp_fl::{FedMpOptions, SyncScheme};

fn quick_spec(task: TaskKind, rounds: usize) -> ExperimentSpec {
    let mut spec = ExperimentSpec::small(task);
    spec.fl.rounds = rounds;
    spec.fl.eval_every = rounds.div_ceil(4).max(1);
    spec
}

#[test]
fn fedmp_improves_accuracy_on_every_task() {
    for task in TaskKind::all() {
        let rounds = if task == TaskKind::CnnMnist { 16 } else { 12 };
        let spec = quick_spec(task, rounds);
        let h = run_method(&spec, Method::FedMp);
        let first = h.rounds.iter().find_map(|r| r.eval).expect("evaluated").1;
        let best = h.rounds.iter().filter_map(|r| r.eval.map(|(_, a)| a)).fold(0.0f32, f32::max);
        // Short runs on the harder tasks are noisy; require that the best
        // evaluation at least matches the starting point, and that the
        // easy task genuinely learns.
        assert!(best >= first - 0.02, "{}: accuracy regressed {first} -> best {best}", task.name());
        if task == TaskKind::CnnMnist {
            assert!(best > 0.3, "{}: best accuracy only {best}", task.name());
        }
    }
}

#[test]
fn fedmp_beats_synfl_in_time_to_target_on_heterogeneous_fleet() {
    let mut spec = quick_spec(TaskKind::CnnMnist, 14);
    spec.level = HeterogeneityLevel::High;
    spec.fl.eval_every = 1;
    let syn = run_method(&spec, Method::SynFl);
    let fed = run_method(&spec, Method::FedMp);
    let target = syn.final_accuracy().unwrap().min(fed.final_accuracy().unwrap()) * 0.9;
    let t_syn = syn.time_to_accuracy(target).expect("Syn-FL reaches target");
    let t_fed = fed.time_to_accuracy(target).expect("FedMP reaches target");
    assert!(
        t_fed < t_syn,
        "FedMP ({t_fed:.0}s) should beat Syn-FL ({t_syn:.0}s) to {target:.2} accuracy"
    );
}

#[test]
fn r2sp_matches_or_beats_bsp_final_accuracy() {
    // R2SP's edge over BSP comes from *heterogeneous* pruned sets: when
    // the bandit assigns each worker its own ratio, BSP's average zeroes
    // and dilutes every position some worker pruned, while R2SP's
    // residuals recover them (paper §IV-D). With one shared fixed ratio
    // all workers prune identically and the schemes are equivalent, so
    // the comparison must run with adaptive ratios on a mixed fleet.
    let mut spec = quick_spec(TaskKind::CnnMnist, 16);
    spec.level = HeterogeneityLevel::High;
    spec.fl.eval_every = 2;
    let r2sp = run_fedmp_custom(&spec, &FedMpOptions::default());
    let bsp =
        run_fedmp_custom(&spec, &FedMpOptions { sync: SyncScheme::BSP, ..Default::default() });
    let a = r2sp.final_accuracy().unwrap();
    let b = bsp.final_accuracy().unwrap();
    assert!(a >= b - 0.02, "R2SP {a} should not lose to BSP {b}");
}

#[test]
fn pruned_methods_have_cheaper_rounds_than_synfl() {
    let spec = quick_spec(TaskKind::CnnMnist, 4);
    let syn = run_method(&spec, Method::SynFl);
    let fixed = run_method(&spec, Method::FedMpFixed(0.7));
    let syn_mean: f64 =
        syn.rounds.iter().map(|r| r.round_time).sum::<f64>() / syn.rounds.len() as f64;
    let fixed_mean: f64 =
        fixed.rounds.iter().map(|r| r.round_time).sum::<f64>() / fixed.rounds.len() as f64;
    assert!(
        fixed_mean < syn_mean * 0.7,
        "alpha=0.7 rounds should be well under Syn-FL's: {fixed_mean:.1} vs {syn_mean:.1}"
    );
}

#[test]
fn async_engine_uses_m_arrivals_and_advances_clock() {
    let mut spec = quick_spec(TaskKind::CnnMnist, 6);
    spec.workers = 4;
    let h = run_method(&spec, Method::AsynFedMp { m: 2 });
    assert_eq!(h.rounds.len(), 6);
    for r in &h.rounds {
        assert_eq!(r.ratios.len(), 2, "must aggregate exactly m=2 arrivals");
    }
    assert!(h.rounds.windows(2).all(|w| w[1].sim_time >= w[0].sim_time));
}

#[test]
fn histories_serialise_to_json() {
    let spec = quick_spec(TaskKind::CnnMnist, 3);
    let h = run_method(&spec, Method::FedMp);
    let json = serde_json::to_string(&h).expect("serialise history");
    let back: RunHistory = serde_json::from_str(&json).expect("deserialise history");
    assert_eq!(back.rounds.len(), h.rounds.len());
    assert_eq!(back.method, "FedMP");
}

#[test]
fn non_iid_slows_convergence() {
    let mut iid = quick_spec(TaskKind::CnnMnist, 12);
    iid.fl.eval_every = 1;
    let mut skew = iid.clone();
    skew.non_iid = 80;
    skew.workers = iid.workers; // same fleet
    let h_iid = run_method(&iid, Method::SynFl);
    let h_skew = run_method(&skew, Method::SynFl);
    // Compare accuracy at the same mid-training round.
    let mid = 6;
    let a_iid = h_iid.rounds[mid].eval.unwrap().1;
    let a_skew = h_skew.rounds[mid].eval.unwrap().1;
    assert!(
        a_skew <= a_iid + 0.05,
        "label skew should not converge faster: IID {a_iid} vs skew {a_skew}"
    );
}
