//! Integration tests of the §VI RNN extension: federated LSTM training
//! with ISS pruning across heterogeneous workers.

use fedmp::data::{ptb_like, TextBatch, TextDataset};
use fedmp::edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
use fedmp::fl::{run_lm, CostScale, LmMethod, LmOptions, LmSetup};
use fedmp::nn::zoo;
use fedmp::tensor::seeded_rng;

fn setup(workers: usize, tokens: usize) -> LmSetup {
    let vocab = 30usize;
    let corpus = ptb_like(vocab, tokens, 17);
    let (train, eval) = corpus.split(0.9);
    let lane = train.len() / workers;
    let worker_batches: Vec<Vec<TextBatch>> = (0..workers)
        .map(|w| {
            TextDataset { tokens: train.tokens[w * lane..(w + 1) * lane].to_vec(), vocab }
                .batches(4, 8)
        })
        .collect();
    LmSetup {
        worker_batches,
        eval_batches: eval.batches(4, 8),
        devices: (0..workers)
            .map(|i| {
                if i % 2 == 0 {
                    tx2_profile(ComputeMode::Mode0, LinkQuality::Near)
                } else {
                    tx2_profile(ComputeMode::Mode3, LinkQuality::Far)
                }
            })
            .collect(),
        time: TimeModel::deterministic(),
        cost_scale: CostScale::default(),
    }
}

#[test]
fn federated_lstm_perplexity_drops_below_unigram() {
    let setup = setup(2, 24_000);
    let mut rng = seeded_rng(18);
    let global = zoo::lstm_ptb(30, 0.2, &mut rng);
    let opts = LmOptions { rounds: 14, eval_every: 13, ..Default::default() };
    let h = run_lm(&setup, &opts, LmMethod::FedMp, global);
    let ppl = h.final_accuracy().expect("evaluated");
    // A Zipf(1.0) unigram model over 30 types has perplexity ≈ 18; the
    // Markov structure lets an LSTM go well below that, and even a
    // partially trained one must clearly beat uniform (30).
    assert!(ppl < 20.0, "perplexity {ppl} did not beat the unigram baseline");
}

#[test]
fn fedmp_lstm_round_is_faster_than_synfl() {
    let setup = setup(2, 12_000);
    let mut rng = seeded_rng(19);
    let global = zoo::lstm_ptb(30, 0.2, &mut rng);
    let opts = LmOptions { rounds: 6, eval_every: 6, ..Default::default() };
    let syn = run_lm(&setup, &opts, LmMethod::SynFl, global.clone());
    let fed = run_lm(&setup, &opts, LmMethod::FedMp, global);
    // After the first exploratory round, pruned sub-models make FedMP's
    // mean round time lower.
    let mean = |h: &fedmp::fl::RunHistory| {
        h.rounds.iter().skip(1).map(|r| r.round_time).sum::<f64>() / (h.rounds.len() - 1) as f64
    };
    assert!(mean(&fed) < mean(&syn), "FedMP rounds not cheaper: {} vs {}", mean(&fed), mean(&syn));
}

#[test]
fn iss_pruning_preserves_model_shape_claims() {
    // The extracted sub-model must remain a valid 2-layer LSTM whose
    // stacked dimensions agree, at any ratio.
    let mut rng = seeded_rng(20);
    let lm = zoo::lstm_ptb(30, 0.25, &mut rng);
    for ratio in [0.2f32, 0.5, 0.8] {
        let plan = fedmp::pruning::plan_lstm(&lm, ratio);
        let sub = fedmp::pruning::extract_lstm(&lm, &plan);
        assert_eq!(sub.lstms.len(), 2);
        assert_eq!(sub.lstms[0].hidden(), plan.kept[0].len());
        assert_eq!(sub.lstms[1].input_size(), plan.kept[0].len());
        assert_eq!(sub.decoder.in_features(), plan.kept[1].len());
        assert_eq!(sub.decoder.out_features(), 30);
    }
}
