//! Every document under docs/ must be reachable from README.md — the
//! README is the entry point, and an unlinked doc is a dead doc.

use std::fs;
use std::path::Path;

#[test]
fn every_doc_is_linked_from_readme() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = fs::read_to_string(root.join("README.md")).expect("read README.md");

    let docs = fs::read_dir(root.join("docs")).expect("list docs/");
    let mut missing = Vec::new();
    let mut seen = 0usize;
    for entry in docs {
        let entry = entry.expect("docs/ entry");
        if !entry.file_type().expect("file type").is_file() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_str().expect("utf-8 doc name");
        seen += 1;
        let link = format!("docs/{name}");
        if !readme.contains(&link) {
            missing.push(link);
        }
    }

    assert!(seen >= 4, "expected at least 4 docs, found {seen}");
    assert!(missing.is_empty(), "docs not referenced from README.md: {missing:?}");
}

#[test]
fn readme_doc_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = fs::read_to_string(root.join("README.md")).expect("read README.md");

    // Any `docs/<FILE>.md` token mentioned in the README must exist on disk.
    let mut checked = 0usize;
    for (idx, _) in readme.match_indices("docs/") {
        let rest = &readme[idx..];
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '/' | '_' | '.' | '-')))
            .unwrap_or(rest.len());
        let token = rest[..end].trim_end_matches('.');
        if !token.ends_with(".md") {
            continue;
        }
        checked += 1;
        assert!(root.join(token).is_file(), "README.md references {token} which does not exist");
    }
    assert!(checked >= 4, "expected ≥4 docs/ references, found {checked}");
}
