//! Property-based tests of the repository's core invariants, run across
//! random architectures, ratios and seeds.

use fedmp::bandit::{Bandit, EUcbAgent, EUcbConfig};
use fedmp::nn::{state_add, state_sub, zoo, Sequential};
use fedmp::pruning::{
    extract_sequential, plan_sequential, ratio_keep_count, recover_state, sparse_state,
};
use fedmp::tensor::{seeded_rng, Tensor};
use proptest::prelude::*;

fn arbitrary_model(arch: u8, width: f32, seed: u64) -> (Sequential, (usize, usize, usize)) {
    let mut rng = seeded_rng(seed);
    match arch % 3 {
        0 => (zoo::cnn_mnist(width, &mut rng), (1, 28, 28)),
        1 => (zoo::vgg_emnist(width.max(0.06), &mut rng), (1, 28, 28)),
        _ => (zoo::resnet_tiny(width.max(0.06), &mut rng), (3, 64, 64)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The defining R2SP identity holds for any architecture, width,
    /// ratio and seed: recover(extract(g)) + (g − sparse(g)) == g.
    #[test]
    fn r2sp_identity(arch in 0u8..3, ratio in 0.0f32..0.89, seed in 0u64..1000, width in 0.08f32..0.3) {
        let (model, chw) = arbitrary_model(arch, width, seed);
        let plan = plan_sequential(&model, chw, ratio);
        let sub = extract_sequential(&model, &plan);
        let recovered = recover_state(&sub, &plan, &model);
        let sparse = sparse_state(&model, &plan);
        let rebuilt = state_add(&recovered, &state_sub(&model.state(), &sparse));
        for (a, b) in rebuilt.iter().zip(model.state().iter()) {
            prop_assert_eq!(&a.tensor, &b.tensor, "mismatch in {}", a.name);
        }
    }

    /// Extraction is monotone in the ratio: more pruning, fewer params.
    #[test]
    fn pruning_monotone(arch in 0u8..3, seed in 0u64..500) {
        let (model, chw) = arbitrary_model(arch, 0.15, seed);
        let mut prev = usize::MAX;
        for ratio in [0.0f32, 0.3, 0.6, 0.85] {
            let plan = plan_sequential(&model, chw, ratio);
            let mut sub = extract_sequential(&model, &plan);
            let n = sub.num_params();
            prop_assert!(n <= prev, "ratio {} grew params {} -> {}", ratio, prev, n);
            prev = n;
        }
    }

    /// Any extracted sub-model forward-evaluates to finite logits.
    #[test]
    fn submodels_are_runnable(arch in 0u8..3, ratio in 0.0f32..0.89, seed in 0u64..500) {
        let (model, chw) = arbitrary_model(arch, 0.12, seed);
        let plan = plan_sequential(&model, chw, ratio);
        let mut sub = extract_sequential(&model, &plan);
        let mut rng = seeded_rng(seed ^ 99);
        let x = Tensor::randn(&[1, chw.0, chw.1, chw.2], &mut rng);
        let y = sub.forward(&x, false);
        prop_assert!(y.all_finite());
    }

    /// keep-count formula: bounded, monotone, exact at the endpoints.
    #[test]
    fn keep_count_properties(total in 1usize..2000, ratio in 0.0f32..0.99) {
        let k = ratio_keep_count(total, ratio);
        prop_assert!(k >= 1 && k <= total);
        if ratio == 0.0 {
            prop_assert_eq!(k, total);
        }
        // Monotone in ratio.
        let k2 = ratio_keep_count(total, (ratio + 0.005).min(0.9899));
        prop_assert!(k2 <= k);
    }

    /// E-UCB's partition always covers [0, alpha_max) disjointly, arms
    /// stay in range, and the tree respects theta.
    #[test]
    fn eucb_partition_invariants(seed in 0u64..200, theta in 0.02f32..0.3, rounds in 1usize..120) {
        let cfg = EUcbConfig { theta, seed, ..Default::default() };
        let mut agent = EUcbAgent::new(cfg);
        for k in 0..rounds {
            let a = agent.select();
            prop_assert!((0.0..cfg.alpha_max).contains(&a), "arm {} out of range", a);
            agent.observe(((k % 5) as f32) * 0.1);
        }
        let regions = agent.regions();
        prop_assert!((regions[0].0).abs() < 1e-6);
        prop_assert!((regions.last().unwrap().1 - cfg.alpha_max).abs() < 1e-5);
        for w in regions.windows(2) {
            prop_assert!((w[0].1 - w[1].0).abs() < 1e-5, "gap between regions");
        }
    }

    /// Aggregation is permutation-invariant: worker order cannot change
    /// the global model.
    #[test]
    fn aggregation_permutation_invariant(seed in 0u64..500, n in 2usize..6) {
        use fedmp::fl::average_states;
        use fedmp::nn::StateEntry;
        let mut rng = seeded_rng(seed);
        let states: Vec<Vec<StateEntry>> = (0..n)
            .map(|_| vec![StateEntry::trainable("w", Tensor::randn(&[13], &mut rng))])
            .collect();
        let fwd = average_states(&states);
        let mut rev = states.clone();
        rev.reverse();
        let bwd = average_states(&rev);
        for (a, b) in fwd[0].tensor.data().iter().zip(bwd[0].tensor.data().iter()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
