//! The invariant linter as a tier-1 test: `cargo test` alone must
//! catch a determinism leak, a stray `unsafe`, a panic on the engine
//! hot path, or trace-schema drift — no CI required.

use std::path::Path;

/// The live workspace is clean under the checked-in `analysis.toml`.
#[test]
fn workspace_satisfies_invariant_contract() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = fedmp_analysis::check_root(root).expect("analysis run failed");
    assert!(
        outcome.is_clean(),
        "invariant contract violated:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(fedmp_analysis::Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity floor so an over-broad skip list (scanning nothing) cannot
    // masquerade as a clean tree.
    assert!(
        outcome.files_scanned > 100,
        "only {} files scanned — the walker or skip list is broken",
        outcome.files_scanned
    );
    assert_eq!(
        outcome.lints_run,
        vec![
            "determinism",
            "float-reduction",
            "no-panic",
            "suppression",
            "trace-schema",
            "unsafe-hygiene"
        ]
    );
}

/// Seeding a violation into a copy of a deterministic crate makes the
/// same config fail — proof the clean result above is earned, not a
/// scoping accident.
#[test]
fn seeded_violation_fails_under_the_live_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config_text =
        std::fs::read_to_string(root.join("analysis.toml")).expect("read analysis.toml");
    let config = fedmp_analysis::config::parse(&config_text).expect("parse analysis.toml");

    let staged = root.join("target/analysis-seeded-test");
    let dir = staged.join("crates/fl/src");
    std::fs::create_dir_all(&dir).expect("create staged tree");
    std::fs::write(
        dir.join("seeded.rs"),
        "use std::collections::HashMap;\n\npub fn agg(m: &HashMap<u8, f32>) -> f32 {\n    let mut t = 0.0;\n    for (_, v) in m.iter() {\n        t += v;\n    }\n    t\n}\n",
    )
    .expect("write seeded violation");

    let outcome = fedmp_analysis::check(&staged, &config).expect("analysis run failed");
    let hits: Vec<_> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.lint == "determinism" && d.file == "crates/fl/src/seeded.rs")
        .collect();
    assert!(
        !hits.is_empty(),
        "a HashMap seeded into crates/fl must fail under the live analysis.toml"
    );
    assert_eq!(hits[0].line, 1, "the `use` line is the first finding");

    std::fs::remove_dir_all(&staged).ok();
}
