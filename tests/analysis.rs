//! The invariant linter as a tier-1 test: `cargo test` alone must
//! catch a determinism leak, a stray `unsafe`, a panic on the engine
//! hot path, an impure executor closure, or trace-schema drift — no
//! CI required.

use std::path::Path;

/// The live workspace is clean under the checked-in `analysis.toml`.
#[test]
fn workspace_satisfies_invariant_contract() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = fedmp_analysis::check_root(root).expect("analysis run failed");
    assert!(
        outcome.is_clean(),
        "invariant contract violated:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(fedmp_analysis::Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity floor so an over-broad skip list (scanning nothing) cannot
    // masquerade as a clean tree.
    assert!(
        outcome.files_scanned > 100,
        "only {} files scanned — the walker or skip list is broken",
        outcome.files_scanned
    );
    assert_eq!(
        outcome.lints_run,
        vec![
            "channel-protocol",
            "determinism",
            "executor-purity",
            "float-reduction",
            "no-panic",
            "reduction-escape",
            "suppression",
            "suppression-audit",
            "trace-schema",
            "unsafe-hygiene"
        ]
    );
    // The per-lint summary covers every active lint, so report diffs
    // make lint drift visible.
    assert_eq!(outcome.summary.len(), outcome.lints_run.len());
    assert!(outcome.summary.iter().all(|s| s.findings == 0));
    // At least the runner's executor-purity escape and the trace-dir
    // determinism escape are live suppressions.
    let used: usize = outcome.summary.iter().map(|s| s.suppressions_used).sum();
    assert!(used >= 2, "expected live inline suppressions, counted {used}");
}

/// Seeding a violation into a copy of a deterministic crate makes the
/// same config fail — proof the clean result above is earned, not a
/// scoping accident.
#[test]
fn seeded_violation_fails_under_the_live_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config_text =
        std::fs::read_to_string(root.join("analysis.toml")).expect("read analysis.toml");
    let config = fedmp_analysis::config::parse(&config_text).expect("parse analysis.toml");

    let staged = root.join("target/analysis-seeded-test");
    let dir = staged.join("crates/fl/src");
    std::fs::create_dir_all(&dir).expect("create staged tree");
    std::fs::write(
        dir.join("seeded.rs"),
        "use std::collections::HashMap;\n\npub fn agg(m: &HashMap<u8, f32>) -> f32 {\n    let mut t = 0.0;\n    for (_, v) in m.iter() {\n        t += v;\n    }\n    t\n}\n",
    )
    .expect("write seeded violation");

    let outcome = fedmp_analysis::check(&staged, &config).expect("analysis run failed");
    let hits: Vec<_> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.lint == "determinism" && d.file == "crates/fl/src/seeded.rs")
        .collect();
    assert!(
        !hits.is_empty(),
        "a HashMap seeded into crates/fl must fail under the live analysis.toml"
    );
    assert_eq!(hits[0].line, 1, "the `use` line is the first finding");

    std::fs::remove_dir_all(&staged).ok();
}

/// An executor closure seeded with trace emission fails under the live
/// config: the structural lints run with the same teeth as the
/// line-oriented ones.
#[test]
fn seeded_executor_impurity_fails_under_the_live_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config_text =
        std::fs::read_to_string(root.join("analysis.toml")).expect("read analysis.toml");
    let config = fedmp_analysis::config::parse(&config_text).expect("parse analysis.toml");

    // A distinct staging dir from the test above: both run in parallel
    // under the default harness.
    let staged = root.join("target/analysis-seeded-exec");
    let dir = staged.join("crates/fl/src");
    std::fs::create_dir_all(&dir).expect("create staged tree");
    std::fs::write(
        dir.join("seeded.rs"),
        "pub fn run(items: Vec<usize>) -> Vec<usize> {\n    ordered_map(items, |i, x| {\n        emit_round_end(i);\n        x\n    })\n}\n",
    )
    .expect("write seeded violation");

    let outcome = fedmp_analysis::check(&staged, &config).expect("analysis run failed");
    let hits: Vec<_> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.lint == "executor-purity" && d.file == "crates/fl/src/seeded.rs")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", outcome.diagnostics);
    assert_eq!(hits[0].line, 3, "anchored at the emission inside the closure");

    std::fs::remove_dir_all(&staged).ok();
}

/// A config entry pointing at nothing on disk is a hard config error
/// naming the entry — not a silently-inert scope.
#[test]
fn dangling_config_entry_is_a_hard_error() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let staged = root.join("target/analysis-dangling-config");
    std::fs::create_dir_all(staged.join("crates/fl/src")).expect("create staged tree");
    std::fs::write(staged.join("crates/fl/src/lib.rs"), "pub fn f() {}\n").expect("write file");
    std::fs::write(
        staged.join("analysis.toml"),
        "[workspace]\nroots = [\"crates\"]\n\n[lints.determinism]\nscope = [\"crates/fl/src\", \"crates/gone/src\"]\n",
    )
    .expect("write config");

    let err = fedmp_analysis::check_root(&staged).expect_err("dangling entry must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("lints.determinism.scope") && msg.contains("crates/gone/src"),
        "error must name the section and the entry: {msg}"
    );
    assert!(
        matches!(err, fedmp_analysis::AnalysisError::Config(_)),
        "dangling entries are config errors (exit 2), not findings"
    );

    std::fs::remove_dir_all(&staged).ok();
}
