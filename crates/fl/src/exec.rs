//! The deterministic round executor: an ordered parallel map for
//! per-worker round work.
//!
//! Every loop engine spends its round fanning the same shape of work
//! over the worker fleet — extract a sub-model, run `local_train`,
//! package the result — and then folds the results back **in worker
//! order**. [`ordered_map`] is that fan-out: it runs `f(i, item)` for
//! every item on a pool of `FEDMP_THREADS` scoped workers and returns
//! the results in input order, so the sequential fold that follows
//! (timing, aggregation, trace emission) is untouched by scheduling.
//!
//! # Determinism argument
//!
//! The executor keeps runs bit-identical to a serial loop at any
//! thread count because of a strict division of labour:
//!
//! 1. **Order-sensitive state never enters the closure.** Bandit
//!    `select()` calls, fault-injector RNG steps, and every
//!    `fedmp-obs` event emission happen on the caller's thread, before
//!    or after the fan-out, in fixed worker order. The closure may
//!    only touch its own item plus shared *read-only* state (the
//!    global model, the task, the config).
//! 2. **Per-item work is self-seeded.** Each worker's stochasticity
//!    derives from a per-`(seed, round, worker)` RNG, so the value
//!    `f(i, item)` produces is a pure function of its inputs — not of
//!    which thread ran it or when.
//! 3. **Results return by slot, not by completion.** Each item writes
//!    its result into its own index; the output vector reads the slots
//!    in input order, which makes downstream float accumulation order
//!    (aggregation, `ResourceTotals`) identical to the serial loop.
//!
//! # Scheduling
//!
//! The pool shares its design with `fedmp_tensor::parallel`'s band
//! scheduler: scoped threads claim item indices from an atomic
//! counter, the calling thread acts as the final worker, and a closure
//! running on a pool worker is wrapped in
//! [`parallel::with_nested_sequential`] so kernels beneath it (and any
//! nested `ordered_map`) run inline instead of spawning their own
//! workers — one level of the stack owns the threads. Spawning is
//! per-call (threads are not parked between rounds), but per-thread
//! state that matters for throughput — the `fedmp_tensor::workspace`
//! scratch pools backing im2col/GEMM — lives for a worker's whole
//! claim streak, so buffer reuse spans every batch of a worker's
//! `local_train`.

use fedmp_tensor::parallel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` in parallel, returning results in input
/// order. `f` receives `(index, item)`.
///
/// Runs inline (a plain sequential loop) when there is at most one
/// item or configured thread, or when called from inside another
/// parallel worker. The closure must keep order-sensitive side effects
/// out of the fan-out — see the module docs for the contract.
pub fn ordered_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = parallel::configured_threads().min(n);
    if threads <= 1 || parallel::in_parallel_worker() {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // One slot per item: workers take the item out, run `f` inside a
    // nested-sequential scope, and park the result back in the same
    // slot, so output order is input order however claims interleave.
    type Slot<T, R> = (Mutex<Option<T>>, Mutex<Option<R>>);
    let slots: Vec<Slot<T, R>> =
        items.into_iter().map(|item| (Mutex::new(Some(item)), Mutex::new(None))).collect();
    let next = AtomicUsize::new(0);
    let worker = || {
        parallel::with_nested_sequential(|| loop {
            let idx = next.fetch_add(1, Ordering::Relaxed);
            let Some((item_slot, result_slot)) = slots.get(idx) else { break };
            let Some(item) = item_slot.lock().take() else { continue };
            let result = f(idx, item);
            *result_slot.lock() = Some(result);
        })
    };
    std::thread::scope(|scope| {
        for _ in 0..threads - 1 {
            scope.spawn(worker);
        }
        // The calling thread is the final worker.
        worker();
    });

    let out: Vec<R> = slots.into_iter().filter_map(|(_, result)| result.into_inner()).collect();
    // Every index < n is claimed exactly once and `f` always returns,
    // so no slot can be empty.
    debug_assert_eq!(out.len(), n, "ordered_map: missing result slot");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::parallel::override_threads;

    #[test]
    fn results_come_back_in_input_order() {
        override_threads(Some(4));
        let out = ordered_map((0..100).collect(), |i, v: usize| {
            assert_eq!(i, v);
            v * 3
        });
        override_threads(None);
        assert_eq!(out, (0..100).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads| {
            override_threads(Some(threads));
            // A float fold whose value depends on per-item order.
            let out = ordered_map((0..64).collect(), |_, v: usize| {
                (0..200).fold(v as f32, |acc, j| acc + (acc * 1e-3 + j as f32).sin())
            });
            override_threads(None);
            out
        };
        let serial = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads), serial);
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        override_threads(Some(4));
        let none: Vec<i32> = ordered_map(Vec::<i32>::new(), |_, v| v);
        assert!(none.is_empty());
        assert_eq!(ordered_map(vec![41], |_, v| v + 1), vec![42]);
        override_threads(None);
    }

    #[test]
    fn nested_maps_run_inline_without_deadlock() {
        override_threads(Some(4));
        let out = ordered_map((0..8).collect(), |_, v: usize| {
            // From inside a pool worker, the nested map must not spawn.
            assert!(parallel::in_parallel_worker());
            let inner = ordered_map((0..4).collect(), |_, w: usize| w + v);
            inner.iter().sum::<usize>()
        });
        override_threads(None);
        assert_eq!(out[0], 1 + 2 + 3);
        assert_eq!(out[7], 7 * 4 + 6);
    }

    #[test]
    fn pool_workers_see_every_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        override_threads(Some(3));
        let hits: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
        let _ = ordered_map((0..97).collect(), |i, _v: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        override_threads(None);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
