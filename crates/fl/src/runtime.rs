//! Threaded PS/worker runtime: the closest in-process analogue of the
//! paper's physical prototype (one PS process + 30 Jetson workers).
//!
//! Unlike the in-process loop engines, this runtime spawns **one OS
//! thread per worker** and moves models over channels as real
//! [`crate::wire`] frames — every sub-model download and trained-model
//! upload is serialised, checksummed and deserialised, exactly as a
//! networked deployment would. Simulated time still comes from
//! `fedmp-edgesim` (threads run as fast as the host allows; the virtual
//! clock stays authoritative for completion-time results).
//!
//! # Fault tolerance
//!
//! The runtime degrades gracefully instead of failing terminally. Two
//! independent fault sources compose:
//!
//! - **Worker churn** (`opts.faults`, §V-A): the same
//!   [`FaultInjector`] the loop engine uses takes workers offline for
//!   whole rounds, and [`deadline_for`] sets the per-round arrival
//!   deadline after which stragglers are excluded from aggregation.
//! - **Transport chaos** ([`ChaosOptions`]): a seeded
//!   [`ChaosPlan`](crate::chaos::ChaosPlan) corrupts upload frames
//!   (detected by the wire checksum; the PS requests bounded
//!   retransmits with exponential virtual-clock backoff), drops
//!   downlinks/uplinks, delays arrivals past the deadline, and crashes
//!   worker threads mid-round. A crashed worker is restarted with a
//!   fresh channel pair at the start of the next round and re-enters
//!   the fleet (`WorkerRejoined`).
//!
//! A round aggregates when at least `ChaosOptions::quorum(online)`
//! models survive exclusion — R2SP-style partial aggregation via
//! [`quorum_aggregate`]; below quorum the global model carries over
//! unchanged. Recovery outcomes are recorded per round in
//! [`RoundRecord`] (`participants`, `retries`, `exclusions`) and in the
//! trace stream (`FrameRetransmit`, `WorkerExcluded`, `WorkerRejoined`,
//! `QuorumAggregate`).
//!
//! # Determinism
//!
//! Chaos draws are a pure function of `(seed, round, worker)`, all
//! order-sensitive state (bandit, injector, trace emission,
//! aggregation) lives PS-side in worker order, and the collection loop
//! is a barrier that does no order-sensitive processing — so the same
//! seed yields bit-identical histories and trace streams at any
//! executor thread count, faults or not. With chaos disabled the
//! runtime is bit-identical to [`crate::run_fedmp`] under the same
//! options, **including** `opts.faults` — tested below.
//!
//! # Join guarantee
//!
//! All worker threads are joined on *every* exit path, clean or error:
//! the PS block runs inside `std::thread::scope`, and before the scope
//! can join, the runtime closes every downlink (ending each worker's
//! receive loop) and drops the uplink receiver (erroring out any worker
//! mid-send). [`live_worker_threads`] counts live worker threads for
//! the leak regression test.

use crate::aggregate::{bsp_aggregate, quorum_aggregate};
use crate::chaos::{corrupted_copy, ChaosOptions};
use crate::engine::{
    emit_aggregate, emit_codec_selected, emit_compression_applied, emit_frame_retransmit,
    emit_kernel_dispatch, emit_local_train, emit_quorum_aggregate, emit_round_end,
    emit_round_start, emit_worker_excluded, emit_worker_rejoined, kernel_baseline,
    model_round_cost, worker_batches, worker_rng, FlConfig, FlSetup, SyncScheme,
};
use crate::engines::fedmp::FedMpOptions;
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::{local_train, LocalOutcome, LocalTrainConfig};
use crate::task::ImageTask;
use crate::wire::{
    codec_delivered, decode_state_v2, encode_state, encode_state_v2, frame_checksum_ok,
    wire_size_v2, Codec, ErrorFeedback, LinkCodecs,
};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use fedmp_bandit::{eucb_reward, Bandit, EUcbAgent};
use fedmp_edgesim::deadline_for;
use fedmp_nn::{state_sub, Sequential, StateEntry};
use fedmp_pruning::{
    dequantize_state, extract_sequential, plan_sequential_with, quantize_state, recover_state,
    sparse_state,
};
use fedmp_tensor::parallel::{sum_f32, sum_f64};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A PS → worker message. Shared with `fl::transport`, which carries
/// the same protocol over sockets.
pub(crate) enum DownlinkMsg {
    /// This round's sub-model dispatch.
    Dispatch {
        /// Round index.
        round: usize,
        /// Encoded sub-model state.
        frame: Bytes,
        /// Architecture template the worker instantiates the frame into.
        template: Sequential,
        /// The chaos plan lost this downlink in transit: the worker
        /// must act as if the dispatch never arrived (no training, a
        /// `Lost` marker standing in for the PS's timeout).
        lost: bool,
    },
    /// The PS received a corrupt upload; resend the cached clean frame.
    Retransmit {
        /// Round the retransmit request belongs to.
        round: usize,
    },
}

/// A worker → PS message.
pub(crate) struct UplinkMsg {
    pub(crate) worker: usize,
    pub(crate) round: usize,
    pub(crate) body: UplinkBody,
}

/// The payload of an [`UplinkMsg`].
pub(crate) enum UplinkBody {
    /// The trained upload: wire frame (possibly corrupted in transit),
    /// architecture template and training outcome.
    Model { frame: Bytes, template: Sequential, outcome: LocalOutcome },
    /// A retransmission: the model frame only (the PS cached the
    /// template and outcome from the first arrival).
    Frame { frame: Bytes },
    /// The exchange was lost in transit (dropped downlink or uplink) —
    /// the in-process stand-in for the PS timing the worker out.
    Lost,
    /// The worker thread crashed mid-round (the stand-in for the PS
    /// seeing the connection reset); nothing more arrives from it until
    /// the PS restarts it next round.
    Crashed,
    /// The dispatched frame passed no checksum check worker-side — a
    /// protocol violation retransmits cannot fix (the PS encoder is
    /// in-process and cannot produce this).
    Undecodable,
}

/// Errors returned by the threaded runtime. Transport faults — corrupt
/// frames, losses, stragglers, crashes — are *recoverable* and handled
/// in-run (retransmit, exclusion, rejoin); these variants are the
/// protocol violations that remain terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// A wire frame failed structural decoding even though its checksum
    /// verified (or a retransmission arrived with nothing pending) — an
    /// encoder-side protocol violation the retransmit path cannot fix.
    CorruptFrame {
        /// Worker whose frame failed to decode.
        worker: usize,
        /// Round the frame belonged to.
        round: usize,
    },
    /// A worker's channel closed outside the crash/rejoin protocol —
    /// the thread vanished without announcing a crash.
    WorkerLost {
        /// The worker whose channel went away.
        worker: usize,
    },
    /// A socket-transport operation failed terminally — bind, accept,
    /// connect, node spawn, handshake, frame I/O, or process reap.
    /// Never produced by the in-process channel transport.
    Transport {
        /// The worker the operation concerned (0 for fleet-wide
        /// failures such as binding the listener).
        worker: usize,
        /// Which transport operation failed.
        fault: crate::transport::TransportFault,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::CorruptFrame { worker, round } => {
                write!(f, "wire frame for worker {worker} failed to decode in round {round}")
            }
            RuntimeError::WorkerLost { worker } => {
                write!(f, "worker {worker} disconnected outside the crash/rejoin protocol")
            }
            RuntimeError::Transport { worker, fault } => {
                write!(f, "socket transport failed for worker {worker}: {fault}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Live worker threads spawned by the threaded runtime, process-wide.
/// Because every run joins its workers before returning (see the module
/// docs), this is 0 whenever no run is in flight — the invariant the
/// thread-leak regression test checks.
pub fn live_worker_threads() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// RAII registration in the live-thread gauge, shared with the
/// hierarchical edge-aggregator threads so `live_worker_threads()`
/// covers every runtime-managed thread in the crate.
pub(crate) struct LiveThreadGuard;

impl LiveThreadGuard {
    /// Registers the calling thread until the guard drops.
    pub(crate) fn register() -> Self {
        LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
        LiveThreadGuard
    }
}

impl Drop for LiveThreadGuard {
    fn drop(&mut self) {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Sends an uplink reply, tolerating a departed PS: a closed channel
/// means the PS already tore the run down (its receiver is dropped on
/// every exit path), which is an expected teardown race, not an error
/// — the worker must exit quietly rather than panic or retry. Returns
/// whether the PS was still listening.
pub(crate) fn send_uplink(tx: &Sender<UplinkMsg>, msg: UplinkMsg) -> bool {
    tx.send(msg).is_ok()
}

/// The worker half of the recoverable protocol, shared verbatim by the
/// in-process channel runtime and `fl::transport`'s socket nodes:
/// per-dispatch chaos draws, local training, lossy encode, and the
/// retransmission cache. Keeping this in one place is what makes the
/// two transports bit-identical under the same seed.
pub(crate) struct WorkerProtocol<'a> {
    w: usize,
    task: &'a ImageTask,
    local: LocalTrainConfig,
    seed: u64,
    plan: crate::chaos::ChaosPlan,
    link: LinkCodecs,
    compressed: bool,
    /// The clean upload frame of the current round plus how many times
    /// it has been sent — the retransmission source.
    cached: Option<(Bytes, u32)>,
    /// Uplink error feedback lives worker-side, exactly where the lossy
    /// encode happens. A respawned (crashed) worker starts from a zero
    /// accumulator — deterministic, since the crash schedule is a pure
    /// function of the chaos plan.
    feedback: ErrorFeedback,
}

/// What the transport must do with one protocol reply.
pub(crate) enum WorkerStep {
    /// Send the reply and keep serving.
    Reply(UplinkMsg),
    /// The chaos plan crashed the worker: the channel transport sends
    /// this final announcement before exiting; the socket transport
    /// realises it as a connection reset (close without a word) that
    /// the PS reads as the same `Crashed` report. Stop serving after.
    Crash(UplinkMsg),
}

impl<'a> WorkerProtocol<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        w: usize,
        task: &'a ImageTask,
        local: LocalTrainConfig,
        seed: u64,
        plan: crate::chaos::ChaosPlan,
        link: LinkCodecs,
        compressed: bool,
    ) -> Self {
        WorkerProtocol {
            w,
            task,
            local,
            seed,
            plan,
            link,
            compressed,
            cached: None,
            feedback: ErrorFeedback::new(),
        }
    }

    /// Handles one dispatch. `template` may be `None` only for a lost
    /// dispatch (a dropped downlink carries no payload over a socket);
    /// a present-but-lost payload is ignored identically either way.
    pub(crate) fn on_dispatch(
        &mut self,
        round: usize,
        frame: Bytes,
        template: Option<Sequential>,
        lost: bool,
    ) -> WorkerStep {
        let w = self.w;
        let draw = self.plan.draw(round, w);
        if draw.crash {
            return WorkerStep::Crash(UplinkMsg { worker: w, round, body: UplinkBody::Crashed });
        }
        if lost {
            self.cached = None;
            return WorkerStep::Reply(UplinkMsg { worker: w, round, body: UplinkBody::Lost });
        }
        let Some(template) = template else {
            // A delivered dispatch with no template is a framing-layer
            // protocol violation — surface it as undecodable.
            self.cached = None;
            return WorkerStep::Reply(UplinkMsg {
                worker: w,
                round,
                body: UplinkBody::Undecodable,
            });
        };
        // One OS thread (or process) per worker is already the
        // parallelism level here; run the kernels beneath sequentially
        // so the band scheduler does not oversubscribe the host
        // (results are identical — kernels are thread-count invariant).
        let local = self.local;
        let compressed = self.compressed;
        let link = self.link;
        let task = self.task;
        let seed = self.seed;
        let feedback = &mut self.feedback;
        let trained = fedmp_tensor::parallel::with_nested_sequential(|| {
            // `decode_state_v2` accepts v1 (dense) and v2 (compressed)
            // frames alike; a compressed dispatch reconstructs exactly
            // the snapshot the PS's `codec_delivered` oracle predicts.
            decode_state_v2(&frame, None).ok().map(|state| {
                let mut model = template;
                model.load_state(&state);
                let mut batches = worker_batches(task, w, local.batch, seed, round);
                let outcome = local_train(&mut model, &mut batches, &local);
                // Encode (and fold the residual into the error
                // feedback) even when chaos later drops the upload —
                // the loss is in transit, after the encoder ran.
                let up = if compressed {
                    encode_state_v2(&model.state(), link.uplink, Some(&state), Some(feedback))
                } else {
                    encode_state(&model.state())
                };
                (up, model, outcome)
            })
        });
        let reply = match trained {
            None => {
                self.cached = None;
                UplinkMsg { worker: w, round, body: UplinkBody::Undecodable }
            }
            Some((clean, model, outcome)) if draw.drop_up => {
                // Trained, but the upload vanishes in transit.
                let _ = (clean, model, outcome);
                self.cached = None;
                UplinkMsg { worker: w, round, body: UplinkBody::Lost }
            }
            Some((clean, model, outcome)) => {
                let frame =
                    if draw.corrupt_sends > 0 { corrupted_copy(&clean) } else { clean.clone() };
                self.cached = Some((clean, 1));
                UplinkMsg {
                    worker: w,
                    round,
                    body: UplinkBody::Model { frame, template: model, outcome },
                }
            }
        };
        WorkerStep::Reply(reply)
    }

    /// Handles one retransmit request against the cached clean frame.
    pub(crate) fn on_retransmit(&mut self, round: usize) -> WorkerStep {
        let w = self.w;
        let reply = match self.cached.as_mut() {
            Some((clean, sends)) => {
                let draw = self.plan.draw(round, w);
                let corrupt = *sends < draw.corrupt_sends;
                *sends += 1;
                let frame = if corrupt { corrupted_copy(clean) } else { clean.clone() };
                UplinkMsg { worker: w, round, body: UplinkBody::Frame { frame } }
            }
            // Nothing cached to resend — report the exchange lost.
            None => UplinkMsg { worker: w, round, body: UplinkBody::Lost },
        };
        WorkerStep::Reply(reply)
    }
}

/// One worker thread's whole life: receive a dispatch, train, upload —
/// with the chaos plan applied symmetrically to the PS's copy (both
/// sides draw the same per-(round, worker) faults). Exits when its
/// downlink closes, when the uplink receiver is gone, or when the plan
/// crashes it.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    down_rx: Receiver<DownlinkMsg>,
    uplink_tx: Sender<UplinkMsg>,
    task: &ImageTask,
    local: LocalTrainConfig,
    seed: u64,
    plan: crate::chaos::ChaosPlan,
    link: LinkCodecs,
    compressed: bool,
) {
    LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
    let mut proto = WorkerProtocol::new(w, task, local, seed, plan, link, compressed);
    while let Ok(msg) = down_rx.recv() {
        let step = match msg {
            DownlinkMsg::Dispatch { round, frame, template, lost } => {
                proto.on_dispatch(round, frame, Some(template), lost)
            }
            DownlinkMsg::Retransmit { round } => proto.on_retransmit(round),
        };
        match step {
            WorkerStep::Crash(reply) => {
                // Best-effort announcement: the PS may already be gone.
                send_uplink(&uplink_tx, reply);
                break;
            }
            // A closed uplink means the PS already abandoned the run;
            // exit quietly instead of panicking in a worker.
            WorkerStep::Reply(reply) => {
                if !send_uplink(&uplink_tx, reply) {
                    break;
                }
            }
        }
    }
    LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
}

/// A delivered (checksum-verified) upload, in worker order.
struct Delivery {
    /// Position in this round's online list.
    pos: usize,
    frame: Bytes,
    template: Sequential,
    outcome: LocalOutcome,
}

/// PS-side record of one compressed downlink dispatch: the snapshot the
/// worker reconstructs (via the [`codec_delivered`] oracle — the uplink
/// delta reference) plus the byte accounting for `CompressionApplied`
/// events and the Eq. 5 communication terms.
struct DownInfo {
    received: Vec<StateEntry>,
    wire_bytes: u64,
    dense_bytes: u64,
}

/// Runs FedMP on the threaded runtime with no transport chaos.
/// Produces a history bit-identical to [`crate::run_fedmp`] under the
/// same options, including fault injection (`opts.faults`).
///
/// # Errors
/// See [`run_fedmp_threaded_chaos`].
pub fn run_fedmp_threaded(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    global: Sequential,
    opts: &FedMpOptions,
) -> Result<RunHistory, RuntimeError> {
    run_fedmp_threaded_chaos(cfg, setup, global, opts, &ChaosOptions::none())
}

/// The transport a [`run_recovery_rounds`] PS drives. Everything
/// order-sensitive — chaos draws, bandit updates, trace emission,
/// aggregation — stays in the shared recovery core; a fleet only moves
/// frames and restarts dead workers. Implemented by the in-process
/// [`ChannelFleet`] and by `fl::transport`'s socket fleet, which is
/// what makes chaos-off socket traces bit-identical to the loop
/// engine: both transports literally run the same PS code.
pub(crate) trait Fleet {
    /// Restarts a crashed worker before the round begins (thread
    /// respawn / process restart + reconnect). Transport-level trace
    /// events (`NodeRespawned`, `ConnEstablished`) are emitted here;
    /// the core emits the `WorkerRejoined` that follows.
    fn respawn(&mut self, round: usize, worker: usize) -> Result<(), RuntimeError>;
    /// Sends this round's dispatch. `lost` means the chaos plan drops
    /// the downlink: the payload must not reach the worker's protocol
    /// state machine (the socket fleet sends a payload-free marker so
    /// the lock-step protocol survives without wall-clock timeouts).
    fn dispatch(
        &mut self,
        round: usize,
        worker: usize,
        frame: Bytes,
        template: Sequential,
        lost: bool,
    ) -> Result<(), RuntimeError>;
    /// Requests a retransmission of the worker's cached clean upload.
    fn retransmit(&mut self, round: usize, worker: usize) -> Result<(), RuntimeError>;
    /// Blocks for the next uplink message of `round`'s collection
    /// barrier.
    fn recv(&mut self, round: usize) -> Result<UplinkMsg, RuntimeError>;
    /// Post-barrier notification that `worker`'s contribution was
    /// excluded for `reason` — the hook the socket fleet uses to emit
    /// `FrameTimeout`/`ConnReset` immediately before the core's
    /// `WorkerExcluded`. Default: nothing.
    fn note_excluded(&mut self, round: usize, worker: usize, reason: &str) {
        let _ = (round, worker, reason);
    }
}

/// The PS-side recovery policy, shared by every transport: §V-A churn
/// and deadlines, bounded retransmits with exponential backoff, quorum
/// partial aggregation, worker exclusion and rejoin, honest bandit
/// feedback, and all trace emission — exactly the loop-engine
/// semantics, driven over whatever the [`Fleet`] moves frames with.
pub(crate) fn run_recovery_rounds<F: Fleet>(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    mut global: Sequential,
    opts: &FedMpOptions,
    chaos: &ChaosOptions,
    fleet: &mut F,
) -> Result<RunHistory, RuntimeError> {
    let workers = setup.workers();
    let mut history = RunHistory::new(match opts.sync {
        SyncScheme::R2SP => "FedMP",
        SyncScheme::BSP => "FedMP-BSP",
    });
    let mut sim_time = 0.0f64;

    let mut agents: Vec<EUcbAgent> = (0..workers)
        .map(|w| {
            let mut c = opts.eucb;
            c.seed = c.seed.wrapping_add(w as u64).wrapping_add(cfg.seed);
            EUcbAgent::new(c)
        })
        .collect();

    // §V-A worker churn: same injector, same RNG stream as the loop
    // engine, so fault schedules line up bit-for-bit.
    let mut injector = opts.faults.map(|f| f.injector(workers));
    let mut fault_rng = fedmp_tensor::seeded_rng(cfg.seed ^ 0xFA17);
    let plan = crate::chaos::ChaosPlan::new(cfg.seed, chaos);
    // Per-worker codec pairs are a pure function of the device profile,
    // so they are fixed for the whole run.
    let compression = opts.compression;
    let compressed = !compression.is_dense();
    let links: Vec<LinkCodecs> =
        (0..workers).map(|w| compression.select(&setup.devices[w])).collect();
    // Trace events are emitted PS-side only, after the round's
    // collection barrier, so event order is deterministic and the
    // per-round kernel deltas are exact (all worker kernels for the
    // round have run by the time the barrier clears).
    let mut kstats = kernel_baseline();
    let mut crashed = vec![false; workers];

    for round in 0..cfg.rounds {
        // Rejoin: restart last round's crashed workers; they
        // get this round's global model re-dispatched like
        // everyone else.
        for (w, down) in crashed.iter_mut().enumerate() {
            if !*down {
                continue;
            }
            fleet.respawn(round, w)?;
            *down = false;
            emit_worker_rejoined(round, w);
        }

        // §V-A churn: offline workers are not dispatched.
        let online: Vec<usize> = match injector.as_mut() {
            Some(inj) => inj.step(&mut fault_rng),
            None => (0..workers).collect(),
        };
        emit_round_start(round, sim_time, &online);
        if online.is_empty() {
            let rec = RoundRecord { round, sim_time, ..Default::default() };
            emit_kernel_dispatch(round, &mut kstats);
            emit_round_end(&rec);
            history.rounds.push(rec);
            continue;
        }
        if compressed {
            for &w in &online {
                let slow = setup.devices[w].is_slow_link(compression.slow_link_bps);
                emit_codec_selected(round, w, &links[w], slow);
            }
        }

        // ① PS side: ratios, plans, residuals for the online
        // fleet (same order and formulas as the loop engine).
        let ratios: Vec<f32> = online
            .iter()
            .map(|&w| match opts.fixed_ratio {
                Some(r) => r,
                None => agents[w].select(),
            })
            .collect();
        let plans: Vec<_> = ratios
            .iter()
            .map(|&r| plan_sequential_with(&global, setup.task.input_chw, r, opts.importance))
            .collect();
        let residuals: Vec<_> = plans
            .iter()
            .map(|p| {
                let r = state_sub(&global.state(), &sparse_state(&global, p));
                if opts.quantize_residuals {
                    dequantize_state(&quantize_state(&r))
                } else {
                    r
                }
            })
            .collect();

        // Dispatch frames: sub-model extraction and wire
        // encoding fan out across the round executor, then the
        // sends happen serially in worker order.
        let prepared = exec::ordered_map((0..online.len()).collect(), |_, i| {
            let sub = extract_sequential(&global, &plans[i]);
            let sub_state = sub.state();
            if compressed {
                let pair = links[online[i]];
                let frame = encode_state_v2(&sub_state, pair.downlink, None, None);
                let info = DownInfo {
                    received: codec_delivered(&sub_state, pair.downlink, None, None),
                    wire_bytes: frame.len() as u64,
                    dense_bytes: wire_size_v2(&sub_state, Codec::DenseF32) as u64,
                };
                (sub, frame, Some(info))
            } else {
                (sub, encode_state(&sub_state), None)
            }
        });
        let mut down_info: Vec<Option<DownInfo>> = Vec::with_capacity(online.len());
        for (i, (sub, frame, info)) in prepared.into_iter().enumerate() {
            let w = online[i];
            down_info.push(info);
            let lost = plan.draw(round, w).drop_down;
            fleet.dispatch(round, w, frame, sub, lost)?;
        }

        // Collection barrier: drive every dispatched exchange
        // to a terminal outcome (delivered / excluded). This
        // loop does **no** order-sensitive processing — arrival
        // order varies run to run; everything deterministic
        // happens after the barrier, in worker order.
        enum Slot {
            Waiting,
            PendingRetry { template: Sequential, outcome: LocalOutcome },
            Delivered { frame: Bytes, template: Sequential, outcome: LocalOutcome },
            Excluded(&'static str),
        }
        let mut pos = vec![usize::MAX; workers];
        for (i, &w) in online.iter().enumerate() {
            pos[w] = i;
        }
        let mut slots: Vec<Slot> = online.iter().map(|_| Slot::Waiting).collect();
        let mut retries = vec![0u32; online.len()];
        let mut outstanding = online.len();
        while outstanding > 0 {
            let msg = fleet.recv(round)?;
            let w = msg.worker;
            if msg.round != round || w >= workers || pos[w] == usize::MAX {
                // Stale or phantom message — the lock-step
                // protocol cannot produce one; skip defensively.
                continue;
            }
            let i = pos[w];
            let framed = match msg.body {
                UplinkBody::Model { frame, template, outcome } => Some((frame, template, outcome)),
                UplinkBody::Frame { frame } => {
                    match std::mem::replace(&mut slots[i], Slot::Waiting) {
                        Slot::PendingRetry { template, outcome } => {
                            Some((frame, template, outcome))
                        }
                        // A retransmission with nothing pending
                        // is a protocol violation.
                        _ => return Err(RuntimeError::CorruptFrame { worker: w, round }),
                    }
                }
                UplinkBody::Lost => {
                    slots[i] = Slot::Excluded("dropped");
                    outstanding -= 1;
                    None
                }
                UplinkBody::Crashed => {
                    crashed[w] = true;
                    slots[i] = Slot::Excluded("crashed");
                    outstanding -= 1;
                    None
                }
                UplinkBody::Undecodable => {
                    return Err(RuntimeError::CorruptFrame { worker: w, round })
                }
            };
            if let Some((frame, template, outcome)) = framed {
                if frame_checksum_ok(&frame) {
                    slots[i] = Slot::Delivered { frame, template, outcome };
                    outstanding -= 1;
                } else if retries[i] < chaos.max_retransmits {
                    // Bounded retransmit: ask the worker to
                    // resend its cached clean frame.
                    retries[i] += 1;
                    slots[i] = Slot::PendingRetry { template, outcome };
                    fleet.retransmit(round, w)?;
                } else {
                    slots[i] = Slot::Excluded("corrupt");
                    outstanding -= 1;
                }
            }
        }

        // Post-barrier: fold the outcomes in worker order.
        let mut deliveries: Vec<Delivery> = Vec::with_capacity(online.len());
        let mut transport_excluded: Vec<(usize, &'static str)> = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Slot::Delivered { frame, template, outcome } => {
                    deliveries.push(Delivery { pos: i, frame, template, outcome });
                }
                Slot::Excluded(reason) => transport_excluded.push((i, reason)),
                // The barrier drives every slot terminal.
                Slot::Waiting | Slot::PendingRetry { .. } => {
                    return Err(RuntimeError::WorkerLost { worker: online[i] })
                }
            }
        }

        // Virtual-clock accounting for delivered uploads (same
        // formulas as the loop engine), plus the chaos
        // penalties: retransmit backoff and injected delay.
        let mut times = Vec::with_capacity(deliveries.len());
        let mut mean_comp = 0.0;
        let mut mean_comm = 0.0;
        for d in &deliveries {
            let w = online[d.pos];
            let mut cost = model_round_cost(&d.template, setup.task.input_chw, &cfg.local);
            // Compressed links pay their actual encoded frame
            // sizes in Eq. 5 (same override as the loop engine).
            if let Some(info) = &down_info[d.pos] {
                cost.download_bytes = info.wire_bytes as f64;
                cost.upload_bytes = d.frame.len() as f64;
                let pair = links[w];
                emit_compression_applied(
                    round,
                    w,
                    "down",
                    pair.downlink,
                    info.dense_bytes,
                    info.wire_bytes,
                );
                let up_dense = wire_size_v2(&d.template.state(), Codec::DenseF32) as u64;
                emit_compression_applied(
                    round,
                    w,
                    "up",
                    pair.uplink,
                    up_dense,
                    d.frame.len() as u64,
                );
            }
            let mut rng = worker_rng(cfg.seed ^ 0xA5A5, round, w);
            let t = setup.simulate_round(w, &cost, &mut rng);
            mean_comp += t.comp;
            mean_comm += t.comm;
            emit_local_train(
                round,
                w,
                ratios[d.pos],
                d.outcome.mean_loss,
                d.outcome.delta_loss(),
                cfg.local.tau,
                d.outcome.samples,
                &t,
                &setup.scaled_cost(&cost),
            );
            let draw = plan.draw(round, w);
            times.push(t.total() + draw.delay_secs + chaos.backoff_total(retries[d.pos]));
        }
        let dn = deliveries.len().max(1) as f64;
        mean_comp /= dn;
        mean_comm /= dn;
        for (i, &r) in retries.iter().enumerate() {
            for attempt in 1..=r {
                emit_frame_retransmit(round, online[i], attempt, chaos.backoff_for(attempt));
            }
        }

        // §V-A deadline over the delivered arrivals: stragglers
        // past `factor · d` are excluded from aggregation (but
        // still trained and still teach the bandit, exactly
        // like the loop engine).
        let deadline =
            opts.faults.and_then(|f| deadline_for(&times, f.deadline_frac, f.deadline_factor));
        let kept: Vec<usize> = match deadline {
            Some(d) => (0..deliveries.len()).filter(|&k| times[k] <= d).collect(),
            None => (0..deliveries.len()).collect(),
        };
        let max_t = times.iter().copied().fold(0.0, f64::max);
        let undelivered = online.len() - deliveries.len();
        let round_time = match deadline {
            // With lost exchanges the PS waits the whole
            // deadline window for arrivals that never come.
            Some(d) if undelivered > 0 => d,
            Some(d) => max_t.min(d),
            None => max_t,
        };
        sim_time += round_time;

        // Exclusion events, worker order: transport exclusions
        // then deadline stragglers, merged by online position.
        let mut excluded = vec![None::<&'static str>; online.len()];
        for &(i, reason) in &transport_excluded {
            excluded[i] = Some(reason);
        }
        for (k, d) in deliveries.iter().enumerate() {
            if !kept.contains(&k) {
                excluded[d.pos] = Some("deadline");
            }
        }
        for (i, reason) in excluded.iter().enumerate() {
            if let Some(reason) = reason {
                fleet.note_excluded(round, online[i], reason);
                emit_worker_excluded(round, online[i], reason);
            }
        }

        // Bandit feedback (Eq. 8) for every delivered worker;
        // a worker whose outcome never arrived (lost, corrupt
        // beyond the budget, crashed) abandons its pull — no
        // reward can honestly be assigned to it.
        if opts.fixed_ratio.is_none() {
            let mut delivered = vec![false; online.len()];
            for d in &deliveries {
                delivered[d.pos] = true;
            }
            if !deliveries.is_empty() {
                let t_avg = sum_f64(times.iter().copied()) / deliveries.len() as f64;
                for (k, d) in deliveries.iter().enumerate() {
                    agents[online[d.pos]].observe(eucb_reward(
                        d.outcome.delta_loss(),
                        times[k],
                        t_avg,
                        &opts.reward,
                    ));
                }
            }
            for (i, &w) in online.iter().enumerate() {
                if !delivered[i] {
                    agents[w].abandon();
                }
            }
        }

        // ③ Decode the kept uploads and aggregate under the
        // quorum. Frame decode and state recovery fan out; the
        // fallible results come back in worker order.
        let decoded =
            exec::ordered_map(kept.iter().map(|&k| &deliveries[k]).collect(), |_, d: &Delivery| {
                // Compressed uplinks decode against the snapshot
                // the worker trained from (its decoded downlink,
                // which `codec_delivered` predicted exactly).
                let reference = down_info[d.pos].as_ref().map(|i| i.received.as_slice());
                decode_state_v2(&d.frame, reference).map(|state| {
                    let mut model = d.template.clone();
                    model.load_state(&state);
                    recover_state(&model, &plans[d.pos], &global)
                })
            });
        let mut recovered = Vec::with_capacity(kept.len());
        for (k, dec) in kept.iter().zip(decoded) {
            let w = online[deliveries[*k].pos];
            recovered.push(dec.map_err(|_| RuntimeError::CorruptFrame { worker: w, round })?);
        }
        let kept_residuals: Vec<_> =
            kept.iter().map(|&k| residuals[deliveries[k].pos].clone()).collect();
        let quorum = chaos.quorum(online.len());
        let new_state = match opts.sync {
            SyncScheme::R2SP => quorum_aggregate(&recovered, &kept_residuals, quorum),
            SyncScheme::BSP => {
                if recovered.is_empty() || recovered.len() < quorum {
                    None
                } else {
                    Some(bsp_aggregate(&recovered))
                }
            }
        };
        let participants = match new_state {
            Some(s) => {
                global.load_state(&s);
                if kept.len() < online.len() {
                    emit_quorum_aggregate(round, quorum, kept.len(), online.len() - kept.len());
                }
                emit_aggregate(
                    round,
                    match opts.sync {
                        SyncScheme::R2SP => "R2SP",
                        SyncScheme::BSP => "BSP",
                    },
                    kept.len(),
                );
                kept.len()
            }
            // Below quorum: the round's uploads are discarded
            // and the global model carries over unchanged.
            None => 0,
        };

        let train_loss =
            sum_f32(kept.iter().map(|&k| deliveries[k].outcome.mean_loss)) / kept.len() as f32;
        let eval = if round % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let r =
                evaluate_image(&mut global, &setup.task.test, cfg.eval_batch, cfg.eval_max_samples);
            Some((r.loss, r.accuracy))
        } else {
            None
        };
        emit_kernel_dispatch(round, &mut kstats);
        let rec = RoundRecord {
            round,
            sim_time,
            round_time,
            mean_comp,
            mean_comm,
            train_loss,
            eval,
            ratios,
            participants,
            retries: retries.iter().map(|&r| r as usize).sum(),
            exclusions: online.len() - kept.len(),
        };
        emit_round_end(&rec);
        history.rounds.push(rec);
    }
    Ok(history)
}

/// The in-process [`Fleet`]: crossbeam channels to scoped worker
/// threads, exactly the transport the runtime has always used. Respawn
/// means a fresh thread with a fresh channel pair.
struct ChannelFleet<'a, 'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    downlinks: &'a mut Vec<Sender<DownlinkMsg>>,
    uplink_tx: &'a Sender<UplinkMsg>,
    uplink_rx: &'a Receiver<UplinkMsg>,
    task: &'env ImageTask,
    local: LocalTrainConfig,
    seed: u64,
    plan: crate::chaos::ChaosPlan,
    links: &'a [LinkCodecs],
    compressed: bool,
}

impl Fleet for ChannelFleet<'_, '_, '_> {
    fn respawn(&mut self, _round: usize, worker: usize) -> Result<(), RuntimeError> {
        let (down_tx, down_rx) = bounded::<DownlinkMsg>(2);
        let utx = self.uplink_tx.clone();
        let task = self.task;
        let local = self.local;
        let seed = self.seed;
        let plan = self.plan;
        let link = self.links[worker];
        let compressed = self.compressed;
        self.scope.spawn(move || {
            worker_loop(worker, down_rx, utx, task, local, seed, plan, link, compressed)
        });
        self.downlinks[worker] = down_tx;
        Ok(())
    }

    fn dispatch(
        &mut self,
        round: usize,
        worker: usize,
        frame: Bytes,
        template: Sequential,
        lost: bool,
    ) -> Result<(), RuntimeError> {
        self.downlinks[worker]
            .send(DownlinkMsg::Dispatch { round, frame, template, lost })
            .map_err(|_| RuntimeError::WorkerLost { worker })
    }

    fn retransmit(&mut self, round: usize, worker: usize) -> Result<(), RuntimeError> {
        self.downlinks[worker]
            .send(DownlinkMsg::Retransmit { round })
            .map_err(|_| RuntimeError::WorkerLost { worker })
    }

    fn recv(&mut self, _round: usize) -> Result<UplinkMsg, RuntimeError> {
        // The PS holds an uplink sender for respawns, so a closed
        // channel is unreachable; fail typed, not loud.
        self.uplink_rx.recv().map_err(|_| RuntimeError::WorkerLost { worker: 0 })
    }
}

/// Runs FedMP on the threaded runtime under a seeded transport fault
/// plane — see the module docs for the recovery policy.
///
/// # Errors
/// Every injected fault is recovered in-run; the returned
/// [`RuntimeError`]s ([`RuntimeError::CorruptFrame`],
/// [`RuntimeError::WorkerLost`]) report *protocol violations* — an
/// undecodable checksum-verified frame, a thread gone without a crash
/// announcement — which cannot occur with the in-process channels used
/// here, but are surfaced as typed errors rather than panics so the
/// library has no panic paths (see `docs/ANALYSIS.md`, `no-panic`).
pub fn run_fedmp_threaded_chaos(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    global: Sequential,
    opts: &FedMpOptions,
    chaos: &ChaosOptions,
) -> Result<RunHistory, RuntimeError> {
    let workers = setup.workers();
    let plan = crate::chaos::ChaosPlan::new(cfg.seed, chaos);
    // Per-worker codec pairs are a pure function of the device profile,
    // so they are fixed for the whole run and can be handed to the
    // worker threads at spawn time.
    let compression = opts.compression;
    let compressed = !compression.is_dense();
    let links: Vec<LinkCodecs> =
        (0..workers).map(|w| compression.select(&setup.devices[w])).collect();

    std::thread::scope(|scope| {
        let (uplink_tx, uplink_rx) = bounded::<UplinkMsg>(workers.max(1));
        let mut downlinks: Vec<Sender<DownlinkMsg>> = Vec::with_capacity(workers);
        for (w, &link) in links.iter().enumerate() {
            let (down_tx, down_rx) = bounded::<DownlinkMsg>(2);
            let utx = uplink_tx.clone();
            let task = setup.task;
            let local = cfg.local;
            let seed = cfg.seed;
            scope.spawn(move || {
                worker_loop(w, down_rx, utx, task, local, seed, plan, link, compressed)
            });
            downlinks.push(down_tx);
        }

        // The PS loop runs in a fallible block so protocol violations
        // propagate as typed `RuntimeError`s; the channels are torn
        // down after it on *every* exit path (see below).
        #[allow(clippy::redundant_closure_call)] // try-block emulation
        let ps = (|| -> Result<RunHistory, RuntimeError> {
            let mut fleet = ChannelFleet {
                scope,
                downlinks: &mut downlinks,
                uplink_tx: &uplink_tx,
                uplink_rx: &uplink_rx,
                task: setup.task,
                local: cfg.local,
                seed: cfg.seed,
                plan,
                links: &links,
                compressed,
            };
            run_recovery_rounds(cfg, setup, global, opts, chaos, &mut fleet)
        })();

        // Join guarantee, on BOTH exit paths: closing every downlink
        // ends each worker's receive loop, and dropping the uplink
        // receiver errors out any worker mid-send, so the surrounding
        // scope always joins every thread (including respawned ones).
        drop(downlinks);
        drop(uplink_rx);
        ps
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::fedmp::{run_fedmp, FaultOptions};
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    fn setup_task(seed: u64) -> (ImageTask, Vec<fedmp_edgesim::DeviceProfile>) {
        let (train, test) = mnist_like(0.1, seed).generate();
        let mut rng = seeded_rng(seed);
        let part = iid_partition(&train, 3, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices = vec![
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
            tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
        ];
        (task, devices)
    }

    fn canonical(h: &RunHistory) -> String {
        serde_json::to_string(h).expect("serialise history")
    }

    #[test]
    fn threaded_runtime_matches_loop_engine_exactly() {
        let (task, devices) = setup_task(260);
        let setup = FlSetup::new(&task, devices, TimeModel::default());
        let mut rng = seeded_rng(261);
        let global = zoo::cnn_mnist(0.12, &mut rng);
        let cfg = FlConfig { rounds: 4, eval_every: 2, ..Default::default() };
        let opts = FedMpOptions::default();

        let sequential = run_fedmp(&cfg, &setup, global.clone(), &opts);
        let threaded = run_fedmp_threaded(&cfg, &setup, global, &opts).expect("threaded run");

        assert_eq!(canonical(&sequential), canonical(&threaded));
    }

    #[test]
    fn threaded_runtime_matches_loop_engine_with_faults() {
        // The §V-A path — injector churn, deadlines, partial
        // aggregation — must line up bit-for-bit with the loop engine
        // when transport chaos is off.
        let (task, devices) = setup_task(270);
        let setup = FlSetup::new(&task, devices, TimeModel::default());
        let mut rng = seeded_rng(271);
        let global = zoo::cnn_mnist(0.12, &mut rng);
        let cfg = FlConfig { rounds: 6, eval_every: 3, ..Default::default() };
        let opts = FedMpOptions {
            faults: Some(FaultOptions {
                fail_prob: 0.35,
                recover_rounds: 1,
                deadline_frac: 0.75,
                deadline_factor: 1.2,
                ..Default::default()
            }),
            ..Default::default()
        };

        let sequential = run_fedmp(&cfg, &setup, global.clone(), &opts);
        let threaded = run_fedmp_threaded(&cfg, &setup, global, &opts).expect("threaded run");
        assert_eq!(canonical(&sequential), canonical(&threaded));
        // The schedule actually exercised churn.
        assert!(
            sequential.rounds.iter().any(|r| r.ratios.len() < 3),
            "no worker ever went offline at fail_prob = 0.35"
        );
    }

    #[test]
    fn threaded_runtime_matches_loop_engine_with_compression() {
        // Worker-side decode/encode (real frames, worker-resident error
        // feedback) must reproduce the loop engine's `codec_delivered`
        // oracle bit-for-bit. The Near/Mid/Far fleet exercises both the
        // fast (dense) and slow (f16 down, top-k int8 up) pairs.
        let (task, devices) = setup_task(272);
        let setup = FlSetup::new(&task, devices, TimeModel::default());
        let mut rng = seeded_rng(273);
        let global = zoo::cnn_mnist(0.12, &mut rng);
        let cfg = FlConfig { rounds: 4, eval_every: 2, ..Default::default() };
        let opts = FedMpOptions {
            compression: crate::wire::CompressionPolicy::adaptive(),
            ..Default::default()
        };

        let sequential = run_fedmp(&cfg, &setup, global.clone(), &opts);
        let threaded = run_fedmp_threaded(&cfg, &setup, global, &opts).expect("threaded run");
        assert_eq!(canonical(&sequential), canonical(&threaded));
    }

    #[test]
    fn threaded_runtime_bsp_and_fixed_ratio_work() {
        let (task, devices) = setup_task(262);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(263);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 2, ..Default::default() };
        let opts =
            FedMpOptions { sync: SyncScheme::BSP, fixed_ratio: Some(0.4), ..Default::default() };
        let h = run_fedmp_threaded(&cfg, &setup, global, &opts).expect("threaded run");
        assert_eq!(h.rounds.len(), 2);
        assert!(h.rounds.iter().all(|r| r.ratios.iter().all(|&x| x == 0.4)));
        assert!(h.rounds.iter().all(|r| r.participants == 3 && r.exclusions == 0));
    }

    #[test]
    fn chaos_run_completes_every_round_and_recovers() {
        let (task, devices) = setup_task(264);
        let setup = FlSetup::new(&task, devices, TimeModel::default());
        let mut rng = seeded_rng(265);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 8, eval_every: 4, ..Default::default() };
        let opts = FedMpOptions {
            faults: Some(FaultOptions { fail_prob: 0.15, recover_rounds: 1, ..Default::default() }),
            ..Default::default()
        };
        let chaos = ChaosOptions::demo(1);
        let h = run_fedmp_threaded_chaos(&cfg, &setup, global, &opts, &chaos).expect("chaos run");
        assert_eq!(h.rounds.len(), 8, "chaos must not shorten the run");
        // The demo plan is violent enough that *something* happened.
        let retries: usize = h.rounds.iter().map(|r| r.retries).sum();
        let exclusions: usize = h.rounds.iter().map(|r| r.exclusions).sum();
        assert!(retries + exclusions > 0, "demo chaos produced no recoveries");
        // And rounds that aggregated did so with a sensible quorum.
        assert!(h.rounds.iter().all(|r| r.participants <= 3));
        assert!(h.final_accuracy().is_some());
    }

    #[test]
    fn chaos_runs_are_seed_reproducible() {
        let (task, devices) = setup_task(266);
        let setup = FlSetup::new(&task, devices, TimeModel::default());
        let mut rng = seeded_rng(267);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 5, ..Default::default() };
        let opts = FedMpOptions { faults: Some(FaultOptions::default()), ..Default::default() };
        let chaos = ChaosOptions::demo(2);
        let a = run_fedmp_threaded_chaos(&cfg, &setup, global.clone(), &opts, &chaos)
            .expect("chaos run a");
        let b = run_fedmp_threaded_chaos(&cfg, &setup, global, &opts, &chaos).expect("chaos run b");
        assert_eq!(canonical(&a), canonical(&b));
    }

    #[test]
    fn send_uplink_tolerates_a_departed_ps() {
        // The PS drops its receiver on every exit path; a worker
        // mid-send must observe `false` and exit quietly — never panic
        // or block. Regression test for the teardown race.
        let (tx, rx) = bounded::<UplinkMsg>(1);
        drop(rx);
        let msg = UplinkMsg { worker: 0, round: 3, body: UplinkBody::Lost };
        assert!(!send_uplink(&tx, msg), "send into a closed uplink must report failure");
        // And a crash announcement on the same dead channel is equally
        // harmless (the worker_loop ignores the result by design).
        let crash = UplinkMsg { worker: 1, round: 3, body: UplinkBody::Crashed };
        assert!(!send_uplink(&tx, crash));
    }
}
