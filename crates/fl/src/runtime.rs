//! Threaded PS/worker runtime: the closest in-process analogue of the
//! paper's physical prototype (one PS process + 30 Jetson workers).
//!
//! Unlike the in-process loop engines, this runtime spawns **one OS
//! thread per worker** and moves models over channels as real
//! [`crate::wire`] frames — every sub-model download and trained-model
//! upload is serialised, checksummed and deserialised, exactly as a
//! networked deployment would. Simulated time still comes from
//! `fedmp-edgesim` (threads run as fast as the host allows; the virtual
//! clock stays authoritative for completion-time results).
//!
//! Determinism: per-(seed, round, worker) RNGs and worker-indexed
//! aggregation make the threaded runtime produce **bit-identical
//! histories** to [`crate::run_fedmp`] under the same options — tested
//! below.

use crate::aggregate::{bsp_aggregate, r2sp_aggregate};
use crate::engine::{
    emit_aggregate, emit_kernel_dispatch, emit_local_train, emit_round_end, emit_round_start_all,
    kernel_baseline, model_round_cost, worker_batches, worker_rng, FlConfig, FlSetup, SyncScheme,
};
use crate::engines::fedmp::FedMpOptions;
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::{local_train, LocalOutcome};
use crate::wire::{decode_state, encode_state};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use fedmp_bandit::{eucb_reward, Bandit, EUcbAgent};
use fedmp_nn::{state_sub, Sequential};
use fedmp_pruning::{extract_sequential, plan_sequential_with, recover_state, sparse_state};
use fedmp_tensor::parallel::{sum_f32, sum_f64};
use parking_lot::Mutex;

/// A sub-model dispatch to one worker.
struct DownlinkMsg {
    round: usize,
    frame: Bytes,
    /// Architecture template the worker instantiates the frame into.
    template: Sequential,
}

/// A trained upload from one worker: the wire frame plus training
/// outcome, or the first error the worker hit.
struct UplinkMsg {
    worker: usize,
    payload: Result<UplinkPayload, RuntimeError>,
}

/// The successful-upload half of an [`UplinkMsg`].
struct UplinkPayload {
    frame: Bytes,
    template: Sequential,
    outcome: LocalOutcome,
}

/// Errors returned by the threaded runtime: unsupported option
/// combinations, plus the transport failures a real PS/worker
/// deployment has to surface instead of crashing on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// `opts.faults` was set. Fault injection (worker dropout and the
    /// §V-A deadline) is a loop-engine feature: the threaded runtime's
    /// per-round barrier collects exactly one upload per worker, so a
    /// dropped worker would deadlock the parameter server. Run
    /// [`crate::run_fedmp`] for fault experiments.
    FaultsUnsupported,
    /// A wire frame failed to decode (bad magic, truncation or checksum
    /// mismatch) on the downlink or uplink of the given worker.
    CorruptFrame {
        /// Worker whose frame failed to decode.
        worker: usize,
        /// Round the frame belonged to.
        round: usize,
    },
    /// A worker's channel closed before the round completed — the
    /// thread exited without delivering its upload.
    WorkerLost {
        /// The worker whose channel went away.
        worker: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::FaultsUnsupported => {
                write!(f, "threaded runtime does not support fault injection; use run_fedmp")
            }
            RuntimeError::CorruptFrame { worker, round } => {
                write!(f, "wire frame for worker {worker} failed to decode in round {round}")
            }
            RuntimeError::WorkerLost { worker } => {
                write!(f, "worker {worker} disconnected before completing its round")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Runs FedMP on the threaded runtime. Produces the same history as
/// [`crate::run_fedmp`] for the supported option set.
///
/// # Errors
/// Returns [`RuntimeError::FaultsUnsupported`] if `opts.faults` is set
/// (fault injection is a loop-engine feature) — everything else is
/// supported. [`RuntimeError::CorruptFrame`] and
/// [`RuntimeError::WorkerLost`] report transport failures (an
/// undecodable wire frame, a worker thread gone before its upload);
/// they cannot occur with the in-process channels used here, but the
/// runtime surfaces them as typed errors rather than panicking so the
/// library has no panic paths (see `docs/ANALYSIS.md`, `no-panic`).
pub fn run_fedmp_threaded(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    mut global: Sequential,
    opts: &FedMpOptions,
) -> Result<RunHistory, RuntimeError> {
    if opts.faults.is_some() {
        return Err(RuntimeError::FaultsUnsupported);
    }
    let workers = setup.workers();
    let mut history = RunHistory::new(match opts.sync {
        SyncScheme::R2SP => "FedMP",
        SyncScheme::BSP => "FedMP-BSP",
    });
    let mut sim_time = 0.0f64;

    let mut agents: Vec<EUcbAgent> = (0..workers)
        .map(|w| {
            let mut c = opts.eucb;
            c.seed = c.seed.wrapping_add(w as u64).wrapping_add(cfg.seed);
            EUcbAgent::new(c)
        })
        .collect();

    // Channels: one downlink per worker, one shared uplink.
    let downlinks: Vec<(Sender<DownlinkMsg>, Receiver<DownlinkMsg>)> =
        (0..workers).map(|_| bounded(1)).collect();
    let (uplink_tx, uplink_rx) = bounded::<UplinkMsg>(workers);
    let uplink_count = Mutex::new(0usize);
    // Trace events are emitted PS-side only (workers are blocked on
    // their downlinks whenever the PS emits), so event order is
    // deterministic and the per-round kernel deltas are exact.
    let mut kstats = kernel_baseline();

    let result = std::thread::scope(|scope| {
        // Worker threads: receive a frame, train, upload.
        for (w, (_, down_rx)) in downlinks.iter().enumerate() {
            let down_rx = down_rx.clone();
            let uplink_tx = uplink_tx.clone();
            let task = setup.task;
            let local = cfg.local;
            let seed = cfg.seed;
            let uplink_count = &uplink_count;
            scope.spawn(move || {
                while let Ok(msg) = down_rx.recv() {
                    // One OS thread per worker is already the
                    // parallelism level here; run the kernels beneath
                    // sequentially so the band scheduler does not
                    // oversubscribe the host (results are identical —
                    // kernels are thread-count invariant).
                    let payload = fedmp_tensor::parallel::with_nested_sequential(|| {
                        match decode_state(&msg.frame) {
                            Ok(state) => {
                                let mut model = msg.template;
                                model.load_state(&state);
                                let mut batches =
                                    worker_batches(task, w, local.batch, seed, msg.round);
                                let outcome = local_train(&mut model, &mut batches, &local);
                                let frame = encode_state(&model.state());
                                Ok(UplinkPayload { frame, template: model, outcome })
                            }
                            Err(_) => {
                                Err(RuntimeError::CorruptFrame { worker: w, round: msg.round })
                            }
                        }
                    });
                    *uplink_count.lock() += 1;
                    // A closed uplink means the PS already abandoned the
                    // run; exit quietly instead of panicking in a worker.
                    if uplink_tx.send(UplinkMsg { worker: w, payload }).is_err() {
                        break;
                    }
                }
            });
        }
        drop(uplink_tx);

        // The PS loop runs in a fallible block so transport errors
        // propagate as typed `RuntimeError`s; the downlinks are dropped
        // on *every* exit path below, which ends the worker loops and
        // lets the scope join instead of deadlocking.
        let ps = (|| -> Result<(), RuntimeError> {
            for round in 0..cfg.rounds {
                emit_round_start_all(round, sim_time, workers);
                // ① PS side: ratios, plans, sub-models, residuals.
                let ratios: Vec<f32> = (0..workers)
                    .map(|w| match opts.fixed_ratio {
                        Some(r) => r,
                        None => agents[w].select(),
                    })
                    .collect();
                let plans: Vec<_> = ratios
                    .iter()
                    .map(|&r| {
                        plan_sequential_with(&global, setup.task.input_chw, r, opts.importance)
                    })
                    .collect();
                let residuals: Vec<_> = plans
                    .iter()
                    .map(|p| state_sub(&global.state(), &sparse_state(&global, p)))
                    .collect();

                // Dispatch frames: sub-model extraction and wire
                // encoding fan out across the round executor, then the
                // sends happen serially in worker order.
                let prepared = exec::ordered_map((0..workers).collect(), |_, w| {
                    let sub = extract_sequential(&global, &plans[w]);
                    let frame = encode_state(&sub.state());
                    (sub, frame)
                });
                for (w, (sub, frame)) in prepared.into_iter().enumerate() {
                    downlinks[w]
                        .0
                        .send(DownlinkMsg { round, frame, template: sub })
                        .map_err(|_| RuntimeError::WorkerLost { worker: w })?;
                }

                // Collect all uploads, then order by worker index for
                // deterministic aggregation.
                let mut slots: Vec<Option<UplinkPayload>> = (0..workers).map(|_| None).collect();
                for _ in 0..workers {
                    let Ok(msg) = uplink_rx.recv() else {
                        // Every sender hung up before the round completed.
                        let worker = slots.iter().position(Option::is_none).unwrap_or_default();
                        return Err(RuntimeError::WorkerLost { worker });
                    };
                    let w = msg.worker;
                    slots[w] = Some(msg.payload?);
                }
                let mut uploads: Vec<UplinkPayload> = Vec::with_capacity(workers);
                for (w, slot) in slots.into_iter().enumerate() {
                    match slot {
                        Some(p) => uploads.push(p),
                        // A duplicate upload left some other slot empty.
                        None => return Err(RuntimeError::WorkerLost { worker: w }),
                    }
                }

                // Virtual-clock accounting (same formulas as the loop engine).
                let mut times = Vec::with_capacity(workers);
                let mut mean_comp = 0.0;
                let mut mean_comm = 0.0;
                for (w, up) in uploads.iter().enumerate() {
                    let cost = model_round_cost(&up.template, setup.task.input_chw, &cfg.local);
                    let mut rng = worker_rng(cfg.seed ^ 0xA5A5, round, w);
                    let t = setup.simulate_round(w, &cost, &mut rng);
                    mean_comp += t.comp;
                    mean_comm += t.comm;
                    emit_local_train(
                        round,
                        w,
                        ratios[w],
                        up.outcome.mean_loss,
                        up.outcome.delta_loss(),
                        cfg.local.tau,
                        up.outcome.samples,
                        &t,
                        &setup.scaled_cost(&cost),
                    );
                    times.push(t.total());
                }
                mean_comp /= workers as f64;
                mean_comm /= workers as f64;
                let round_time = times.iter().copied().fold(0.0, f64::max);
                sim_time += round_time;

                if opts.fixed_ratio.is_none() {
                    let t_avg = sum_f64(times.iter().copied()) / workers as f64;
                    for (w, agent) in agents.iter_mut().enumerate() {
                        agent.observe(eucb_reward(
                            uploads[w].outcome.delta_loss(),
                            times[w],
                            t_avg,
                            &opts.reward,
                        ));
                    }
                }

                // ③ Decode uploads and aggregate. Frame decode and
                // state recovery fan out per worker; the fallible
                // results come back in worker order so error reporting
                // is unchanged.
                let decoded = exec::ordered_map(
                    uploads.iter().zip(plans.iter()).collect(),
                    |_, (up, plan)| {
                        decode_state(&up.frame).map(|state| {
                            let mut model = up.template.clone();
                            model.load_state(&state);
                            recover_state(&model, plan, &global)
                        })
                    },
                );
                let mut recovered = Vec::with_capacity(workers);
                for (w, dec) in decoded.into_iter().enumerate() {
                    recovered
                        .push(dec.map_err(|_| RuntimeError::CorruptFrame { worker: w, round })?);
                }
                let new_state = match opts.sync {
                    SyncScheme::R2SP => r2sp_aggregate(&recovered, &residuals),
                    SyncScheme::BSP => bsp_aggregate(&recovered),
                };
                global.load_state(&new_state);
                emit_aggregate(
                    round,
                    match opts.sync {
                        SyncScheme::R2SP => "R2SP",
                        SyncScheme::BSP => "BSP",
                    },
                    workers,
                );

                let train_loss =
                    sum_f32(uploads.iter().map(|u| u.outcome.mean_loss)) / workers as f32;
                let eval = if round % cfg.eval_every == 0 || round + 1 == cfg.rounds {
                    let r = evaluate_image(
                        &mut global,
                        &setup.task.test,
                        cfg.eval_batch,
                        cfg.eval_max_samples,
                    );
                    Some((r.loss, r.accuracy))
                } else {
                    None
                };
                emit_kernel_dispatch(round, &mut kstats);
                let rec = RoundRecord {
                    round,
                    sim_time,
                    round_time,
                    mean_comp,
                    mean_comm,
                    train_loss,
                    eval,
                    ratios,
                };
                emit_round_end(&rec);
                history.rounds.push(rec);
            }
            Ok(())
        })();

        // Closing the downlinks ends the worker loops (or, after an
        // error, unblocks workers still waiting on a frame), so the
        // scope can join every thread on both exit paths.
        drop(downlinks);
        ps
    });
    result?;

    assert_eq!(*uplink_count.lock(), cfg.rounds * workers, "upload bookkeeping");
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::fedmp::run_fedmp;
    use crate::task::ImageTask;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    fn setup_task(seed: u64) -> (ImageTask, Vec<fedmp_edgesim::DeviceProfile>) {
        let (train, test) = mnist_like(0.1, seed).generate();
        let mut rng = seeded_rng(seed);
        let part = iid_partition(&train, 3, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices = vec![
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
            tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
        ];
        (task, devices)
    }

    #[test]
    fn threaded_runtime_matches_loop_engine_exactly() {
        let (task, devices) = setup_task(260);
        let setup = FlSetup::new(&task, devices, TimeModel::default());
        let mut rng = seeded_rng(261);
        let global = zoo::cnn_mnist(0.12, &mut rng);
        let cfg = FlConfig { rounds: 4, eval_every: 2, ..Default::default() };
        let opts = FedMpOptions::default();

        let sequential = run_fedmp(&cfg, &setup, global.clone(), &opts);
        let threaded = run_fedmp_threaded(&cfg, &setup, global, &opts).expect("no faults");

        assert_eq!(sequential.rounds.len(), threaded.rounds.len());
        for (a, b) in sequential.rounds.iter().zip(threaded.rounds.iter()) {
            assert_eq!(a.ratios, b.ratios, "round {}", a.round);
            assert_eq!(a.train_loss, b.train_loss, "round {}", a.round);
            assert_eq!(a.sim_time, b.sim_time, "round {}", a.round);
            assert_eq!(a.eval, b.eval, "round {}", a.round);
        }
    }

    #[test]
    fn threaded_runtime_bsp_and_fixed_ratio_work() {
        let (task, devices) = setup_task(262);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(263);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 2, ..Default::default() };
        let opts =
            FedMpOptions { sync: SyncScheme::BSP, fixed_ratio: Some(0.4), ..Default::default() };
        let h = run_fedmp_threaded(&cfg, &setup, global, &opts).expect("no faults");
        assert_eq!(h.rounds.len(), 2);
        assert!(h.rounds.iter().all(|r| r.ratios.iter().all(|&x| x == 0.4)));
    }

    #[test]
    fn faults_are_rejected_as_an_error() {
        let (task, devices) = setup_task(264);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(265);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 1, ..Default::default() };
        let opts = FedMpOptions {
            faults: Some(crate::engines::fedmp::FaultOptions::default()),
            ..Default::default()
        };
        let err = run_fedmp_threaded(&cfg, &setup, global, &opts).unwrap_err();
        assert_eq!(err, RuntimeError::FaultsUnsupported);
        assert!(err.to_string().contains("fault injection"));
    }
}
