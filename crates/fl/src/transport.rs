//! Real socket transport for the PS/worker protocol: the same
//! recoverable exchange [`crate::runtime`] runs over channels, carried
//! over Unix-domain sockets between actual OS processes (or threads,
//! for in-test nodes), with the chaos plane realised as packet-level
//! faults in the framing layer.
//!
//! # Framing
//!
//! Every message is one length-prefixed binary frame:
//!
//! ```text
//! [u32 magic][u32 kind][u32 json_len][u32 bin_len][u64 checksum][json][bin]
//! ```
//!
//! All integers little-endian. The checksum is FNV-1a 64 over the
//! header words and the JSON section **only** — deliberately excluding
//! the binary section, which carries [`crate::wire`] model frames with
//! their own end-to-end checksum. A chaos-corrupted model frame
//! therefore passes framing intact and is detected by the *application*
//! checksum at the PS, driving the retransmit path exactly as the
//! channel transport does. Section lengths are capped
//! ([`MAX_SECTION`]), so a length-lying prefix can never trigger an
//! unbounded read or allocation: the decoder reads at most the
//! declared (capped) bytes and returns a typed [`TransportError`].
//!
//! # Fault mapping
//!
//! The seeded [`ChaosPlan`](crate::chaos::ChaosPlan) draws are mapped
//! onto packet-level effects (see `docs/TRANSPORT.md` for the full
//! table): corruption flips a byte of the uplink model payload (the
//! framing checksum excludes it; the wire checksum catches it), drops
//! become payload-free marker frames so the lock-step protocol never
//! needs a wall-clock timeout, delays become bounded real sleeps
//! worker-side (virtual-clock penalties stay PS-side), and crashes
//! become the worker closing its connection without a word — which the
//! PS reads as a connection reset and recovers from by respawning the
//! node next round.
//!
//! # Determinism
//!
//! The PS drives [`crate::runtime::run_recovery_rounds`] — literally
//! the same recovery core as the channel runtime — through a
//! [`Fleet`] implementation whose only nondeterminism (uplink arrival
//! order, connection acceptance order) is confined to the collection
//! barrier, which does no order-sensitive processing. Chaos-off socket
//! runs are therefore bit-identical (history and trace alike) to the
//! loop engine; seeded chaos runs are bit-identical run to run.

use crate::chaos::{backoff, ChaosOptions};
use crate::engine::{
    emit_conn_established, emit_conn_reset, emit_frame_timeout, emit_node_respawned, FlConfig,
    FlSetup,
};
use crate::engines::fedmp::FedMpOptions;
use crate::history::RunHistory;
use crate::local::{LocalOutcome, LocalTrainConfig};
use crate::runtime::{
    run_recovery_rounds, Fleet, LiveThreadGuard, RuntimeError, UplinkBody, UplinkMsg,
    WorkerProtocol, WorkerStep,
};
use crate::task::ImageTask;
use crate::wire::LinkCodecs;
use bytes::Bytes;
use core::time::Duration;
use crossbeam::channel::{bounded, Receiver, Sender};
use fedmp_nn::Sequential;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

// ───────────────────────── framing ─────────────────────────

/// Frame magic: `FMPT` little-endian.
pub(crate) const MAGIC: u32 = 0x5450_4D46;

/// Hard cap on either section of a frame (64 MiB). A frame whose
/// length prefix claims more is rejected as [`TransportError::Oversize`]
/// before any allocation — the defence against length-lying prefixes.
pub(crate) const MAX_SECTION: u32 = 1 << 26;

/// Header size in bytes: magic, kind, two section lengths, checksum.
pub(crate) const HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8;

/// Frame kinds, PS → worker then worker → PS.
pub(crate) mod kind {
    /// Worker → PS: first frame on a fresh connection, identifying the
    /// worker index.
    pub const HELLO: u32 = 1;
    /// PS → worker: run configuration + the opaque task blob.
    pub const SETUP: u32 = 2;
    /// PS → worker: one round's sub-model dispatch (or a payload-free
    /// marker when the chaos plan lost the downlink).
    pub const DISPATCH: u32 = 3;
    /// PS → worker: resend the cached clean upload.
    pub const RETRANSMIT: u32 = 4;
    /// PS → worker: the run is over; exit cleanly.
    pub const SHUTDOWN: u32 = 5;
    /// Worker → PS: trained model upload (control JSON + wire frame).
    pub const UP_MODEL: u32 = 6;
    /// Worker → PS: retransmitted wire frame only.
    pub const UP_FRAME: u32 = 7;
    /// Worker → PS: the exchange was lost in transit (marker frame).
    pub const UP_LOST: u32 = 8;
    /// Worker → PS: the dispatch failed structural decoding.
    pub const UP_UNDECODABLE: u32 = 9;
}

/// Typed framing-layer failures. Never panics, never over-reads: every
/// malformed, truncated or length-lying byte stream maps onto one of
/// these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The stream ended mid-frame.
    Truncated,
    /// The frame did not start with the `MAGIC` marker.
    BadMagic,
    /// A section length prefix exceeded `MAX_SECTION` (64 MiB).
    Oversize,
    /// The header/JSON checksum did not verify.
    Checksum,
    /// The JSON control section failed to parse, or the kind was
    /// unknown in this direction.
    Malformed,
    /// An underlying socket operation failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Truncated => write!(f, "stream ended mid-frame"),
            TransportError::BadMagic => write!(f, "frame does not start with the FMPT magic"),
            TransportError::Oversize => write!(f, "section length exceeds the 64 MiB cap"),
            TransportError::Checksum => write!(f, "frame header/control checksum mismatch"),
            TransportError::Malformed => write!(f, "frame control section failed to parse"),
            TransportError::Io(kind) => write!(f, "socket I/O failed: {kind:?}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Which transport operation failed terminally — the payload of
/// [`RuntimeError::Transport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Binding the PS listener socket.
    Bind,
    /// Accepting a worker connection (after retry exhaustion).
    Accept,
    /// Connecting to the PS (after retry exhaustion).
    Connect,
    /// Spawning a worker node (process or thread).
    Spawn,
    /// The Hello/Setup handshake.
    Handshake,
    /// Writing a frame to a worker.
    Send,
    /// Reading a frame from a worker (framing error or a connection
    /// gone outside the crash protocol).
    Recv,
    /// Reaping a worker node on teardown or respawn.
    Reap,
}

impl std::fmt::Display for TransportFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TransportFault::Bind => "bind",
            TransportFault::Accept => "accept",
            TransportFault::Connect => "connect",
            TransportFault::Spawn => "spawn",
            TransportFault::Handshake => "handshake",
            TransportFault::Send => "send",
            TransportFault::Recv => "recv",
            TransportFault::Reap => "reap",
        };
        write!(f, "{name}")
    }
}

/// FNV-1a 64 over the concatenation of the given chunks — the same
/// construction (and constants) as the [`crate::wire`] frame checksum.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Encodes one frame into a fresh buffer.
pub(crate) fn encode_frame(kind: u32, json: &[u8], bin: &[u8]) -> Vec<u8> {
    let mut head = [0u8; HEADER_LEN - 8];
    head[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    head[4..8].copy_from_slice(&kind.to_le_bytes());
    head[8..12].copy_from_slice(&(json.len() as u32).to_le_bytes());
    head[12..16].copy_from_slice(&(bin.len() as u32).to_le_bytes());
    let sum = fnv1a(&[&head, json]);
    let mut out = Vec::with_capacity(HEADER_LEN + json.len() + bin.len());
    out.extend_from_slice(&head);
    out.extend_from_slice(&sum.to_le_bytes());
    out.extend_from_slice(json);
    out.extend_from_slice(bin);
    out
}

/// Reads exactly one section of `len` bytes, growing the buffer only
/// as bytes actually arrive (a lying length prefix on a truncated
/// stream allocates no more than the stream delivers).
fn read_section<R: Read>(r: &mut R, len: u32) -> Result<Vec<u8>, TransportError> {
    if len > MAX_SECTION {
        return Err(TransportError::Oversize);
    }
    let mut buf = Vec::new();
    let got = r.take(len as u64).read_to_end(&mut buf).map_err(|e| TransportError::Io(e.kind()))?;
    if got < len as usize {
        return Err(TransportError::Truncated);
    }
    Ok(buf)
}

/// One decoded frame: `(kind, json section, bin section)`.
pub(crate) type RawFrame = (u32, Vec<u8>, Vec<u8>);

/// Reads one frame from the stream. `Ok(None)` is a clean end of
/// stream at a frame boundary (the peer closed); any mid-frame end is
/// [`TransportError::Truncated`]. Never reads past the declared
/// (capped) section lengths.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> Result<Option<RawFrame>, TransportError> {
    let mut head = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let n = match r.read(&mut head[filled..]) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TransportError::Io(e.kind())),
        };
        if n == 0 {
            return if filled == 0 { Ok(None) } else { Err(TransportError::Truncated) };
        }
        filled += n;
    }
    let word = |i: usize| u32::from_le_bytes([head[i], head[i + 1], head[i + 2], head[i + 3]]);
    if word(0) != MAGIC {
        return Err(TransportError::BadMagic);
    }
    let kind = word(4);
    let json_len = word(8);
    let bin_len = word(12);
    let sum = u64::from_le_bytes([
        head[16], head[17], head[18], head[19], head[20], head[21], head[22], head[23],
    ]);
    let json = read_section(r, json_len)?;
    if fnv1a(&[&head[..16], &json]) != sum {
        return Err(TransportError::Checksum);
    }
    let bin = read_section(r, bin_len)?;
    Ok(Some((kind, json, bin)))
}

/// Writes one frame and flushes.
fn write_frame<W: Write>(
    w: &mut W,
    kind: u32,
    json: &[u8],
    bin: &[u8],
) -> Result<(), TransportError> {
    let buf = encode_frame(kind, json, bin);
    w.write_all(&buf).map_err(|e| TransportError::Io(e.kind()))?;
    w.flush().map_err(|e| TransportError::Io(e.kind()))
}

// ───────────────────────── control messages ─────────────────────────

#[derive(Serialize, Deserialize)]
struct HelloCtl {
    worker: usize,
}

/// Run configuration shipped to a freshly connected worker. The task
/// itself travels as the frame's opaque binary blob; the worker's
/// spawner decides how to turn it back into an [`ImageTask`].
#[derive(Serialize, Deserialize)]
struct SetupCtl {
    seed: u64,
    local: LocalTrainConfig,
    chaos: ChaosOptions,
    link: LinkCodecs,
    compressed: bool,
    delay_ms_per_vsec: u64,
}

#[derive(Serialize, Deserialize)]
struct DispatchCtl {
    round: usize,
    lost: bool,
    /// Architecture template for the dispatched frame; absent exactly
    /// when `lost` (a dropped downlink carries no payload).
    template: Option<Sequential>,
}

#[derive(Serialize, Deserialize)]
struct RoundCtl {
    round: usize,
}

#[derive(Serialize, Deserialize)]
struct UplinkCtl {
    worker: usize,
    round: usize,
    /// Present on first uploads (`UP_MODEL`); retransmits and markers
    /// carry none.
    outcome: Option<LocalOutcome>,
}

fn to_json<T: Serialize>(v: &T) -> Result<Vec<u8>, TransportError> {
    serde_json::to_vec(v).map_err(|_| TransportError::Malformed)
}

fn from_json<T: Deserialize>(bytes: &[u8]) -> Result<T, TransportError> {
    serde_json::from_slice(bytes).map_err(|_| TransportError::Malformed)
}

// ───────────────────────── connection helpers ─────────────────────────

/// Connects to the PS socket with bounded retries on the shared
/// exponential [`backoff`] schedule (the PS may not have bound yet
/// when a freshly spawned node starts).
pub fn connect_with_retry(
    path: &Path,
    attempts: u32,
    base: Duration,
) -> Result<UnixStream, TransportError> {
    let attempts = attempts.max(1);
    let mut last = std::io::ErrorKind::NotFound;
    for attempt in 1..=attempts {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.kind(),
        }
        if attempt < attempts {
            std::thread::sleep(backoff(base, attempt));
        }
    }
    Err(TransportError::Io(last))
}

/// Accepts one connection from a non-blocking listener with bounded
/// retries on the shared [`backoff`] schedule.
fn accept_with_retry(
    listener: &UnixListener,
    attempts: u32,
    base: Duration,
) -> Result<UnixStream, TransportError> {
    let attempts = attempts.max(1);
    let mut last = std::io::ErrorKind::WouldBlock;
    for attempt in 1..=attempts {
        match listener.accept() {
            Ok((stream, _)) => {
                // The accepted stream may inherit the listener's
                // non-blocking mode; frame I/O wants blocking.
                stream.set_nonblocking(false).map_err(|e| TransportError::Io(e.kind()))?;
                return Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => last = e.kind(),
        }
        if attempt < attempts {
            std::thread::sleep(backoff(base, attempt));
        }
    }
    Err(TransportError::Io(last))
}

static SOCKET_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A socket path unique to this process and call site, under the
/// system temporary directory — collision-free across concurrent test
/// processes and repeated runs in one process.
pub fn unique_socket_path(tag: &str) -> PathBuf {
    let n = SOCKET_COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("fedmp-{tag}-{}-{n}.sock", std::process::id()))
}

// ───────────────────────── worker side ─────────────────────────

/// How a worker node's serving loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// The PS sent `Shutdown`: the run completed.
    Shutdown,
    /// The chaos plan crashed this worker: the connection was closed
    /// without a word (the PS reads a reset and respawns the node).
    Crashed,
    /// The PS end went away without a `Shutdown` — teardown race or PS
    /// failure; the worker exits quietly either way.
    HungUp,
}

/// Runs one worker node: connect, handshake, then serve the
/// worker protocol over the socket until shutdown, crash or
/// hang-up. `build_task` turns the Setup frame's opaque blob back into
/// the training task — the node binary parses an `ExperimentSpec`,
/// in-process test nodes just clone a shared task and ignore the blob.
pub fn serve_worker<F>(
    socket: &Path,
    worker: usize,
    connect_attempts: u32,
    connect_backoff: Duration,
    build_task: F,
) -> Result<Served, TransportError>
where
    F: FnOnce(&[u8]) -> Option<ImageTask>,
{
    let mut stream = connect_with_retry(socket, connect_attempts, connect_backoff)?;
    write_frame(&mut stream, kind::HELLO, &to_json(&HelloCtl { worker })?, &[])?;
    let (k, json, blob) = match read_frame(&mut stream)? {
        Some(f) => f,
        None => return Ok(Served::HungUp),
    };
    if k != kind::SETUP {
        return Err(TransportError::Malformed);
    }
    let setup: SetupCtl = from_json(&json)?;
    let task = match build_task(&blob) {
        Some(t) => t,
        None => return Err(TransportError::Malformed),
    };
    let plan = crate::chaos::ChaosPlan::new(setup.seed, &setup.chaos);
    let mut proto = WorkerProtocol::new(
        worker,
        &task,
        setup.local,
        setup.seed,
        plan,
        setup.link,
        setup.compressed,
    );
    loop {
        let (k, json, bin) = match read_frame(&mut stream)? {
            Some(f) => f,
            None => return Ok(Served::HungUp),
        };
        let step = match k {
            kind::DISPATCH => {
                let ctl: DispatchCtl = from_json(&json)?;
                // Delay draws become a real (bounded) sleep so the
                // wall-clock arrival genuinely lags — the virtual-clock
                // penalty is applied PS-side from the same draw.
                if setup.delay_ms_per_vsec > 0 {
                    let d = plan.draw(ctl.round, worker);
                    if d.delay_secs > 0.0 && !d.crash {
                        let ms = (d.delay_secs * setup.delay_ms_per_vsec as f64).min(200.0) as u64;
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                proto.on_dispatch(ctl.round, Bytes::from(bin), ctl.template, ctl.lost)
            }
            kind::RETRANSMIT => {
                let ctl: RoundCtl = from_json(&json)?;
                proto.on_retransmit(ctl.round)
            }
            kind::SHUTDOWN => return Ok(Served::Shutdown),
            _ => return Err(TransportError::Malformed),
        };
        match step {
            WorkerStep::Crash(_) => {
                // A socket crash is a close without a word: drop the
                // stream so the PS reader sees a reset.
                return Ok(Served::Crashed);
            }
            WorkerStep::Reply(msg) => {
                if write_uplink(&mut stream, &msg).is_err() {
                    // The PS already tore the run down; exit quietly,
                    // mirroring `send_uplink` channel semantics.
                    return Ok(Served::HungUp);
                }
            }
        }
    }
}

/// Serialises one [`UplinkMsg`] as a frame. The trained template is
/// *not* shipped: the PS caches the architecture it dispatched and the
/// decoded state overwrites every weight, so only the wire frame and
/// the outcome cross the socket.
fn write_uplink<W: Write>(w: &mut W, msg: &UplinkMsg) -> Result<(), TransportError> {
    let ctl =
        |outcome: Option<LocalOutcome>| UplinkCtl { worker: msg.worker, round: msg.round, outcome };
    match &msg.body {
        UplinkBody::Model { frame, outcome, .. } => {
            write_frame(w, kind::UP_MODEL, &to_json(&ctl(Some(*outcome)))?, frame)
        }
        UplinkBody::Frame { frame } => write_frame(w, kind::UP_FRAME, &to_json(&ctl(None))?, frame),
        UplinkBody::Lost => write_frame(w, kind::UP_LOST, &to_json(&ctl(None))?, &[]),
        UplinkBody::Undecodable => write_frame(w, kind::UP_UNDECODABLE, &to_json(&ctl(None))?, &[]),
        // A crash is realised as a close, never a frame.
        UplinkBody::Crashed => Ok(()),
    }
}

// ───────────────────────── node spawners ─────────────────────────

/// A handle on one live worker node the spawner produced.
pub trait NodeHandle {
    /// Waits for the node to exit, polling on the shared [`backoff`]
    /// schedule; a process node still alive after the attempt budget
    /// is killed outright. Called on respawn and on teardown — every
    /// node is reaped on every exit path.
    fn reap(&mut self, attempts: u32, base: Duration) -> Result<(), TransportError>;
}

/// Launches worker nodes for the socket runtime: real OS processes
/// ([`ProcessNodes`]) or in-process threads ([`ThreadNodes`]).
pub trait NodeSpawner {
    /// The handle type for reaping.
    type Handle: NodeHandle;
    /// Starts the node for `worker`; `generation` counts respawns
    /// (0 for the initial bring-up).
    fn spawn(&mut self, worker: usize, generation: u32) -> Result<Self::Handle, TransportError>;
}

/// Spawns each worker as a real child process: `program` is invoked
/// with `args` plus `--worker <index>`. The `fedmp-node` binary is the
/// intended program; anything speaking the protocol works.
pub struct ProcessNodes {
    /// Executable to launch.
    pub program: PathBuf,
    /// Base arguments (role, socket path, experiment spec, …); the
    /// worker index is appended per spawn.
    pub args: Vec<String>,
}

/// A reapable child process.
pub struct ProcessHandle {
    child: std::process::Child,
}

impl NodeHandle for ProcessHandle {
    fn reap(&mut self, attempts: u32, base: Duration) -> Result<(), TransportError> {
        for attempt in 1..=attempts.max(1) {
            match self.child.try_wait() {
                Ok(Some(_)) => return Ok(()),
                Ok(None) => std::thread::sleep(backoff(base, attempt)),
                Err(e) => return Err(TransportError::Io(e.kind())),
            }
        }
        // Still alive after the budget: kill and reap unconditionally
        // so no child outlives the run.
        let _ = self.child.kill();
        match self.child.wait() {
            Ok(_) => Ok(()),
            Err(e) => Err(TransportError::Io(e.kind())),
        }
    }
}

impl NodeSpawner for ProcessNodes {
    type Handle = ProcessHandle;

    fn spawn(&mut self, worker: usize, _generation: u32) -> Result<Self::Handle, TransportError> {
        std::process::Command::new(&self.program)
            .args(&self.args)
            .arg("--worker")
            .arg(worker.to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .spawn()
            .map(|child| ProcessHandle { child })
            .map_err(|e| TransportError::Io(e.kind()))
    }
}

/// Spawns each worker as an in-process thread running [`serve_worker`]
/// against a shared task — the fast path for tests, exercising the
/// full socket protocol without process startup cost. Threads register
/// in the [`crate::live_worker_threads`] gauge so the leak test covers
/// them.
pub struct ThreadNodes {
    /// The task every node trains on (the Setup blob is ignored).
    pub task: std::sync::Arc<ImageTask>,
    /// PS socket path to connect to.
    pub socket: PathBuf,
    /// Connect retry budget.
    pub connect_attempts: u32,
    /// Base connect retry backoff.
    pub connect_backoff: Duration,
}

/// A reapable node thread.
pub struct ThreadHandle {
    join: Option<std::thread::JoinHandle<()>>,
}

impl NodeHandle for ThreadHandle {
    fn reap(&mut self, attempts: u32, base: Duration) -> Result<(), TransportError> {
        let handle = match self.join.take() {
            Some(h) => h,
            None => return Ok(()),
        };
        // The protocol guarantees exit (Shutdown, crash, or EOF when
        // the PS drops its stream), so polling is a courtesy before a
        // blocking join — there is no thread kill.
        for attempt in 1..=attempts.max(1) {
            if handle.is_finished() {
                break;
            }
            std::thread::sleep(backoff(base, attempt));
        }
        handle.join().map_err(|_| TransportError::Io(std::io::ErrorKind::Other))?;
        Ok(())
    }
}

impl NodeSpawner for ThreadNodes {
    type Handle = ThreadHandle;

    fn spawn(&mut self, worker: usize, _generation: u32) -> Result<Self::Handle, TransportError> {
        let task = std::sync::Arc::clone(&self.task);
        let socket = self.socket.clone();
        let attempts = self.connect_attempts;
        let base = self.connect_backoff;
        let join = std::thread::spawn(move || {
            let _guard = LiveThreadGuard::register();
            let _ = serve_worker(&socket, worker, attempts, base, move |_| Some((*task).clone()));
        });
        Ok(ThreadHandle { join: Some(join) })
    }
}

// ───────────────────────── PS side ─────────────────────────

/// Socket-runtime knobs: where to listen, what task blob to ship, and
/// the retry budgets of every bounded wait.
#[derive(Debug, Clone)]
pub struct SocketRunOptions {
    /// Unix socket path the PS binds (removed on teardown).
    pub socket: PathBuf,
    /// Opaque task payload shipped in the Setup frame; the node's
    /// builder turns it back into a task ([`ThreadNodes`] ignores it).
    pub task_blob: Vec<u8>,
    /// Accept retry budget per expected connection.
    pub accept_attempts: u32,
    /// Base accept retry backoff.
    pub accept_backoff: Duration,
    /// Reap poll budget per node.
    pub reap_attempts: u32,
    /// Base reap poll backoff.
    pub reap_backoff: Duration,
    /// Wall-clock milliseconds a worker sleeps per virtual second of
    /// chaos delay (0 disables real sleeps; the virtual-clock penalty
    /// applies regardless).
    pub delay_ms_per_vsec: u64,
}

impl SocketRunOptions {
    /// Options for `socket` with production-ish retry budgets.
    pub fn new(socket: PathBuf, task_blob: Vec<u8>) -> Self {
        SocketRunOptions {
            socket,
            task_blob,
            accept_attempts: 14,
            accept_backoff: Duration::from_millis(2),
            reap_attempts: 12,
            reap_backoff: Duration::from_millis(2),
            delay_ms_per_vsec: 0,
        }
    }
}

/// What one reader thread forwards to the PS. Generation-tagged so
/// messages from a connection that was already replaced are ignored.
enum ReaderMsg {
    Frame {
        worker: usize,
        generation: u32,
        kind: u32,
        json: Vec<u8>,
        bin: Vec<u8>,
    },
    /// Clean end of stream — the worker closed (crash or exit).
    Gone {
        worker: usize,
        generation: u32,
    },
    /// A framing error on this connection.
    Bad {
        worker: usize,
        generation: u32,
    },
}

/// The socket [`Fleet`]: per-worker write streams plus one dumb reader
/// thread per connection that forwards raw frames over a channel. All
/// parsing and every order-sensitive decision happens on the PS
/// thread, inside the shared recovery core.
struct SocketFleet<'a, S: NodeSpawner> {
    listener: &'a UnixListener,
    opts: &'a SocketRunOptions,
    spawner: &'a mut S,
    seed: u64,
    local: LocalTrainConfig,
    chaos: ChaosOptions,
    plan: crate::chaos::ChaosPlan,
    links: &'a [LinkCodecs],
    compressed: bool,
    streams: Vec<Option<UnixStream>>,
    readers: Vec<Option<std::thread::JoinHandle<()>>>,
    nodes: Vec<Option<S::Handle>>,
    /// Connection generation per worker; bumped on every respawn so
    /// stale reader messages are recognisable.
    gens: Vec<u32>,
    /// The architecture dispatched to each worker this round — the
    /// template its upload is decoded into (weights are fully
    /// overwritten by the decoded state, so the clean pre-training
    /// copy is equivalent to the trained one the channel fleet moves).
    templates: Vec<Option<Sequential>>,
    tx: Sender<ReaderMsg>,
    rx: Receiver<ReaderMsg>,
}

impl<'a, S: NodeSpawner> SocketFleet<'a, S> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: &'a UnixListener,
        opts: &'a SocketRunOptions,
        spawner: &'a mut S,
        seed: u64,
        local: LocalTrainConfig,
        chaos: ChaosOptions,
        plan: crate::chaos::ChaosPlan,
        links: &'a [LinkCodecs],
        compressed: bool,
    ) -> Self {
        let workers = links.len();
        // Readers block on a full channel until the PS drains it in the
        // collection barrier; the capacity only bounds buffering.
        let (tx, rx) = bounded(workers.max(1) * 4);
        SocketFleet {
            listener,
            opts,
            spawner,
            seed,
            local,
            chaos,
            plan,
            links,
            compressed,
            streams: (0..workers).map(|_| None).collect(),
            readers: (0..workers).map(|_| None).collect(),
            nodes: (0..workers).map(|_| None).collect(),
            gens: vec![0; workers],
            templates: (0..workers).map(|_| None).collect(),
            tx,
            rx,
        }
    }

    fn fault(&self, worker: usize, fault: TransportFault) -> RuntimeError {
        RuntimeError::Transport { worker, fault }
    }

    /// Sends the Setup frame for `worker` over its stream.
    fn send_setup(&mut self, worker: usize) -> Result<(), TransportError> {
        let ctl = SetupCtl {
            seed: self.seed,
            local: self.local,
            chaos: self.chaos,
            link: self.links[worker],
            compressed: self.compressed,
            delay_ms_per_vsec: self.opts.delay_ms_per_vsec,
        };
        let json = to_json(&ctl)?;
        let blob = self.opts.task_blob.clone();
        match self.streams[worker].as_mut() {
            Some(s) => write_frame(s, kind::SETUP, &json, &blob),
            None => Err(TransportError::Io(std::io::ErrorKind::NotConnected)),
        }
    }

    /// Spawns the reader thread for `worker`'s current connection.
    fn spawn_reader(&mut self, worker: usize) -> Result<(), TransportError> {
        let stream = match self.streams[worker].as_ref() {
            Some(s) => s.try_clone().map_err(|e| TransportError::Io(e.kind()))?,
            None => return Err(TransportError::Io(std::io::ErrorKind::NotConnected)),
        };
        let tx = self.tx.clone();
        let generation = self.gens[worker];
        let join = std::thread::spawn(move || {
            let _guard = LiveThreadGuard::register();
            let mut stream = stream;
            loop {
                match read_frame(&mut stream) {
                    Ok(Some((kind, json, bin))) => {
                        if tx
                            .send(ReaderMsg::Frame { worker, generation, kind, json, bin })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Ok(None) => {
                        let _ = tx.send(ReaderMsg::Gone { worker, generation });
                        break;
                    }
                    Err(_) => {
                        let _ = tx.send(ReaderMsg::Bad { worker, generation });
                        break;
                    }
                }
            }
        });
        self.readers[worker] = Some(join);
        Ok(())
    }

    /// Accepts one pending connection and returns the Hello it opens
    /// with.
    fn accept_hello(&mut self) -> Result<(UnixStream, usize), TransportError> {
        let mut stream =
            accept_with_retry(self.listener, self.opts.accept_attempts, self.opts.accept_backoff)?;
        match read_frame(&mut stream)? {
            Some((k, json, _)) if k == kind::HELLO => {
                let hello: HelloCtl = from_json(&json)?;
                Ok((stream, hello.worker))
            }
            _ => Err(TransportError::Malformed),
        }
    }

    /// Initial bring-up: spawn all nodes, accept all connections
    /// (order is arbitrary; Hellos identify workers), ship Setups and
    /// start readers. Emits no trace events — a chaos-off socket trace
    /// must be byte-identical to the loop engine's.
    fn bring_up(&mut self) -> Result<(), RuntimeError> {
        let workers = self.links.len();
        for w in 0..workers {
            let node =
                self.spawner.spawn(w, 0).map_err(|_| self.fault(w, TransportFault::Spawn))?;
            self.nodes[w] = Some(node);
        }
        for _ in 0..workers {
            let (stream, w) =
                self.accept_hello().map_err(|_| self.fault(0, TransportFault::Accept))?;
            if w >= workers || self.streams[w].is_some() {
                return Err(self.fault(w.min(workers.saturating_sub(1)), TransportFault::Handshake));
            }
            self.streams[w] = Some(stream);
        }
        for w in 0..workers {
            self.send_setup(w).map_err(|_| self.fault(w, TransportFault::Handshake))?;
            self.spawn_reader(w).map_err(|_| self.fault(w, TransportFault::Handshake))?;
        }
        Ok(())
    }

    /// Tears the whole fleet down: best-effort Shutdown to every live
    /// worker, close every stream, reap every node, join every reader.
    /// Runs on every exit path; returns the first failure but never
    /// stops early — every socket is closed and every child reaped
    /// regardless.
    fn teardown(&mut self) -> Result<(), RuntimeError> {
        let mut first: Option<RuntimeError> = None;
        for w in 0..self.streams.len() {
            if let Some(mut s) = self.streams[w].take() {
                let _ = write_frame(&mut s, kind::SHUTDOWN, b"{}", &[]);
                // Dropping `s` closes the PS's write half; the worker
                // exits on Shutdown (or EOF), which in turn EOFs the
                // reader's clone.
            }
        }
        for w in 0..self.nodes.len() {
            if let Some(mut node) = self.nodes[w].take() {
                if node.reap(self.opts.reap_attempts, self.opts.reap_backoff).is_err() {
                    first.get_or_insert(self.fault(w, TransportFault::Reap));
                }
            }
        }
        for w in 0..self.readers.len() {
            if let Some(join) = self.readers[w].take() {
                if join.join().is_err() {
                    first.get_or_insert(self.fault(w, TransportFault::Recv));
                }
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<S: NodeSpawner> Fleet for SocketFleet<'_, S> {
    fn respawn(&mut self, round: usize, worker: usize) -> Result<(), RuntimeError> {
        self.gens[worker] += 1;
        let generation = self.gens[worker];
        emit_node_respawned(round, worker, generation);
        // Old connection first: close our half, reap the dead node,
        // join its reader (EOF is guaranteed once both halves drop).
        self.streams[worker] = None;
        if let Some(mut node) = self.nodes[worker].take() {
            node.reap(self.opts.reap_attempts, self.opts.reap_backoff)
                .map_err(|_| self.fault(worker, TransportFault::Reap))?;
        }
        if let Some(join) = self.readers[worker].take() {
            join.join().map_err(|_| self.fault(worker, TransportFault::Recv))?;
        }
        let node = self
            .spawner
            .spawn(worker, generation)
            .map_err(|_| self.fault(worker, TransportFault::Spawn))?;
        self.nodes[worker] = Some(node);
        // Only the respawned node is connecting, so the next Hello is
        // its — `attempts` below counts accepted connections consumed
        // until the matching Hello (deterministically 1), not poll
        // iterations, which vary with host timing.
        let (stream, w) =
            self.accept_hello().map_err(|_| self.fault(worker, TransportFault::Accept))?;
        if w != worker {
            return Err(self.fault(worker, TransportFault::Handshake));
        }
        self.streams[worker] = Some(stream);
        self.send_setup(worker).map_err(|_| self.fault(worker, TransportFault::Handshake))?;
        self.spawn_reader(worker).map_err(|_| self.fault(worker, TransportFault::Handshake))?;
        emit_conn_established(round, worker, 1);
        Ok(())
    }

    fn dispatch(
        &mut self,
        round: usize,
        worker: usize,
        frame: Bytes,
        template: Sequential,
        lost: bool,
    ) -> Result<(), RuntimeError> {
        let ctl = DispatchCtl {
            round,
            lost,
            // A lost downlink is a payload-free marker: the bytes never
            // cross the wire, only the fact of the loss does, keeping
            // the protocol lock-step without wall-clock timeouts.
            template: if lost { None } else { Some(template.clone()) },
        };
        self.templates[worker] = Some(template);
        let json = to_json(&ctl).map_err(|_| self.fault(worker, TransportFault::Send))?;
        let bin: &[u8] = if lost { &[] } else { &frame };
        match self.streams[worker].as_mut() {
            Some(s) => write_frame(s, kind::DISPATCH, &json, bin)
                .map_err(|_| RuntimeError::Transport { worker, fault: TransportFault::Send }),
            None => Err(self.fault(worker, TransportFault::Send)),
        }
    }

    fn retransmit(&mut self, round: usize, worker: usize) -> Result<(), RuntimeError> {
        let json =
            to_json(&RoundCtl { round }).map_err(|_| self.fault(worker, TransportFault::Send))?;
        match self.streams[worker].as_mut() {
            Some(s) => write_frame(s, kind::RETRANSMIT, &json, &[])
                .map_err(|_| RuntimeError::Transport { worker, fault: TransportFault::Send }),
            None => Err(self.fault(worker, TransportFault::Send)),
        }
    }

    fn recv(&mut self, round: usize) -> Result<UplinkMsg, RuntimeError> {
        loop {
            let msg = self.rx.recv().map_err(|_| self.fault(0, TransportFault::Recv))?;
            match msg {
                ReaderMsg::Frame { worker, generation, kind: k, json, bin } => {
                    if generation != self.gens[worker] {
                        continue; // stale connection
                    }
                    let ctl: UplinkCtl =
                        from_json(&json).map_err(|_| self.fault(worker, TransportFault::Recv))?;
                    let body = match k {
                        kind::UP_MODEL => {
                            let outcome =
                                ctl.outcome.ok_or(self.fault(worker, TransportFault::Recv))?;
                            let template = self.templates[worker]
                                .clone()
                                .ok_or(self.fault(worker, TransportFault::Recv))?;
                            UplinkBody::Model { frame: Bytes::from(bin), template, outcome }
                        }
                        kind::UP_FRAME => UplinkBody::Frame { frame: Bytes::from(bin) },
                        kind::UP_LOST => UplinkBody::Lost,
                        kind::UP_UNDECODABLE => UplinkBody::Undecodable,
                        _ => return Err(self.fault(worker, TransportFault::Recv)),
                    };
                    return Ok(UplinkMsg { worker: ctl.worker, round: ctl.round, body });
                }
                ReaderMsg::Gone { worker, generation } => {
                    if generation != self.gens[worker] {
                        continue;
                    }
                    // Closed without a word. Under the chaos plan this
                    // is exactly how a crash manifests; outside it, a
                    // node vanished in violation of the protocol.
                    self.streams[worker] = None;
                    if self.plan.draw(round, worker).crash {
                        return Ok(UplinkMsg { worker, round, body: UplinkBody::Crashed });
                    }
                    return Err(RuntimeError::WorkerLost { worker });
                }
                ReaderMsg::Bad { worker, generation } => {
                    if generation != self.gens[worker] {
                        continue;
                    }
                    return Err(self.fault(worker, TransportFault::Recv));
                }
            }
        }
    }

    fn note_excluded(&mut self, round: usize, worker: usize, reason: &str) {
        match reason {
            // A dropped exchange surfaced as a frame that never
            // arrived; direction from the same draw both ends used.
            "dropped" => {
                let d = self.plan.draw(round, worker);
                emit_frame_timeout(round, worker, if d.drop_down { "down" } else { "up" });
            }
            // A crashed worker surfaced as a connection reset.
            "crashed" => emit_conn_reset(round, worker),
            // Corruption and deadline exclusions are application-level
            // outcomes with their own events; nothing transport-level
            // to add.
            _ => {}
        }
    }
}

/// Runs FedMP over real Unix-domain sockets: the PS in this process,
/// one node per worker from `spawner` (threads or real child
/// processes), the recovery policy of [`crate::run_fedmp_threaded_chaos`]
/// verbatim, and the chaos plan realised as packet-level faults.
///
/// With `chaos` off the history **and trace stream** are bit-identical
/// to [`crate::run_fedmp`] under the same options; under seeded chaos,
/// runs are bit-identical to each other. On every exit path — success
/// or typed error — every socket is closed, every node reaped and
/// every reader joined, and the socket file is removed.
///
/// # Errors
/// [`RuntimeError::Transport`] on terminal socket/process failures;
/// [`RuntimeError::CorruptFrame`]/[`RuntimeError::WorkerLost`] exactly
/// as in the channel runtime.
pub fn run_fedmp_sockets<S: NodeSpawner>(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    global: Sequential,
    opts: &FedMpOptions,
    chaos: &ChaosOptions,
    sock: &SocketRunOptions,
    spawner: &mut S,
) -> Result<RunHistory, RuntimeError> {
    let workers = setup.workers();
    // A stale socket file from a crashed previous run would make bind
    // fail; removing a path nothing listens on is safe.
    let _ = std::fs::remove_file(&sock.socket);
    let listener = match UnixListener::bind(&sock.socket) {
        Ok(l) => l,
        Err(_) => return Err(RuntimeError::Transport { worker: 0, fault: TransportFault::Bind }),
    };
    let result = (|| -> Result<RunHistory, RuntimeError> {
        listener
            .set_nonblocking(true)
            .map_err(|_| RuntimeError::Transport { worker: 0, fault: TransportFault::Bind })?;
        let plan = crate::chaos::ChaosPlan::new(cfg.seed, chaos);
        let compression = opts.compression;
        let compressed = !compression.is_dense();
        let links: Vec<LinkCodecs> =
            (0..workers).map(|w| compression.select(&setup.devices[w])).collect();
        let mut fleet = SocketFleet::new(
            &listener, sock, spawner, cfg.seed, cfg.local, *chaos, plan, &links, compressed,
        );
        let run = fleet
            .bring_up()
            .and_then(|_| run_recovery_rounds(cfg, setup, global, opts, chaos, &mut fleet));
        // Teardown runs on BOTH exit paths; a run error outranks a
        // teardown error.
        let td = fleet.teardown();
        match run {
            Ok(history) => td.map(|_| history),
            Err(e) => Err(e),
        }
    })();
    let _ = std::fs::remove_file(&sock.socket);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn roundtrip(kind_: u32, json: &[u8], bin: &[u8]) -> (u32, Vec<u8>, Vec<u8>) {
        let buf = encode_frame(kind_, json, bin);
        let mut cur = Cursor::new(buf);
        read_frame(&mut cur).expect("frame decodes").expect("frame present")
    }

    #[test]
    fn frames_round_trip_every_kind() {
        for k in [
            kind::HELLO,
            kind::SETUP,
            kind::DISPATCH,
            kind::RETRANSMIT,
            kind::SHUTDOWN,
            kind::UP_MODEL,
            kind::UP_FRAME,
            kind::UP_LOST,
            kind::UP_UNDECODABLE,
        ] {
            let json = format!("{{\"kind\":{k}}}").into_bytes();
            let bin = vec![k as u8; (k as usize) * 7];
            let (gk, gj, gb) = roundtrip(k, &json, &bin);
            assert_eq!(gk, k);
            assert_eq!(gj, json);
            assert_eq!(gb, bin);
        }
    }

    #[test]
    fn empty_stream_is_a_clean_end() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut cur).expect("clean end"), None);
    }

    #[test]
    fn two_frames_back_to_back_both_decode() {
        let mut buf = encode_frame(kind::HELLO, b"{\"worker\":3}", &[]);
        buf.extend_from_slice(&encode_frame(kind::UP_LOST, b"{}", b"tail"));
        let mut cur = Cursor::new(buf);
        let (k1, _, _) = read_frame(&mut cur).expect("ok").expect("first");
        let (k2, _, b2) = read_frame(&mut cur).expect("ok").expect("second");
        assert_eq!((k1, k2), (kind::HELLO, kind::UP_LOST));
        assert_eq!(b2, b"tail");
        assert_eq!(read_frame(&mut cur).expect("clean end"), None);
    }

    #[test]
    fn oversize_length_prefix_is_rejected_before_reading() {
        let mut buf = encode_frame(kind::HELLO, b"{}", &[]);
        // Lie: json_len far beyond the cap.
        buf[8..12].copy_from_slice(&(MAX_SECTION + 1).to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur), Err(TransportError::Oversize));
    }

    #[test]
    fn lying_length_prefix_on_a_short_stream_truncates_not_hangs() {
        let mut buf = encode_frame(kind::HELLO, b"{\"worker\":0}", b"abc");
        // Claim more binary bytes than the stream carries.
        buf[12..16].copy_from_slice(&1000u32.to_le_bytes());
        // Checksum excludes bin_len... no — bin_len is in the summed
        // header, so fix the checksum to isolate the truncation path.
        let head16 = buf[..16].to_vec();
        let json = b"{\"worker\":0}";
        let sum = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in head16.iter().chain(json.iter()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        buf[16..24].copy_from_slice(&sum.to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur), Err(TransportError::Truncated));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = encode_frame(kind::HELLO, b"{}", &[]);
        buf[0] ^= 0xFF;
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur), Err(TransportError::BadMagic));
    }

    #[test]
    fn corrupting_the_binary_section_passes_framing() {
        // The framing checksum deliberately excludes the binary
        // payload: that is the application wire frame, whose own
        // checksum drives the retransmit path.
        let mut buf = encode_frame(kind::UP_MODEL, b"{\"worker\":1}", b"model-bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let mut cur = Cursor::new(buf);
        let (_, _, bin) = read_frame(&mut cur).expect("ok").expect("frame");
        assert_ne!(bin, b"model-bytes");
    }

    #[test]
    fn connect_with_retry_fails_typed_on_a_dead_path() {
        let path = unique_socket_path("noone");
        let err = connect_with_retry(&path, 2, Duration::from_millis(1));
        assert!(matches!(err, Err(TransportError::Io(_))));
    }

    #[test]
    fn unique_socket_paths_are_unique() {
        assert_ne!(unique_socket_path("a"), unique_socket_path("a"));
    }

    /// `0usize..256` cast down, so every byte value (255 included) is
    /// reachable with the stand-in's range strategies.
    fn to_bytes(raw: &[usize]) -> Vec<u8> {
        raw.iter().map(|&b| b as u8).collect()
    }

    proptest! {
        /// Arbitrary byte soup never panics the decoder and never
        /// yields anything but a typed result.
        #[test]
        fn arbitrary_bytes_decode_to_typed_results(
            raw in proptest::collection::vec(0usize..256, 0..2048),
        ) {
            let mut cur = Cursor::new(to_bytes(&raw));
            let _ = read_frame(&mut cur);
        }

        /// Truncating a valid frame anywhere strictly inside it yields
        /// `Truncated` (or a checksum error if the cut changed a
        /// length's meaning) — never a success, never a panic.
        #[test]
        fn truncation_never_decodes(
            json in proptest::collection::vec(0usize..256, 0..128),
            bin in proptest::collection::vec(0usize..256, 0..128),
            frac in 0.0f64..1.0,
        ) {
            let buf = encode_frame(kind::DISPATCH, &to_bytes(&json), &to_bytes(&bin));
            let cut = (((buf.len() as f64) * frac) as usize).min(buf.len() - 1);
            let mut cur = Cursor::new(buf[..cut].to_vec());
            match read_frame(&mut cur) {
                Ok(None) => prop_assert_eq!(cut, 0),
                Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
                Err(_) => {}
            }
        }

        /// Flipping any single bit of the header or JSON section is
        /// always detected (magic, caps or checksum); the frame never
        /// decodes to different content silently.
        #[test]
        fn header_and_json_bitflips_are_detected(
            json in proptest::collection::vec(0usize..256, 1..96),
            bin in proptest::collection::vec(0usize..256, 0..32),
            byte_idx in 0usize..1024,
            bit in 0u8..8,
        ) {
            let buf = encode_frame(kind::UP_MODEL, &to_bytes(&json), &to_bytes(&bin));
            let guarded = HEADER_LEN + json.len();
            let idx = byte_idx % guarded;
            let mut bad = buf.clone();
            bad[idx] ^= 1 << bit;
            let mut cur = Cursor::new(bad);
            match read_frame(&mut cur) {
                // A flip in a length field can only shrink/grow reads,
                // which the checksum (or caps/EOF) catches.
                Ok(Some(_)) => prop_assert!(false, "bit-flipped frame decoded"),
                Ok(None) => prop_assert!(false, "bit-flipped frame read as clean end"),
                Err(_) => {}
            }
        }

        /// The decoder never over-reads: after a successful decode the
        /// cursor sits exactly at the end of the frame.
        #[test]
        fn decoder_consumes_exactly_one_frame(
            json in proptest::collection::vec(0usize..256, 0..96),
            bin in proptest::collection::vec(0usize..256, 0..96),
            tail in proptest::collection::vec(0usize..256, 0..64),
        ) {
            let json = to_bytes(&json);
            let bin = to_bytes(&bin);
            let frame = encode_frame(kind::SETUP, &json, &bin);
            let frame_len = frame.len() as u64;
            let mut buf = frame;
            buf.extend_from_slice(&to_bytes(&tail));
            let mut cur = Cursor::new(buf);
            let (_, gj, gb) = read_frame(&mut cur).expect("ok").expect("frame");
            prop_assert_eq!(gj, json);
            prop_assert_eq!(gb, bin);
            prop_assert_eq!(cur.position(), frame_len);
        }
    }
}
