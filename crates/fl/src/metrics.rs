//! Per-run resource accounting: aggregate virtual-time, data-volume and
//! compute totals derived from a [`RunHistory`] — the numbers a
//! deployment report would quote next to accuracy.

use crate::history::RunHistory;
use serde::{Deserialize, Serialize};

/// Aggregate resource totals of one training run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ResourceTotals {
    /// Total virtual wall time (s).
    pub wall_secs: f64,
    /// Summed per-worker computation time (s·workers).
    pub compute_secs: f64,
    /// Summed per-worker communication time (s·workers).
    pub comm_secs: f64,
    /// Summed barrier idle time (s·workers): round barrier minus each
    /// worker's busy time, accumulated over rounds.
    pub idle_secs: f64,
    /// Aggregation rounds executed.
    pub rounds: usize,
}

impl ResourceTotals {
    /// Fraction of fleet-seconds spent productive (compute + comm).
    pub fn utilisation(&self) -> f64 {
        let busy = self.compute_secs + self.comm_secs;
        let total = busy + self.idle_secs;
        if total <= 0.0 {
            0.0
        } else {
            busy / total
        }
    }
}

/// Computes resource totals for a run over `workers` devices.
///
/// Idle time is estimated per round as
/// `workers × (round_time − mean_comp − mean_comm)` — exact when worker
/// times are symmetric, a lower bound otherwise.
pub fn resource_totals(history: &RunHistory, workers: usize) -> ResourceTotals {
    let n = workers as f64;
    let mut t = ResourceTotals { rounds: history.rounds.len(), ..Default::default() };
    for r in &history.rounds {
        t.wall_secs += r.round_time;
        t.compute_secs += n * r.mean_comp;
        t.comm_secs += n * r.mean_comm;
        t.idle_secs += n * (r.round_time - r.mean_comp - r.mean_comm).max(0.0);
    }
    t
}

/// Compares two runs: the resource multipliers of `a` relative to `b`
/// (`< 1` means `a` is cheaper).
pub fn relative_cost(a: &ResourceTotals, b: &ResourceTotals) -> (f64, f64, f64) {
    let ratio = |x: f64, y: f64| if y > 0.0 { x / y } else { f64::NAN };
    (
        ratio(a.wall_secs, b.wall_secs),
        ratio(a.compute_secs, b.compute_secs),
        ratio(a.comm_secs, b.comm_secs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RoundRecord;

    fn history(rounds: usize, round_time: f64, comp: f64, comm: f64) -> RunHistory {
        let mut h = RunHistory::new("test");
        for i in 0..rounds {
            h.rounds.push(RoundRecord {
                round: i,
                sim_time: round_time * (i + 1) as f64,
                round_time,
                mean_comp: comp,
                mean_comm: comm,
                train_loss: 0.0,
                eval: None,
                ..Default::default()
            });
        }
        h
    }

    #[test]
    fn totals_accumulate_linearly() {
        let h = history(10, 5.0, 2.0, 1.0);
        let t = resource_totals(&h, 4);
        assert_eq!(t.rounds, 10);
        assert!((t.wall_secs - 50.0).abs() < 1e-9);
        assert!((t.compute_secs - 4.0 * 2.0 * 10.0).abs() < 1e-9);
        assert!((t.comm_secs - 4.0 * 1.0 * 10.0).abs() < 1e-9);
        assert!((t.idle_secs - 4.0 * 2.0 * 10.0).abs() < 1e-9);
        // busy 120, idle 80 → utilisation 0.6
        assert!((t.utilisation() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn relative_cost_ratios() {
        let a = resource_totals(&history(10, 2.0, 1.0, 0.5), 2);
        let b = resource_totals(&history(10, 4.0, 2.0, 1.0), 2);
        let (wall, comp, comm) = relative_cost(&a, &b);
        assert!((wall - 0.5).abs() < 1e-9);
        assert!((comp - 0.5).abs() < 1e-9);
        assert!((comm - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_history_is_zero() {
        let t = resource_totals(&RunHistory::new("empty"), 8);
        assert_eq!(t.rounds, 0);
        assert_eq!(t.utilisation(), 0.0);
    }
}
