//! Global aggregation (`③` of Fig. 1): R2SP, BSP, and plain FedAvg.

use fedmp_nn::{state_add, state_scale, StateEntry};
use fedmp_tensor::{ExactSum, Tensor};

/// Plain FedAvg over full-model snapshots: the elementwise mean.
///
/// Each scalar position is summed through a [`ExactSum`] fixed-point
/// superaccumulator, so the sum is *exact* (one rounding at the end,
/// then one multiply by `1/n`). This makes the mean permutation- and
/// grouping-invariant: partitioning the same snapshots into shards and
/// merging partial accumulators — as the hierarchical aggregation layer
/// in `fl::hierarchy` does — produces bit-identical results to this
/// flat call, for every partition.
pub fn average_states(states: &[Vec<StateEntry>]) -> Vec<StateEntry> {
    assert!(!states.is_empty(), "average of zero states");
    let inv = 1.0 / states.len() as f32;
    let template = &states[0];
    for s in states {
        assert_eq!(s.len(), template.len(), "average_states: entry count mismatch");
    }
    template
        .iter()
        .enumerate()
        .map(|(j, e)| {
            let n = e.tensor.numel();
            let mut accs = vec![ExactSum::new(); n];
            for s in states {
                let entry = &s[j];
                assert_eq!(entry.name, e.name, "average_states: entry name mismatch");
                let data = entry.tensor.data();
                assert_eq!(data.len(), n, "average_states: entry shape mismatch");
                for (acc, &x) in accs.iter_mut().zip(data) {
                    acc.add(x);
                }
            }
            let vals: Vec<f32> = accs.iter().map(|a| a.value() * inv).collect();
            StateEntry {
                name: e.name.clone(),
                tensor: Tensor::from_vec(vals, e.tensor.dims())
                    .expect("average_states: tensor rebuild with original shape"),
                trainable: e.trainable,
            }
        })
        .collect()
}

/// R2SP (paper §III-C, Eq. 2): each worker's recovered sub-model is
/// completed with its residual model before averaging, so every pruned
/// parameter re-enters the global model with its pre-round value.
///
/// `recovered[n]` must be the full-shape recovery of worker n's trained
/// sub-model and `residuals[n] = global − sparseₙ` from the same round.
pub fn r2sp_aggregate(
    recovered: &[Vec<StateEntry>],
    residuals: &[Vec<StateEntry>],
) -> Vec<StateEntry> {
    assert_eq!(recovered.len(), residuals.len(), "r2sp: worker count mismatch");
    assert!(!recovered.is_empty(), "r2sp: no workers");
    let completed: Vec<Vec<StateEntry>> =
        recovered.iter().zip(residuals.iter()).map(|(r, q)| state_add(r, q)).collect();
    average_states(&completed)
}

/// Traditional BSP over heterogeneous sub-models: the recovered models
/// are averaged **without** residual completion, so positions a worker
/// pruned contribute zeros — exactly the degradation Fig. 7 shows.
pub fn bsp_aggregate(recovered: &[Vec<StateEntry>]) -> Vec<StateEntry> {
    average_states(recovered)
}

/// R2SP under a quorum: aggregates the delivered recoveries iff at
/// least `quorum` of them arrived, and is then **bit-identical** to
/// [`r2sp_aggregate`] over the same participant set (same inputs, same
/// accumulation order). Below quorum — or with no participants at all —
/// returns `None`, and the caller keeps the previous global model.
pub fn quorum_aggregate(
    recovered: &[Vec<StateEntry>],
    residuals: &[Vec<StateEntry>],
    quorum: usize,
) -> Option<Vec<StateEntry>> {
    if recovered.is_empty() || recovered.len() < quorum {
        return None;
    }
    Some(r2sp_aggregate(recovered, residuals))
}

/// Staleness-tempered mixing for the asynchronous engines:
/// `(1 − β)·global + β·update`.
pub fn mix_states(global: &[StateEntry], update: &[StateEntry], beta: f32) -> Vec<StateEntry> {
    assert!((0.0..=1.0).contains(&beta), "mixing coefficient must be in [0, 1]");
    state_add(&state_scale(global, 1.0 - beta), &state_scale(update, beta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::Tensor;

    fn snap(vals: &[f32]) -> Vec<StateEntry> {
        vec![StateEntry::trainable("w", Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap())]
    }

    #[test]
    fn average_is_elementwise_mean() {
        let avg = average_states(&[snap(&[1.0, 2.0]), snap(&[3.0, 6.0])]);
        assert_eq!(avg[0].tensor.data(), &[2.0, 4.0]);
    }

    #[test]
    fn average_is_permutation_invariant() {
        let a = snap(&[1.0, 5.0]);
        let b = snap(&[2.0, 7.0]);
        let c = snap(&[3.0, 0.0]);
        let x = average_states(&[a.clone(), b.clone(), c.clone()]);
        let y = average_states(&[c, a, b]);
        assert_eq!(x[0].tensor, y[0].tensor);
    }

    #[test]
    fn r2sp_restores_pruned_positions() {
        // Global [4, 8]; worker pruned index 1 (sparse [4, 0], residual
        // [0, 8]) and trained index 0 to 5.
        let recovered = snap(&[5.0, 0.0]);
        let residual = snap(&[0.0, 8.0]);
        let agg = r2sp_aggregate(std::slice::from_ref(&recovered), &[residual]);
        assert_eq!(agg[0].tensor.data(), &[5.0, 8.0]);
        // BSP leaves the pruned position at zero.
        let bsp = bsp_aggregate(&[recovered]);
        assert_eq!(bsp[0].tensor.data(), &[5.0, 0.0]);
    }

    #[test]
    fn mixing_interpolates() {
        let g = snap(&[10.0]);
        let u = snap(&[20.0]);
        assert_eq!(mix_states(&g, &u, 0.25)[0].tensor.data(), &[12.5]);
        assert_eq!(mix_states(&g, &u, 0.0)[0].tensor.data(), &[10.0]);
        assert_eq!(mix_states(&g, &u, 1.0)[0].tensor.data(), &[20.0]);
    }
}
