//! # fedmp-fl
//!
//! The federated-learning engine of the FedMP reproduction: a simulated
//! parameter server and worker fleet running on the `fedmp-edgesim`
//! virtual clock, with every training/synchronisation scheme the paper
//! evaluates:
//!
//! | engine | paper reference |
//! |---|---|
//! | [`run_fedmp`] | FedMP (Fig. 1, §III–§IV): per-worker E-UCB ratios, structured pruning, R2SP |
//! | [`run_synfl`] | Syn-FL baseline \[5\]: full-model FedAvg |
//! | [`run_upfl`] | UP-FL baseline \[15\]: uniform adaptive pruning ratio |
//! | [`run_fedprox`] | FedProx baseline \[19\]: proximal term + capability-scaled local iterations |
//! | [`run_flexcom`] | FlexCom baseline \[13\]: heterogeneous top-k upload compression |
//! | [`run_async`] | Asyn-FL \[43\] and Asyn-FedMP (Algorithm 2): m-of-N arrival aggregation |
//! | [`run_lm`] | §VI LSTM extension: Syn-FL / UP-FL / FedMP with ISS pruning |
//!
//! Local training fans out across simulated workers through the
//! deterministic round executor in [`exec`] (`FEDMP_THREADS` workers,
//! results folded in fixed worker order); all stochasticity is derived
//! from per-worker, per-round seeds, so runs — histories, resource
//! totals, and trace streams alike — are bit-identical at any thread
//! count.

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
mod aggregate;
mod chaos;
mod engine;
mod engines;
mod eval;
pub mod exec;
mod hierarchy;
mod history;
mod lm;
mod local;
mod metrics;
mod runtime;
mod task;
mod transport;
mod wire;

pub use aggregate::{average_states, bsp_aggregate, mix_states, quorum_aggregate, r2sp_aggregate};
pub use chaos::{backoff, backoff_scale, ChaosDraw, ChaosOptions, ChaosPlan};
pub use engine::{CostScale, FlConfig, FlSetup, SyncScheme};
pub use engines::fedmp::{run_fedmp, FaultOptions, FedMpOptions};
pub use engines::fedprox::{run_fedprox, FedProxOptions};
pub use engines::flexcom::{run_flexcom, FlexComOptions};
pub use engines::r#async::{run_async, AsyncMode, AsyncOptions};
pub use engines::synfl::run_synfl;
pub use engines::upfl::{run_upfl, UpFlOptions};
pub use eval::{evaluate_image, evaluate_lm, EvalResult};
pub use hierarchy::{
    run_fedmp_hier, run_fedmp_hier_threaded, ExactState, HierSetup, HierarchyOptions,
};
pub use history::{RoundRecord, RunHistory};
pub use lm::{run_lm, LmMethod, LmOptions, LmRunResult, LmSetup};
pub use local::{local_train, LocalOutcome, LocalTrainConfig};
pub use metrics::{relative_cost, resource_totals, ResourceTotals};
pub use runtime::{
    live_worker_threads, run_fedmp_threaded, run_fedmp_threaded_chaos, RuntimeError,
};
pub use task::ImageTask;
pub use transport::{
    connect_with_retry, run_fedmp_sockets, serve_worker, unique_socket_path, NodeHandle,
    NodeSpawner, ProcessNodes, Served, SocketRunOptions, ThreadNodes, TransportError,
    TransportFault,
};
pub use wire::{
    codec_delivered, decode_state, decode_state_v2, encode_state, encode_state_v2, f16_bits_to_f32,
    f32_to_f16_bits, frame_checksum_ok, frame_codec, topk_len, wire_size, wire_size_v2, Codec,
    CompressionPolicy, ErrorFeedback, LinkCodecs, WireError,
};
