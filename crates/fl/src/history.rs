//! Run histories: what every engine records, and the derived metrics the
//! paper reports (time-to-target-accuracy, accuracy-within-budget).

use serde::{Deserialize, Serialize};

/// One aggregation round's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index k.
    pub round: usize,
    /// Cumulative virtual time (s) at the end of the round.
    pub sim_time: f64,
    /// This round's duration `T^k = maxₙ Tₙ` (or the aggregation
    /// interval under the async engines).
    pub round_time: f64,
    /// Mean computation seconds across participating workers.
    pub mean_comp: f64,
    /// Mean communication seconds across participating workers.
    pub mean_comm: f64,
    /// Mean local training loss this round.
    pub train_loss: f32,
    /// Test metrics, when this round was evaluated. For classifiers the
    /// pair is `(loss, accuracy)`; for language models `(loss,
    /// perplexity)`.
    pub eval: Option<(f32, f32)>,
    /// Pruning ratio per participating worker this round (empty for
    /// non-pruning engines).
    pub ratios: Vec<f32>,
    /// Models actually merged into the global model this round (0 when
    /// the round skipped aggregation, e.g. all workers offline or a
    /// quorum miss).
    #[serde(default)]
    pub participants: usize,
    /// Frame retransmissions the PS requested this round (threaded
    /// runtime; always 0 for the loop engines).
    #[serde(default)]
    pub retries: usize,
    /// Online workers whose contribution was discarded this round
    /// (deadline, corruption, loss or crash).
    #[serde(default)]
    pub exclusions: usize,
}

impl Default for RoundRecord {
    fn default() -> Self {
        RoundRecord {
            round: 0,
            sim_time: 0.0,
            round_time: 0.0,
            mean_comp: 0.0,
            mean_comm: 0.0,
            train_loss: f32::NAN,
            eval: None,
            ratios: vec![],
            participants: 0,
            retries: 0,
            exclusions: 0,
        }
    }
}

/// A full engine run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunHistory {
    /// Method name (for reports).
    pub method: String,
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
}

impl RunHistory {
    /// Creates an empty history for a named method.
    pub fn new(method: impl Into<String>) -> Self {
        RunHistory { method: method.into(), rounds: Vec::new() }
    }

    /// First virtual time at which test accuracy reached `target`
    /// (`None` if never). Linear scan over evaluated rounds.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.eval.is_some_and(|(_, acc)| acc >= target))
            .map(|r| r.sim_time)
    }

    /// First virtual time at which LM perplexity dropped to `target`.
    pub fn time_to_perplexity(&self, target: f32) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.eval.is_some_and(|(_, ppl)| ppl <= target))
            .map(|r| r.sim_time)
    }

    /// Best test accuracy achieved within a virtual-time budget — the
    /// Table III metric.
    pub fn best_accuracy_within(&self, budget: f64) -> Option<f32> {
        self.rounds
            .iter()
            .take_while(|r| r.sim_time <= budget)
            .filter_map(|r| r.eval.map(|(_, acc)| acc))
            .fold(None, |best, acc| Some(best.map_or(acc, |b: f32| b.max(acc))))
    }

    /// Lowest perplexity within a budget (Table IV).
    pub fn best_perplexity_within(&self, budget: f64) -> Option<f32> {
        self.rounds
            .iter()
            .take_while(|r| r.sim_time <= budget)
            .filter_map(|r| r.eval.map(|(_, p)| p))
            .fold(None, |best, p| Some(best.map_or(p, |b: f32| b.min(p))))
    }

    /// Final cumulative virtual time.
    pub fn total_time(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.sim_time)
    }

    /// Final evaluated accuracy, if any round was evaluated.
    pub fn final_accuracy(&self) -> Option<f32> {
        self.rounds.iter().rev().find_map(|r| r.eval.map(|(_, a)| a))
    }

    /// The `(time, accuracy)` series of evaluated rounds — the Fig. 6
    /// curves.
    pub fn accuracy_curve(&self) -> Vec<(f64, f32)> {
        self.rounds.iter().filter_map(|r| r.eval.map(|(_, a)| (r.sim_time, a))).collect()
    }

    /// The `(round, accuracy)` series — the Fig. 7 curves.
    pub fn accuracy_by_round(&self) -> Vec<(usize, f32)> {
        self.rounds.iter().filter_map(|r| r.eval.map(|(_, a)| (r.round, a))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, t: f64, acc: Option<f32>) -> RoundRecord {
        RoundRecord {
            round,
            sim_time: t,
            round_time: 1.0,
            mean_comp: 0.5,
            mean_comm: 0.5,
            train_loss: 1.0,
            eval: acc.map(|a| (0.5, a)),
            ..Default::default()
        }
    }

    fn history() -> RunHistory {
        let mut h = RunHistory::new("test");
        h.rounds = vec![
            record(0, 10.0, Some(0.3)),
            record(1, 20.0, None),
            record(2, 30.0, Some(0.6)),
            record(3, 40.0, Some(0.55)),
            record(4, 50.0, Some(0.8)),
        ];
        h
    }

    #[test]
    fn time_to_accuracy_scans_in_order() {
        let h = history();
        assert_eq!(h.time_to_accuracy(0.5), Some(30.0));
        assert_eq!(h.time_to_accuracy(0.8), Some(50.0));
        assert_eq!(h.time_to_accuracy(0.9), None);
    }

    #[test]
    fn best_accuracy_within_budget() {
        let h = history();
        assert_eq!(h.best_accuracy_within(45.0), Some(0.6));
        assert_eq!(h.best_accuracy_within(5.0), None);
        assert_eq!(h.best_accuracy_within(100.0), Some(0.8));
    }

    #[test]
    fn curves_skip_unevaluated_rounds() {
        let h = history();
        assert_eq!(h.accuracy_curve().len(), 4);
        assert_eq!(h.accuracy_by_round()[1], (2, 0.6));
        assert_eq!(h.final_accuracy(), Some(0.8));
        assert_eq!(h.total_time(), 50.0);
    }

    #[test]
    fn perplexity_helpers_use_min_semantics() {
        let mut h = RunHistory::new("lm");
        h.rounds = vec![record(0, 1.0, Some(150.0)), record(1, 2.0, Some(120.0))];
        assert_eq!(h.time_to_perplexity(130.0), Some(2.0));
        assert_eq!(h.best_perplexity_within(3.0), Some(120.0));
    }
}
