//! The federated image-classification task bundle.

use fedmp_data::{ImageDataset, Partition};

/// A complete federated task: train/test data, the input geometry the
/// model expects, and the per-worker index partition.
#[derive(Debug, Clone)]
pub struct ImageTask {
    /// Pooled training data (sharded by `partition`).
    pub train: ImageDataset,
    /// Held-out test data (evaluated at the PS).
    pub test: ImageDataset,
    /// Input geometry `(channels, height, width)`.
    pub input_chw: (usize, usize, usize),
    /// Per-worker sample indices into `train`.
    pub partition: Partition,
}

impl ImageTask {
    /// Builds a task, validating the partition against the dataset.
    pub fn new(train: ImageDataset, test: ImageDataset, partition: Partition) -> Self {
        assert!(!partition.is_empty(), "task needs at least one worker shard");
        for (w, shard) in partition.iter().enumerate() {
            assert!(!shard.is_empty(), "worker {w} has an empty shard");
            assert!(
                shard.iter().all(|&i| i < train.len()),
                "worker {w} shard references out-of-range samples"
            );
        }
        let input_chw = (train.channels, train.height, train.width);
        assert_eq!(test.channels, train.channels, "train/test channel mismatch");
        ImageTask { train, test, input_chw, partition }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.partition.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_tensor::seeded_rng;

    #[test]
    fn task_builds_and_validates() {
        let (train, test) = mnist_like(0.05, 30).generate();
        let mut rng = seeded_rng(0);
        let part = iid_partition(&train, 4, &mut rng);
        let task = ImageTask::new(train, test, part);
        assert_eq!(task.workers(), 4);
        assert_eq!(task.input_chw, (1, 28, 28));
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn empty_shard_rejected() {
        let (train, test) = mnist_like(0.05, 31).generate();
        let _ = ImageTask::new(train, test, vec![vec![0, 1], vec![]]);
    }
}
