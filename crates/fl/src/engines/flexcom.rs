//! FlexCom (Li et al. [13]): flexible communication compression for
//! heterogeneous edges. Every worker trains the **full** model (no
//! compute savings) but uploads a top-k-sparsified update whose keep
//! fraction is proportional to its link bandwidth, with error feedback.

use crate::aggregate::average_states;
use crate::engine::{
    barrier_time, emit_aggregate, emit_kernel_dispatch, emit_local_train, emit_round_end,
    emit_round_start_all, kernel_baseline, model_round_cost, round_times, worker_batches, FlConfig,
    FlSetup,
};
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::local_train;
use fedmp_nn::{state_add, state_sub, Sequential};
use fedmp_pruning::{densify_into_state, TopKCompressor};
use fedmp_tensor::parallel::sum_f32;
use serde::{Deserialize, Serialize};

/// FlexCom options.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlexComOptions {
    /// Keep fraction granted to the best-connected worker.
    pub max_keep: f32,
    /// Keep-fraction floor for the worst-connected worker.
    pub min_keep: f32,
}

impl Default for FlexComOptions {
    fn default() -> Self {
        FlexComOptions { max_keep: 0.5, min_keep: 0.05 }
    }
}

/// Runs FlexCom: full local training, bandwidth-proportional top-k
/// upload compression with per-worker error feedback, FedAvg on the
/// densified updates.
pub fn run_flexcom(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    mut global: Sequential,
    opts: &FlexComOptions,
) -> RunHistory {
    let workers = setup.workers();
    let mut history = RunHistory::new("FlexCom");
    let mut sim_time = 0.0f64;

    let max_bw = setup.devices.iter().map(|d| d.bandwidth()).fold(0.0, f64::max);
    let keep: Vec<f32> = setup
        .devices
        .iter()
        .map(|d| (opts.max_keep * (d.bandwidth() / max_bw) as f32).clamp(opts.min_keep, 1.0))
        .collect();
    let mut compressors: Vec<TopKCompressor> =
        keep.iter().map(|&k| TopKCompressor::new(k)).collect();

    let mut kstats = kernel_baseline();

    for round in 0..cfg.rounds {
        emit_round_start_all(round, sim_time, workers);
        let global_state = global.state();
        // Full local training, fanned across the round executor. The
        // compressors stay out of the closure: they carry error-feedback
        // state across rounds, so they run sequentially below.
        let results = exec::ordered_map((0..workers).collect(), |_, w| {
            let mut model = global.clone();
            let mut batches = worker_batches(setup.task, w, cfg.local.batch, cfg.seed, round);
            let outcome = local_train(&mut model, &mut batches, &cfg.local);
            (model.state(), outcome)
        });

        // Compress each worker's update (sequential: compressors carry
        // error-feedback state across rounds).
        let mut sparse_updates = Vec::with_capacity(workers);
        for (w, (state, _)) in results.iter().enumerate() {
            let update = state_sub(state, &global_state);
            sparse_updates.push(compressors[w].compress(&update));
        }

        // Timing: full download + compute, sparse upload.
        let base = model_round_cost(&global, setup.task.input_chw, &cfg.local);
        let costs: Vec<_> = sparse_updates
            .iter()
            .map(|s| {
                let mut c = base;
                c.upload_bytes = s.wire_bytes() as f64;
                c
            })
            .collect();
        let (times, mean_comp, mean_comm) = round_times(setup, &costs, cfg.seed, round);
        let round_time = barrier_time(&times);
        sim_time += round_time;
        for (w, ((_, o), t)) in results.iter().zip(times.iter()).enumerate() {
            let scaled = setup.scaled_cost(&costs[w]);
            emit_local_train(
                round,
                w,
                0.0,
                o.mean_loss,
                o.delta_loss(),
                cfg.local.tau,
                o.samples,
                t,
                &scaled,
            );
        }

        // Aggregate: global += mean(densified updates).
        let dense_updates: Vec<_> = sparse_updates
            .iter()
            .map(|s| densify_into_state(&s.to_dense(), &global_state))
            .collect();
        let mean_update = average_states(&dense_updates);
        global.load_state(&state_add(&global_state, &mean_update));
        emit_aggregate(round, "FedAvg+topk", workers);

        let train_loss = sum_f32(results.iter().map(|(_, o)| o.mean_loss)) / workers as f32;
        let eval = if round % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let r =
                evaluate_image(&mut global, &setup.task.test, cfg.eval_batch, cfg.eval_max_samples);
            Some((r.loss, r.accuracy))
        } else {
            None
        };
        emit_kernel_dispatch(round, &mut kstats);
        let rec = RoundRecord {
            round,
            sim_time,
            round_time,
            mean_comp,
            mean_comm,
            train_loss,
            eval,
            ratios: vec![],
            participants: workers,
            ..Default::default()
        };
        emit_round_end(&rec);
        history.rounds.push(rec);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ImageTask;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn flexcom_learns_and_cuts_upload_time() {
        let (train, test) = mnist_like(0.1, 110).generate();
        let mut rng = seeded_rng(111);
        let part = iid_partition(&train, 3, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices = vec![
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
            tx2_profile(ComputeMode::Mode2, LinkQuality::Far),
        ];
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 10, eval_every: 5, ..Default::default() };
        let h = run_flexcom(&cfg, &setup, global.clone(), &FlexComOptions::default());
        assert!(h.final_accuracy().unwrap() > 0.4, "accuracy {:?}", h.final_accuracy());

        // Communication time is lower than Syn-FL's, compute identical.
        let syn = crate::engines::synfl::run_synfl(&cfg, &setup, global);
        assert!(h.rounds[0].mean_comm < syn.rounds[0].mean_comm);
        assert!((h.rounds[0].mean_comp - syn.rounds[0].mean_comp).abs() < 1e-9);
    }
}
