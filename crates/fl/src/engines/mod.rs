//! One engine module per training method the paper evaluates.

pub mod r#async;
pub mod fedmp;
pub mod fedprox;
pub mod flexcom;
pub mod synfl;
pub mod upfl;
