//! Asynchronous engines (paper Algorithm 2 and §V-H): the PS aggregates
//! the first `m` (of N) arrivals of each round instead of waiting for
//! everyone. Covers both Asyn-FL (full models, [43]) and Asyn-FedMP
//! (pruned sub-models with E-UCB ratios and R2SP recovery).

use crate::aggregate::{average_states, mix_states, r2sp_aggregate};
use crate::engine::{
    emit_aggregate, emit_kernel_dispatch, emit_local_train, emit_round_end, emit_round_start,
    kernel_baseline, model_round_cost, worker_batches, worker_rng, FlConfig, FlSetup,
};
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::local_train;
use fedmp_bandit::{eucb_reward, Bandit, EUcbAgent, EUcbConfig, RewardConfig};
use fedmp_edgesim::ArrivalQueue;
use fedmp_nn::{state_sub, Sequential, StateEntry};
use fedmp_pruning::{extract_sequential, plan_sequential, recover_state, sparse_state, PrunePlan};
use fedmp_tensor::parallel::sum_f64;
use serde::{Deserialize, Serialize};

/// Which asynchronous method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsyncMode {
    /// Asynchronous FedAvg over full models (the Asyn-FL baseline \[43\]).
    AsynFl,
    /// Algorithm 2: asynchronous FedMP with adaptive pruning.
    AsynFedMp,
}

/// Asynchronous-engine options.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AsyncOptions {
    /// Method.
    pub mode: AsyncMode,
    /// Arrivals aggregated per round (the paper's m; §V-H uses m = 5 of
    /// 10).
    pub m: usize,
    /// Staleness-tempered mixing coefficient β; `None` uses `m / N`.
    pub beta: Option<f32>,
    /// E-UCB configuration (Asyn-FedMP only).
    pub eucb: EUcbConfig,
    /// Reward shaping (Asyn-FedMP only).
    pub reward: RewardConfig,
}

impl Default for AsyncOptions {
    fn default() -> Self {
        AsyncOptions {
            mode: AsyncMode::AsynFedMp,
            m: 5,
            beta: None,
            eucb: EUcbConfig::default(),
            reward: RewardConfig::default(),
        }
    }
}

/// What a worker trained on: a full model (Asyn-FL) or a pruned
/// sub-model together with the plan and residual R2SP needs to recover
/// it. Carrying the plan/residual *inside* the pruned variant (rather
/// than as `Option`s next to the model) makes every aggregation path
/// total — there is no "pruned job without a plan" state to unwrap.
enum Payload {
    Full(Sequential),
    Pruned { model: Sequential, plan: PrunePlan, residual: Vec<StateEntry> },
}

impl Payload {
    /// The trained model, however it was shipped.
    fn model(&self) -> &Sequential {
        match self {
            Payload::Full(model) => model,
            Payload::Pruned { model, .. } => model,
        }
    }
}

/// A worker's in-flight job.
struct Pending {
    payload: Payload,
    delta_loss: f32,
    mean_loss: f32,
    duration: f64,
    ratio: f32,
    comp: f64,
    comm: f64,
    samples: usize,
    bytes_down: f64,
    bytes_up: f64,
}

/// Runs an asynchronous engine for `cfg.rounds` aggregation events.
pub fn run_async(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    mut global: Sequential,
    opts: &AsyncOptions,
) -> RunHistory {
    let workers = setup.workers();
    assert!(opts.m >= 1 && opts.m <= workers, "m must be in [1, N]");
    let beta = opts.beta.unwrap_or(opts.m as f32 / workers as f32);
    let mut history = RunHistory::new(match opts.mode {
        AsyncMode::AsynFl => "Asyn-FL",
        AsyncMode::AsynFedMp => "Asyn-FedMP",
    });

    let mut agents: Vec<EUcbAgent> = (0..workers)
        .map(|w| {
            let mut c = opts.eucb;
            c.seed = c.seed.wrapping_add(w as u64).wrapping_add(cfg.seed);
            EUcbAgent::new(c)
        })
        .collect();

    // Dispatch: trains the worker on the *current* global and schedules
    // its arrival. Dispatch counter feeds the per-job RNG coordinates.
    let mut jobs: Vec<Option<Pending>> = (0..workers).map(|_| None).collect();
    let mut dispatch_count = 0usize;
    let mut queue = ArrivalQueue::new();

    // Dispatch: trains each listed worker on the *current* global and
    // schedules its arrival. The order-sensitive steps stay in caller
    // order on this thread — bandit `select()` calls and dispatch-tick
    // assignment before the fan-out, queue pushes and job bookkeeping
    // after it — while the training itself (a pure function of the
    // worker's (tick, ratio) coordinates) fans out across the round
    // executor. Each job's RNG derives from its tick, so results are
    // identical to the serial interleaving.
    let dispatch_all = |ws: &[usize],
                        now: f64,
                        global: &Sequential,
                        agents: &mut Vec<EUcbAgent>,
                        jobs: &mut Vec<Option<Pending>>,
                        queue: &mut ArrivalQueue,
                        dispatch_count: &mut usize| {
        let metas: Vec<(usize, usize, f32)> = ws
            .iter()
            .map(|&w| {
                let tick = *dispatch_count;
                *dispatch_count += 1;
                let ratio = match opts.mode {
                    AsyncMode::AsynFl => 0.0,
                    AsyncMode::AsynFedMp => agents[w].select(),
                };
                (w, tick, ratio)
            })
            .collect();
        let trained = exec::ordered_map(metas, |_, (w, tick, ratio)| {
            let (mut model, plan_residual) = match opts.mode {
                AsyncMode::AsynFl => (global.clone(), None),
                AsyncMode::AsynFedMp => {
                    let plan = plan_sequential(global, setup.task.input_chw, ratio);
                    let sub = extract_sequential(global, &plan);
                    let residual = state_sub(&global.state(), &sparse_state(global, &plan));
                    (sub, Some((plan, residual)))
                }
            };
            let mut batches = worker_batches(setup.task, w, cfg.local.batch, cfg.seed, tick);
            let outcome = local_train(&mut model, &mut batches, &cfg.local);
            let cost = model_round_cost(&model, setup.task.input_chw, &cfg.local);
            let mut rng = worker_rng(cfg.seed ^ 0x5A5A, tick, w);
            let rt = setup.simulate_round(w, &cost, &mut rng);
            let scaled = setup.scaled_cost(&cost);
            let payload = match plan_residual {
                None => Payload::Full(model),
                Some((plan, residual)) => Payload::Pruned { model, plan, residual },
            };
            let pending = Pending {
                payload,
                delta_loss: outcome.delta_loss(),
                mean_loss: outcome.mean_loss,
                duration: rt.total(),
                ratio,
                comp: rt.comp,
                comm: rt.comm,
                samples: outcome.samples,
                bytes_down: scaled.download_bytes,
                bytes_up: scaled.upload_bytes,
            };
            (w, pending)
        });
        for (w, pending) in trained {
            queue.push(now + pending.duration, w);
            jobs[w] = Some(pending);
        }
    };

    let all: Vec<usize> = (0..workers).collect();
    dispatch_all(&all, 0.0, &global, &mut agents, &mut jobs, &mut queue, &mut dispatch_count);

    let mut kstats = kernel_baseline();
    let mut last_agg_time = 0.0f64;
    for round in 0..cfg.rounds {
        // Wait for the first m arrivals (Algorithm 2, lines 4–7).
        let arrivals = queue.pop_first(opts.m);
        assert_eq!(arrivals.len(), opts.m, "arrival queue underflow");
        let now = arrivals.iter().map(|c| c.at).fold(0.0, f64::max);

        // Every arrival has a matching dispatched job; a missing one
        // (impossible by construction) just shrinks the quorum rather
        // than panicking, so all per-round means below divide by
        // `members.len()`.
        let mut members = Vec::with_capacity(opts.m);
        for c in &arrivals {
            if let Some(p) = jobs[c.worker].take() {
                members.push((c.worker, p));
            }
        }
        let quorum = members.len().max(1);

        // Trace: an async "round" is one aggregation event; online = the
        // m arrival workers, in arrival order.
        let online: Vec<usize> = members.iter().map(|(w, _)| *w).collect();
        emit_round_start(round, last_agg_time, &online);
        for (w, p) in &members {
            let t = fedmp_edgesim::RoundTime { comp: p.comp, comm: p.comm };
            let scaled = fedmp_edgesim::RoundCost {
                train_flops: 0.0,
                download_bytes: p.bytes_down,
                upload_bytes: p.bytes_up,
            };
            emit_local_train(
                round,
                *w,
                p.ratio,
                p.mean_loss,
                p.delta_loss,
                cfg.local.tau,
                p.samples,
                &t,
                &scaled,
            );
        }

        // Update the global model from the m arrivals (line 8).
        let update = match opts.mode {
            AsyncMode::AsynFl => {
                let states: Vec<_> =
                    members.iter().map(|(_, p)| p.payload.model().state()).collect();
                average_states(&states)
            }
            AsyncMode::AsynFedMp => {
                let mut recovered = Vec::with_capacity(members.len());
                let mut residuals = Vec::with_capacity(members.len());
                for (_, p) in &members {
                    match &p.payload {
                        Payload::Pruned { model, plan, residual } => {
                            recovered.push(recover_state(model, plan, &global));
                            residuals.push(residual.clone());
                        }
                        // A full-model arrival needs no recovery and
                        // carries a zero residual (nothing was pruned).
                        Payload::Full(model) => {
                            let state = model.state();
                            residuals.push(state_sub(&state, &state));
                            recovered.push(state);
                        }
                    }
                }
                r2sp_aggregate(&recovered, &residuals)
            }
        };
        global.load_state(&mix_states(&global.state(), &update, beta));

        // Rewards for the m arrivals (line 9) and redistribution (10).
        let t_avg = sum_f64(members.iter().map(|(_, p)| p.duration)) / quorum as f64;
        let mut ratios = Vec::with_capacity(opts.m);
        let mut train_loss = 0.0f32;
        let mut mean_comp = 0.0;
        let mut mean_comm = 0.0;
        for (w, p) in &members {
            if opts.mode == AsyncMode::AsynFedMp {
                agents[*w].observe(eucb_reward(p.delta_loss, p.duration, t_avg, &opts.reward));
            }
            ratios.push(p.ratio);
            train_loss += p.mean_loss;
            mean_comp += p.comp;
            mean_comm += p.comm;
        }
        emit_aggregate(
            round,
            match opts.mode {
                AsyncMode::AsynFl => "AsynFedAvg",
                AsyncMode::AsynFedMp => "AsynR2SP",
            },
            members.len(),
        );
        dispatch_all(
            &online,
            now,
            &global,
            &mut agents,
            &mut jobs,
            &mut queue,
            &mut dispatch_count,
        );

        let eval = if round % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let r =
                evaluate_image(&mut global, &setup.task.test, cfg.eval_batch, cfg.eval_max_samples);
            Some((r.loss, r.accuracy))
        } else {
            None
        };
        emit_kernel_dispatch(round, &mut kstats);
        let rec = RoundRecord {
            round,
            sim_time: now,
            round_time: now - last_agg_time,
            mean_comp: mean_comp / quorum as f64,
            mean_comm: mean_comm / quorum as f64,
            train_loss: train_loss / quorum as f32,
            eval,
            ratios,
            participants: quorum,
            ..Default::default()
        };
        emit_round_end(&rec);
        history.rounds.push(rec);
        last_agg_time = now;
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ImageTask;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    fn setup_task(seed: u64, workers: usize) -> (ImageTask, Vec<fedmp_edgesim::DeviceProfile>) {
        let (train, test) = mnist_like(0.1, seed).generate();
        let mut rng = seeded_rng(seed);
        let part = iid_partition(&train, workers, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices: Vec<_> = (0..workers)
            .map(|i| {
                if i % 2 == 0 {
                    tx2_profile(ComputeMode::Mode0, LinkQuality::Near)
                } else {
                    tx2_profile(ComputeMode::Mode3, LinkQuality::Far)
                }
            })
            .collect();
        (task, devices)
    }

    #[test]
    fn async_fedmp_aggregates_m_arrivals_per_round() {
        let (task, devices) = setup_task(120, 4);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(121);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 6, eval_every: 3, ..Default::default() };
        let opts = AsyncOptions { m: 2, ..Default::default() };
        let h = run_async(&cfg, &setup, global, &opts);
        assert_eq!(h.rounds.len(), 6);
        assert!(h.rounds.iter().all(|r| r.ratios.len() == 2));
        // Clock is non-decreasing.
        assert!(h.rounds.windows(2).all(|w| w[1].sim_time >= w[0].sim_time));
    }

    #[test]
    fn async_rounds_are_faster_than_waiting_for_stragglers() {
        let (task, devices) = setup_task(122, 4);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(123);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 4, ..Default::default() };

        let asyn = run_async(
            &cfg,
            &setup,
            global.clone(),
            &AsyncOptions { m: 2, mode: AsyncMode::AsynFl, ..Default::default() },
        );
        let syn = crate::engines::synfl::run_synfl(&cfg, &setup, global);
        // First aggregation happens as soon as the 2 fast workers finish,
        // well before the full barrier.
        assert!(asyn.rounds[0].sim_time < syn.rounds[0].sim_time);
    }

    #[test]
    fn asyn_fl_learns() {
        let (task, devices) = setup_task(124, 4);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(125);
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 16, eval_every: 4, ..Default::default() };
        let opts =
            AsyncOptions { m: 2, mode: AsyncMode::AsynFl, beta: Some(0.5), ..Default::default() };
        let h = run_async(&cfg, &setup, global, &opts);
        // m-of-N mixing on the calibrated (harder) task converges more
        // slowly; require clearly-above-chance learning (chance = 10%).
        assert!(h.final_accuracy().unwrap() > 0.22, "{:?}", h.final_accuracy());
    }
}
