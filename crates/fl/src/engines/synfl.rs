//! Syn-FL: synchronous full-model FedAvg (McMahan et al. [5]) — the
//! paper's primary baseline. Every worker trains and transmits the
//! entire model; the PS waits for all of them.

use crate::aggregate::average_states;
use crate::engine::{
    barrier_time, emit_aggregate, emit_kernel_dispatch, emit_local_train, emit_round_end,
    emit_round_start_all, kernel_baseline, model_round_cost, round_times, worker_batches, FlConfig,
    FlSetup,
};
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::local_train;
use fedmp_nn::Sequential;
use fedmp_tensor::parallel::sum_f32;

/// Runs Syn-FL for `cfg.rounds` rounds starting from `global`.
pub fn run_synfl(cfg: &FlConfig, setup: &FlSetup<'_>, mut global: Sequential) -> RunHistory {
    let mut history = RunHistory::new("Syn-FL");
    let mut sim_time = 0.0f64;
    let workers = setup.workers();
    let mut kstats = kernel_baseline();

    for round in 0..cfg.rounds {
        emit_round_start_all(round, sim_time, workers);
        // Local training, fanned across the round executor: every
        // worker gets the full global model; timing, aggregation and
        // trace emission below stay in fixed worker order.
        let results = exec::ordered_map((0..workers).collect(), |_, w| {
            let mut model = global.clone();
            let mut batches = worker_batches(setup.task, w, cfg.local.batch, cfg.seed, round);
            let outcome = local_train(&mut model, &mut batches, &cfg.local);
            (model.state(), outcome)
        });

        // Timing: full-model cost for everyone.
        let cost = model_round_cost(&global, setup.task.input_chw, &cfg.local);
        let costs = vec![cost; workers];
        let (times, mean_comp, mean_comm) = round_times(setup, &costs, cfg.seed, round);
        let round_time = barrier_time(&times);
        sim_time += round_time;
        let scaled = setup.scaled_cost(&cost);
        for (w, ((_, o), t)) in results.iter().zip(times.iter()).enumerate() {
            emit_local_train(
                round,
                w,
                0.0,
                o.mean_loss,
                o.delta_loss(),
                cfg.local.tau,
                o.samples,
                t,
                &scaled,
            );
        }

        // Aggregation: plain FedAvg.
        let states: Vec<_> = results.iter().map(|(s, _)| s.clone()).collect();
        global.load_state(&average_states(&states));
        emit_aggregate(round, "FedAvg", workers);

        let train_loss = sum_f32(results.iter().map(|(_, o)| o.mean_loss)) / workers as f32;
        let eval = if round % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let r =
                evaluate_image(&mut global, &setup.task.test, cfg.eval_batch, cfg.eval_max_samples);
            Some((r.loss, r.accuracy))
        } else {
            None
        };
        emit_kernel_dispatch(round, &mut kstats);
        let rec = RoundRecord {
            round,
            sim_time,
            round_time,
            mean_comp,
            mean_comm,
            train_loss,
            eval,
            ratios: vec![],
            participants: workers,
            ..Default::default()
        };
        emit_round_end(&rec);
        history.rounds.push(rec);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FlConfig;
    use crate::task::ImageTask;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn synfl_learns_on_iid_data() {
        let (train, test) = mnist_like(0.15, 70).generate();
        let mut rng = seeded_rng(71);
        let part = iid_partition(&train, 4, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices = vec![tx2_profile(ComputeMode::Mode0, LinkQuality::Near); 4];
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 12, eval_every: 3, ..Default::default() };
        let h = run_synfl(&cfg, &setup, global);

        assert_eq!(h.rounds.len(), 12);
        let final_acc = h.final_accuracy().expect("evaluated");
        assert!(final_acc > 0.5, "Syn-FL accuracy only {final_acc}");
        // Virtual time accumulates monotonically.
        assert!(h.rounds.windows(2).all(|w| w[1].sim_time > w[0].sim_time));
    }

    #[test]
    fn slowest_device_dictates_round_time() {
        let (train, test) = mnist_like(0.05, 72).generate();
        let mut rng = seeded_rng(73);
        let part = iid_partition(&train, 2, &mut rng);
        let task = ImageTask::new(train, test, part);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 1, ..Default::default() };

        let fast = FlSetup::new(
            &task,
            vec![tx2_profile(ComputeMode::Mode0, LinkQuality::Near); 2],
            TimeModel::deterministic(),
        );
        let mixed = FlSetup::new(
            &task,
            vec![
                tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
                tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
            ],
            TimeModel::deterministic(),
        );
        let t_fast = run_synfl(&cfg, &fast, global.clone()).total_time();
        let t_mixed = run_synfl(&cfg, &mixed, global).total_time();
        assert!(t_mixed > 2.0 * t_fast, "straggler not dominating: {t_fast} vs {t_mixed}");
    }
}
