//! FedProx (Li et al. [19]): heterogeneity-aware FL via a proximal term
//! and **capability-scaled local iteration counts** — weak workers do
//! fewer local steps so they finish closer to the strong ones, but every
//! worker still trains and transmits the full model.

use crate::aggregate::average_states;
use crate::engine::{
    barrier_time, emit_aggregate, emit_kernel_dispatch, emit_local_train, emit_round_end,
    emit_round_start_all, kernel_baseline, model_round_cost, round_times, worker_batches, FlConfig,
    FlSetup,
};
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::{local_train, LocalTrainConfig};
use fedmp_nn::Sequential;
use fedmp_tensor::parallel::sum_f32;
use serde::{Deserialize, Serialize};

/// FedProx options.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FedProxOptions {
    /// Proximal coefficient μ.
    pub mu: f32,
    /// Minimum local iterations any worker performs.
    pub min_tau: usize,
}

impl Default for FedProxOptions {
    fn default() -> Self {
        FedProxOptions { mu: 0.1, min_tau: 1 }
    }
}

/// Runs FedProx. Worker n performs `τₙ = max(min_tau, τ · φₙ/φ_max)`
/// local iterations, where φₙ is its device throughput.
pub fn run_fedprox(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    mut global: Sequential,
    opts: &FedProxOptions,
) -> RunHistory {
    let workers = setup.workers();
    let mut history = RunHistory::new("FedProx");
    let mut sim_time = 0.0f64;

    let max_flops = setup.devices.iter().map(|d| d.flops()).fold(0.0, f64::max);
    let taus: Vec<usize> = setup
        .devices
        .iter()
        .map(|d| {
            let scaled = (cfg.local.tau as f64 * d.flops() / max_flops).round() as usize;
            scaled.max(opts.min_tau)
        })
        .collect();

    let mut kstats = kernel_baseline();

    for round in 0..cfg.rounds {
        emit_round_start_all(round, sim_time, workers);
        // Local training with per-worker τ, fanned across the round
        // executor; `taus` is read-only shared state.
        let results = exec::ordered_map((0..workers).collect(), |_, w| {
            let mut model = global.clone();
            let mut batches = worker_batches(setup.task, w, cfg.local.batch, cfg.seed, round);
            let local = LocalTrainConfig { tau: taus[w], prox_mu: opts.mu, ..cfg.local };
            let outcome = local_train(&mut model, &mut batches, &local);
            (model.state(), outcome)
        });

        // Full-model comm; compute scaled by per-worker τ.
        let base = model_round_cost(&global, setup.task.input_chw, &cfg.local);
        let costs: Vec<_> = taus
            .iter()
            .map(|&t| {
                let mut c = base;
                c.train_flops = c.train_flops * t as f64 / cfg.local.tau as f64;
                c
            })
            .collect();
        let (times, mean_comp, mean_comm) = round_times(setup, &costs, cfg.seed, round);
        let round_time = barrier_time(&times);
        sim_time += round_time;
        for (w, ((_, o), t)) in results.iter().zip(times.iter()).enumerate() {
            let scaled = setup.scaled_cost(&costs[w]);
            emit_local_train(
                round,
                w,
                0.0,
                o.mean_loss,
                o.delta_loss(),
                taus[w],
                o.samples,
                t,
                &scaled,
            );
        }

        let states: Vec<_> = results.iter().map(|(s, _)| s.clone()).collect();
        global.load_state(&average_states(&states));
        emit_aggregate(round, "FedAvg", workers);

        let train_loss = sum_f32(results.iter().map(|(_, o)| o.mean_loss)) / workers as f32;
        let eval = if round % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let r =
                evaluate_image(&mut global, &setup.task.test, cfg.eval_batch, cfg.eval_max_samples);
            Some((r.loss, r.accuracy))
        } else {
            None
        };
        emit_kernel_dispatch(round, &mut kstats);
        let rec = RoundRecord {
            round,
            sim_time,
            round_time,
            mean_comp,
            mean_comm,
            train_loss,
            eval,
            ratios: vec![],
            participants: workers,
            ..Default::default()
        };
        emit_round_end(&rec);
        history.rounds.push(rec);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ImageTask;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn fedprox_learns_and_narrows_compute_gap() {
        let (train, test) = mnist_like(0.1, 100).generate();
        let mut rng = seeded_rng(101);
        let part = iid_partition(&train, 2, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices = vec![
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode3, LinkQuality::Near),
        ];
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 14, eval_every: 7, ..Default::default() };
        let h = run_fedprox(&cfg, &setup, global.clone(), &FedProxOptions::default());
        assert!(h.final_accuracy().unwrap() > 0.25, "{:?}", h.final_accuracy());

        // τ-scaling shrinks the straggler's round time vs Syn-FL.
        let syn = crate::engines::synfl::run_synfl(&cfg, &setup, global);
        assert!(h.rounds[0].round_time < syn.rounds[0].round_time);
    }
}
