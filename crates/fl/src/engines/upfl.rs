//! UP-FL: uniform-pruning FL (Jiang et al. [15] adapted to structured
//! pruning). One pruning ratio is chosen **for all workers** each round
//! — it adapts over rounds (a single shared E-UCB agent) but ignores
//! heterogeneity, so the weakest worker still gates every round.

use crate::aggregate::r2sp_aggregate;
use crate::engine::{
    barrier_time, emit_aggregate, emit_kernel_dispatch, emit_local_train, emit_round_end,
    emit_round_start_all, kernel_baseline, model_round_cost, round_times, worker_batches, FlConfig,
    FlSetup,
};
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::local_train;
use fedmp_bandit::{Bandit, EUcbAgent, EUcbConfig};
use fedmp_nn::{state_sub, Sequential};
use fedmp_pruning::{extract_sequential, plan_sequential, recover_state, sparse_state};
use fedmp_tensor::parallel::sum_f32;
use serde::{Deserialize, Serialize};

/// UP-FL options.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UpFlOptions {
    /// Shared E-UCB configuration for the single round-ratio agent.
    pub eucb: EUcbConfig,
}

/// Runs UP-FL. The shared agent's reward is the mean local loss
/// improvement per unit of round time — the natural uniform-ratio
/// analogue of Eq. 8 (there is no per-worker completion-time gap to
/// measure when everyone trains the same model).
pub fn run_upfl(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    mut global: Sequential,
    opts: &UpFlOptions,
) -> RunHistory {
    let workers = setup.workers();
    let mut history = RunHistory::new("UP-FL");
    let mut sim_time = 0.0f64;
    let mut agent = {
        let mut c = opts.eucb;
        c.seed = c.seed.wrapping_add(cfg.seed);
        EUcbAgent::new(c)
    };

    let mut kstats = kernel_baseline();

    for round in 0..cfg.rounds {
        emit_round_start_all(round, sim_time, workers);
        let ratio = agent.select();
        let plan = plan_sequential(&global, setup.task.input_chw, ratio);
        let sub = extract_sequential(&global, &plan);
        let residual = state_sub(&global.state(), &sparse_state(&global, &plan));

        // Local training on the shared sub-model, fanned across the
        // round executor; everything order-sensitive stays below.
        let results = exec::ordered_map((0..workers).collect(), |_, w| {
            let mut model = sub.clone();
            let mut batches = worker_batches(setup.task, w, cfg.local.batch, cfg.seed, round);
            let outcome = local_train(&mut model, &mut batches, &cfg.local);
            (model, outcome)
        });

        let cost = model_round_cost(&sub, setup.task.input_chw, &cfg.local);
        let costs = vec![cost; workers];
        let (times, mean_comp, mean_comm) = round_times(setup, &costs, cfg.seed, round);
        let round_time = barrier_time(&times);
        sim_time += round_time;
        let scaled = setup.scaled_cost(&cost);
        for (w, ((_, o), t)) in results.iter().zip(times.iter()).enumerate() {
            emit_local_train(
                round,
                w,
                ratio,
                o.mean_loss,
                o.delta_loss(),
                cfg.local.tau,
                o.samples,
                t,
                &scaled,
            );
        }

        let mean_delta = sum_f32(results.iter().map(|(_, o)| o.delta_loss())) / workers as f32;
        agent.observe(mean_delta / round_time.max(1e-6) as f32);

        let recovered: Vec<_> =
            results.iter().map(|(m, _)| recover_state(m, &plan, &global)).collect();
        let residuals = vec![residual; workers];
        global.load_state(&r2sp_aggregate(&recovered, &residuals));
        emit_aggregate(round, "R2SP", workers);

        let train_loss = sum_f32(results.iter().map(|(_, o)| o.mean_loss)) / workers as f32;
        let eval = if round % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let r =
                evaluate_image(&mut global, &setup.task.test, cfg.eval_batch, cfg.eval_max_samples);
            Some((r.loss, r.accuracy))
        } else {
            None
        };
        emit_kernel_dispatch(round, &mut kstats);
        let rec = RoundRecord {
            round,
            sim_time,
            round_time,
            mean_comp,
            mean_comm,
            train_loss,
            eval,
            ratios: vec![ratio; workers],
            participants: workers,
            ..Default::default()
        };
        emit_round_end(&rec);
        history.rounds.push(rec);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ImageTask;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn upfl_learns_and_uses_one_ratio_per_round() {
        let (train, test) = mnist_like(0.1, 90).generate();
        let mut rng = seeded_rng(91);
        let part = iid_partition(&train, 3, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices = vec![
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
            tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
        ];
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 14, eval_every: 7, ..Default::default() };
        let h = run_upfl(&cfg, &setup, global, &UpFlOptions::default());

        assert!(h.final_accuracy().unwrap() > 0.25, "{:?}", h.final_accuracy());
        for r in &h.rounds {
            let first = r.ratios[0];
            assert!(r.ratios.iter().all(|&x| x == first), "non-uniform ratios in UP-FL");
        }
    }
}
