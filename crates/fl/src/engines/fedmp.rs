//! FedMP (the paper's system): adaptive per-worker pruning ratios via
//! E-UCB, distributed structured pruning, and R2SP aggregation.

use crate::aggregate::{bsp_aggregate, r2sp_aggregate};
use crate::engine::worker_rng;
use crate::engine::{
    emit_aggregate, emit_codec_selected, emit_compression_applied, emit_kernel_dispatch,
    emit_local_train, emit_quorum_aggregate, emit_round_end, emit_round_start,
    emit_worker_excluded, kernel_baseline, model_round_cost, worker_batches, FlConfig, FlSetup,
    SyncScheme,
};
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::{local_train, LocalOutcome};
use crate::wire::{codec_delivered, wire_size_v2, Codec, CompressionPolicy, ErrorFeedback};
use fedmp_bandit::{eucb_reward, Bandit, EUcbAgent, EUcbConfig, RewardConfig};
use fedmp_edgesim::{deadline_for, FaultInjector};
use fedmp_nn::{state_sub, Sequential, StateEntry};
use fedmp_pruning::{
    dequantize_state, extract_sequential, plan_sequential_with, quantize_state, recover_state,
    sparse_state, Importance, PrunePlan,
};
use fedmp_tensor::parallel::{sum_f32, sum_f64};
use serde::{Deserialize, Serialize};

/// Fault-tolerance options implementing the paper's §V-A mechanism:
/// workers fail and recover, and the PS sets a per-round deadline of
/// `deadline_factor · d`, where `d` is the time at which
/// `deadline_frac` of the online workers' models have arrived. Arrivals
/// after the deadline are discarded for the round.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultOptions {
    /// Per-round worker failure probability.
    pub fail_prob: f64,
    /// Rounds a failed worker stays offline after its failure round.
    pub recover_rounds: u32,
    /// Fraction of arrivals defining `d` (the paper uses 0.85).
    pub deadline_frac: f64,
    /// Deadline multiplier (the paper uses 1.5).
    pub deadline_factor: f64,
    /// When set, downtime per failure is drawn from an exponential
    /// distribution with this mean (clamped to ≥ 1 round) instead of
    /// the fixed `recover_rounds`.
    #[serde(default)]
    pub mean_down_rounds: Option<f64>,
}

impl Default for FaultOptions {
    fn default() -> Self {
        FaultOptions {
            fail_prob: 0.05,
            recover_rounds: 2,
            deadline_frac: 0.85,
            deadline_factor: 1.5,
            mean_down_rounds: None,
        }
    }
}

impl FaultOptions {
    /// Builds the matching injector: fixed recovery delay, or the
    /// exponential mean-downtime draw when `mean_down_rounds` is set.
    pub(crate) fn injector(&self, workers: usize) -> FaultInjector {
        match self.mean_down_rounds {
            Some(m) => FaultInjector::with_mean_downtime(workers, self.fail_prob, m),
            None => FaultInjector::new(workers, self.fail_prob, self.recover_rounds),
        }
    }
}

/// FedMP-specific options.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FedMpOptions {
    /// E-UCB configuration (one agent per worker; seeds are offset by
    /// the worker index).
    pub eucb: EUcbConfig,
    /// Reward shaping (Eq. 8 guards).
    pub reward: RewardConfig,
    /// Synchronisation scheme (R2SP, or BSP for the Fig. 7 ablation).
    pub sync: SyncScheme,
    /// When set, every worker uses this fixed ratio every round instead
    /// of the bandit — the mode behind the Fig. 2 / Fig. 5 ratio sweeps.
    pub fixed_ratio: Option<f32>,
    /// Store PS-side residual models 8-bit quantized (§III-C memory
    /// optimisation). Adds ≤ scale/2 per-weight reconstruction error.
    pub quantize_residuals: bool,
    /// Fault injection + deadline handling (§V-A); `None` disables.
    pub faults: Option<FaultOptions>,
    /// Filter/neuron importance metric (§VI: the pruning strategy is
    /// pluggable; the paper's default is L1).
    pub importance: Importance,
    /// Wire-format-v2 codec selection per device link. The default
    /// ([`CompressionPolicy::dense`]) keeps the exact legacy dense-f32
    /// exchange, byte-for-byte; any other policy routes model exchange
    /// through the v2 codecs with per-worker error feedback.
    #[serde(default)]
    pub compression: CompressionPolicy,
}

impl Default for FedMpOptions {
    fn default() -> Self {
        FedMpOptions {
            eucb: EUcbConfig::default(),
            reward: RewardConfig::default(),
            sync: SyncScheme::R2SP,
            fixed_ratio: None,
            quantize_residuals: false,
            faults: None,
            importance: Importance::L1,
            compression: CompressionPolicy::dense(),
        }
    }
}

/// One direction of a compressed exchange, for cost accounting and the
/// `CompressionApplied` trace event.
struct LinkApplied {
    codec: Codec,
    wire_bytes: u64,
    dense_bytes: u64,
}

/// Everything one worker's fanned-out round work produces.
struct WorkerRound {
    sub: Sequential,
    outcome: LocalOutcome,
    plan: PrunePlan,
    residual: Vec<StateEntry>,
    feedback: ErrorFeedback,
    down: Option<LinkApplied>,
    up: Option<LinkApplied>,
}

/// Runs FedMP for `cfg.rounds` rounds starting from `global`.
pub fn run_fedmp(
    cfg: &FlConfig,
    setup: &FlSetup<'_>,
    mut global: Sequential,
    opts: &FedMpOptions,
) -> RunHistory {
    let workers = setup.workers();
    let mut history = RunHistory::new(match opts.sync {
        SyncScheme::R2SP => "FedMP",
        SyncScheme::BSP => "FedMP-BSP",
    });
    let mut sim_time = 0.0f64;

    // ① One E-UCB agent per worker (§IV-C).
    let mut agents: Vec<EUcbAgent> = (0..workers)
        .map(|w| {
            let mut c = opts.eucb;
            c.seed = c.seed.wrapping_add(w as u64).wrapping_add(cfg.seed);
            EUcbAgent::new(c)
        })
        .collect();

    let mut injector = opts.faults.map(|f| f.injector(workers));
    let mut fault_rng = fedmp_tensor::seeded_rng(cfg.seed ^ 0xFA17);
    let mut kstats = kernel_baseline();

    // Wire-format-v2 compression: per-worker codec pairs from the
    // bandwidth policy, plus per-worker error-feedback accumulators
    // that persist across rounds. With the default dense policy the
    // whole path below is byte-identical to the legacy engine.
    let compression = opts.compression;
    let compressed = !compression.is_dense();
    let mut feedbacks: Vec<ErrorFeedback> = vec![ErrorFeedback::new(); workers];

    for round in 0..cfg.rounds {
        // §V-A: failed workers sit the round out. (`step` emits the
        // FaultInjected/FaultRecovered trace events, so they precede
        // this round's RoundStart.)
        let online: Vec<usize> = match injector.as_mut() {
            Some(inj) => inj.step(&mut fault_rng),
            None => (0..workers).collect(),
        };
        emit_round_start(round, sim_time, &online);
        if online.is_empty() {
            let rec = RoundRecord { round, sim_time, ..Default::default() };
            emit_kernel_dispatch(round, &mut kstats);
            emit_round_end(&rec);
            history.rounds.push(rec);
            continue;
        }

        // ① Adaptive model pruning: choose ratios, build sub-models.
        let ratios: Vec<f32> = online
            .iter()
            .map(|&w| match opts.fixed_ratio {
                Some(r) => r,
                None => agents[w].select(),
            })
            .collect();
        // Per-worker codec pairs for the round (pure function of the
        // device profiles, resolved PS-side in worker order).
        let pairs: Vec<crate::wire::LinkCodecs> =
            online.iter().map(|&w| compression.select(&setup.devices[w])).collect();
        if compressed {
            for (i, &w) in online.iter().enumerate() {
                let slow = setup.devices[w].is_slow_link(compression.slow_link_bps);
                emit_codec_selected(round, w, &pairs[i], slow);
            }
        }
        // ② Per-worker round work, fanned across the round executor:
        // plan and extract the sub-model, form the PS-side residual
        // (kept until aggregation, §III-C, optionally 8-bit quantized
        // to cut PS memory 4×), and run local training. Every input is
        // read-only (`global`, task, config) plus the worker's own
        // ratio, so each result is a pure function of its slot;
        // order-sensitive steps — bandit selection above, timing,
        // aggregation and trace emission below — stay on this thread
        // in worker order.
        let work: Vec<(usize, f32, ErrorFeedback)> = online
            .iter()
            .copied()
            .zip(ratios.iter().copied())
            .map(|(w, r)| (w, r, std::mem::take(&mut feedbacks[w])))
            .collect();
        let mut results = exec::ordered_map(work, |i, (w, ratio, mut feedback)| {
            let plan = plan_sequential_with(&global, setup.task.input_chw, ratio, opts.importance);
            let mut sub: Sequential = extract_sequential(&global, &plan);
            let residual = state_sub(&global.state(), &sparse_state(&global, &plan));
            let residual = if opts.quantize_residuals {
                dequantize_state(&quantize_state(&residual))
            } else {
                residual
            };
            // Downlink: the worker trains on what it *decodes*, which
            // the PS predicts exactly via the codec oracle. No error
            // feedback on the downlink — the PS state is authoritative
            // and a fresh sub-model is extracted every round.
            let pair = pairs[i];
            let (received, down) = if compressed {
                let sub_state = sub.state();
                let delivered = codec_delivered(&sub_state, pair.downlink, None, None);
                sub.load_state(&delivered);
                let link = LinkApplied {
                    codec: pair.downlink,
                    wire_bytes: wire_size_v2(&sub_state, pair.downlink) as u64,
                    dense_bytes: wire_size_v2(&sub_state, Codec::DenseF32) as u64,
                };
                (Some(delivered), Some(link))
            } else {
                (None, None)
            };
            let mut batches = worker_batches(setup.task, w, cfg.local.batch, cfg.seed, round);
            let outcome = local_train(&mut sub, &mut batches, &cfg.local);
            // Uplink: a delta against the model the worker received,
            // folded through its persistent error-feedback state. The
            // engine continues with the *delivered* reconstruction —
            // exactly what the PS would decode off the wire.
            let up = if compressed {
                let trained = sub.state();
                let delivered = codec_delivered(
                    &trained,
                    pair.uplink,
                    received.as_deref(),
                    Some(&mut feedback),
                );
                sub.load_state(&delivered);
                Some(LinkApplied {
                    codec: pair.uplink,
                    wire_bytes: wire_size_v2(&trained, pair.uplink) as u64,
                    dense_bytes: wire_size_v2(&trained, Codec::DenseF32) as u64,
                })
            } else {
                None
            };
            WorkerRound { sub, outcome, plan, residual, feedback, down, up }
        });
        // Error-feedback state flows back to its worker slot (worker
        // order — pure data movement, no float arithmetic).
        for (i, &w) in online.iter().enumerate() {
            feedbacks[w] = std::mem::take(&mut results[i].feedback);
        }

        // Timing from each sub-model's actual cost (Eq. 5).
        let mut times = Vec::with_capacity(online.len());
        let mut mean_comp = 0.0;
        let mut mean_comm = 0.0;
        for (i, (r, &w)) in results.iter().zip(online.iter()).enumerate() {
            let mut cost = model_round_cost(&r.sub, setup.task.input_chw, &cfg.local);
            // Compressed links pay their actual encoded frame sizes in
            // Eq. 5, not the dense parameter bytes.
            if let (Some(down), Some(up)) = (&r.down, &r.up) {
                cost.download_bytes = down.wire_bytes as f64;
                cost.upload_bytes = up.wire_bytes as f64;
                emit_compression_applied(
                    round,
                    w,
                    "down",
                    down.codec,
                    down.dense_bytes,
                    down.wire_bytes,
                );
                emit_compression_applied(round, w, "up", up.codec, up.dense_bytes, up.wire_bytes);
            }
            let mut rng = worker_rng(cfg.seed ^ 0xA5A5, round, w);
            let t = setup.simulate_round(w, &cost, &mut rng);
            mean_comp += t.comp;
            mean_comm += t.comm;
            emit_local_train(
                round,
                w,
                ratios[i],
                r.outcome.mean_loss,
                r.outcome.delta_loss(),
                cfg.local.tau,
                r.outcome.samples,
                &t,
                &setup.scaled_cost(&cost),
            );
            times.push(t.total());
        }
        mean_comp /= online.len() as f64;
        mean_comm /= online.len() as f64;

        // §V-A deadline: arrivals after `factor · d` are discarded.
        let deadline =
            opts.faults.and_then(|f| deadline_for(&times, f.deadline_frac, f.deadline_factor));
        let kept: Vec<usize> = match deadline {
            Some(d) => (0..online.len()).filter(|&i| times[i] <= d).collect(),
            None => (0..online.len()).collect(),
        };
        let round_time = match deadline {
            Some(d) => times.iter().copied().fold(0.0, f64::max).min(d),
            None => times.iter().copied().fold(0.0, f64::max),
        };
        sim_time += round_time;
        // Deadline stragglers still trained (and get bandit feedback
        // below) but their models are discarded for the round.
        if kept.len() < online.len() {
            for (i, &w) in online.iter().enumerate() {
                if !kept.contains(&i) {
                    emit_worker_excluded(round, w, "deadline");
                }
            }
        }

        // Bandit feedback (Eq. 8) for every online worker.
        if opts.fixed_ratio.is_none() {
            let t_avg = sum_f64(times.iter().copied()) / online.len() as f64;
            for (i, &w) in online.iter().enumerate() {
                let delta = results[i].outcome.delta_loss();
                agents[w].observe(eucb_reward(delta, times[i], t_avg, &opts.reward));
            }
        }

        // ③ Model aggregation over the kept arrivals.
        let recovered: Vec<_> = kept
            .iter()
            .map(|&i| recover_state(&results[i].sub, &results[i].plan, &global))
            .collect();
        let kept_residuals: Vec<_> = kept.iter().map(|&i| results[i].residual.clone()).collect();
        let new_state = match opts.sync {
            SyncScheme::R2SP => r2sp_aggregate(&recovered, &kept_residuals),
            SyncScheme::BSP => bsp_aggregate(&recovered),
        };
        global.load_state(&new_state);
        if kept.len() < online.len() {
            emit_quorum_aggregate(round, 1, kept.len(), online.len() - kept.len());
        }
        emit_aggregate(
            round,
            match opts.sync {
                SyncScheme::R2SP => "R2SP",
                SyncScheme::BSP => "BSP",
            },
            kept.len(),
        );

        let train_loss =
            sum_f32(kept.iter().map(|&i| results[i].outcome.mean_loss)) / kept.len() as f32;
        let eval = if round % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let r =
                evaluate_image(&mut global, &setup.task.test, cfg.eval_batch, cfg.eval_max_samples);
            Some((r.loss, r.accuracy))
        } else {
            None
        };
        emit_kernel_dispatch(round, &mut kstats);
        let rec = RoundRecord {
            round,
            sim_time,
            round_time,
            mean_comp,
            mean_comm,
            train_loss,
            eval,
            ratios,
            participants: kept.len(),
            retries: 0,
            exclusions: online.len() - kept.len(),
        };
        emit_round_end(&rec);
        history.rounds.push(rec);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ImageTask;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    fn small_setup(seed: u64) -> (ImageTask, Vec<fedmp_edgesim::DeviceProfile>) {
        let (train, test) = mnist_like(0.1, seed).generate();
        let mut rng = seeded_rng(seed);
        let part = iid_partition(&train, 4, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices = vec![
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
            tx2_profile(ComputeMode::Mode2, LinkQuality::Mid),
            tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
        ];
        (task, devices)
    }

    #[test]
    fn fedmp_learns_and_records_ratios() {
        let (task, devices) = small_setup(80);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(81);
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 16, eval_every: 4, ..Default::default() };
        let h = run_fedmp(&cfg, &setup, global, &FedMpOptions::default());

        // Chance is 10%; the calibrated (harder) synthetic task converges
        // slower, so require clearly-above-chance learning.
        let acc = h.final_accuracy().expect("evaluated");
        assert!(acc > 0.25, "FedMP accuracy only {acc}");
        assert!(h.rounds.iter().all(|r| r.ratios.len() == 4));
        assert!(h.rounds.iter().flat_map(|r| r.ratios.iter()).all(|&a| (0.0..0.9).contains(&a)));
    }

    #[test]
    fn fixed_ratio_mode_prunes_uniformly() {
        let (task, devices) = small_setup(82);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(83);
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 3, ..Default::default() };
        let opts = FedMpOptions { fixed_ratio: Some(0.5), ..Default::default() };
        let h = run_fedmp(&cfg, &setup, global, &opts);
        assert!(h.rounds.iter().all(|r| r.ratios.iter().all(|&x| x == 0.5)));
    }

    #[test]
    fn pruning_makes_rounds_faster_than_synfl() {
        let (task, devices) = small_setup(84);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(85);
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 4, ..Default::default() };
        let opts = FedMpOptions { fixed_ratio: Some(0.6), ..Default::default() };
        let pruned = run_fedmp(&cfg, &setup, global.clone(), &opts);
        let full = crate::engines::synfl::run_synfl(&cfg, &setup, global);
        assert!(
            pruned.total_time() < 0.8 * full.total_time(),
            "pruning saved too little: {} vs {}",
            pruned.total_time(),
            full.total_time()
        );
    }

    #[test]
    fn r2sp_and_bsp_runs_both_complete() {
        let (task, devices) = small_setup(86);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(87);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 4, ..Default::default() };
        for sync in [SyncScheme::R2SP, SyncScheme::BSP] {
            let opts = FedMpOptions { sync, ..Default::default() };
            let h = run_fedmp(&cfg, &setup, global.clone(), &opts);
            assert_eq!(h.rounds.len(), 4);
        }
    }

    #[test]
    fn quantized_residuals_still_learn() {
        let (task, devices) = small_setup(90);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(91);
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 10, eval_every: 5, ..Default::default() };
        let exact = run_fedmp(&cfg, &setup, global.clone(), &FedMpOptions::default());
        let quant = run_fedmp(
            &cfg,
            &setup,
            global,
            &FedMpOptions { quantize_residuals: true, ..Default::default() },
        );
        let a = exact.final_accuracy().unwrap();
        let b = quant.final_accuracy().unwrap();
        // 8-bit residual storage must not meaningfully hurt training.
        assert!(b > a - 0.15, "quantized residuals degraded accuracy: {a} vs {b}");
    }

    #[test]
    fn compressed_links_still_learn() {
        // Adaptive wire-v2 compression (f16 downlink + int8 top-k
        // uplink with error feedback on the slow link) must stay within
        // tolerance of the dense baseline at matched rounds.
        let (task, devices) = small_setup(96);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(97);
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 10, eval_every: 5, ..Default::default() };
        let dense = run_fedmp(&cfg, &setup, global.clone(), &FedMpOptions::default());
        let opts = FedMpOptions {
            compression: crate::wire::CompressionPolicy::adaptive(),
            ..Default::default()
        };
        let compressed = run_fedmp(&cfg, &setup, global, &opts);
        let a = dense.final_accuracy().unwrap();
        let b = compressed.final_accuracy().unwrap();
        assert!(b > a - 0.15, "compressed links degraded accuracy: {a} vs {b}");
        // The slow (Far) link's communication got cheaper, so the
        // Eq. 5 completion times shift downward on the whole.
        let dense_comm: f64 = dense.rounds.iter().map(|r| r.mean_comm).sum();
        let comp_comm: f64 = compressed.rounds.iter().map(|r| r.mean_comm).sum();
        assert!(
            comp_comm < dense_comm,
            "compression did not shift Eq. 5 comm time: {dense_comm} vs {comp_comm}"
        );
    }

    #[test]
    fn compressed_runs_are_seed_reproducible() {
        let (task, devices) = small_setup(98);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(99);
        let global = zoo::cnn_mnist(0.15, &mut rng);
        let cfg = FlConfig { rounds: 4, eval_every: 2, ..Default::default() };
        let opts = FedMpOptions {
            compression: crate::wire::CompressionPolicy::adaptive(),
            ..Default::default()
        };
        let a = run_fedmp(&cfg, &setup, global.clone(), &opts);
        let b = run_fedmp(&cfg, &setup, global, &opts);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "compressed runs must be bit-identical under the same seed"
        );
    }

    #[test]
    fn fault_injection_drops_and_recovers_workers() {
        let (task, devices) = small_setup(92);
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(93);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 20, eval_every: 10, ..Default::default() };
        let opts = FedMpOptions {
            faults: Some(FaultOptions { fail_prob: 0.3, recover_rounds: 1, ..Default::default() }),
            ..Default::default()
        };
        let h = run_fedmp(&cfg, &setup, global, &opts);
        assert_eq!(h.rounds.len(), 20);
        // With 30% failure probability some rounds must run short-handed.
        let short_rounds = h.rounds.iter().filter(|r| r.ratios.len() < 4).count();
        assert!(short_rounds > 0, "no failures materialised");
        // And training still progresses (model evaluated at the end).
        assert!(h.final_accuracy().is_some());
    }

    #[test]
    fn deadline_caps_round_time() {
        let (task, _) = small_setup(94);
        // One pathological straggler.
        let devices = vec![
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
            tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
        ];
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        let mut rng = seeded_rng(95);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 2, ..Default::default() };
        let no_deadline = run_fedmp(
            &cfg,
            &setup,
            global.clone(),
            &FedMpOptions { fixed_ratio: Some(0.0), ..Default::default() },
        );
        let with_deadline = run_fedmp(
            &cfg,
            &setup,
            global,
            &FedMpOptions {
                fixed_ratio: Some(0.0),
                faults: Some(FaultOptions {
                    fail_prob: 0.0,
                    deadline_frac: 0.75,
                    deadline_factor: 1.1,
                    ..Default::default()
                }),
                ..Default::default()
            },
        );
        assert!(
            with_deadline.rounds[0].round_time < no_deadline.rounds[0].round_time,
            "deadline should cut the straggler's tail: {} vs {}",
            with_deadline.rounds[0].round_time,
            no_deadline.rounds[0].round_time
        );
    }

    #[test]
    fn runs_are_seed_reproducible() {
        let (task, devices) = small_setup(88);
        let setup = FlSetup::new(&task, devices.clone(), TimeModel::default());
        let mut rng = seeded_rng(89);
        let global = zoo::cnn_mnist(0.1, &mut rng);
        let cfg = FlConfig { rounds: 3, ..Default::default() };
        let a = run_fedmp(&cfg, &setup, global.clone(), &FedMpOptions::default());
        let b = run_fedmp(&cfg, &setup, global, &FedMpOptions::default());
        for (x, y) in a.rounds.iter().zip(b.rounds.iter()) {
            assert_eq!(x.ratios, y.ratios);
            assert_eq!(x.train_loss, y.train_loss);
            assert_eq!(x.sim_time, y.sim_time);
        }
    }
}
