//! Shared engine plumbing: configuration, per-round worker execution and
//! cost accounting.

use crate::history::RoundRecord;
use crate::local::LocalTrainConfig;
use crate::task::ImageTask;
use fedmp_data::BatchIter;
use fedmp_edgesim::{DeviceProfile, RoundCost, RoundTime, TimeModel};
use fedmp_nn::{model_cost, Sequential};
use fedmp_obs::TraceEvent;
use fedmp_tensor::parallel::KernelStats;
use fedmp_tensor::seeded_rng;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Engine-level configuration shared by every method.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlConfig {
    /// Number of aggregation rounds K.
    pub rounds: usize,
    /// Local-update hyper-parameters.
    pub local: LocalTrainConfig,
    /// Evaluate the global model every this many rounds (1 = every
    /// round).
    pub eval_every: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Cap on evaluated test samples (keeps the experiment suite fast).
    pub eval_max_samples: usize,
    /// Master seed; all per-worker/per-round randomness derives from it.
    pub seed: u64,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            rounds: 30,
            local: LocalTrainConfig::default(),
            eval_every: 1,
            eval_batch: 64,
            eval_max_samples: 512,
            seed: 0,
        }
    }
}

/// Scale factors mapping a width-reduced model's costs back to the
/// paper-sized architecture's, so simulated completion times stay in a
/// realistic range while training remains laptop-scale. Relative results
/// (speedups, crossovers) are unaffected — every method is scaled
/// identically.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostScale {
    /// Multiplier on training FLOPs.
    pub flops: f64,
    /// Multiplier on transferred bytes.
    pub bytes: f64,
}

impl Default for CostScale {
    fn default() -> Self {
        CostScale { flops: 1.0, bytes: 1.0 }
    }
}

/// The simulated deployment an engine runs against.
#[derive(Debug, Clone)]
pub struct FlSetup<'a> {
    /// The federated task (data + partition).
    pub task: &'a ImageTask,
    /// One device profile per worker (must match the partition width).
    pub devices: Vec<DeviceProfile>,
    /// The virtual-clock time model.
    pub time: TimeModel,
    /// Width-compensation factors applied to every simulated cost.
    pub cost_scale: CostScale,
}

impl<'a> FlSetup<'a> {
    /// Builds a setup, checking worker counts agree.
    pub fn new(task: &'a ImageTask, devices: Vec<DeviceProfile>, time: TimeModel) -> Self {
        assert_eq!(devices.len(), task.workers(), "device count must match partition");
        FlSetup { task, devices, time, cost_scale: CostScale::default() }
    }

    /// Same, with explicit cost-scale factors.
    pub fn with_cost_scale(
        task: &'a ImageTask,
        devices: Vec<DeviceProfile>,
        time: TimeModel,
        cost_scale: CostScale,
    ) -> Self {
        let mut s = Self::new(task, devices, time);
        s.cost_scale = cost_scale;
        s
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.devices.len()
    }

    /// The width-compensated cost of one round: `cost` with the
    /// [`CostScale`] factors applied — the FLOPs and on-wire bytes the
    /// virtual clock (and the trace events) are computed from.
    pub fn scaled_cost(&self, cost: &RoundCost) -> RoundCost {
        RoundCost {
            train_flops: cost.train_flops * self.cost_scale.flops,
            download_bytes: cost.download_bytes * self.cost_scale.bytes,
            upload_bytes: cost.upload_bytes * self.cost_scale.bytes,
        }
    }

    /// Simulates one worker round after applying the cost scale.
    pub fn simulate_round(
        &self,
        worker: usize,
        cost: &RoundCost,
        rng: &mut StdRng,
    ) -> fedmp_edgesim::RoundTime {
        self.time.round_time(&self.devices[worker], &self.scaled_cost(cost), rng)
    }
}

/// Synchronisation scheme toggle for the FedMP engine (Fig. 7 compares
/// R2SP against BSP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncScheme {
    /// Residual Recovery Synchronous Parallel (the paper's scheme).
    R2SP,
    /// Traditional BSP: average recovered models without residuals.
    BSP,
}

/// Deterministic per-(seed, round, worker) RNG, independent of how the
/// round executor schedules the per-worker work.
pub(crate) fn worker_rng(seed: u64, round: usize, worker: usize) -> StdRng {
    // SplitMix-style mixing of the three coordinates.
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round as u64 + 1))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(worker as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    seeded_rng(z ^ (z >> 31))
}

/// Builds a fresh mini-batch iterator over a worker's shard for one
/// round.
pub(crate) fn worker_batches<'d>(
    task: &'d ImageTask,
    worker: usize,
    batch: usize,
    seed: u64,
    round: usize,
) -> BatchIter<'d> {
    BatchIter::new(
        &task.train,
        task.partition[worker].clone(),
        batch,
        worker_rng(seed, round, worker),
    )
}

/// The Eq. 5 cost of one round with the given (sub-)model: download +
/// upload of its parameters, and τ training iterations at the model's
/// *actual* FLOP count.
pub(crate) fn model_round_cost(
    model: &Sequential,
    chw: (usize, usize, usize),
    local: &LocalTrainConfig,
) -> RoundCost {
    let report = model_cost(model, chw);
    RoundCost {
        train_flops: report.train_flops_per_sample() as f64 * local.batch as f64 * local.tau as f64,
        download_bytes: report.param_bytes() as f64,
        upload_bytes: report.param_bytes() as f64,
    }
}

/// Per-worker completion times for a round; returns the per-worker
/// [`RoundTime`]s plus the mean compute and comm seconds column-wise.
pub(crate) fn round_times(
    setup: &FlSetup<'_>,
    costs: &[RoundCost],
    seed: u64,
    round: usize,
) -> (Vec<RoundTime>, f64, f64) {
    let mut times = Vec::with_capacity(costs.len());
    let mut comp_sum = 0.0;
    let mut comm_sum = 0.0;
    for (w, cost) in costs.iter().enumerate() {
        let mut rng = worker_rng(seed ^ 0xA5A5, round, w);
        let t = setup.simulate_round(w, cost, &mut rng);
        comp_sum += t.comp;
        comm_sum += t.comm;
        times.push(t);
    }
    let n = costs.len().max(1) as f64;
    (times, comp_sum / n, comm_sum / n)
}

/// The round barrier `maxₙ Tₙ` over per-worker round times.
pub(crate) fn barrier_time(times: &[RoundTime]) -> f64 {
    times.iter().map(|t| t.total()).fold(0.0, f64::max)
}

// ---- observability hooks -------------------------------------------------
//
// Thin wrappers over `fedmp_obs::emit` so every engine emits the same
// event shapes in the same order: RoundStart → LocalTrain (worker
// order) → BanditDecision (from the agents) → Aggregate →
// KernelDispatch → RoundEnd. All are no-ops (one relaxed atomic load)
// while no trace session is active.

/// Emits `RoundStart` with an explicit online set.
pub(crate) fn emit_round_start(round: usize, sim_time: f64, online: &[usize]) {
    fedmp_obs::emit(|| TraceEvent::RoundStart { round, sim_time, online: online.to_vec() });
}

/// Emits `RoundStart` with every worker online.
pub(crate) fn emit_round_start_all(round: usize, sim_time: f64, workers: usize) {
    fedmp_obs::emit(|| TraceEvent::RoundStart { round, sim_time, online: (0..workers).collect() });
}

/// Emits one worker's `LocalTrain` event from its outcome, virtual
/// round time and **scaled** round cost.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_local_train(
    round: usize,
    worker: usize,
    ratio: f32,
    loss: f32,
    delta_loss: f32,
    tau: usize,
    samples: usize,
    t: &RoundTime,
    scaled: &RoundCost,
) {
    let (comp_secs, comm_secs) = (t.comp, t.comm);
    let (bytes_down, bytes_up) = (scaled.download_bytes, scaled.upload_bytes);
    fedmp_obs::emit(|| TraceEvent::LocalTrain {
        round,
        worker,
        ratio,
        loss,
        delta_loss,
        tau,
        samples,
        comp_secs,
        comm_secs,
        bytes_down,
        bytes_up,
    });
}

/// Emits `Aggregate`.
pub(crate) fn emit_aggregate(round: usize, scheme: &str, participants: usize) {
    let scheme = scheme.to_string();
    fedmp_obs::emit(move || TraceEvent::Aggregate { round, scheme, participants });
}

/// Emits `FrameRetransmit` for one retransmit request.
pub(crate) fn emit_frame_retransmit(round: usize, worker: usize, attempt: u32, backoff_secs: f64) {
    fedmp_obs::emit(|| TraceEvent::FrameRetransmit { round, worker, attempt, backoff_secs });
}

/// Emits `WorkerExcluded` for one discarded contribution.
pub(crate) fn emit_worker_excluded(round: usize, worker: usize, reason: &str) {
    let reason = reason.to_string();
    fedmp_obs::emit(move || TraceEvent::WorkerExcluded { round, worker, reason });
}

/// Emits `WorkerRejoined` for one restarted worker thread.
pub(crate) fn emit_worker_rejoined(round: usize, worker: usize) {
    fedmp_obs::emit(|| TraceEvent::WorkerRejoined { round, worker });
}

/// Emits `ConnEstablished` for one socket-transport reconnect.
pub(crate) fn emit_conn_established(round: usize, worker: usize, attempts: u32) {
    fedmp_obs::emit(|| TraceEvent::ConnEstablished { round, worker, attempts });
}

/// Emits `FrameTimeout` for one frame the chaos plane dropped on the
/// wire (`direction` is `"down"` or `"up"`).
pub(crate) fn emit_frame_timeout(round: usize, worker: usize, direction: &str) {
    let direction = direction.to_string();
    fedmp_obs::emit(move || TraceEvent::FrameTimeout { round, worker, direction });
}

/// Emits `ConnReset` for one chaos-severed worker connection.
pub(crate) fn emit_conn_reset(round: usize, worker: usize) {
    fedmp_obs::emit(|| TraceEvent::ConnReset { round, worker });
}

/// Emits `NodeRespawned` for one restarted worker process.
pub(crate) fn emit_node_respawned(round: usize, worker: usize, generation: u32) {
    fedmp_obs::emit(|| TraceEvent::NodeRespawned { round, worker, generation });
}

/// Emits `QuorumAggregate` for a partial-but-quorate round.
pub(crate) fn emit_quorum_aggregate(
    round: usize,
    quorum: usize,
    participants: usize,
    excluded: usize,
) {
    fedmp_obs::emit(|| TraceEvent::QuorumAggregate { round, quorum, participants, excluded });
}

/// Emits `RoundEnd` mirroring the record the engine is about to push.
/// The NaN `train_loss` of an all-offline fault round becomes `None`
/// (JSON has no NaN).
pub(crate) fn emit_round_end(r: &RoundRecord) {
    fedmp_obs::emit(|| TraceEvent::RoundEnd {
        round: r.round,
        sim_time: r.sim_time,
        round_time: r.round_time,
        mean_comp: r.mean_comp,
        mean_comm: r.mean_comm,
        train_loss: if r.train_loss.is_finite() { Some(r.train_loss) } else { None },
        eval_loss: r.eval.map(|e| e.0),
        eval_metric: r.eval.map(|e| e.1),
    });
}

/// Emits `CodecSelected` for one worker's resolved codec pair.
pub(crate) fn emit_codec_selected(
    round: usize,
    worker: usize,
    pair: &crate::wire::LinkCodecs,
    slow_link: bool,
) {
    let (downlink, uplink) = (pair.downlink.label(), pair.uplink.label());
    fedmp_obs::emit(move || TraceEvent::CodecSelected {
        round,
        worker,
        downlink,
        uplink,
        slow_link,
    });
}

/// Emits `CompressionApplied` for one direction of a worker's exchange.
pub(crate) fn emit_compression_applied(
    round: usize,
    worker: usize,
    direction: &'static str,
    codec: crate::wire::Codec,
    dense_bytes: u64,
    wire_bytes: u64,
) {
    fedmp_obs::emit(move || TraceEvent::CompressionApplied {
        round,
        worker,
        direction: direction.to_string(),
        codec: codec.label(),
        dense_bytes,
        wire_bytes,
    });
}

/// Emits `CohortSampled` for a population-scale round's topology.
pub(crate) fn emit_cohort_sampled(
    round: usize,
    population: u64,
    cohort: usize,
    shards: usize,
    edges: usize,
) {
    fedmp_obs::emit(|| TraceEvent::CohortSampled { round, population, cohort, shards, edges });
}

/// Emits `ShardReduced` for one streaming shard reducer.
pub(crate) fn emit_shard_reduced(round: usize, shard: usize, clients: usize, peak_bytes: u64) {
    fedmp_obs::emit(|| TraceEvent::ShardReduced { round, shard, clients, peak_bytes });
}

/// Emits `EdgeAggregate` for one edge aggregator's upload.
pub(crate) fn emit_edge_aggregate(
    round: usize,
    edge: usize,
    shards: usize,
    clients: usize,
    delivered: bool,
    retries: u32,
) {
    fedmp_obs::emit(|| TraceEvent::EdgeAggregate {
        round,
        edge,
        shards,
        clients,
        delivered,
        retries,
    });
}

/// Snapshot of the kernel-scheduler counters, taken at engine start as
/// the baseline for per-round `KernelDispatch` deltas.
pub(crate) fn kernel_baseline() -> KernelStats {
    fedmp_tensor::parallel::kernel_stats()
}

/// Emits `KernelDispatch` with the counter deltas since `prev` and
/// advances `prev`. Skipped entirely (baseline untouched) while tracing
/// is disabled.
pub(crate) fn emit_kernel_dispatch(round: usize, prev: &mut KernelStats) {
    if !fedmp_obs::enabled() {
        return;
    }
    let now = fedmp_tensor::parallel::kernel_stats();
    let dispatches = now.dispatches - prev.dispatches;
    let bands = now.bands - prev.bands;
    let gemm_simd_dense = now.gemm_simd_dense - prev.gemm_simd_dense;
    let gemm_scalar_dense = now.gemm_scalar_dense - prev.gemm_scalar_dense;
    let gemm_simd_pruned = now.gemm_simd_pruned - prev.gemm_simd_pruned;
    let gemm_scalar_pruned = now.gemm_scalar_pruned - prev.gemm_scalar_pruned;
    fedmp_obs::emit(|| TraceEvent::KernelDispatch {
        round,
        dispatches,
        bands,
        gemm_simd_dense,
        gemm_scalar_dense,
        gemm_simd_pruned,
        gemm_scalar_pruned,
    });
    *prev = now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_nn::zoo;

    #[test]
    fn worker_rng_is_coordinate_deterministic() {
        use rand::Rng;
        let a: u64 = worker_rng(1, 2, 3).gen();
        let b: u64 = worker_rng(1, 2, 3).gen();
        let c: u64 = worker_rng(1, 2, 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pruned_model_has_cheaper_round_cost() {
        let mut rng = seeded_rng(60);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let local = LocalTrainConfig::default();
        let full = model_round_cost(&m, (1, 28, 28), &local);
        let plan = fedmp_pruning::plan_sequential(&m, (1, 28, 28), 0.6);
        let sub = fedmp_pruning::extract_sequential(&m, &plan);
        let pruned = model_round_cost(&sub, (1, 28, 28), &local);
        assert!(pruned.train_flops < full.train_flops);
        assert!(pruned.upload_bytes < full.upload_bytes);
    }

    #[test]
    fn setup_validates_device_count() {
        let (train, test) = mnist_like(0.05, 61).generate();
        let mut rng = seeded_rng(62);
        let part = iid_partition(&train, 3, &mut rng);
        let task = ImageTask::new(train, test, part);
        let devices = vec![
            fedmp_edgesim::tx2_profile(
                fedmp_edgesim::ComputeMode::Mode0,
                fedmp_edgesim::LinkQuality::Near,
            );
            3
        ];
        let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
        assert_eq!(setup.workers(), 3);
    }
}
