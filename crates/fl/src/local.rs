//! Local SGD on a worker's shard — the `②` phase of Fig. 1.

use fedmp_data::BatchIter;
use fedmp_nn::{add_proximal_grad, clip_grad_norm, Sequential, Sgd};
use fedmp_tensor::cross_entropy_loss;
use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Local-update hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalTrainConfig {
    /// Local SGD iterations per round (the paper's τ).
    pub tau: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate γ.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// FedProx proximal coefficient μ (0 disables the term).
    pub prox_mu: f32,
    /// Gradient-norm clip (0 disables). Keeps the small synthetic tasks
    /// stable at aggressive learning rates.
    pub clip: f32,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        LocalTrainConfig { tau: 5, batch: 16, lr: 0.05, momentum: 0.9, prox_mu: 0.0, clip: 5.0 }
    }
}

/// What local training reports back to the PS.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalOutcome {
    /// Loss of the first mini-batch (before any update this round).
    pub first_loss: f32,
    /// Loss of the last mini-batch (after τ−1 updates).
    pub last_loss: f32,
    /// Mean training loss over the round.
    pub mean_loss: f32,
    /// Samples processed.
    pub samples: usize,
}

impl LocalOutcome {
    /// The round's loss improvement — the ΔLoss numerator of the E-UCB
    /// reward (Eq. 8).
    pub fn delta_loss(&self) -> f32 {
        self.first_loss - self.last_loss
    }
}

/// Runs τ iterations of (proximal) SGD on `model` over the worker's
/// shard. The FedProx anchor is the model state at round start.
pub fn local_train(
    model: &mut Sequential,
    batches: &mut BatchIter<'_>,
    cfg: &LocalTrainConfig,
) -> LocalOutcome {
    assert!(cfg.tau > 0, "tau must be positive");
    let anchor: Vec<Tensor> =
        if cfg.prox_mu > 0.0 { fedmp_nn::snapshot_params(model) } else { Vec::new() };
    let mut opt = Sgd::with_momentum(cfg.lr, cfg.momentum, 0.0);
    let mut first_loss = 0.0f32;
    let mut last_loss = 0.0f32;
    let mut total_loss = 0.0f32;
    let mut samples = 0usize;

    for t in 0..cfg.tau {
        let (x, labels) = batches.next_batch();
        model.zero_grad();
        let logits = model.forward(&x, true);
        let out = cross_entropy_loss(&logits, &labels);
        model.backward(&out.grad_logits);
        if cfg.prox_mu > 0.0 {
            add_proximal_grad(model, &anchor, cfg.prox_mu);
        }
        if cfg.clip > 0.0 {
            clip_grad_norm(model, cfg.clip);
        }
        opt.step(model);

        if t == 0 {
            first_loss = out.loss;
        }
        last_loss = out.loss;
        total_loss += out.loss;
        samples += labels.len();
    }
    LocalOutcome { first_loss, last_loss, mean_loss: total_loss / cfg.tau as f32, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_data::{iid_partition, mnist_like};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn local_training_reduces_loss() {
        let (train, _) = mnist_like(0.1, 40).generate();
        let mut rng = seeded_rng(1);
        let part = iid_partition(&train, 2, &mut rng);
        let mut model = zoo::cnn_mnist(0.15, &mut rng);
        let mut it = BatchIter::new(&train, part[0].clone(), 16, seeded_rng(2));
        let cfg = LocalTrainConfig { tau: 30, ..Default::default() };
        let out = local_train(&mut model, &mut it, &cfg);
        assert!(out.last_loss < out.first_loss, "{} -> {}", out.first_loss, out.last_loss);
        // 30 iterations at batch 16, but epoch-boundary batches may be
        // short — the count is bounded, not exact.
        assert!(out.samples > 20 * 16 && out.samples <= 30 * 16, "samples {}", out.samples);
        assert!(out.delta_loss() > 0.0);
    }

    #[test]
    fn proximal_term_limits_drift() {
        let (train, _) = mnist_like(0.05, 41).generate();
        let mut rng = seeded_rng(3);
        let part = iid_partition(&train, 1, &mut rng);
        let drift = |mu: f32| {
            let mut model = zoo::cnn_mnist(0.1, &mut seeded_rng(4));
            let before = fedmp_nn::snapshot_params(&mut model);
            let mut it = BatchIter::new(&train, part[0].clone(), 8, seeded_rng(5));
            let cfg = LocalTrainConfig { tau: 15, prox_mu: mu, ..Default::default() };
            local_train(&mut model, &mut it, &cfg);
            let after = fedmp_nn::snapshot_params(&mut model);
            before.iter().zip(after.iter()).map(|(a, b)| a.sq_distance(b)).sum::<f32>()
        };
        assert!(drift(1.0) < drift(0.0), "proximal term should shrink drift");
    }
}
