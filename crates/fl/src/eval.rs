//! PS-side evaluation on the held-out test set.

use fedmp_data::{ImageDataset, TextBatch};
use fedmp_nn::{LstmLm, Sequential};
use fedmp_tensor::cross_entropy_loss;
use serde::{Deserialize, Serialize};

/// Test-set metrics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EvalResult {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Samples evaluated.
    pub samples: usize,
}

/// Evaluates a classifier in inference mode over (at most
/// `max_samples` of) the test set.
pub fn evaluate_image(
    model: &mut Sequential,
    test: &ImageDataset,
    batch: usize,
    max_samples: usize,
) -> EvalResult {
    let n = test.len().min(max_samples.max(1));
    let mut correct = 0usize;
    let mut loss_sum = 0.0f64;
    let mut seen = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let indices: Vec<usize> = (start..end).collect();
        let (x, labels) = test.gather(&indices);
        let logits = model.forward(&x, false);
        let out = cross_entropy_loss(&logits, &labels);
        correct += out.correct;
        loss_sum += out.loss as f64 * labels.len() as f64;
        seen += labels.len();
        start = end;
    }
    EvalResult {
        loss: (loss_sum / seen as f64) as f32,
        accuracy: correct as f32 / seen as f32,
        samples: seen,
    }
}

/// Evaluates a language model over pre-built batches; returns mean
/// cross-entropy in `loss` and **perplexity** (`exp(loss)`) in place of
/// accuracy — matching the paper's Table IV metric.
pub fn evaluate_lm(model: &mut LstmLm, batches: &[TextBatch], max_batches: usize) -> EvalResult {
    let take = batches.len().min(max_batches.max(1));
    assert!(take > 0, "no evaluation batches");
    let mut loss_sum = 0.0f64;
    let mut tokens = 0usize;
    for b in &batches[..take] {
        let logits = model.forward(&b.inputs);
        let out = cross_entropy_loss(&logits, &b.targets);
        loss_sum += out.loss as f64 * b.targets.len() as f64;
        tokens += b.targets.len();
    }
    let mean = (loss_sum / tokens as f64) as f32;
    EvalResult { loss: mean, accuracy: mean.exp(), samples: tokens }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_data::{mnist_like, ptb_like};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn untrained_model_is_near_chance() {
        let (_, test) = mnist_like(0.5, 50).generate();
        let mut rng = seeded_rng(6);
        let mut m = zoo::cnn_mnist(0.1, &mut rng);
        let r = evaluate_image(&mut m, &test, 32, 200);
        assert!(r.accuracy < 0.35, "untrained accuracy {}", r.accuracy);
        // Random-init logits are not exactly uniform; loss sits near but
        // not at ln(10) ≈ 2.3.
        assert!(r.loss > 1.5 && r.loss < 15.0, "untrained loss {}", r.loss);
        assert_eq!(r.samples, 200);
    }

    #[test]
    fn max_samples_caps_work() {
        let (_, test) = mnist_like(0.5, 51).generate();
        let mut rng = seeded_rng(7);
        let mut m = zoo::cnn_mnist(0.1, &mut rng);
        let r = evaluate_image(&mut m, &test, 32, 64);
        assert_eq!(r.samples, 64);
    }

    #[test]
    fn lm_perplexity_of_uniform_model_is_near_vocab() {
        let corpus = ptb_like(20, 3000, 8);
        let batches = corpus.batches(4, 8);
        let mut rng = seeded_rng(9);
        let mut lm = zoo::lstm_ptb(20, 0.1, &mut rng);
        let r = evaluate_lm(&mut lm, &batches, 8);
        // An untrained LM is roughly uniform: perplexity ≈ vocab.
        assert!(r.accuracy > 8.0 && r.accuracy < 40.0, "perplexity {}", r.accuracy);
    }
}
