//! Binary wire formats for PS ↔ worker model exchange.
//!
//! The loop engines account for communication analytically (4 bytes per
//! parameter); this module is the *actual* serialisation used by the
//! threaded runtime ([`crate::runtime`]): a length-prefixed,
//! checksummed frame holding a model snapshot. [`wire_size`] computes
//! the exact frame size (name table + tensors) analytically, giving the
//! engines a precise byte count without an encoding pass and letting
//! [`encode_state`] pre-size its buffer in one allocation.
//!
//! v1 frame layout (little-endian):
//!
//! ```text
//! magic  u32 = 0xFED7_7A1E
//! entry_count u32
//! per entry:
//!   name_len u16, name bytes (UTF-8)
//!   trainable u8
//!   rank u8, dims u32 × rank
//!   payload f32 × numel
//! checksum u32 (FNV-1a over everything after the magic)
//! ```
//!
//! ## Wire format v2: compressed payloads
//!
//! v2 frames carry the same entry table but let the tensor payload be
//! encoded by a [`Codec`] — dense `f32` (bit-identical to v1 payloads),
//! dense `f16`, symmetric per-tensor `int8`, or a top-k sparse *delta*
//! against a reference snapshot both ends already share (the last
//! model the receiver acknowledged). Lossy codecs pair with a
//! per-worker [`ErrorFeedback`] accumulator that folds each round's
//! encode residual into the next round's payload, so nothing is
//! permanently lost. Which codec a device uses is decided by a
//! [`CompressionPolicy`] from its edgesim bandwidth profile.
//!
//! v2 frame layout (little-endian):
//!
//! ```text
//! magic  u32 = 0xFED7_7A2E
//! codec  u8 (0 = dense-f32, 1 = dense-f16, 2 = int8,
//!            3 = top-k f32, 4 = top-k int8)
//! keep   f32 (top-k codecs only: the configured keep fraction)
//! entry_count u32
//! per entry:
//!   name_len u16, name bytes (UTF-8)
//!   trainable u8
//!   rank u8, dims u32 × rank
//!   payload (see below)
//! checksum u32 (FNV-1a over everything after the magic)
//! ```
//!
//! Per-entry payloads by codec (`n` = numel, `k` = [`topk_len`]`(n)`):
//!
//! | codec | payload | bytes |
//! |---|---|---|
//! | dense-f32 | `f32 × n` | `4n` |
//! | dense-f16 | `u16 × n` (IEEE binary16 bits) | `2n` |
//! | int8 | `scale f32`, `i8 × n` | `4 + n` |
//! | top-k f32 | `k u32`, `idx u32 × k`, `val f32 × k` | `4 + 8k` |
//! | top-k int8 | `k u32`, `scale f32`, `idx u32 × k`, `val i8 × k` | `8 + 5k` |
//!
//! Because `k` is an analytic function of the tensor shape alone,
//! [`wire_size_v2`] stays data-independent and [`encode_state_v2`]
//! pre-sizes its buffer exactly, like v1.
//!
//! **Determinism.** Decoding a v2 frame is *exact* with respect to what
//! was encoded: all lossiness happens at encode time, and the encoder
//! can predict the receiver's reconstruction bit-for-bit via
//! [`codec_delivered`] (the shared compress/reconstruct core). Top-k
//! selection uses `f32::total_cmp` with an index tie-break, so the
//! transmitted support is a pure function of the input bits — no
//! thread-count or iteration-order dependence anywhere.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fedmp_edgesim::DeviceProfile;
use fedmp_nn::StateEntry;
use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

const MAGIC: u32 = 0xFED7_7A1E;
const MAGIC2: u32 = 0xFED7_7A2E;

/// Errors while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame does not start with the protocol magic.
    BadMagic,
    /// Frame ended before the declared content.
    Truncated,
    /// Checksum mismatch (corrupted frame).
    BadChecksum,
    /// Malformed entry (bad UTF-8 name or impossible shape).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

// ---------------------------------------------------------------------
// v1: dense f32 frames
// ---------------------------------------------------------------------

/// Encodes a model snapshot into a (v1, dense `f32`) wire frame.
///
/// The buffer is pre-sized from [`wire_size`], so encoding performs a
/// single allocation and never reallocates mid-frame — backed by a
/// `debug_assert` below and a capacity test.
pub fn encode_state(state: &[StateEntry]) -> Bytes {
    let size = wire_size(state);
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(state.len() as u32);
    for e in state {
        put_entry_header(&mut buf, e);
        for &v in e.tensor.data() {
            buf.put_f32_le(v);
        }
    }
    let checksum = fnv1a(&buf[4..]);
    buf.put_u32_le(checksum);
    debug_assert_eq!(buf.len(), size, "analytic wire_size disagrees with encoded frame");
    buf.freeze()
}

fn put_entry_header(buf: &mut BytesMut, e: &StateEntry) {
    assert!(e.name.len() <= u16::MAX as usize, "entry name too long");
    buf.put_u16_le(e.name.len() as u16);
    buf.put_slice(e.name.as_bytes());
    buf.put_u8(e.trainable as u8);
    let dims = e.tensor.dims();
    assert!(dims.len() <= u8::MAX as usize, "tensor rank too high");
    buf.put_u8(dims.len() as u8);
    for &d in dims {
        buf.put_u32_le(d as u32);
    }
}

/// Cheap transport-integrity check: verifies only the magic (v1 or v2)
/// and the trailing FNV-1a checksum, without building tensors. This is
/// what the threaded runtime's PS runs on every arriving upload to
/// decide between accepting the frame and requesting a retransmit — a
/// frame that fails here is corrupt in transit; a frame that passes can
/// only fail decoding through an encoder-side protocol violation.
pub fn frame_checksum_ok(frame: &[u8]) -> bool {
    if frame.len() < 12 {
        return false;
    }
    let magic = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
    if magic != MAGIC && magic != MAGIC2 {
        return false;
    }
    let tail = frame.len() - 4;
    let declared =
        u32::from_le_bytes([frame[tail], frame[tail + 1], frame[tail + 2], frame[tail + 3]]);
    fnv1a(&frame[4..tail]) == declared
}

/// Decodes a frame produced by [`encode_state`].
pub fn decode_state(frame: &[u8]) -> Result<Vec<StateEntry>, WireError> {
    if frame.len() < 12 {
        return Err(WireError::Truncated);
    }
    let mut buf = frame;
    if buf.get_u32_le() != MAGIC {
        return Err(WireError::BadMagic);
    }
    let body = &frame[4..frame.len() - 4];
    let tail = frame.len() - 4;
    let declared =
        u32::from_le_bytes([frame[tail], frame[tail + 1], frame[tail + 2], frame[tail + 3]]);
    if fnv1a(body) != declared {
        return Err(WireError::BadChecksum);
    }

    let count = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    // `buf` still includes the trailing checksum; track remaining
    // content length explicitly.
    let mut remaining = frame.len() - 8 - 4;
    let need = |n: usize, remaining: &mut usize| -> Result<(), WireError> {
        if *remaining < n {
            return Err(WireError::Truncated);
        }
        *remaining -= n;
        Ok(())
    };
    for _ in 0..count {
        need(2, &mut remaining)?;
        let name_len = buf.get_u16_le() as usize;
        need(name_len + 2, &mut remaining)?;
        let name = std::str::from_utf8(&buf[..name_len])
            .map_err(|_| WireError::Malformed("entry name is not UTF-8"))?
            .to_string();
        buf.advance(name_len);
        let trainable = match buf.get_u8() {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed("trainable flag")),
        };
        let rank = buf.get_u8() as usize;
        if rank == 0 {
            return Err(WireError::Malformed("zero-rank tensor"));
        }
        need(4 * rank, &mut remaining)?;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(buf.get_u32_le() as usize);
        }
        let numel = checked_numel(&dims)?;
        need(checked_mul(4, numel)?, &mut remaining)?;
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        let tensor =
            Tensor::from_vec(data, &dims).map_err(|_| WireError::Malformed("tensor shape"))?;
        out.push(StateEntry { name, tensor, trainable });
    }
    if remaining != 0 {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(out)
}

/// Exact wire size of a (v1) snapshot frame, in bytes, computed
/// analytically from the frame layout (no encoding pass): magic + entry
/// count, then per entry the name length prefix and bytes, trainable
/// flag, rank byte, `u32` dims and `f32` payload, then the trailing
/// checksum.
pub fn wire_size(state: &[StateEntry]) -> usize {
    let payload: usize = state
        .iter()
        .map(|e| 2 + e.name.len() + 1 + 1 + 4 * e.tensor.dims().len() + 4 * e.tensor.numel())
        .sum();
    8 + payload + 4
}

fn checked_numel(dims: &[usize]) -> Result<usize, WireError> {
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(WireError::Malformed("tensor shape overflow"))
}

fn checked_mul(a: usize, b: usize) -> Result<usize, WireError> {
    a.checked_mul(b).ok_or(WireError::Malformed("payload length overflow"))
}

// ---------------------------------------------------------------------
// f16 bit conversion (IEEE 754 binary16, round-to-nearest-even)
// ---------------------------------------------------------------------

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to nearest
/// with ties to even. Overflow saturates to ±Inf, underflow flushes to
/// signed zero through the subnormal range, NaNs become quiet NaN.
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf / NaN: keep the class, quiet any NaN payload.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let e = exp - 127;
    if e >= 16 {
        return sign | 0x7C00; // overflow → ±Inf
    }
    if e >= -14 {
        // Normal f16: round the 23-bit mantissa to 10 bits.
        let mut m = mant >> 13;
        let rem = mant & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut he = (e + 15) as u32;
        if m == 0x400 {
            // Rounded past 10 bits: carry into the exponent.
            m = 0;
            he += 1;
            if he >= 31 {
                return sign | 0x7C00;
            }
        }
        return sign | ((he as u16) << 10) | (m as u16);
    }
    if e >= -25 {
        // Subnormal f16: shift the implicit leading 1 into the mantissa.
        let full = mant | 0x0080_0000;
        let shift = (13 - 14 - e) as u32;
        let mut m = full >> shift;
        let half = 1u32 << (shift - 1);
        let rem = full & ((1u32 << shift) - 1);
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1;
        }
        // A carry out of the subnormal range lands exactly on the
        // smallest normal encoding (0x0400), which is correct as-is.
        return sign | m as u16;
    }
    sign // underflow → signed zero
}

/// Converts IEEE 754 binary16 bits to the exactly-representable `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m · 2⁻²⁴, renormalised for f32.
            let p = 31 - m.leading_zeros(); // top set bit, 0..=9
            let e = p + 103; // (p − 24) + 127
            let frac = (m << (23 - p)) & 0x007F_FFFF;
            sign | (e << 23) | frac
        }
        (31, 0) => sign | 0x7F80_0000,
        (31, _) => sign | 0x7FC0_0000, // quiet NaN
        (e, m) => sign | ((e + 112) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

// ---------------------------------------------------------------------
// Codecs and compression policy
// ---------------------------------------------------------------------

/// A v2 payload codec: how one frame's tensor data is carried.
///
/// The top-k codecs transmit a sparse **delta** against a reference
/// snapshot both ends already share (the last model the receiver
/// acknowledged); without a reference the delta is taken against zeros,
/// i.e. the absolute values. Every lossy codec composes with
/// [`ErrorFeedback`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Codec {
    /// Dense `f32` — lossless, byte-identical payload to v1.
    DenseF32,
    /// Dense IEEE binary16 — 2 bytes/parameter, ~2⁻¹¹ relative error.
    DenseF16,
    /// Symmetric per-tensor 8-bit quantization — 1 byte/parameter plus
    /// one `f32` scale, error bounded by `scale / 2 = max|x| / 254`.
    Int8,
    /// Top-k sparse delta with `f32` values.
    TopK {
        /// Fraction of coordinates transmitted per tensor, in (0, 1].
        keep: f32,
    },
    /// Top-k sparse delta with int8-quantized values — the slow-link
    /// workhorse: ~`5k` bytes for `k = keep · numel` coordinates.
    TopKInt8 {
        /// Fraction of coordinates transmitted per tensor, in (0, 1].
        keep: f32,
    },
}

impl Codec {
    /// Human-readable codec name, used in trace events and reports.
    pub fn label(&self) -> String {
        match *self {
            Codec::DenseF32 => "dense-f32".to_string(),
            Codec::DenseF16 => "dense-f16".to_string(),
            Codec::Int8 => "int8".to_string(),
            Codec::TopK { keep } => format!("topk({keep})"),
            Codec::TopKInt8 { keep } => format!("topk-int8({keep})"),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Codec::DenseF32 => 0,
            Codec::DenseF16 => 1,
            Codec::Int8 => 2,
            Codec::TopK { .. } => 3,
            Codec::TopKInt8 { .. } => 4,
        }
    }

    fn keep(&self) -> Option<f32> {
        match *self {
            Codec::TopK { keep } | Codec::TopKInt8 { keep } => Some(keep),
            _ => None,
        }
    }

    /// Exact per-entry payload bytes for a tensor of `numel` elements —
    /// an analytic function of the shape alone, never of the data.
    pub fn payload_bytes(&self, numel: usize) -> usize {
        match *self {
            Codec::DenseF32 => 4 * numel,
            Codec::DenseF16 => 2 * numel,
            Codec::Int8 => 4 + numel,
            Codec::TopK { keep } => 4 + 8 * topk_len(numel, keep),
            Codec::TopKInt8 { keep } => 8 + 5 * topk_len(numel, keep),
        }
    }
}

/// The number of coordinates a top-k codec transmits for a tensor of
/// `numel` elements at the given keep fraction: `⌈keep · numel⌉`,
/// clamped into `[1, numel]` (0 for empty tensors). Analytic, so
/// [`wire_size_v2`] never depends on tensor values.
pub fn topk_len(numel: usize, keep: f32) -> usize {
    if numel == 0 {
        return 0;
    }
    (((numel as f64) * keep as f64).ceil() as usize).clamp(1, numel)
}

/// The codec pair one device uses for a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCodecs {
    /// PS → worker sub-model codec. Decoded against a zero reference,
    /// so delta codecs here carry absolute values.
    pub downlink: Codec,
    /// Worker → PS trained-model codec. Decoded against the sub-model
    /// the PS just sent, so delta codecs transmit the training update.
    pub uplink: Codec,
}

impl LinkCodecs {
    /// Dense `f32` both ways — the lossless v1-equivalent pair.
    pub fn dense() -> Self {
        LinkCodecs { downlink: Codec::DenseF32, uplink: Codec::DenseF32 }
    }
}

/// Per-device codec selection, driven by the edgesim bandwidth profile:
/// devices at or below `slow_link_bps` get the `slow` pair, everyone
/// else the `fast` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionPolicy {
    /// Bandwidth threshold (bits/s) separating slow from fast links.
    pub slow_link_bps: f64,
    /// Codec pair for fast links.
    pub fast: LinkCodecs,
    /// Codec pair for slow links.
    pub slow: LinkCodecs,
}

impl Default for CompressionPolicy {
    fn default() -> Self {
        CompressionPolicy::dense()
    }
}

impl CompressionPolicy {
    /// Everything dense `f32` — the default; engines take the exact
    /// legacy (v1) code path and histories stay bit-identical.
    pub fn dense() -> Self {
        CompressionPolicy {
            slow_link_bps: 0.0,
            fast: LinkCodecs::dense(),
            slow: LinkCodecs::dense(),
        }
    }

    /// The paper-style adaptive policy: fast links stay dense, slow
    /// links (at or below [`fedmp_edgesim::SLOW_LINK_BPS`]) download in
    /// `f16` and upload int8-quantized top-k deltas at a 10% keep
    /// fraction — roughly an 8× uplink reduction.
    pub fn adaptive() -> Self {
        CompressionPolicy {
            slow_link_bps: fedmp_edgesim::SLOW_LINK_BPS,
            fast: LinkCodecs::dense(),
            slow: LinkCodecs { downlink: Codec::DenseF16, uplink: Codec::TopKInt8 { keep: 0.1 } },
        }
    }

    /// Applies `codec` to every worker's uplink (downlink stays dense)
    /// regardless of bandwidth — the ablation-grid constructor.
    pub fn uniform_uplink(codec: Codec) -> Self {
        let pair = LinkCodecs { downlink: Codec::DenseF32, uplink: codec };
        CompressionPolicy { slow_link_bps: 0.0, fast: pair, slow: pair }
    }

    /// The codec pair for one device.
    pub fn select(&self, device: &DeviceProfile) -> LinkCodecs {
        if device.is_slow_link(self.slow_link_bps) {
            self.slow
        } else {
            self.fast
        }
    }

    /// Whether the policy is a no-op (dense `f32` everywhere), letting
    /// engines keep the exact legacy wire path.
    pub fn is_dense(&self) -> bool {
        self.fast.downlink == Codec::DenseF32
            && self.fast.uplink == Codec::DenseF32
            && self.slow.downlink == Codec::DenseF32
            && self.slow.uplink == Codec::DenseF32
    }
}

// ---------------------------------------------------------------------
// Error feedback
// ---------------------------------------------------------------------

/// Per-worker error-feedback accumulator: the residual each lossy
/// encode leaves behind, folded into the next round's payload so the
/// transmitted mass converges to the generated mass. Keyed by entry
/// name; an entry whose shape changes (a new pruning plan) resets its
/// residual to zero, since the old coordinates no longer correspond.
///
/// All updates are pure functions of the encoded snapshots, so feedback
/// state is bit-identical across thread counts and retransmits never
/// touch it (frames are cached, not re-encoded).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorFeedback {
    slots: Vec<FeedbackSlot>,
}

#[derive(Debug, Clone, PartialEq)]
struct FeedbackSlot {
    name: String,
    dims: Vec<usize>,
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// An empty accumulator (no residual anywhere).
    pub fn new() -> Self {
        ErrorFeedback::default()
    }

    /// Removes and returns the residual for `name` if its recorded
    /// shape matches `dims`; otherwise an empty vector (treated as
    /// zeros by the encoder).
    fn take(&mut self, name: &str, dims: &[usize]) -> Vec<f32> {
        match self.slots.iter().position(|s| s.name == name) {
            Some(idx) => {
                let slot = self.slots.swap_remove(idx);
                if slot.dims.as_slice() == dims {
                    slot.residual
                } else {
                    Vec::new()
                }
            }
            None => Vec::new(),
        }
    }

    fn put(&mut self, name: &str, dims: &[usize], residual: Vec<f32>) {
        self.slots.push(FeedbackSlot { name: name.to_string(), dims: dims.to_vec(), residual });
    }

    /// Total accumulated residual magnitude (L1), for tests and
    /// diagnostics.
    pub fn l1(&self) -> f32 {
        let mut total = 0.0f32;
        for slot in &self.slots {
            for v in &slot.residual {
                total += v.abs();
            }
        }
        total
    }

    /// Largest absolute residual coordinate across all entries.
    pub fn max_abs(&self) -> f32 {
        let mut max = 0.0f32;
        for slot in &self.slots {
            for v in &slot.residual {
                max = max.max(v.abs());
            }
        }
        max
    }
}

// ---------------------------------------------------------------------
// Shared compress / reconstruct core
// ---------------------------------------------------------------------

enum PayloadCodes {
    F32(Vec<f32>),
    F16(Vec<u16>),
    I8 { scale: f32, codes: Vec<i8> },
    TopK { indices: Vec<u32>, values: Vec<f32> },
    TopKI8 { scale: f32, indices: Vec<u32>, codes: Vec<i8> },
}

/// `x + r` with exact-zero residuals skipped, so an all-zero feedback
/// state leaves the input bit-identical (`-0.0 + 0.0` would flip sign
/// bits otherwise).
fn corrected_values(x: &[f32], r: &[f32]) -> Vec<f32> {
    x.iter().zip(r).map(|(&v, &e)| if e == 0.0 { v } else { v + e }).collect()
}

fn delta_values(x: &[f32], reference: Option<&[f32]>) -> Vec<f32> {
    match reference {
        Some(r) if r.len() == x.len() => x.iter().zip(r).map(|(&a, &b)| a - b).collect(),
        _ => x.to_vec(),
    }
}

fn int8_scale(values: &[f32]) -> f32 {
    let max = values.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
    if max > 0.0 {
        max / 127.0
    } else {
        1.0
    }
}

fn int8_code(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// The `k` largest-|·| coordinate indices, ascending. Selection uses
/// `total_cmp` with an index tie-break: a pure function of the input
/// bits, total over every float (no `partial_cmp` panic path).
fn topk_indices(values: &[f32], k: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..values.len() as u32).collect();
    order.sort_by(|&a, &b| {
        values[b as usize].abs().total_cmp(&values[a as usize].abs()).then(a.cmp(&b))
    });
    order.truncate(k);
    order.sort_unstable();
    order
}

fn update_sparse_residual(residual: &mut [f32], corrected: &[f32], indices: &[u32], sent: &[f32]) {
    residual.copy_from_slice(corrected);
    for (&i, &v) in indices.iter().zip(sent) {
        if let Some(slot) = residual.get_mut(i as usize) {
            *slot = corrected[i as usize] - v;
        }
    }
}

/// Compresses one tensor's data, updating its error-feedback residual
/// in place (the residual is resized with zeros if its length does not
/// match the tensor).
fn compress_entry(
    x: &[f32],
    reference: Option<&[f32]>,
    codec: Codec,
    residual: &mut Vec<f32>,
) -> PayloadCodes {
    if residual.len() != x.len() {
        *residual = vec![0.0; x.len()];
    }
    match codec {
        Codec::DenseF32 => {
            let corrected = corrected_values(x, residual);
            for r in residual.iter_mut() {
                *r = 0.0;
            }
            PayloadCodes::F32(corrected)
        }
        Codec::DenseF16 => {
            let corrected = corrected_values(x, residual);
            let codes: Vec<u16> = corrected.iter().map(|&v| f32_to_f16_bits(v)).collect();
            for ((r, &c), &h) in residual.iter_mut().zip(&corrected).zip(&codes) {
                *r = c - f16_bits_to_f32(h);
            }
            PayloadCodes::F16(codes)
        }
        Codec::Int8 => {
            let corrected = corrected_values(x, residual);
            let scale = int8_scale(&corrected);
            let codes: Vec<i8> = corrected.iter().map(|&v| int8_code(v, scale)).collect();
            for ((r, &c), &q) in residual.iter_mut().zip(&corrected).zip(&codes) {
                *r = c - q as f32 * scale;
            }
            PayloadCodes::I8 { scale, codes }
        }
        Codec::TopK { keep } => {
            let delta = delta_values(x, reference);
            let corrected = corrected_values(&delta, residual);
            let k = topk_len(x.len(), keep);
            let indices = topk_indices(&corrected, k);
            let values: Vec<f32> = indices.iter().map(|&i| corrected[i as usize]).collect();
            update_sparse_residual(residual, &corrected, &indices, &values);
            PayloadCodes::TopK { indices, values }
        }
        Codec::TopKInt8 { keep } => {
            let delta = delta_values(x, reference);
            let corrected = corrected_values(&delta, residual);
            let k = topk_len(x.len(), keep);
            let indices = topk_indices(&corrected, k);
            let raw: Vec<f32> = indices.iter().map(|&i| corrected[i as usize]).collect();
            let scale = int8_scale(&raw);
            let codes: Vec<i8> = raw.iter().map(|&v| int8_code(v, scale)).collect();
            let sent: Vec<f32> = codes.iter().map(|&c| c as f32 * scale).collect();
            update_sparse_residual(residual, &corrected, &indices, &sent);
            PayloadCodes::TopKI8 { scale, indices, codes }
        }
    }
}

/// Reconstructs the delivered values for one entry — the *only*
/// reconstruction routine, shared by the decoder and the encoder-side
/// oracle, which is what makes `decode(encode(x))` exact by
/// construction.
fn deliver_entry(codes: &PayloadCodes, reference: Option<&[f32]>, numel: usize) -> Vec<f32> {
    match codes {
        PayloadCodes::F32(v) => v.clone(),
        PayloadCodes::F16(h) => h.iter().map(|&b| f16_bits_to_f32(b)).collect(),
        PayloadCodes::I8 { scale, codes } => {
            let s = *scale;
            codes.iter().map(|&c| c as f32 * s).collect()
        }
        PayloadCodes::TopK { indices, values } => apply_sparse(reference, numel, indices, values),
        PayloadCodes::TopKI8 { scale, indices, codes } => {
            let s = *scale;
            let values: Vec<f32> = codes.iter().map(|&c| c as f32 * s).collect();
            apply_sparse(reference, numel, indices, &values)
        }
    }
}

fn apply_sparse(
    reference: Option<&[f32]>,
    numel: usize,
    indices: &[u32],
    values: &[f32],
) -> Vec<f32> {
    let mut out = match reference {
        Some(r) if r.len() == numel => r.to_vec(),
        _ => vec![0.0; numel],
    };
    for (&i, &v) in indices.iter().zip(values) {
        if let Some(slot) = out.get_mut(i as usize) {
            *slot += v;
        }
    }
    out
}

/// The reference data for entry `i`, usable only when the positional
/// entry matches by name and shape — the same rule on both ends of the
/// link, so encoder prediction and decoder reconstruction agree.
fn ref_slice<'a>(
    reference: Option<&'a [StateEntry]>,
    i: usize,
    name: &str,
    dims: &[usize],
) -> Option<&'a [f32]> {
    reference
        .and_then(|r| r.get(i))
        .filter(|re| re.name == name && re.tensor.dims() == dims)
        .map(|re| re.tensor.data())
}

fn compress_state(
    state: &[StateEntry],
    codec: Codec,
    reference: Option<&[StateEntry]>,
    mut feedback: Option<&mut ErrorFeedback>,
) -> Vec<PayloadCodes> {
    state
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let ref_data = ref_slice(reference, i, &e.name, e.tensor.dims());
            let mut residual = match feedback.as_mut() {
                Some(fb) => fb.take(&e.name, e.tensor.dims()),
                None => Vec::new(),
            };
            let codes = compress_entry(e.tensor.data(), ref_data, codec, &mut residual);
            if let Some(fb) = feedback.as_mut() {
                fb.put(&e.name, e.tensor.dims(), residual);
            }
            codes
        })
        .collect()
}

// ---------------------------------------------------------------------
// v2 encode / decode / size
// ---------------------------------------------------------------------

/// Encodes a snapshot into a v2 frame with the given codec.
///
/// `reference` is the snapshot the receiver will decode against (the
/// last acknowledged model) — used by delta codecs; dense codecs ignore
/// it. `feedback` is the sender's error-feedback accumulator; when
/// present, each entry's stored residual is folded into the payload and
/// replaced by the new encode residual. The buffer is pre-sized from
/// [`wire_size_v2`] exactly, like v1.
pub fn encode_state_v2(
    state: &[StateEntry],
    codec: Codec,
    reference: Option<&[StateEntry]>,
    feedback: Option<&mut ErrorFeedback>,
) -> Bytes {
    let codes = compress_state(state, codec, reference, feedback);
    let size = wire_size_v2(state, codec);
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u32_le(MAGIC2);
    buf.put_u8(codec.tag());
    if let Some(keep) = codec.keep() {
        buf.put_f32_le(keep);
    }
    buf.put_u32_le(state.len() as u32);
    for (e, pc) in state.iter().zip(&codes) {
        put_entry_header(&mut buf, e);
        put_payload(&mut buf, pc);
    }
    let checksum = fnv1a(&buf[4..]);
    buf.put_u32_le(checksum);
    debug_assert_eq!(buf.len(), size, "analytic wire_size_v2 disagrees with encoded frame");
    buf.freeze()
}

fn put_payload(buf: &mut BytesMut, codes: &PayloadCodes) {
    match codes {
        PayloadCodes::F32(v) => {
            for &x in v {
                buf.put_f32_le(x);
            }
        }
        PayloadCodes::F16(h) => {
            for &x in h {
                buf.put_u16_le(x);
            }
        }
        PayloadCodes::I8 { scale, codes } => {
            buf.put_f32_le(*scale);
            for &c in codes {
                buf.put_u8(c as u8);
            }
        }
        PayloadCodes::TopK { indices, values } => {
            buf.put_u32_le(indices.len() as u32);
            for &i in indices {
                buf.put_u32_le(i);
            }
            for &v in values {
                buf.put_f32_le(v);
            }
        }
        PayloadCodes::TopKI8 { scale, indices, codes } => {
            buf.put_u32_le(indices.len() as u32);
            buf.put_f32_le(*scale);
            for &i in indices {
                buf.put_u32_le(i);
            }
            for &c in codes {
                buf.put_u8(c as u8);
            }
        }
    }
}

/// Exact wire size of a v2 frame for `state` under `codec` — analytic,
/// like [`wire_size`]: a pure function of entry names and shapes, never
/// of the data (the top-k coordinate count is [`topk_len`]).
pub fn wire_size_v2(state: &[StateEntry], codec: Codec) -> usize {
    let header = 4 + 1 + if codec.keep().is_some() { 4 } else { 0 } + 4;
    let entries: usize = state
        .iter()
        .map(|e| {
            2 + e.name.len()
                + 1
                + 1
                + 4 * e.tensor.dims().len()
                + codec.payload_bytes(e.tensor.numel())
        })
        .sum();
    header + entries + 4
}

/// What the receiver will reconstruct from [`encode_state_v2`] with the
/// same arguments — the encoder-side oracle. Bit-identical to
/// `decode_state_v2(&encode_state_v2(…), reference)` by construction
/// (both run the same compress/reconstruct core), letting loop engines
/// model compressed exchanges without serialising, and letting the PS
/// predict a worker's decode exactly.
///
/// Like the encoder, this consumes and updates `feedback` — call
/// either this *or* [`encode_state_v2`] per logical transmission, not
/// both with the same accumulator.
pub fn codec_delivered(
    state: &[StateEntry],
    codec: Codec,
    reference: Option<&[StateEntry]>,
    feedback: Option<&mut ErrorFeedback>,
) -> Vec<StateEntry> {
    let codes = compress_state(state, codec, reference, feedback);
    state
        .iter()
        .enumerate()
        .zip(&codes)
        .map(|((i, e), pc)| {
            let dims = e.tensor.dims();
            let ref_data = ref_slice(reference, i, &e.name, dims);
            let data = deliver_entry(pc, ref_data, e.tensor.numel());
            let tensor = Tensor::from_vec(data, dims).unwrap_or_else(|_| Tensor::zeros(dims));
            StateEntry { name: e.name.clone(), tensor, trainable: e.trainable }
        })
        .collect()
}

/// The codec a frame was encoded with (v1 frames report
/// [`Codec::DenseF32`]). Only inspects the header.
pub fn frame_codec(frame: &[u8]) -> Result<Codec, WireError> {
    if frame.len() < 12 {
        return Err(WireError::Truncated);
    }
    match u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) {
        MAGIC => Ok(Codec::DenseF32),
        MAGIC2 => {
            let keep = || f32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
            match frame[4] {
                0 => Ok(Codec::DenseF32),
                1 => Ok(Codec::DenseF16),
                2 => Ok(Codec::Int8),
                3 => Ok(Codec::TopK { keep: keep() }),
                4 => Ok(Codec::TopKInt8 { keep: keep() }),
                _ => Err(WireError::Malformed("unknown codec tag")),
            }
        }
        _ => Err(WireError::BadMagic),
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        let b = self.take(checked_mul(4, n)?)?;
        Ok(b.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    fn u16s(&mut self, n: usize) -> Result<Vec<u16>, WireError> {
        let b = self.take(checked_mul(2, n)?)?;
        Ok(b.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect())
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, WireError> {
        let b = self.take(checked_mul(4, n)?)?;
        Ok(b.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    fn i8s(&mut self, n: usize) -> Result<Vec<i8>, WireError> {
        let b = self.take(n)?;
        Ok(b.iter().map(|&v| v as i8).collect())
    }
}

fn check_sparse_indices(indices: &[u32], numel: usize) -> Result<(), WireError> {
    let mut prev: Option<u32> = None;
    for &ix in indices {
        if ix as usize >= numel {
            return Err(WireError::Malformed("sparse index out of range"));
        }
        if prev.is_some_and(|p| p >= ix) {
            return Err(WireError::Malformed("sparse indices not ascending"));
        }
        prev = Some(ix);
    }
    Ok(())
}

/// Decodes a v2 frame (or, transparently, a v1 frame) against the
/// receiver's `reference` snapshot. Exact with respect to what was
/// encoded — all lossiness happened at encode time — and never panics:
/// every malformed input maps to a typed [`WireError`].
pub fn decode_state_v2(
    frame: &[u8],
    reference: Option<&[StateEntry]>,
) -> Result<Vec<StateEntry>, WireError> {
    if frame.len() < 12 {
        return Err(WireError::Truncated);
    }
    let magic = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
    if magic == MAGIC {
        return decode_state(frame);
    }
    if magic != MAGIC2 {
        return Err(WireError::BadMagic);
    }
    let tail = frame.len() - 4;
    let declared =
        u32::from_le_bytes([frame[tail], frame[tail + 1], frame[tail + 2], frame[tail + 3]]);
    if fnv1a(&frame[4..tail]) != declared {
        return Err(WireError::BadChecksum);
    }

    let mut cur = Cursor { buf: &frame[4..tail] };
    let tag = cur.u8()?;
    let keep = match tag {
        3 | 4 => cur.f32()?,
        _ => 0.0,
    };
    let codec = match tag {
        0 => Codec::DenseF32,
        1 => Codec::DenseF16,
        2 => Codec::Int8,
        3 => Codec::TopK { keep },
        4 => Codec::TopKInt8 { keep },
        _ => return Err(WireError::Malformed("unknown codec tag")),
    };
    let count = cur.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for i in 0..count {
        let name_len = cur.u16()? as usize;
        let name = std::str::from_utf8(cur.take(name_len)?)
            .map_err(|_| WireError::Malformed("entry name is not UTF-8"))?
            .to_string();
        let trainable = match cur.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed("trainable flag")),
        };
        let rank = cur.u8()? as usize;
        if rank == 0 {
            return Err(WireError::Malformed("zero-rank tensor"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(cur.u32()? as usize);
        }
        let numel = checked_numel(&dims)?;
        let codes = match codec {
            Codec::DenseF32 => PayloadCodes::F32(cur.f32s(numel)?),
            Codec::DenseF16 => PayloadCodes::F16(cur.u16s(numel)?),
            Codec::Int8 => {
                let scale = cur.f32()?;
                PayloadCodes::I8 { scale, codes: cur.i8s(numel)? }
            }
            Codec::TopK { .. } => {
                let k = cur.u32()? as usize;
                if k > numel {
                    return Err(WireError::Malformed("sparse length exceeds tensor"));
                }
                let indices = cur.u32s(k)?;
                check_sparse_indices(&indices, numel)?;
                let values = cur.f32s(k)?;
                PayloadCodes::TopK { indices, values }
            }
            Codec::TopKInt8 { .. } => {
                let k = cur.u32()? as usize;
                if k > numel {
                    return Err(WireError::Malformed("sparse length exceeds tensor"));
                }
                let scale = cur.f32()?;
                let indices = cur.u32s(k)?;
                check_sparse_indices(&indices, numel)?;
                let codes = cur.i8s(k)?;
                PayloadCodes::TopKI8 { scale, indices, codes }
            }
        };
        let ref_data = ref_slice(reference, i, &name, &dims);
        let data = deliver_entry(&codes, ref_data, numel);
        let tensor =
            Tensor::from_vec(data, &dims).map_err(|_| WireError::Malformed("tensor shape"))?;
        out.push(StateEntry { name, tensor, trainable });
    }
    if !cur.buf.is_empty() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn roundtrip_is_exact() {
        let mut rng = seeded_rng(250);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        let state = m.state();
        let frame = encode_state(&state);
        let back = decode_state(&frame).expect("decode");
        assert_eq!(back.len(), state.len());
        for (a, b) in state.iter().zip(back.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.trainable, b.trainable);
            assert_eq!(a.tensor, b.tensor);
        }
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let mut rng = seeded_rng(251);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        let frame = encode_state(&m.state());
        let mut bad = frame.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(matches!(decode_state(&bad), Err(WireError::BadChecksum)));
    }

    #[test]
    fn checksum_check_agrees_with_decode() {
        let mut rng = seeded_rng(255);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        let frame = encode_state(&m.state());
        assert!(frame_checksum_ok(&frame));
        // A single flipped byte anywhere in the body fails the check.
        for pos in [4, frame.len() / 2, frame.len() - 5] {
            let mut bad = frame.to_vec();
            bad[pos] ^= 0xFF;
            assert!(!frame_checksum_ok(&bad), "flip at {pos} undetected");
        }
        assert!(!frame_checksum_ok(&[0u8; 16])); // bad magic
        assert!(!frame_checksum_ok(&[1, 2, 3])); // truncated
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode_state(&[0u8; 16]), Err(WireError::BadMagic)));
        assert!(matches!(decode_state(&[1, 2, 3]), Err(WireError::Truncated)));
    }

    #[test]
    fn wire_size_close_to_analytic_estimate() {
        let mut rng = seeded_rng(252);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let state = m.state();
        let params: usize = state.iter().map(|e| e.tensor.numel()).sum();
        let size = wire_size(&state);
        // Overhead (names, dims, framing) is small relative to payload.
        assert!(size >= params * 4);
        assert!(size < params * 4 + 4096, "framing overhead too large: {size}");
    }

    #[test]
    fn encode_buffer_is_presized_exactly() {
        // The analytic `wire_size` must equal the encoded frame length
        // for both the full model and a pruned sub-model, so the
        // encoder's single up-front allocation is never outgrown.
        let mut rng = seeded_rng(254);
        let m = zoo::cnn_mnist(0.2, &mut rng);
        let plan = fedmp_pruning::plan_sequential(&m, (1, 28, 28), 0.5);
        let sub = fedmp_pruning::extract_sequential(&m, &plan);
        for state in [m.state(), sub.state(), vec![]] {
            assert_eq!(encode_state(&state).len(), wire_size(&state));
        }
    }

    #[test]
    fn pruned_submodel_frame_is_smaller() {
        let mut rng = seeded_rng(253);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let plan = fedmp_pruning::plan_sequential(&m, (1, 28, 28), 0.6);
        let sub = fedmp_pruning::extract_sequential(&m, &plan);
        assert!(wire_size(&sub.state()) < wire_size(&m.state()) / 2);
    }

    // -- v2 --

    const ALL_CODECS: [Codec; 5] = [
        Codec::DenseF32,
        Codec::DenseF16,
        Codec::Int8,
        Codec::TopK { keep: 0.25 },
        Codec::TopKInt8 { keep: 0.25 },
    ];

    fn bits(state: &[StateEntry]) -> Vec<(String, bool, Vec<usize>, Vec<u32>)> {
        state
            .iter()
            .map(|e| {
                (
                    e.name.clone(),
                    e.trainable,
                    e.tensor.dims().to_vec(),
                    e.tensor.data().iter().map(|v| v.to_bits()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn v2_decode_matches_encoder_oracle_for_every_codec() {
        let mut rng = seeded_rng(260);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        let state = m.state();
        let reference: Vec<StateEntry> = zoo::cnn_mnist(0.1, &mut rng).state();
        for codec in ALL_CODECS {
            for reference in [None, Some(reference.as_slice())] {
                let mut ef_enc = ErrorFeedback::new();
                let mut ef_oracle = ErrorFeedback::new();
                let frame = encode_state_v2(&state, codec, reference, Some(&mut ef_enc));
                let oracle = codec_delivered(&state, codec, reference, Some(&mut ef_oracle));
                let decoded = decode_state_v2(&frame, reference).expect("decode");
                assert_eq!(bits(&decoded), bits(&oracle), "{}", codec.label());
                assert_eq!(ef_enc, ef_oracle, "{}", codec.label());
                assert!(frame_checksum_ok(&frame), "{}", codec.label());
                assert_eq!(frame.len(), wire_size_v2(&state, codec), "{}", codec.label());
                assert_eq!(frame_codec(&frame), Ok(codec), "{}", codec.label());
            }
        }
    }

    #[test]
    fn v2_dense_f32_is_lossless() {
        let mut rng = seeded_rng(261);
        let state = zoo::cnn_mnist(0.1, &mut rng).state();
        let frame = encode_state_v2(&state, Codec::DenseF32, None, None);
        let decoded = decode_state_v2(&frame, None).expect("decode");
        assert_eq!(bits(&decoded), bits(&state));
        // Lossless codec ⇒ no residual accumulates.
        let mut ef = ErrorFeedback::new();
        codec_delivered(&state, Codec::DenseF32, None, Some(&mut ef));
        assert_eq!(ef.l1(), 0.0);
    }

    #[test]
    fn v2_accepts_v1_frames() {
        let mut rng = seeded_rng(262);
        let state = zoo::cnn_mnist(0.1, &mut rng).state();
        let frame = encode_state(&state);
        let decoded = decode_state_v2(&frame, None).expect("v1 frame via v2 decoder");
        assert_eq!(bits(&decoded), bits(&state));
        assert_eq!(frame_codec(&frame), Ok(Codec::DenseF32));
    }

    #[test]
    fn v2_presizing_is_exact_for_every_codec() {
        let mut rng = seeded_rng(263);
        let m = zoo::cnn_mnist(0.2, &mut rng);
        let plan = fedmp_pruning::plan_sequential(&m, (1, 28, 28), 0.5);
        let sub = fedmp_pruning::extract_sequential(&m, &plan);
        for codec in ALL_CODECS {
            for state in [m.state(), sub.state(), vec![]] {
                assert_eq!(
                    encode_state_v2(&state, codec, None, None).len(),
                    wire_size_v2(&state, codec),
                    "{}",
                    codec.label()
                );
            }
        }
    }

    #[test]
    fn f16_bits_roundtrip_exhaustively() {
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1F;
            let mant = h & 0x03FF;
            if exp == 31 && mant != 0 {
                continue; // NaN payloads are quieted, not preserved
            }
            assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h, "h = {h:#06x}");
        }
        // NaN stays NaN (quiet).
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn topk_len_is_clamped_and_analytic() {
        assert_eq!(topk_len(0, 0.5), 0);
        assert_eq!(topk_len(10, 0.0), 1);
        assert_eq!(topk_len(10, 0.25), 3); // ceil(2.5)
        assert_eq!(topk_len(10, 1.0), 10);
        assert_eq!(topk_len(10, 2.0), 10);
    }

    #[test]
    fn corrupted_v2_frames_yield_typed_errors() {
        let mut rng = seeded_rng(264);
        let state = zoo::cnn_mnist(0.1, &mut rng).state();
        let frame = encode_state_v2(&state, Codec::TopKInt8 { keep: 0.1 }, None, None);
        let mut bad = frame.to_vec();
        bad[frame.len() / 2] ^= 0xFF;
        assert!(matches!(decode_state_v2(&bad, None), Err(WireError::BadChecksum)));
        assert!(!frame_checksum_ok(&bad));
        assert!(decode_state_v2(&frame[..frame.len() - 6], None).is_err());
        assert!(matches!(decode_state_v2(&[7u8; 20], None), Err(WireError::BadMagic)));
        assert!(matches!(decode_state_v2(&[1, 2, 3], None), Err(WireError::Truncated)));
    }

    #[test]
    fn error_feedback_resets_on_shape_change() {
        let lossy = Codec::Int8;
        let a = vec![StateEntry::trainable(
            "w",
            Tensor::from_vec(vec![0.31, -0.73, 0.11], &[3]).expect("shape"),
        )];
        let b = vec![StateEntry::trainable(
            "w",
            Tensor::from_vec(vec![0.31, -0.73], &[2]).expect("shape"),
        )];
        let mut ef = ErrorFeedback::new();
        codec_delivered(&a, lossy, None, Some(&mut ef));
        assert!(ef.l1() > 0.0, "int8 encode of irrational values must leave a residual");
        // Shape change: the stored residual must reset, producing the
        // same output as a fresh accumulator.
        let out_changed = codec_delivered(&b, lossy, None, Some(&mut ef));
        let out_fresh = codec_delivered(&b, lossy, None, Some(&mut ErrorFeedback::new()));
        assert_eq!(bits(&out_changed), bits(&out_fresh));
    }

    #[test]
    fn adaptive_policy_splits_on_bandwidth() {
        let policy = CompressionPolicy::adaptive();
        let far = tx2_profile(ComputeMode::Mode3, LinkQuality::Far);
        let near = tx2_profile(ComputeMode::Mode0, LinkQuality::Near);
        assert_eq!(policy.select(&far), policy.slow);
        assert_eq!(policy.select(&near), policy.fast);
        assert!(!policy.is_dense());
        assert!(CompressionPolicy::dense().is_dense());
        assert!(CompressionPolicy::default().is_dense());
        // The slow uplink is the int8 top-k workhorse.
        assert!(matches!(policy.slow.uplink, Codec::TopKInt8 { .. }));
    }

    #[test]
    fn topk_uplink_shrinks_the_frame() {
        let mut rng = seeded_rng(265);
        let state = zoo::cnn_mnist(0.1, &mut rng).state();
        let dense = wire_size_v2(&state, Codec::DenseF32);
        let sparse = wire_size_v2(&state, Codec::TopKInt8 { keep: 0.1 });
        assert!(sparse * 4 < dense, "topk-int8(0.1) must cut ≥ 4x: {sparse} vs {dense}");
    }
}
