//! Binary wire format for PS ↔ worker model exchange.
//!
//! The loop engines account for communication analytically (4 bytes per
//! parameter); this module is the *actual* serialisation used by the
//! threaded runtime ([`crate::runtime`]): a length-prefixed,
//! checksummed frame holding a model snapshot. [`wire_size`] computes
//! the exact frame size (name table + tensors) analytically, giving the
//! engines a precise byte count without an encoding pass and letting
//! [`encode_state`] pre-size its buffer in one allocation.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! magic  u32 = 0xFED_77A1E
//! entry_count u32
//! per entry:
//!   name_len u16, name bytes (UTF-8)
//!   trainable u8
//!   rank u8, dims u32 × rank
//!   payload f32 × numel
//! checksum u32 (FNV-1a over everything after the magic)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fedmp_nn::StateEntry;
use fedmp_tensor::Tensor;

const MAGIC: u32 = 0xFED7_7A1E;

/// Errors while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame does not start with the protocol magic.
    BadMagic,
    /// Frame ended before the declared content.
    Truncated,
    /// Checksum mismatch (corrupted frame).
    BadChecksum,
    /// Malformed entry (bad UTF-8 name or impossible shape).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encodes a model snapshot into a wire frame.
///
/// The buffer is pre-sized from [`wire_size`], so encoding performs a
/// single allocation and never reallocates mid-frame — backed by a
/// `debug_assert` below and a capacity test.
pub fn encode_state(state: &[StateEntry]) -> Bytes {
    let size = wire_size(state);
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(state.len() as u32);
    for e in state {
        assert!(e.name.len() <= u16::MAX as usize, "entry name too long");
        buf.put_u16_le(e.name.len() as u16);
        buf.put_slice(e.name.as_bytes());
        buf.put_u8(e.trainable as u8);
        let dims = e.tensor.dims();
        assert!(dims.len() <= u8::MAX as usize, "tensor rank too high");
        buf.put_u8(dims.len() as u8);
        for &d in dims {
            buf.put_u32_le(d as u32);
        }
        for &v in e.tensor.data() {
            buf.put_f32_le(v);
        }
    }
    let checksum = fnv1a(&buf[4..]);
    buf.put_u32_le(checksum);
    debug_assert_eq!(buf.len(), size, "analytic wire_size disagrees with encoded frame");
    buf.freeze()
}

/// Cheap transport-integrity check: verifies only the magic and the
/// trailing FNV-1a checksum, without building tensors. This is what the
/// threaded runtime's PS runs on every arriving upload to decide
/// between accepting the frame and requesting a retransmit — a frame
/// that fails here is corrupt in transit; a frame that passes can only
/// fail [`decode_state`] through an encoder-side protocol violation.
pub fn frame_checksum_ok(frame: &[u8]) -> bool {
    if frame.len() < 12 {
        return false;
    }
    let magic = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
    if magic != MAGIC {
        return false;
    }
    let tail = frame.len() - 4;
    let declared =
        u32::from_le_bytes([frame[tail], frame[tail + 1], frame[tail + 2], frame[tail + 3]]);
    fnv1a(&frame[4..tail]) == declared
}

/// Decodes a frame produced by [`encode_state`].
pub fn decode_state(frame: &[u8]) -> Result<Vec<StateEntry>, WireError> {
    if frame.len() < 12 {
        return Err(WireError::Truncated);
    }
    let mut buf = frame;
    if buf.get_u32_le() != MAGIC {
        return Err(WireError::BadMagic);
    }
    let body = &frame[4..frame.len() - 4];
    let declared =
        u32::from_le_bytes(frame[frame.len() - 4..].try_into().expect("4-byte checksum"));
    if fnv1a(body) != declared {
        return Err(WireError::BadChecksum);
    }

    let count = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    // `buf` still includes the trailing checksum; track remaining
    // content length explicitly.
    let mut remaining = frame.len() - 8 - 4;
    let need = |n: usize, remaining: &mut usize| -> Result<(), WireError> {
        if *remaining < n {
            return Err(WireError::Truncated);
        }
        *remaining -= n;
        Ok(())
    };
    for _ in 0..count {
        need(2, &mut remaining)?;
        let name_len = buf.get_u16_le() as usize;
        need(name_len + 2, &mut remaining)?;
        let name = std::str::from_utf8(&buf[..name_len])
            .map_err(|_| WireError::Malformed("entry name is not UTF-8"))?
            .to_string();
        buf.advance(name_len);
        let trainable = match buf.get_u8() {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed("trainable flag")),
        };
        let rank = buf.get_u8() as usize;
        if rank == 0 {
            return Err(WireError::Malformed("zero-rank tensor"));
        }
        need(4 * rank, &mut remaining)?;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(buf.get_u32_le() as usize);
        }
        let numel: usize = dims.iter().product();
        need(4 * numel, &mut remaining)?;
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        let tensor =
            Tensor::from_vec(data, &dims).map_err(|_| WireError::Malformed("tensor shape"))?;
        out.push(StateEntry { name, tensor, trainable });
    }
    if remaining != 0 {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(out)
}

/// Exact wire size of a snapshot, in bytes, computed analytically from
/// the frame layout (no encoding pass): magic + entry count, then per
/// entry the name length prefix and bytes, trainable flag, rank byte,
/// `u32` dims and `f32` payload, then the trailing checksum.
pub fn wire_size(state: &[StateEntry]) -> usize {
    let payload: usize = state
        .iter()
        .map(|e| 2 + e.name.len() + 1 + 1 + 4 * e.tensor.dims().len() + 4 * e.tensor.numel())
        .sum();
    8 + payload + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn roundtrip_is_exact() {
        let mut rng = seeded_rng(250);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        let state = m.state();
        let frame = encode_state(&state);
        let back = decode_state(&frame).expect("decode");
        assert_eq!(back.len(), state.len());
        for (a, b) in state.iter().zip(back.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.trainable, b.trainable);
            assert_eq!(a.tensor, b.tensor);
        }
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let mut rng = seeded_rng(251);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        let frame = encode_state(&m.state());
        let mut bad = frame.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(matches!(decode_state(&bad), Err(WireError::BadChecksum)));
    }

    #[test]
    fn checksum_check_agrees_with_decode() {
        let mut rng = seeded_rng(255);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        let frame = encode_state(&m.state());
        assert!(frame_checksum_ok(&frame));
        // A single flipped byte anywhere in the body fails the check.
        for pos in [4, frame.len() / 2, frame.len() - 5] {
            let mut bad = frame.to_vec();
            bad[pos] ^= 0xFF;
            assert!(!frame_checksum_ok(&bad), "flip at {pos} undetected");
        }
        assert!(!frame_checksum_ok(&[0u8; 16])); // bad magic
        assert!(!frame_checksum_ok(&[1, 2, 3])); // truncated
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode_state(&[0u8; 16]), Err(WireError::BadMagic)));
        assert!(matches!(decode_state(&[1, 2, 3]), Err(WireError::Truncated)));
    }

    #[test]
    fn wire_size_close_to_analytic_estimate() {
        let mut rng = seeded_rng(252);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let state = m.state();
        let params: usize = state.iter().map(|e| e.tensor.numel()).sum();
        let size = wire_size(&state);
        // Overhead (names, dims, framing) is small relative to payload.
        assert!(size >= params * 4);
        assert!(size < params * 4 + 4096, "framing overhead too large: {size}");
    }

    #[test]
    fn encode_buffer_is_presized_exactly() {
        // The analytic `wire_size` must equal the encoded frame length
        // for both the full model and a pruned sub-model, so the
        // encoder's single up-front allocation is never outgrown.
        let mut rng = seeded_rng(254);
        let m = zoo::cnn_mnist(0.2, &mut rng);
        let plan = fedmp_pruning::plan_sequential(&m, (1, 28, 28), 0.5);
        let sub = fedmp_pruning::extract_sequential(&m, &plan);
        for state in [m.state(), sub.state(), vec![]] {
            assert_eq!(encode_state(&state).len(), wire_size(&state));
        }
    }

    #[test]
    fn pruned_submodel_frame_is_smaller() {
        let mut rng = seeded_rng(253);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let plan = fedmp_pruning::plan_sequential(&m, (1, 28, 28), 0.6);
        let sub = fedmp_pruning::extract_sequential(&m, &plan);
        assert!(wire_size(&sub.state()) < wire_size(&m.state()) / 2);
    }
}
