//! Population-scale rounds: cohort sampling, streaming shard reducers
//! and two-tier (edge → cloud) hierarchical aggregation.
//!
//! The flat engines materialise every worker's full model per round —
//! O(clients × params) memory — which caps cohorts far below realistic
//! population sizes. This module replaces that with a fan-in tree:
//!
//! ```text
//!   sampled clients ──► shard reducers ──► edge aggregators ──► cloud PS
//!     (cohort, lazy)      (streaming,        (merge shard         (merge edge
//!                          O(params) each)    partials)            partials)
//! ```
//!
//! - **Population** — devices come from a seeded lazy
//!   [`fedmp_edgesim::Population`]; a 10⁵-device fleet is a few bytes,
//!   and each round samples a cohort without replacement.
//! - **Streaming shard reduction** — a client's completed update
//!   (recovered sub-model + residual, §III-C) is folded into its
//!   shard's [`ExactState`] accumulator immediately after its local
//!   step and then dropped, so peak memory is O(shards × params)
//!   regardless of cohort size.
//! - **Exact aggregation algebra** — shard accumulators hold
//!   [`ExactSum`] fixed-point registers, so merging shard → edge →
//!   cloud is integer addition: *any* (shards, edges) partition is
//!   bit-identical to the flat [`r2sp_aggregate`][crate::r2sp_aggregate]
//!   over the same delivered cohort. See `docs/SCALE.md` for the full
//!   argument.
//! - **Per-class adaptivity** — at population scale a sampled client
//!   may never return, so E-UCB pruning state lives per *device class*
//!   (4 compute modes × 3 link tiers): one `select()` per class per
//!   round, rewarded with the class's mean Eq. 8 outcome.
//! - **Chaos at both tiers** — a client-tier [`ChaosPlan`] can crash a
//!   device, lose either link direction or corrupt its upload
//!   (bounded retransmits with exponential backoff), and an
//!   independent edge-tier plan applies the same fault surface to each
//!   edge aggregator's cloud upload. Compression policies apply
//!   per-link exactly as in the flat engines (feedback-free: per-client
//!   error-feedback state would be O(population × params)).
//!
//! Two engines share one round implementation: [`run_fedmp_hier`]
//! computes shards through the deterministic round executor
//! ([`crate::exec::ordered_map`]), while [`run_fedmp_hier_threaded`]
//! runs each edge aggregator as a recoverable protocol participant on
//! its own thread — checksummed partial-sum frames, PS-driven
//! retransmits, crash/drop tolerance — and is bit-identical to the
//! loop engine at every thread count, including under chaos, because
//! every fault is a pure function of the seed and every reduction is
//! exact.

use crate::chaos::{corrupted_copy, ChaosDraw, ChaosOptions, ChaosPlan};
use crate::engine::{
    emit_aggregate, emit_codec_selected, emit_cohort_sampled, emit_compression_applied,
    emit_edge_aggregate, emit_frame_retransmit, emit_kernel_dispatch, emit_local_train,
    emit_quorum_aggregate, emit_round_end, emit_round_start, emit_shard_reduced,
    emit_worker_excluded, kernel_baseline, model_round_cost, worker_batches, worker_rng, CostScale,
    FlConfig,
};
use crate::eval::evaluate_image;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use crate::local::local_train;
use crate::runtime::{LiveThreadGuard, RuntimeError};
use crate::task::ImageTask;
use crate::wire::{codec_delivered, wire_size_v2, Codec, CompressionPolicy, LinkCodecs};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use fedmp_bandit::{eucb_reward, Bandit, EUcbAgent, EUcbConfig, RewardConfig};
use fedmp_edgesim::{
    class_of, DeviceProfile, Population, RoundCost, RoundTime, TimeModel, CLASS_COUNT,
};
use fedmp_nn::{state_add, state_numel, state_sub, Sequential, StateEntry};
use fedmp_pruning::{
    extract_sequential, plan_sequential_with, recover_state, sparse_state, Importance, PrunePlan,
};
use fedmp_tensor::parallel::{sum_f32, sum_f64};
use fedmp_tensor::{ExactSum, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;

// ---- exact streaming state ----------------------------------------------

/// A full-model snapshot accumulated exactly: one [`ExactSum`] per
/// scalar, templated from a concrete state's names/shapes. Folding is
/// streaming (fold, then drop the source) and merging two accumulators
/// is integer addition, so any fan-in tree over the same fold multiset
/// finalises to identical bits.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactState {
    entries: Vec<ExactEntry>,
}

#[derive(Clone, Debug, PartialEq)]
struct ExactEntry {
    name: String,
    dims: Vec<usize>,
    trainable: bool,
    accs: Vec<ExactSum>,
}

impl ExactState {
    /// A zero accumulator shaped like `template`.
    pub fn like(template: &[StateEntry]) -> Self {
        ExactState {
            entries: template
                .iter()
                .map(|e| ExactEntry {
                    name: e.name.clone(),
                    dims: e.tensor.dims().to_vec(),
                    trainable: e.trainable,
                    accs: vec![ExactSum::new(); e.tensor.numel()],
                })
                .collect(),
        }
    }

    /// Folds one full-shape snapshot into the accumulator. The caller
    /// drops `state` right after — that is the streaming contract.
    pub fn fold(&mut self, state: &[StateEntry]) {
        assert_eq!(state.len(), self.entries.len(), "ExactState::fold: entry count mismatch");
        for (entry, s) in self.entries.iter_mut().zip(state.iter()) {
            assert_eq!(entry.name, s.name, "ExactState::fold: entry name mismatch");
            let data = s.tensor.data();
            assert_eq!(data.len(), entry.accs.len(), "ExactState::fold: shape mismatch");
            for (acc, &x) in entry.accs.iter_mut().zip(data) {
                acc.add(x);
            }
        }
    }

    /// Merges another accumulator in (shard → edge, edge → cloud).
    pub fn merge(&mut self, other: &ExactState) {
        assert_eq!(other.entries.len(), self.entries.len(), "ExactState::merge: entry mismatch");
        for (a, b) in self.entries.iter_mut().zip(other.entries.iter()) {
            for (x, y) in a.accs.iter_mut().zip(b.accs.iter()) {
                x.merge(y);
            }
        }
    }

    /// The mean over `n` folded snapshots, rounded once per scalar then
    /// scaled by `1/n` — the exact computation
    /// [`average_states`][crate::average_states] performs, which is why
    /// a hierarchy finalising here is bit-identical to the flat call.
    pub fn finalize(&self, n: usize) -> Vec<StateEntry> {
        assert!(n > 0, "ExactState::finalize over zero participants");
        let inv = 1.0 / n as f32;
        self.entries
            .iter()
            .map(|e| {
                let mut t = Tensor::zeros(&e.dims);
                for (out, acc) in t.data_mut().iter_mut().zip(e.accs.iter()) {
                    *out = acc.value() * inv;
                }
                StateEntry { name: e.name.clone(), tensor: t, trainable: e.trainable }
            })
            .collect()
    }

    /// Scalars tracked by the accumulator.
    pub fn numel(&self) -> usize {
        self.entries.iter().map(|e| e.accs.len()).sum()
    }

    /// Resident bytes of the accumulator itself — constant no matter
    /// how many snapshots have been folded in.
    pub fn tracked_bytes(&self) -> usize {
        self.numel() * ExactSum::state_bytes()
    }

    /// Serialises the accumulator into a checksummed wire frame (the
    /// edge → cloud partial-sum upload of the threaded runtime).
    /// Layout: `magic u32 | count u32 | count × (6 limbs LE + poison
    /// byte) | FNV-1a-64 of everything before`.
    pub fn encode(&self) -> Bytes {
        let count = self.numel() as u32;
        let mut buf = Vec::with_capacity(8 + count as usize * 49 + 8);
        buf.extend_from_slice(&PARTIAL_MAGIC.to_le_bytes());
        buf.extend_from_slice(&count.to_le_bytes());
        for e in &self.entries {
            for acc in &e.accs {
                let (limbs, poison) = acc.to_raw();
                for limb in limbs {
                    buf.extend_from_slice(&limb.to_le_bytes());
                }
                buf.push(u8::from(poison));
            }
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        Bytes::from(buf)
    }

    /// Verifies a frame's checksum and decodes it into an accumulator
    /// shaped like `template`. `Ok(None)` means the checksum failed
    /// (transit corruption — ask for a retransmit); `Err(())` means a
    /// verified frame had the wrong structure (protocol violation).
    #[allow(clippy::result_unit_err)]
    pub fn decode(frame: &[u8], template: &ExactState) -> Result<Option<ExactState>, ()> {
        if frame.len() < 16 {
            return Err(());
        }
        let (body, tail) = frame.split_at(frame.len() - 8);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(tail);
        if fnv1a64(body) != u64::from_le_bytes(sum) {
            return Ok(None);
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&body[0..4]);
        let mut count = [0u8; 4];
        count.copy_from_slice(&body[4..8]);
        let count = u32::from_le_bytes(count) as usize;
        if u32::from_le_bytes(magic) != PARTIAL_MAGIC
            || count != template.numel()
            || body.len() != 8 + count * 49
        {
            return Err(());
        }
        let mut out = template.clone();
        for e in out.entries.iter_mut() {
            for acc in e.accs.iter_mut() {
                *acc = ExactSum::new();
            }
        }
        let mut off = 8;
        for e in out.entries.iter_mut() {
            for acc in e.accs.iter_mut() {
                let mut limbs = [0u64; 6];
                for limb in limbs.iter_mut() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&body[off..off + 8]);
                    *limb = u64::from_le_bytes(b);
                    off += 8;
                }
                let poison = body[off] != 0;
                off += 1;
                *acc = ExactSum::from_raw(limbs, poison);
            }
        }
        Ok(Some(out))
    }
}

/// Magic tag of an edge partial-sum frame (`"HPar"`).
const PARTIAL_MAGIC: u32 = 0x4850_6172;

/// FNV-1a 64-bit, over the frame body (the same family the v2 wire
/// codecs use; duplicated because the wire module's hasher is private
/// to its own frame layout).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---- configuration -------------------------------------------------------

/// The simulated deployment of a population-scale run. Unlike
/// [`crate::FlSetup`], devices come from a lazy [`Population`] rather
/// than a per-worker list; a sampled client with id `i` trains on data
/// shard `i mod task.workers()`.
#[derive(Debug, Clone)]
pub struct HierSetup<'a> {
    /// The federated task (data + partition; partitions are reused
    /// modulo the partition count across the population).
    pub task: &'a ImageTask,
    /// The lazy device population cohorts are sampled from.
    pub population: Population,
    /// The virtual-clock time model.
    pub time: TimeModel,
    /// Width-compensation factors applied to every simulated cost.
    pub cost_scale: CostScale,
}

impl<'a> HierSetup<'a> {
    /// Builds a setup over a task and population.
    pub fn new(task: &'a ImageTask, population: Population, time: TimeModel) -> Self {
        HierSetup { task, population, time, cost_scale: CostScale::default() }
    }

    /// The data shard client `id` trains on.
    pub fn data_shard(&self, id: u64) -> usize {
        (id % self.task.workers() as u64) as usize
    }

    /// Cost-scale-compensated round cost (same convention as
    /// [`crate::FlSetup::scaled_cost`]).
    pub fn scaled_cost(&self, cost: &RoundCost) -> RoundCost {
        RoundCost {
            train_flops: cost.train_flops * self.cost_scale.flops,
            download_bytes: cost.download_bytes * self.cost_scale.bytes,
            upload_bytes: cost.upload_bytes * self.cost_scale.bytes,
        }
    }
}

/// Options of the hierarchical engines.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HierarchyOptions {
    /// Clients sampled per round (without replacement).
    pub cohort: usize,
    /// Streaming shard reducers the cohort is partitioned over
    /// (contiguously, in cohort order).
    pub shards: usize,
    /// Edge aggregators the shards fan in to (contiguously, in shard
    /// order); also the thread count of the threaded engine.
    pub edges: usize,
    /// E-UCB configuration for the per-class agents.
    pub eucb: EUcbConfig,
    /// Reward shaping (Eq. 8 guards).
    pub reward: RewardConfig,
    /// When set, every class uses this fixed pruning ratio (no bandit).
    pub fixed_ratio: Option<f32>,
    /// Filter/neuron importance metric for structured pruning.
    pub importance: Importance,
    /// Wire-v2 codec selection per client link. Applied feedback-free:
    /// per-client error-feedback accumulators would be
    /// O(population × params), against the whole point of this mode.
    pub compression: CompressionPolicy,
    /// Client-tier transport chaos (crash / drop / corrupt / delay per
    /// sampled client). Its `quorum_frac` also sets the cloud's
    /// aggregation quorum over the cohort.
    pub chaos_client: ChaosOptions,
    /// Edge-tier transport chaos applied to each edge aggregator's
    /// cloud upload.
    pub chaos_edge: ChaosOptions,
}

impl Default for HierarchyOptions {
    fn default() -> Self {
        HierarchyOptions {
            cohort: 16,
            shards: 4,
            edges: 2,
            eucb: EUcbConfig::default(),
            reward: RewardConfig::default(),
            fixed_ratio: None,
            importance: Importance::L1,
            compression: CompressionPolicy::dense(),
            chaos_client: ChaosOptions::none(),
            chaos_edge: ChaosOptions::none(),
        }
    }
}

impl HierarchyOptions {
    fn validate(&self, population: &Population) {
        assert!(self.cohort >= 1, "hierarchy: cohort must be at least 1");
        assert!(self.shards >= 1, "hierarchy: need at least one shard");
        assert!(self.edges >= 1, "hierarchy: need at least one edge");
        assert!(self.edges <= self.shards, "hierarchy: more edges than shards");
        assert!(self.cohort as u64 <= population.size, "hierarchy: cohort exceeds population size");
    }
}

/// Contiguous slice of `n` items owned by unit `k` of `parts`.
fn partition_range(n: usize, parts: usize, k: usize) -> Range<usize> {
    k * n / parts..(k + 1) * n / parts
}

// ---- per-round plumbing --------------------------------------------------

/// Everything one device class shares this round: the bandit's ratio,
/// the pruning plan/sub-model extracted from the global model, the
/// PS-side residual, and the resolved codec pair. Clients of a class
/// have identical `DeviceProfile`s, so all of this is class-wide.
struct ClassPlan {
    ratio: f32,
    plan: PrunePlan,
    /// Sub-model as the clients receive it (post downlink codec).
    sub: Sequential,
    /// The received snapshot — the uplink delta base for top-k codecs.
    received: Option<Vec<StateEntry>>,
    residual: Vec<StateEntry>,
    pair: LinkCodecs,
    device: DeviceProfile,
    sub_params: usize,
    down_wire: u64,
    down_dense: u64,
}

/// How a client's round ended, decided purely by the chaos draw.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ClientFate {
    /// Upload reached its shard reducer after `retries` retransmits.
    Delivered {
        /// Checksum-failure retransmits charged to the arrival time.
        retries: u32,
    },
    /// Contribution lost; `trained` distinguishes crash/downlink loss
    /// (no local step at all) from uplink-side losses.
    Lost {
        /// `"crashed"`, `"dropped"` or `"corrupt"`.
        reason: &'static str,
        /// Retransmits spent before giving up.
        retries: u32,
        /// Whether the client completed its local step first.
        trained: bool,
    },
}

impl ClientFate {
    fn from_draw(draw: &ChaosDraw, opts: &ChaosOptions) -> Self {
        if draw.crash {
            ClientFate::Lost { reason: "crashed", retries: 0, trained: false }
        } else if draw.drop_down {
            ClientFate::Lost { reason: "dropped", retries: 0, trained: false }
        } else if draw.drop_up {
            ClientFate::Lost { reason: "dropped", retries: 0, trained: true }
        } else if draw.corrupt_sends > opts.max_retransmits {
            ClientFate::Lost { reason: "corrupt", retries: opts.max_retransmits, trained: true }
        } else {
            ClientFate::Delivered { retries: draw.corrupt_sends }
        }
    }

    fn trained(&self) -> bool {
        match *self {
            ClientFate::Delivered { .. } => true,
            ClientFate::Lost { trained, .. } => trained,
        }
    }

    fn delivered(&self) -> bool {
        matches!(self, ClientFate::Delivered { .. })
    }

    fn retries(&self) -> u32 {
        match *self {
            ClientFate::Delivered { retries } | ClientFate::Lost { retries, .. } => retries,
        }
    }
}

/// One client's round bookkeeping (metrics plane — never part of the
/// aggregated model payload).
#[derive(Clone)]
struct ClientMetric {
    id: u64,
    class: usize,
    ratio: f32,
    fate: ClientFate,
    mean_loss: f32,
    delta_loss: f32,
    samples: usize,
    time: RoundTime,
    /// Arrival on the virtual clock: `time.total()` plus chaos delay
    /// and retransmit backoff.
    arrival: f64,
    scaled: RoundCost,
    up_codec: Codec,
    up_wire: u64,
    up_dense: u64,
}

/// What one shard reducer hands upward: its exact partial sum plus
/// per-client metrics and the memory-accounting meta.
struct ShardOutput {
    acc: ExactState,
    metrics: Vec<ClientMetric>,
    folded: usize,
    peak_bytes: u64,
}

/// Streams one shard's slice of the cohort: per client — chaos fate,
/// local step on a class sub-model clone, uplink codec, R2SP completion
/// — folding each delivered update into the shard accumulator and
/// dropping it before the next client. Pure in its inputs, so the loop
/// executor and the threaded edge aggregators compute identical bits.
#[allow(clippy::too_many_arguments)]
fn reduce_shard(
    cfg: &FlConfig,
    setup: &HierSetup<'_>,
    global: &Sequential,
    template: &[StateEntry],
    cohort: &[u64],
    range: Range<usize>,
    classes: &BTreeMap<usize, ClassPlan>,
    client_plan: &ChaosPlan,
    round: usize,
    compressed: bool,
) -> ShardOutput {
    let mut acc = ExactState::like(template);
    let acc_bytes = acc.tracked_bytes() as u64;
    let mut metrics = Vec::with_capacity(range.len());
    let mut folded = 0usize;
    let mut peak_bytes = acc_bytes;
    let full_params = state_numel(template);
    for idx in range {
        let id = cohort[idx];
        let class = class_of(&setup.population.device(id));
        let cr = &classes[&class];
        let draw = client_plan.draw(round, id as usize);
        let fate = ClientFate::from_draw(&draw, client_plan.options());
        if !fate.trained() {
            metrics.push(ClientMetric {
                id,
                class,
                ratio: cr.ratio,
                fate,
                mean_loss: 0.0,
                delta_loss: 0.0,
                samples: 0,
                time: RoundTime { comp: 0.0, comm: 0.0 },
                arrival: 0.0,
                scaled: RoundCost { train_flops: 0.0, download_bytes: 0.0, upload_bytes: 0.0 },
                up_codec: cr.pair.uplink,
                up_wire: 0,
                up_dense: 0,
            });
            continue;
        }
        // Local step on a clone of the class sub-model; the clone is
        // the only per-client model state and dies at the end of this
        // iteration.
        let mut sub = cr.sub.clone();
        let mut batches = worker_batches(
            setup.task,
            setup.data_shard(id),
            cfg.local.batch,
            client_stream_seed(cfg.seed, id),
            round,
        );
        let outcome = local_train(&mut sub, &mut batches, &cfg.local);
        let (up_codec, up_wire, up_dense) = if compressed {
            let trained = sub.state();
            let delivered = codec_delivered(&trained, cr.pair.uplink, cr.received.as_deref(), None);
            sub.load_state(&delivered);
            (
                cr.pair.uplink,
                wire_size_v2(&trained, cr.pair.uplink) as u64,
                wire_size_v2(&trained, Codec::DenseF32) as u64,
            )
        } else {
            (cr.pair.uplink, 0, 0)
        };
        let mut cost = model_round_cost(&sub, setup.task.input_chw, &cfg.local);
        if compressed {
            cost.download_bytes = cr.down_wire as f64;
            cost.upload_bytes = up_wire as f64;
        }
        let mut rng = worker_rng(cfg.seed ^ 0xA5A5, round, id as usize);
        let t = setup.time.round_time(&cr.device, &setup.scaled_cost(&cost), &mut rng);
        let arrival =
            t.total() + draw.delay_secs + client_plan.options().backoff_total(fate.retries());
        if fate.delivered() {
            // R2SP completion, folded immediately, then dropped: the
            // streaming step that keeps shard memory flat in cohort
            // size.
            let completed = state_add(&recover_state(&sub, &cr.plan, global), &cr.residual);
            acc.fold(&completed);
            folded += 1;
        }
        // Tracked transient: the completed + recovered full-shape
        // snapshots and the client's sub-model clone (residual and
        // received are class-shared, not per-client).
        let transient = (4 * (2 * full_params + cr.sub_params)) as u64;
        peak_bytes = peak_bytes.max(acc_bytes + transient);
        metrics.push(ClientMetric {
            id,
            class,
            ratio: cr.ratio,
            fate,
            mean_loss: outcome.mean_loss,
            delta_loss: outcome.delta_loss(),
            samples: outcome.samples,
            time: t,
            arrival,
            scaled: setup.scaled_cost(&cost),
            up_codec,
            up_wire,
            up_dense,
        });
    }
    ShardOutput { acc, metrics, folded, peak_bytes }
}

/// Per-client batch-stream seed: clients sharing a data shard must not
/// share mini-batch order, so the master seed is mixed with the device
/// id before keying the per-round stream.
fn client_stream_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// How an edge aggregator's cloud upload ended, decided purely by the
/// edge-tier chaos draw.
#[derive(Debug, Clone, Copy)]
struct EdgeFate {
    delivered: bool,
    retries: u32,
}

impl EdgeFate {
    fn from_draw(draw: &ChaosDraw, opts: &ChaosOptions) -> Self {
        if draw.crash || draw.drop_down || draw.drop_up {
            EdgeFate { delivered: false, retries: 0 }
        } else if draw.corrupt_sends > opts.max_retransmits {
            EdgeFate { delivered: false, retries: opts.max_retransmits }
        } else {
            EdgeFate { delivered: true, retries: draw.corrupt_sends }
        }
    }
}

/// Per-round state both engines hand to [`finish_round`]: per-shard
/// meta, cohort-ordered client metrics and per-edge exact partials.
struct RoundGather {
    shard_meta: Vec<(usize, u64)>,
    metrics: Vec<ClientMetric>,
    partials: Vec<Option<ExactState>>,
    edge_fates: Vec<EdgeFate>,
    edge_shards: Vec<usize>,
    edge_clients: Vec<usize>,
}

/// Everything after the fan-in: trace emission in canonical order,
/// exact cloud merge, quorum + aggregation, per-class bandit feedback,
/// evaluation and the history record. Shared verbatim by the loop and
/// threaded engines — their bit-identity is this function applied to
/// identical gathers.
#[allow(clippy::too_many_arguments)]
fn finish_round(
    cfg: &FlConfig,
    setup: &HierSetup<'_>,
    opts: &HierarchyOptions,
    round: usize,
    cohort: &[u64],
    gather: RoundGather,
    agents: &mut [EUcbAgent],
    selected: &[usize],
    global: &mut Sequential,
    sim_time: &mut f64,
    kstats: &mut fedmp_tensor::parallel::KernelStats,
    history: &mut RunHistory,
) {
    let RoundGather { shard_meta, metrics, partials, edge_fates, edge_shards, edge_clients } =
        gather;
    let chaos_client = &opts.chaos_client;
    let chaos_edge = &opts.chaos_edge;

    // Per-client events, cohort order.
    for m in &metrics {
        if !m.fate.trained() {
            continue;
        }
        emit_local_train(
            round,
            m.id as usize,
            m.ratio,
            m.mean_loss,
            m.delta_loss,
            cfg.local.tau,
            m.samples,
            &m.time,
            &m.scaled,
        );
    }
    for m in &metrics {
        for attempt in 1..=m.fate.retries() {
            emit_frame_retransmit(round, m.id as usize, attempt, chaos_client.backoff_for(attempt));
        }
    }
    for m in &metrics {
        if let ClientFate::Lost { reason, .. } = m.fate {
            emit_worker_excluded(round, m.id as usize, reason);
        }
    }

    // Shard tier.
    for (s, &(clients, peak)) in shard_meta.iter().enumerate() {
        emit_shard_reduced(round, s, clients, peak);
    }

    // Edge tier: retransmits then the aggregate outcome, edge order.
    let mut edge_retries_total = 0u32;
    for (e, fate) in edge_fates.iter().enumerate() {
        for attempt in 1..=fate.retries {
            emit_frame_retransmit(round, e, attempt, chaos_edge.backoff_for(attempt));
        }
        edge_retries_total += fate.retries;
        emit_edge_aggregate(
            round,
            e,
            edge_shards[e],
            edge_clients[e],
            fate.delivered,
            fate.retries,
        );
    }

    // Cloud merge over delivered edges (exact — merge order is fixed
    // but could be any order without changing a bit).
    let mut cloud: Option<ExactState> = None;
    let mut participants = 0usize;
    for (e, fate) in edge_fates.iter().enumerate() {
        if !fate.delivered {
            continue;
        }
        if let Some(p) = &partials[e] {
            participants += edge_clients[e];
            match cloud.as_mut() {
                Some(c) => c.merge(p),
                None => cloud = Some(p.clone()),
            }
        }
    }

    // Arrival bookkeeping: the cloud's round ends when the last
    // delivered edge partial lands (client arrival + edge backoff); if
    // nothing was delivered the PS waited out the slowest trained
    // client.
    let mut round_time = 0.0f64;
    let mut any_delivered = false;
    for (e, fate) in edge_fates.iter().enumerate() {
        if !fate.delivered {
            continue;
        }
        let mut edge_arrival = 0.0f64;
        for s in partition_range(shard_meta.len(), edge_fates.len(), e) {
            for idx in partition_range(cohort.len(), shard_meta.len(), s) {
                if metrics[idx].fate.delivered() {
                    edge_arrival = edge_arrival.max(metrics[idx].arrival);
                }
            }
        }
        edge_arrival += chaos_edge.backoff_total(fate.retries);
        round_time = round_time.max(edge_arrival);
        any_delivered = true;
    }
    if !any_delivered {
        for m in &metrics {
            if m.fate.trained() {
                round_time = round_time.max(m.arrival);
            }
        }
    }
    *sim_time += round_time;

    let trained: Vec<&ClientMetric> = metrics.iter().filter(|m| m.fate.trained()).collect();
    let mean_comp = if trained.is_empty() {
        0.0
    } else {
        sum_f64(trained.iter().map(|m| m.time.comp)) / trained.len() as f64
    };
    let mean_comm = if trained.is_empty() {
        0.0
    } else {
        sum_f64(trained.iter().map(|m| m.time.comm)) / trained.len() as f64
    };

    // Per-class bandit feedback: one Eq. 8 reward per class, from the
    // class's mean loss delta and mean arrival; classes whose clients
    // all failed before training abandon their pending pull.
    if opts.fixed_ratio.is_none() {
        let t_avg = if trained.is_empty() {
            0.0
        } else {
            sum_f64(trained.iter().map(|m| m.arrival)) / trained.len() as f64
        };
        for &class in selected {
            let members: Vec<&&ClientMetric> =
                trained.iter().filter(|m| m.class == class).collect();
            if members.is_empty() {
                agents[class].abandon();
                continue;
            }
            let k = members.len() as f32;
            let delta = sum_f32(members.iter().map(|m| m.delta_loss)) / k;
            let arrival = sum_f64(members.iter().map(|m| m.arrival)) / f64::from(k);
            agents[class].observe(eucb_reward(delta, arrival, t_avg, &opts.reward));
        }
    }

    // ③ Aggregation under the cohort quorum.
    let quorum = chaos_client.quorum(cohort.len());
    let aggregated = participants >= quorum && cloud.is_some();
    if aggregated {
        if let Some(c) = &cloud {
            global.load_state(&c.finalize(participants));
        }
        if participants < cohort.len() {
            emit_quorum_aggregate(round, quorum, participants, cohort.len() - participants);
        }
        emit_aggregate(round, "R2SP-Hier", participants);
    }

    let train_loss = if trained.is_empty() {
        f32::NAN
    } else {
        sum_f32(trained.iter().map(|m| m.mean_loss)) / trained.len() as f32
    };
    let eval = if aggregated && (round.is_multiple_of(cfg.eval_every) || round + 1 == cfg.rounds) {
        let r = evaluate_image(global, &setup.task.test, cfg.eval_batch, cfg.eval_max_samples);
        Some((r.loss, r.accuracy))
    } else {
        None
    };
    emit_kernel_dispatch(round, kstats);
    let client_retries: u32 = metrics.iter().map(|m| m.fate.retries()).sum();
    let rec = RoundRecord {
        round,
        sim_time: *sim_time,
        round_time,
        mean_comp,
        mean_comm,
        train_loss,
        eval,
        ratios: metrics.iter().map(|m| m.ratio).collect(),
        participants,
        retries: (client_retries + edge_retries_total) as usize,
        exclusions: cohort.len() - participants,
    };
    emit_round_end(&rec);
    history.rounds.push(rec);
}

/// Builds the round's per-class plans (bandit selects, pruning,
/// residuals, codecs) in ascending class order — the order-sensitive
/// prologue both engines run caller-side.
fn class_plans(
    setup: &HierSetup<'_>,
    opts: &HierarchyOptions,
    global: &Sequential,
    cohort: &[u64],
    agents: &mut [EUcbAgent],
) -> (BTreeMap<usize, ClassPlan>, Vec<usize>) {
    let compressed = !opts.compression.is_dense();
    // Any member's profile is the class profile (class_of is a
    // bijection onto the mode × link grid), so the first sighting wins.
    let mut reps: BTreeMap<usize, DeviceProfile> = BTreeMap::new();
    for &id in cohort {
        let device = setup.population.device(id);
        reps.entry(class_of(&device)).or_insert(device);
    }
    let present: Vec<usize> = reps.keys().copied().collect();
    let mut plans = BTreeMap::new();
    for (&class, device) in &reps {
        let device = *device;
        let ratio = match opts.fixed_ratio {
            Some(r) => r,
            None => agents[class].select(),
        };
        let plan = plan_sequential_with(global, setup.task.input_chw, ratio, opts.importance);
        let mut sub = extract_sequential(global, &plan);
        let residual = state_sub(&global.state(), &sparse_state(global, &plan));
        let pair = opts.compression.select(&device);
        let (received, down_wire, down_dense) = if compressed {
            let sub_state = sub.state();
            let delivered = codec_delivered(&sub_state, pair.downlink, None, None);
            sub.load_state(&delivered);
            (
                Some(delivered),
                wire_size_v2(&sub_state, pair.downlink) as u64,
                wire_size_v2(&sub_state, Codec::DenseF32) as u64,
            )
        } else {
            (None, 0, 0)
        };
        let sub_params = state_numel(&sub.state());
        plans.insert(
            class,
            ClassPlan {
                ratio,
                plan,
                sub,
                received,
                residual,
                pair,
                device,
                sub_params,
                down_wire,
                down_dense,
            },
        );
    }
    (plans, present)
}

// ---- the loop engine -----------------------------------------------------

/// Runs population-scale FedMP for `cfg.rounds` rounds: per round a
/// sampled cohort streams through shard reducers fanned out on the
/// deterministic round executor, shard partials merge at the edges and
/// the cloud finalises the exact R2SP mean.
pub fn run_fedmp_hier(
    cfg: &FlConfig,
    setup: &HierSetup<'_>,
    mut global: Sequential,
    opts: &HierarchyOptions,
) -> RunHistory {
    opts.validate(&setup.population);
    let mut history = RunHistory::new("FedMP-Hier");
    let mut sim_time = 0.0f64;
    let mut agents = class_agents(cfg, opts);
    let mut kstats = kernel_baseline();
    let client_plan = ChaosPlan::new(cfg.seed, &opts.chaos_client);
    let edge_plan = ChaosPlan::new(cfg.seed ^ 0xED6E_0000, &opts.chaos_edge);
    let compressed = !opts.compression.is_dense();

    for round in 0..cfg.rounds {
        let cohort = setup.population.sample_cohort(round, opts.cohort);
        emit_cohort_sampled(round, setup.population.size, cohort.len(), opts.shards, opts.edges);
        let online: Vec<usize> = cohort.iter().map(|&id| id as usize).collect();
        emit_round_start(round, sim_time, &online);

        let (classes, selected) = class_plans(setup, opts, &global, &cohort, &mut agents);
        if compressed {
            for &id in &cohort {
                let device = setup.population.device(id);
                let cr = &classes[&class_of(&device)];
                let slow = device.is_slow_link(opts.compression.slow_link_bps);
                emit_codec_selected(round, id as usize, &cr.pair, slow);
            }
        }

        // Shard fan-out over the round executor: each slot streams its
        // contiguous cohort slice into one exact accumulator.
        let template = global.state();
        let shard_ids: Vec<usize> = (0..opts.shards).collect();
        let outputs = exec::ordered_map(shard_ids, |_, s| {
            reduce_shard(
                cfg,
                setup,
                &global,
                &template,
                &cohort,
                partition_range(cohort.len(), opts.shards, s),
                &classes,
                &client_plan,
                round,
                compressed,
            )
        });

        // Per-delivered-client compression events need the class-side
        // downlink sizes; emit them here in cohort order before the
        // shared epilogue (which emits LocalTrain etc.).
        let metrics: Vec<ClientMetric> =
            outputs.iter().flat_map(|o| o.metrics.iter().cloned()).collect();
        if compressed {
            for m in &metrics {
                if !m.fate.trained() {
                    continue;
                }
                let cr = &classes[&m.class];
                emit_compression_applied(
                    round,
                    m.id as usize,
                    "down",
                    cr.pair.downlink,
                    cr.down_dense,
                    cr.down_wire,
                );
                emit_compression_applied(
                    round,
                    m.id as usize,
                    "up",
                    m.up_codec,
                    m.up_dense,
                    m.up_wire,
                );
            }
        }

        // Edge tier: merge each edge's shard accumulators (exact), then
        // apply the edge-tier chaos fates.
        let mut partials: Vec<Option<ExactState>> = Vec::with_capacity(opts.edges);
        let mut edge_fates = Vec::with_capacity(opts.edges);
        let mut edge_shards = Vec::with_capacity(opts.edges);
        let mut edge_clients = Vec::with_capacity(opts.edges);
        for e in 0..opts.edges {
            let range = partition_range(opts.shards, opts.edges, e);
            edge_shards.push(range.len());
            let mut merged: Option<ExactState> = None;
            let mut clients = 0usize;
            for s in range {
                clients += outputs[s].folded;
                match merged.as_mut() {
                    Some(m) => m.merge(&outputs[s].acc),
                    None => merged = Some(outputs[s].acc.clone()),
                }
            }
            edge_clients.push(clients);
            partials.push(merged);
            edge_fates.push(EdgeFate::from_draw(&edge_plan.draw(round, e), &opts.chaos_edge));
        }
        let shard_meta: Vec<(usize, u64)> =
            outputs.iter().map(|o| (o.folded, o.peak_bytes)).collect();

        finish_round(
            cfg,
            setup,
            opts,
            round,
            &cohort,
            RoundGather { shard_meta, metrics, partials, edge_fates, edge_shards, edge_clients },
            &mut agents,
            &selected,
            &mut global,
            &mut sim_time,
            &mut kstats,
            &mut history,
        );
    }
    history
}

fn class_agents(cfg: &FlConfig, opts: &HierarchyOptions) -> Vec<EUcbAgent> {
    (0..CLASS_COUNT)
        .map(|c| {
            let mut e = opts.eucb;
            e.seed = e.seed.wrapping_add(c as u64).wrapping_add(cfg.seed);
            EUcbAgent::new(e)
        })
        .collect()
}

// ---- the threaded engine -------------------------------------------------

/// Edge → cloud protocol messages of the threaded engine.
enum EdgeMsg {
    /// The edge's metrics plane plus how its payload will arrive. Sent
    /// exactly once per round per edge.
    Report {
        /// Edge index.
        edge: usize,
        /// Per-shard (folded clients, peak bytes), shard order.
        shard_meta: Vec<(usize, u64)>,
        /// Cohort-slice client metrics, cohort order.
        metrics: Vec<ClientMetric>,
        /// Whether partial-sum frames will follow (`false`: the edge
        /// crashed or its upload was dropped in transit).
        sending: bool,
    },
    /// One (re)transmission of the edge's partial-sum frame.
    Frame {
        /// Edge index.
        edge: usize,
        /// The checksummed frame (possibly transit-corrupted).
        bytes: Bytes,
    },
}

/// PS → edge control messages.
enum EdgeCtl {
    /// The last frame failed its checksum; send again.
    Retry,
    /// The round is settled for this edge; exit.
    Done,
}

/// One edge aggregator's round: compute its shards (streaming, same
/// pure function as the loop engine), merge them exactly, and run the
/// upload protocol against its chaos draw. The metrics plane is
/// simulation bookkeeping and always reaches the PS; only the model
/// payload is subject to transport faults.
#[allow(clippy::too_many_arguments)]
fn edge_round(
    e: usize,
    cfg: &FlConfig,
    setup: &HierSetup<'_>,
    global: &Sequential,
    template: &[StateEntry],
    cohort: &[u64],
    classes: &BTreeMap<usize, ClassPlan>,
    opts: &HierarchyOptions,
    client_plan: &ChaosPlan,
    edge_plan: &ChaosPlan,
    round: usize,
    up: &Sender<EdgeMsg>,
    ctl: &Receiver<EdgeCtl>,
) {
    let _guard = LiveThreadGuard::register();
    let compressed = !opts.compression.is_dense();
    let mut shard_meta = Vec::new();
    let mut metrics = Vec::new();
    let mut merged: Option<ExactState> = None;
    for s in partition_range(opts.shards, opts.edges, e) {
        let out = reduce_shard(
            cfg,
            setup,
            global,
            template,
            cohort,
            partition_range(cohort.len(), opts.shards, s),
            classes,
            client_plan,
            round,
            compressed,
        );
        shard_meta.push((out.folded, out.peak_bytes));
        metrics.extend(out.metrics);
        match merged.as_mut() {
            Some(m) => m.merge(&out.acc),
            None => merged = Some(out.acc),
        }
    }
    let draw = edge_plan.draw(round, e);
    let sending = !(draw.crash || draw.drop_up || draw.drop_down);
    if up.send(EdgeMsg::Report { edge: e, shard_meta, metrics, sending }).is_err() {
        return; // PS abandoned the round; exit quietly.
    }
    if !sending {
        // Wait for Done (or a closed channel) so the PS controls join
        // order even for faulted edges.
        while let Ok(EdgeCtl::Retry) = ctl.recv() {}
        return;
    }
    let frame = match &merged {
        Some(m) => m.encode(),
        None => ExactState::like(template).encode(),
    };
    let mut send_idx = 0u32;
    loop {
        let wire =
            if send_idx < draw.corrupt_sends { corrupted_copy(&frame) } else { frame.clone() };
        if up.send(EdgeMsg::Frame { edge: e, bytes: wire }).is_err() {
            return;
        }
        match ctl.recv() {
            Ok(EdgeCtl::Retry) => send_idx += 1,
            Ok(EdgeCtl::Done) | Err(_) => return,
        }
    }
}

/// Runs population-scale FedMP with each edge aggregator as a
/// recoverable protocol participant on its own thread. Chaos-off runs
/// — and chaos-on runs, since every fault is a pure function of the
/// seed — are bit-identical to [`run_fedmp_hier`] with the same
/// options, at any thread count.
pub fn run_fedmp_hier_threaded(
    cfg: &FlConfig,
    setup: &HierSetup<'_>,
    mut global: Sequential,
    opts: &HierarchyOptions,
) -> Result<RunHistory, RuntimeError> {
    opts.validate(&setup.population);
    let mut history = RunHistory::new("FedMP-Hier");
    let mut sim_time = 0.0f64;
    let mut agents = class_agents(cfg, opts);
    let mut kstats = kernel_baseline();
    let client_plan = ChaosPlan::new(cfg.seed, &opts.chaos_client);
    let edge_plan = ChaosPlan::new(cfg.seed ^ 0xED6E_0000, &opts.chaos_edge);
    let compressed = !opts.compression.is_dense();

    for round in 0..cfg.rounds {
        let cohort = setup.population.sample_cohort(round, opts.cohort);
        emit_cohort_sampled(round, setup.population.size, cohort.len(), opts.shards, opts.edges);
        let online: Vec<usize> = cohort.iter().map(|&id| id as usize).collect();
        emit_round_start(round, sim_time, &online);

        let (classes, selected) = class_plans(setup, opts, &global, &cohort, &mut agents);
        if compressed {
            for &id in &cohort {
                let device = setup.population.device(id);
                let cr = &classes[&class_of(&device)];
                let slow = device.is_slow_link(opts.compression.slow_link_bps);
                emit_codec_selected(round, id as usize, &cr.pair, slow);
            }
        }

        let template = global.state();
        let gather = run_edges_threaded(
            cfg,
            setup,
            &global,
            &template,
            &cohort,
            &classes,
            opts,
            &client_plan,
            &edge_plan,
            round,
        )?;

        if compressed {
            for m in &gather.metrics {
                if !m.fate.trained() {
                    continue;
                }
                let cr = &classes[&m.class];
                emit_compression_applied(
                    round,
                    m.id as usize,
                    "down",
                    cr.pair.downlink,
                    cr.down_dense,
                    cr.down_wire,
                );
                emit_compression_applied(
                    round,
                    m.id as usize,
                    "up",
                    m.up_codec,
                    m.up_dense,
                    m.up_wire,
                );
            }
        }

        finish_round(
            cfg,
            setup,
            opts,
            round,
            &cohort,
            gather,
            &mut agents,
            &selected,
            &mut global,
            &mut sim_time,
            &mut kstats,
            &mut history,
        );
    }
    Ok(history)
}

/// One round of the edge-thread protocol: spawn an aggregator per
/// edge, collect reports and payload frames with checksum-verified
/// retransmits, and assemble the same [`RoundGather`] the loop engine
/// builds. Threads always join before this returns (structurally: the
/// scope ends after every control sender has issued `Done` or
/// dropped).
#[allow(clippy::too_many_arguments)]
fn run_edges_threaded(
    cfg: &FlConfig,
    setup: &HierSetup<'_>,
    global: &Sequential,
    template: &[StateEntry],
    cohort: &[u64],
    classes: &BTreeMap<usize, ClassPlan>,
    opts: &HierarchyOptions,
    client_plan: &ChaosPlan,
    edge_plan: &ChaosPlan,
    round: usize,
) -> Result<RoundGather, RuntimeError> {
    let edges = opts.edges;
    let acc_template = ExactState::like(template);
    let mut shard_meta_by_edge: Vec<Option<Vec<(usize, u64)>>> = (0..edges).map(|_| None).collect();
    let mut metrics_by_edge: Vec<Option<Vec<ClientMetric>>> = (0..edges).map(|_| None).collect();
    let mut partials: Vec<Option<ExactState>> = (0..edges).map(|_| None).collect();
    let mut retries: Vec<u32> = vec![0; edges];
    let mut result: Result<(), RuntimeError> = Ok(());

    std::thread::scope(|scope| {
        let (up_tx, up_rx) = bounded::<EdgeMsg>(edges.max(1) * 2);
        let mut ctls: Vec<Option<Sender<EdgeCtl>>> = Vec::with_capacity(edges);
        for e in 0..edges {
            let (ctl_tx, ctl_rx) = bounded::<EdgeCtl>(2);
            ctls.push(Some(ctl_tx));
            let up = up_tx.clone();
            scope.spawn(move || {
                edge_round(
                    e,
                    cfg,
                    setup,
                    global,
                    template,
                    cohort,
                    classes,
                    opts,
                    client_plan,
                    edge_plan,
                    round,
                    &up,
                    &ctl_rx,
                );
            });
        }
        drop(up_tx);

        // Resolution: an edge is settled once its report arrived and —
        // when it is sending — its frame either decoded or exhausted
        // the retransmit budget.
        let mut settled = 0usize;
        let mut awaiting_frame = vec![false; edges];
        while settled < edges {
            let msg = match up_rx.recv() {
                Ok(m) => m,
                Err(_) => {
                    // Every sender gone with edges unsettled: threads
                    // vanished outside the protocol.
                    result = Err(RuntimeError::WorkerLost { worker: settled });
                    break;
                }
            };
            match msg {
                EdgeMsg::Report { edge, shard_meta, metrics, sending } => {
                    shard_meta_by_edge[edge] = Some(shard_meta);
                    metrics_by_edge[edge] = Some(metrics);
                    if sending {
                        awaiting_frame[edge] = true;
                    } else {
                        if let Some(ctl) = &ctls[edge] {
                            let _ = ctl.send(EdgeCtl::Done);
                        }
                        ctls[edge] = None;
                        settled += 1;
                    }
                }
                EdgeMsg::Frame { edge, bytes } => {
                    if !awaiting_frame[edge] {
                        result = Err(RuntimeError::CorruptFrame { worker: edge, round });
                        break;
                    }
                    match ExactState::decode(&bytes, &acc_template) {
                        Ok(Some(partial)) => {
                            partials[edge] = Some(partial);
                            awaiting_frame[edge] = false;
                            if let Some(ctl) = &ctls[edge] {
                                let _ = ctl.send(EdgeCtl::Done);
                            }
                            ctls[edge] = None;
                            settled += 1;
                        }
                        Ok(None) => {
                            // Transit corruption: bounded retransmits.
                            if retries[edge] < opts.chaos_edge.max_retransmits {
                                retries[edge] += 1;
                                if let Some(ctl) = &ctls[edge] {
                                    let _ = ctl.send(EdgeCtl::Retry);
                                }
                            } else {
                                awaiting_frame[edge] = false;
                                if let Some(ctl) = &ctls[edge] {
                                    let _ = ctl.send(EdgeCtl::Done);
                                }
                                ctls[edge] = None;
                                settled += 1;
                            }
                        }
                        Err(()) => {
                            result = Err(RuntimeError::CorruptFrame { worker: edge, round });
                            break;
                        }
                    }
                }
            }
        }
        // Release every remaining control channel so faulted paths
        // can't wedge the scope join.
        for ctl in ctls.iter_mut() {
            if let Some(c) = ctl.take() {
                let _ = c.send(EdgeCtl::Done);
            }
        }
        // Drain stragglers so bounded channels never block an exiting
        // edge thread, then drop both endpoint collections before the
        // scope ends: a late `send` must observe disconnect (and bail
        // via its error path) rather than park on a full channel and
        // wedge the join.
        while up_rx.try_recv().is_some() {}
        drop(ctls);
        drop(up_rx);
    });
    result?;

    // Assemble in edge order; contiguous edge → shard → cohort ranges
    // make plain concatenation the canonical cohort order.
    let mut shard_meta = Vec::with_capacity(opts.shards);
    let mut metrics = Vec::with_capacity(cohort.len());
    let mut edge_fates = Vec::with_capacity(edges);
    let mut edge_shards = Vec::with_capacity(edges);
    let mut edge_clients = Vec::with_capacity(edges);
    for e in 0..edges {
        let meta = match shard_meta_by_edge[e].take() {
            Some(m) => m,
            None => return Err(RuntimeError::WorkerLost { worker: e }),
        };
        let mut clients = 0usize;
        edge_shards.push(meta.len());
        for (folded, _) in &meta {
            clients += folded;
        }
        edge_clients.push(clients);
        shard_meta.extend(meta);
        if let Some(m) = metrics_by_edge[e].take() {
            metrics.extend(m);
        }
        // The PS-side fate mirrors the edge's own draw (shared plan)
        // plus the observed retransmit outcome.
        edge_fates.push(EdgeFate::from_draw(&edge_plan.draw(round, e), &opts.chaos_edge));
    }
    Ok(RoundGather { shard_meta, metrics, partials, edge_fates, edge_shards, edge_clients })
}
