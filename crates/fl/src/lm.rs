//! The §VI RNN extension: federated training of the 2-layer LSTM
//! language model with ISS pruning (Table IV compares Syn-FL, UP-FL and
//! FedMP on perplexity).

use crate::aggregate::{average_states, r2sp_aggregate};
use crate::engine::{
    emit_aggregate, emit_kernel_dispatch, emit_local_train, emit_round_end, emit_round_start_all,
    kernel_baseline,
};
use crate::eval::evaluate_lm;
use crate::exec;
use crate::history::{RoundRecord, RunHistory};
use fedmp_bandit::{eucb_reward, Bandit, EUcbAgent, EUcbConfig, RewardConfig};
use fedmp_data::TextBatch;
use fedmp_edgesim::{DeviceProfile, RoundCost, TimeModel};
use fedmp_nn::{clip_grad_norm, lstm_cost_per_token, state_sub, LstmLm, Sgd};
use fedmp_pruning::{extract_lstm, plan_lstm, recover_lstm_state, sparse_lstm_state};
use fedmp_tensor::cross_entropy_loss;
use fedmp_tensor::parallel::{sum_f32, sum_f64};
use serde::{Deserialize, Serialize};

/// Which method trains the language model (the Table IV rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LmMethod {
    /// Full-model FedAvg.
    SynFl,
    /// Uniform ISS pruning ratio for all workers (shared agent).
    UpFl,
    /// Per-worker adaptive ISS pruning with R2SP.
    FedMp,
}

impl LmMethod {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LmMethod::SynFl => "Syn-FL",
            LmMethod::UpFl => "UP-FL",
            LmMethod::FedMp => "FedMP",
        }
    }
}

/// The federated LM deployment.
#[derive(Debug, Clone)]
pub struct LmSetup {
    /// Per-worker training batches (each worker owns a corpus lane).
    pub worker_batches: Vec<Vec<TextBatch>>,
    /// Held-out evaluation batches.
    pub eval_batches: Vec<TextBatch>,
    /// Device profile per worker.
    pub devices: Vec<DeviceProfile>,
    /// Virtual-clock model.
    pub time: TimeModel,
    /// Width-compensation factors (see [`crate::engine::FlSetup`]).
    pub cost_scale: crate::CostScale,
}

/// LM engine options.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LmOptions {
    /// Aggregation rounds.
    pub rounds: usize,
    /// Local BPTT iterations per round.
    pub tau: usize,
    /// Learning rate.
    pub lr: f32,
    /// Evaluate every this many rounds.
    pub eval_every: usize,
    /// Max evaluation batches per evaluation.
    pub eval_max_batches: usize,
    /// E-UCB configuration (pruning methods).
    pub eucb: EUcbConfig,
    /// Reward shaping.
    pub reward: RewardConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            rounds: 20,
            tau: 4,
            lr: 0.4,
            eval_every: 2,
            eval_max_batches: 8,
            eucb: EUcbConfig::default(),
            reward: RewardConfig::default(),
            seed: 0,
        }
    }
}

/// Alias kept for API symmetry with the image engines.
pub type LmRunResult = RunHistory;

fn local_train_lm(
    model: &mut LstmLm,
    batches: &[TextBatch],
    start: usize,
    tau: usize,
    lr: f32,
) -> (f32, f32, f32) {
    let mut opt = Sgd::with_momentum(lr, 0.9, 0.0);
    let mut first = 0.0f32;
    let mut last = 0.0f32;
    let mut total = 0.0f32;
    for t in 0..tau {
        let b = &batches[(start + t) % batches.len()];
        model.zero_grad();
        let logits = model.forward(&b.inputs);
        let out = cross_entropy_loss(&logits, &b.targets);
        model.backward(&out.grad_logits);
        clip_grad_norm(model, 5.0);
        opt.step(model);
        if t == 0 {
            first = out.loss;
        }
        last = out.loss;
        total += out.loss;
    }
    (first, last, total / tau as f32)
}

fn lm_round_cost(model: &LstmLm, batch: usize, seq: usize, tau: usize) -> RoundCost {
    let report = lstm_cost_per_token(model);
    RoundCost {
        train_flops: report.flops_per_sample as f64 * 3.0 * (batch * seq * tau) as f64,
        download_bytes: report.param_bytes() as f64,
        upload_bytes: report.param_bytes() as f64,
    }
}

/// Runs one LM method for `opts.rounds` rounds from `global`.
pub fn run_lm(
    setup: &LmSetup,
    opts: &LmOptions,
    method: LmMethod,
    mut global: LstmLm,
) -> RunHistory {
    let workers = setup.worker_batches.len();
    assert_eq!(setup.devices.len(), workers, "device count mismatch");
    assert!(workers > 0, "need at least one worker");
    let (batch, seq) = {
        let b = &setup.worker_batches[0][0];
        (b.inputs.len(), b.inputs[0].len())
    };
    let mut history = RunHistory::new(method.name());
    let mut sim_time = 0.0f64;

    let mut agents: Vec<EUcbAgent> = (0..workers)
        .map(|w| {
            let mut c = opts.eucb;
            c.seed = c.seed.wrapping_add(w as u64).wrapping_add(opts.seed);
            EUcbAgent::new(c)
        })
        .collect();
    let mut shared_agent = {
        let mut c = opts.eucb;
        c.seed = c.seed.wrapping_add(opts.seed);
        EUcbAgent::new(c)
    };

    let mut kstats = kernel_baseline();

    for round in 0..opts.rounds {
        emit_round_start_all(round, sim_time, workers);
        // Choose ratios.
        let ratios: Vec<f32> = match method {
            LmMethod::SynFl => vec![0.0; workers],
            LmMethod::UpFl => vec![shared_agent.select(); workers],
            LmMethod::FedMp => agents.iter_mut().map(|a| a.select()).collect(),
        };

        // Per-worker round work, fanned across the round executor:
        // build the (possibly pruned) sub-model and residual from the
        // read-only global, then train it. Agent selection above and
        // timing/aggregation/emission below stay in worker order.
        let results = exec::ordered_map(ratios.clone(), |w, r| {
            let (mut model, plan, residual) = if method == LmMethod::SynFl || r == 0.0 {
                (global.clone(), None, None)
            } else {
                let plan = plan_lstm(&global, r);
                let sub = extract_lstm(&global, &plan);
                let residual = state_sub(&global.state(), &sparse_lstm_state(&global, &plan));
                (sub, Some(plan), Some(residual))
            };
            let start = round * opts.tau + w;
            let (first, last, mean) =
                local_train_lm(&mut model, &setup.worker_batches[w], start, opts.tau, opts.lr);
            (model, plan, residual, first - last, mean)
        });

        // Timing.
        let mut times = Vec::with_capacity(workers);
        let mut comp_sum = 0.0;
        let mut comm_sum = 0.0;
        for (w, (model, ..)) in results.iter().enumerate() {
            let mut cost = lm_round_cost(model, batch, seq, opts.tau);
            cost.train_flops *= setup.cost_scale.flops;
            cost.download_bytes *= setup.cost_scale.bytes;
            cost.upload_bytes *= setup.cost_scale.bytes;
            let mut rng = crate::engine::worker_rng(opts.seed ^ 0x77, round, w);
            let t = setup.time.round_time(&setup.devices[w], &cost, &mut rng);
            comp_sum += t.comp;
            comm_sum += t.comm;
            // `samples` counts tokens for the LM task (batch · seq · τ).
            emit_local_train(
                round,
                w,
                ratios[w],
                results[w].4,
                results[w].3,
                opts.tau,
                batch * seq * opts.tau,
                &t,
                &cost,
            );
            times.push(t.total());
        }
        let round_time = times.iter().copied().fold(0.0, f64::max);
        sim_time += round_time;

        // Rewards.
        match method {
            LmMethod::SynFl => {}
            LmMethod::UpFl => {
                let mean_delta = sum_f32(results.iter().map(|(_, _, _, d, _)| *d)) / workers as f32;
                shared_agent.observe(mean_delta / round_time.max(1e-6) as f32);
            }
            LmMethod::FedMp => {
                let t_avg = sum_f64(times.iter().copied()) / workers as f64;
                for (w, agent) in agents.iter_mut().enumerate() {
                    agent.observe(eucb_reward(results[w].3, times[w], t_avg, &opts.reward));
                }
            }
        }

        // Aggregation.
        let mut recovered = Vec::with_capacity(workers);
        let mut residuals = Vec::with_capacity(workers);
        for (model, plan, residual, _, _) in &results {
            match (plan, residual) {
                (Some(p), Some(q)) => {
                    recovered.push(recover_lstm_state(model, p, &global));
                    residuals.push(q.clone());
                }
                _ => {
                    recovered.push(model.state());
                    residuals.push(state_sub(&global.state(), &global.state()));
                    // zeros
                }
            }
        }
        let new_state = if method == LmMethod::SynFl {
            average_states(&recovered)
        } else {
            r2sp_aggregate(&recovered, &residuals)
        };
        global.load_state(&new_state);
        emit_aggregate(round, if method == LmMethod::SynFl { "FedAvg" } else { "R2SP" }, workers);

        let train_loss = sum_f32(results.iter().map(|(_, _, _, _, m)| *m)) / workers as f32;
        let eval = if round % opts.eval_every == 0 || round + 1 == opts.rounds {
            let r = evaluate_lm(&mut global, &setup.eval_batches, opts.eval_max_batches);
            Some((r.loss, r.accuracy)) // accuracy slot holds perplexity
        } else {
            None
        };
        emit_kernel_dispatch(round, &mut kstats);
        let rec = RoundRecord {
            round,
            sim_time,
            round_time,
            mean_comp: comp_sum / workers as f64,
            mean_comm: comm_sum / workers as f64,
            train_loss,
            eval,
            ratios,
            participants: workers,
            ..Default::default()
        };
        emit_round_end(&rec);
        history.rounds.push(rec);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_data::ptb_like;
    use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    fn lm_setup(workers: usize) -> LmSetup {
        let corpus = ptb_like(30, 20_000, 7);
        let (train, eval) = corpus.split(0.9);
        let lane = train.len() / workers;
        let worker_batches: Vec<Vec<TextBatch>> = (0..workers)
            .map(|w| {
                let t = fedmp_data::TextDataset {
                    tokens: train.tokens[w * lane..(w + 1) * lane].to_vec(),
                    vocab: train.vocab,
                };
                t.batches(4, 8)
            })
            .collect();
        LmSetup {
            worker_batches,
            eval_batches: eval.batches(4, 8),
            devices: (0..workers)
                .map(|i| {
                    if i % 2 == 0 {
                        tx2_profile(ComputeMode::Mode0, LinkQuality::Near)
                    } else {
                        tx2_profile(ComputeMode::Mode2, LinkQuality::Mid)
                    }
                })
                .collect(),
            time: TimeModel::deterministic(),
            cost_scale: crate::CostScale::default(),
        }
    }

    #[test]
    fn lm_fedmp_reduces_perplexity() {
        let setup = lm_setup(2);
        let mut rng = seeded_rng(130);
        let global = zoo::lstm_ptb(30, 0.2, &mut rng);
        let opts = LmOptions { rounds: 10, eval_every: 9, ..Default::default() };
        let h = run_lm(&setup, &opts, LmMethod::FedMp, global);
        let first_ppl = h.rounds.iter().find_map(|r| r.eval).unwrap().1;
        let last_ppl = h.final_accuracy().unwrap();
        assert!(last_ppl < first_ppl, "perplexity {first_ppl} -> {last_ppl}");
        assert!(last_ppl < 30.0, "perplexity should beat uniform ({last_ppl})");
    }

    #[test]
    fn lm_all_methods_complete() {
        let setup = lm_setup(2);
        let mut rng = seeded_rng(131);
        let global = zoo::lstm_ptb(30, 0.15, &mut rng);
        let opts = LmOptions { rounds: 3, eval_every: 2, ..Default::default() };
        for method in [LmMethod::SynFl, LmMethod::UpFl, LmMethod::FedMp] {
            let h = run_lm(&setup, &opts, method, global.clone());
            assert_eq!(h.rounds.len(), 3, "{}", method.name());
        }
    }

    #[test]
    fn pruned_lm_round_is_cheaper() {
        let setup = lm_setup(2);
        let mut rng = seeded_rng(132);
        let global = zoo::lstm_ptb(30, 0.2, &mut rng);
        let full = lm_round_cost(&global, 4, 8, 4);
        let plan = plan_lstm(&global, 0.5);
        let sub = extract_lstm(&global, &plan);
        let pruned = lm_round_cost(&sub, 4, 8, 4);
        assert!(pruned.train_flops < full.train_flops);
        assert!(pruned.upload_bytes < full.upload_bytes);
        let _ = setup;
    }
}
