//! The deterministic transport fault plane for the threaded runtime.
//!
//! A [`ChaosPlan`] is a *pure function* from `(seed, round, worker)` to
//! a [`ChaosDraw`]: which transport faults hit that worker's exchange
//! that round. Both sides of the channel — the PS deciding whether a
//! downlink is lost, the worker deciding whether to corrupt its upload
//! or crash — evaluate the same plan and therefore agree on every
//! fault without exchanging any extra state. That is what keeps chaos
//! runs bit-identical at any executor thread count: the faults are a
//! function of the seed, never of scheduling.
//!
//! The draws model the §V-A failure surface of a real edge deployment:
//!
//! - **corruption** — an upload frame arrives with a flipped byte; the
//!   PS detects it via the wire checksum and requests a retransmit
//!   (bounded, exponential backoff on the virtual clock);
//! - **loss** — a downlink or uplink never arrives; the PS excludes the
//!   worker for the round when its deadline passes;
//! - **delay** — a worker's arrival is pushed late, so the §V-A
//!   deadline excludes it as a straggler;
//! - **crash** — the worker thread exits mid-round (the in-process
//!   stand-in for a device reset); the PS restarts it with a fresh
//!   channel pair on the next round.

use crate::engine::worker_rng;
use bytes::Bytes;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Knobs of the transport fault plane. [`ChaosOptions::none`] disables
/// every fault, under which the threaded runtime is bit-identical to a
/// chaos-free run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosOptions {
    /// Extra seed mixed into the per-(round, worker) draws, so chaos
    /// schedules can be varied independently of the experiment seed.
    pub seed: u64,
    /// Probability a worker's upload arrives corrupted this round.
    pub corrupt_prob: f64,
    /// When corruption fires, how many consecutive sends (first upload
    /// plus retransmits) arrive corrupted: uniform in
    /// `1..=max_corrupt_sends`. Values above `max_retransmits` make
    /// retry exhaustion (and exclusion) reachable.
    pub max_corrupt_sends: u32,
    /// Probability the exchange is lost entirely (split evenly between
    /// the downlink and the uplink direction).
    pub drop_prob: f64,
    /// Probability the worker's arrival is delayed by `delay_secs`.
    pub delay_prob: f64,
    /// Virtual seconds a delayed arrival is pushed late.
    pub delay_secs: f64,
    /// Probability the worker thread crashes on receiving its dispatch.
    pub crash_prob: f64,
    /// Retransmit budget per worker per round; a frame still corrupt
    /// after this many resends excludes the worker for the round.
    pub max_retransmits: u32,
    /// Base virtual-clock backoff: retransmit attempt `a` (1-based)
    /// charges `backoff_secs · 2^(a−1)` to the worker's arrival time.
    pub backoff_secs: f64,
    /// Quorum fraction: a round aggregates only when at least
    /// `max(1, ceil(quorum_frac · online))` models survived exclusion.
    /// 0.0 keeps the loop-engine semantics (any single arrival counts).
    pub quorum_frac: f64,
}

impl ChaosOptions {
    /// No chaos at all: every probability zero, loop-engine quorum
    /// semantics. The defaults for the recovery knobs (3 retransmits,
    /// 0.5 s base backoff) still apply if faults are enabled field-wise.
    pub fn none() -> Self {
        ChaosOptions {
            seed: 0,
            corrupt_prob: 0.0,
            max_corrupt_sends: 1,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_secs: 0.0,
            crash_prob: 0.0,
            max_retransmits: 3,
            backoff_secs: 0.5,
            quorum_frac: 0.0,
        }
    }

    /// The fixed plan used by the chaos smoke tooling and tests: every
    /// fault class likely to fire within a few rounds of a small fleet
    /// (corruption, both drop directions, deadline-busting delays and
    /// at least one crash/rejoin), with a retransmit budget that some
    /// corruption streaks exhaust.
    pub fn demo(seed: u64) -> Self {
        ChaosOptions {
            seed,
            corrupt_prob: 0.5,
            max_corrupt_sends: 3,
            drop_prob: 0.25,
            delay_prob: 0.3,
            delay_secs: 5.0,
            crash_prob: 0.2,
            max_retransmits: 2,
            backoff_secs: 0.5,
            quorum_frac: 0.34,
        }
    }

    /// Whether every fault probability is zero (the plan can never
    /// change an exchange).
    pub fn is_noop(&self) -> bool {
        self.corrupt_prob <= 0.0
            && self.drop_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.crash_prob <= 0.0
    }

    /// The quorum for a round with `online` dispatched workers:
    /// `max(1, ceil(quorum_frac · online))`.
    pub fn quorum(&self, online: usize) -> usize {
        ((online as f64 * self.quorum_frac.clamp(0.0, 1.0)).ceil() as usize).max(1)
    }

    /// Virtual backoff charged for retransmit attempt `attempt`
    /// (1-based): `backoff_secs · 2^(attempt−1)`, via the shared
    /// [`backoff_scale`] schedule.
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        self.backoff_secs * backoff_scale(attempt)
    }

    /// Total virtual backoff after `retries` retransmits: the geometric
    /// sum `backoff_secs · (2^retries − 1)`.
    pub fn backoff_total(&self, retries: u32) -> f64 {
        self.backoff_secs * (2f64.powi(retries.min(62) as i32) - 1.0)
    }
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self::none()
    }
}

/// The one exponential-backoff schedule both recovery layers share:
/// attempt `a` (1-based) scales the base delay by `2^(a−1)`, with the
/// exponent capped at 62 so the factor never overflows. The runtime's
/// virtual-clock retransmit penalty ([`ChaosOptions::backoff_for`])
/// and the transport's wall-clock connect/accept retries
/// ([`backoff`]) both derive from this function, which is what keeps
/// the two layers in lockstep.
pub fn backoff_scale(attempt: u32) -> f64 {
    (1u64 << attempt.saturating_sub(1).min(62)) as f64
}

/// Wall-clock flavour of the shared schedule, used by `fl::transport`
/// for connect/accept retry sleeps: `base · 2^(attempt−1)` with the
/// same exponent cap, saturating at `Duration::from_nanos(u64::MAX)`
/// instead of overflowing.
pub fn backoff(base: core::time::Duration, attempt: u32) -> core::time::Duration {
    let factor = 1u64 << attempt.saturating_sub(1).min(62);
    let nanos = base.as_nanos().saturating_mul(factor as u128).min(u64::MAX as u128) as u64;
    core::time::Duration::from_nanos(nanos)
}

/// One worker-round's fault decisions, drawn by [`ChaosPlan::draw`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosDraw {
    /// The worker thread crashes on receiving this round's dispatch
    /// (overrides every other fault).
    pub crash: bool,
    /// The downlink never reaches the worker.
    pub drop_down: bool,
    /// The trained upload never reaches the PS.
    pub drop_up: bool,
    /// How many consecutive sends of this round's upload arrive
    /// corrupted (0 = clean).
    pub corrupt_sends: u32,
    /// Virtual seconds this worker's arrival is delayed.
    pub delay_secs: f64,
}

/// A seeded chaos schedule: [`ChaosOptions`] plus the run seed. `Copy`
/// so each worker thread carries its own plan; every copy produces the
/// same draws.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    seed: u64,
    opts: ChaosOptions,
}

impl ChaosPlan {
    /// Builds the plan for a run: the experiment seed is mixed with the
    /// chaos seed so the same experiment can replay different fault
    /// schedules (and vice versa).
    pub fn new(run_seed: u64, opts: &ChaosOptions) -> Self {
        ChaosPlan {
            seed: run_seed ^ opts.seed.rotate_left(17) ^ 0xC4A0_5000_0000_0001,
            opts: *opts,
        }
    }

    /// The options the plan was built from.
    pub fn options(&self) -> &ChaosOptions {
        &self.opts
    }

    /// The fault decisions for `(round, worker)` — a pure function of
    /// the plan's seed, identical wherever it is evaluated. The draw
    /// order is fixed (crash, drop + direction, corruption + streak
    /// length, delay) so every consumer consumes the same RNG stream.
    pub fn draw(&self, round: usize, worker: usize) -> ChaosDraw {
        if self.opts.is_noop() {
            return ChaosDraw {
                crash: false,
                drop_down: false,
                drop_up: false,
                corrupt_sends: 0,
                delay_secs: 0.0,
            };
        }
        let mut rng = worker_rng(self.seed, round, worker);
        let crash = rng.gen::<f64>() < self.opts.crash_prob;
        let drop_roll = rng.gen::<f64>();
        let drop_down = drop_roll < self.opts.drop_prob * 0.5;
        let drop_up = !drop_down && drop_roll < self.opts.drop_prob;
        let corrupt_sends = if rng.gen::<f64>() < self.opts.corrupt_prob {
            let span = self.opts.max_corrupt_sends.max(1) as f64;
            1 + (rng.gen::<f64>() * span) as u32
        } else {
            // Keep the RNG stream shape identical whether or not the
            // corruption coin lands, so adjusting corrupt_prob does not
            // silently reshuffle the delay draws.
            let _ = rng.gen::<f64>();
            0
        };
        let delay_secs =
            if rng.gen::<f64>() < self.opts.delay_prob { self.opts.delay_secs } else { 0.0 };
        let corrupt_sends = corrupt_sends.min(self.opts.max_corrupt_sends.max(1));
        ChaosDraw { crash, drop_down, drop_up, corrupt_sends, delay_secs }
    }
}

/// A transit-corrupted copy of a wire frame: one byte in the middle of
/// the body flipped, which the FNV-1a frame checksum always detects.
/// Deterministic (no RNG) so a corrupted send is a pure function of the
/// clean frame.
pub(crate) fn corrupted_copy(frame: &Bytes) -> Bytes {
    if frame.is_empty() {
        return frame.clone();
    }
    let mut bad = frame.to_vec();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    Bytes::from(bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_state, frame_checksum_ok};
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn draws_are_coordinate_deterministic() {
        let plan = ChaosPlan::new(42, &ChaosOptions::demo(7));
        for round in 0..20 {
            for worker in 0..8 {
                assert_eq!(plan.draw(round, worker), plan.draw(round, worker));
            }
        }
        // Different coordinates produce different schedules somewhere.
        let all: Vec<ChaosDraw> = (0..20)
            .flat_map(|r| (0..8).map(move |w| (r, w)))
            .map(|(r, w)| plan.draw(r, w))
            .collect();
        assert!(all.iter().any(|d| *d != all[0]), "chaos plan is constant");
    }

    #[test]
    fn noop_plan_never_faults() {
        let plan = ChaosPlan::new(9, &ChaosOptions::none());
        for round in 0..50 {
            for worker in 0..8 {
                let d = plan.draw(round, worker);
                assert!(!d.crash && !d.drop_down && !d.drop_up);
                assert_eq!(d.corrupt_sends, 0);
                assert_eq!(d.delay_secs, 0.0);
            }
        }
    }

    #[test]
    fn demo_plan_reaches_every_fault_class() {
        let plan = ChaosPlan::new(3, &ChaosOptions::demo(11));
        let draws: Vec<ChaosDraw> =
            (0..40).flat_map(|r| (0..4).map(move |w| plan.draw(r, w))).collect();
        assert!(draws.iter().any(|d| d.crash), "no crashes drawn");
        assert!(draws.iter().any(|d| d.drop_down), "no downlink drops drawn");
        assert!(draws.iter().any(|d| d.drop_up), "no uplink drops drawn");
        assert!(draws.iter().any(|d| d.corrupt_sends > 0), "no corruption drawn");
        assert!(
            draws.iter().any(|d| d.corrupt_sends > ChaosOptions::demo(11).max_retransmits),
            "no retry-exhausting corruption streaks drawn"
        );
        assert!(draws.iter().any(|d| d.delay_secs > 0.0), "no delays drawn");
    }

    #[test]
    fn corrupted_copy_fails_the_checksum_and_is_reversible() {
        let mut rng = seeded_rng(301);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        let frame = encode_state(&m.state());
        let bad = corrupted_copy(&frame);
        assert_eq!(bad.len(), frame.len());
        assert!(frame_checksum_ok(&frame));
        assert!(!frame_checksum_ok(&bad));
        // Corrupting the corrupted copy restores the original frame.
        assert_eq!(corrupted_copy(&bad), frame);
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let opts = ChaosOptions { backoff_secs: 0.5, ..ChaosOptions::none() };
        assert_eq!(opts.backoff_for(1), 0.5);
        assert_eq!(opts.backoff_for(2), 1.0);
        assert_eq!(opts.backoff_for(3), 2.0);
        assert_eq!(opts.backoff_total(0), 0.0);
        assert_eq!(opts.backoff_total(3), 0.5 + 1.0 + 2.0);
        assert!(opts.backoff_total(u32::MAX).is_finite());
    }

    #[test]
    fn shared_backoff_schedule_is_pinned_across_layers() {
        use core::time::Duration;
        // The scale itself: 1, 1, 2, 4, 8, … capped at 2^62.
        assert_eq!(backoff_scale(0), 1.0);
        assert_eq!(backoff_scale(1), 1.0);
        assert_eq!(backoff_scale(2), 2.0);
        assert_eq!(backoff_scale(3), 4.0);
        assert_eq!(backoff_scale(4), 8.0);
        assert_eq!(backoff_scale(63), (1u64 << 62) as f64);
        assert_eq!(backoff_scale(u32::MAX), (1u64 << 62) as f64);
        // Wall-clock flavour pins the exact same doubling sequence.
        let base = Duration::from_millis(10);
        assert_eq!(backoff(base, 1), Duration::from_millis(10));
        assert_eq!(backoff(base, 2), Duration::from_millis(20));
        assert_eq!(backoff(base, 3), Duration::from_millis(40));
        assert_eq!(backoff(base, 4), Duration::from_millis(80));
        // Saturates rather than overflowing at absurd attempt counts.
        assert_eq!(backoff(Duration::from_secs(1), u32::MAX), Duration::from_nanos(u64::MAX));
        assert_eq!(backoff(Duration::ZERO, u32::MAX), Duration::ZERO);
        // The virtual-clock layer is the same schedule scaled by secs.
        let opts = ChaosOptions { backoff_secs: 0.25, ..ChaosOptions::none() };
        for attempt in 1..=8 {
            assert_eq!(opts.backoff_for(attempt), 0.25 * backoff_scale(attempt));
        }
    }

    #[test]
    fn quorum_rounds_up_and_never_hits_zero() {
        let opts = ChaosOptions { quorum_frac: 0.34, ..ChaosOptions::none() };
        assert_eq!(opts.quorum(0), 1);
        assert_eq!(opts.quorum(3), 2);
        assert_eq!(opts.quorum(30), 11);
        assert_eq!(ChaosOptions::none().quorum(30), 1);
        let all = ChaosOptions { quorum_frac: 1.0, ..ChaosOptions::none() };
        assert_eq!(all.quorum(4), 4);
    }
}
