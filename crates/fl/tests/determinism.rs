//! Determinism regression for the blocked/parallel tensor kernels.
//!
//! A FedMP run is a long chain of GEMMs, convolutions and poolings; if
//! the cache-blocked kernels or the band scheduler ever reordered a
//! floating-point accumulation, histories would drift. These tests pin
//! the contract end to end: the same seed gives a bit-identical
//! [`RunHistory`], whether the kernels run on one thread or many.

use fedmp_data::{iid_partition, mnist_like};
use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
use fedmp_fl::{run_fedmp, FedMpOptions, FlConfig, FlSetup, ImageTask, RunHistory};
use fedmp_nn::zoo;
use fedmp_tensor::{parallel, seeded_rng};

/// A short but complete FedMP run: adaptive ratios, eval every round.
fn run_once() -> RunHistory {
    let (train, test) = mnist_like(0.1, 400).generate();
    let mut rng = seeded_rng(400);
    let part = iid_partition(&train, 4, &mut rng);
    let task = ImageTask::new(train, test, part);
    let devices = vec![
        tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
        tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
        tx2_profile(ComputeMode::Mode2, LinkQuality::Mid),
        tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
    ];
    let setup = FlSetup::new(&task, devices, TimeModel::deterministic());
    let mut mrng = seeded_rng(401);
    let global = zoo::cnn_mnist(0.15, &mut mrng);
    let cfg = FlConfig { rounds: 3, eval_every: 1, ..Default::default() };
    run_fedmp(&cfg, &setup, global, &FedMpOptions::default())
}

/// Canonical printed form. Rust's float formatting is shortest
/// round-trip, so two histories print identically iff every recorded
/// float is bit-identical.
fn canonical(h: &RunHistory) -> String {
    serde_json::to_string(h).expect("serialise history")
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = canonical(&run_once());
    let b = canonical(&run_once());
    assert_eq!(a, b, "two same-seed FedMP runs diverged");
}

#[test]
fn thread_count_does_not_change_results() {
    parallel::override_threads(Some(1));
    let sequential = canonical(&run_once());
    parallel::override_threads(Some(4));
    let parallel_run = canonical(&run_once());
    parallel::override_threads(None);
    assert_eq!(sequential, parallel_run, "FedMP history differs between 1 and 4 kernel threads");
}
