//! Wire-format v2 property battery.
//!
//! Three contracts, each exercised for **every** codec:
//!
//! 1. **Round-trip exactness** — decoding an encoded frame reproduces
//!    the encoder-side [`codec_delivered`] oracle bit-for-bit (all
//!    lossiness happens at encode; decode is exact w.r.t. what was
//!    encoded), with and without a delta reference, and the error
//!    feedback the encoder accumulates equals the oracle's.
//! 2. **Analytic sizing** — [`wire_size_v2`] matches the encoded frame
//!    length byte-exactly, so the PS can budget Eq. 5 communication
//!    time without encoding.
//! 3. **Typed failure** — any single-byte corruption or truncation
//!    fails [`frame_checksum_ok`] and decodes to a typed [`WireError`],
//!    never a panic.
//!
//! Plus the analytic per-tensor error budgets for the lossy codecs and
//! the 20-round error-feedback bias bound (the residual telescopes, so
//! the time-averaged delivered signal converges to the generated one).

use fedmp_fl::{
    codec_delivered, decode_state_v2, encode_state_v2, f16_bits_to_f32, f32_to_f16_bits,
    frame_checksum_ok, wire_size_v2, Codec, ErrorFeedback,
};
use fedmp_nn::StateEntry;
use fedmp_tensor::{seeded_rng, uniform_vec, Tensor};
use proptest::prelude::*;
use rand::Rng;

fn entry(name: &str, data: Vec<f32>, dims: &[usize], trainable: bool) -> StateEntry {
    StateEntry {
        name: name.to_string(),
        tensor: Tensor::from_vec(data, dims).expect("test tensor"),
        trainable,
    }
}

/// Bit-exact view of a state for comparisons (NaN-safe, −0.0-aware).
fn bits(state: &[StateEntry]) -> Vec<(String, bool, Vec<usize>, Vec<u32>)> {
    state
        .iter()
        .map(|e| {
            (
                e.name.clone(),
                e.trainable,
                e.tensor.dims().to_vec(),
                e.tensor.data().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

/// The codec under test, indexed by the proptest draw; `keep` only
/// matters for the two sparse codecs.
fn codec_from(idx: usize, keep: f32) -> Codec {
    match idx {
        0 => Codec::DenseF32,
        1 => Codec::DenseF16,
        2 => Codec::Int8,
        3 => Codec::TopK { keep },
        _ => Codec::TopKInt8 { keep },
    }
}

/// 1–4 tensors, rank 1–3, dims 1–5, values in ±8 — small enough for
/// many cases, varied enough to hit every codec branch (including
/// `k < numel` and `k == numel` top-k selections).
fn random_state(seed: u64) -> Vec<StateEntry> {
    let mut rng = seeded_rng(seed);
    let entries = rng.gen_range(1..5usize);
    (0..entries)
        .map(|i| {
            let rank = rng.gen_range(1..4usize);
            let dims: Vec<usize> = (0..rank).map(|_| rng.gen_range(1..6usize)).collect();
            let numel = dims.iter().product();
            let data = uniform_vec(numel, -8.0, 8.0, &mut rng);
            entry(&format!("tensor{i}"), data, &dims, i % 2 == 0)
        })
        .collect()
}

/// A same-shaped reference snapshot (the "last acknowledged model"),
/// derived deterministically so delta codecs see non-trivial deltas.
fn reference_for(state: &[StateEntry]) -> Vec<StateEntry> {
    state
        .iter()
        .map(|e| {
            let data = e.tensor.data().iter().map(|v| v * 0.5 - 1.0).collect();
            entry(&e.name, data, e.tensor.dims(), e.trainable)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_matches_the_encoder_oracle_bit_for_bit(
        seed in 0u64..100_000,
        codec_idx in 0usize..5,
        keep in 0.05f32..1.0,
        use_ref in 0u8..2,
    ) {
        let state = random_state(seed);
        let codec = codec_from(codec_idx, keep);
        let reference = if use_ref == 1 { Some(reference_for(&state)) } else { None };
        let mut ef_encode = ErrorFeedback::new();
        let mut ef_oracle = ErrorFeedback::new();
        let frame = encode_state_v2(&state, codec, reference.as_deref(), Some(&mut ef_encode));
        let oracle = codec_delivered(&state, codec, reference.as_deref(), Some(&mut ef_oracle));
        let decoded = decode_state_v2(&frame, reference.as_deref()).expect("clean frame decodes");
        prop_assert_eq!(bits(&decoded), bits(&oracle), "decode != oracle for {}", codec.label());
        prop_assert!(ef_encode == ef_oracle, "feedback diverged for {}", codec.label());
        prop_assert!(frame_checksum_ok(&frame));
        // Decoding the same frame twice is identical (retransmit path).
        let again = decode_state_v2(&frame, reference.as_deref()).expect("second decode");
        prop_assert_eq!(bits(&again), bits(&decoded));
    }

    #[test]
    fn wire_size_matches_encoded_length_byte_exactly(
        seed in 0u64..100_000,
        codec_idx in 0usize..5,
        keep in 0.05f32..1.0,
    ) {
        let state = random_state(seed);
        let codec = codec_from(codec_idx, keep);
        let frame = encode_state_v2(&state, codec, None, None);
        prop_assert_eq!(frame.len(), wire_size_v2(&state, codec), "{}", codec.label());
    }

    #[test]
    fn corrupted_frames_fail_typed_never_panic(
        seed in 0u64..100_000,
        codec_idx in 0usize..5,
        keep in 0.05f32..1.0,
        flip in 0.0f64..1.0,
    ) {
        let state = random_state(seed);
        let codec = codec_from(codec_idx, keep);
        let frame = encode_state_v2(&state, codec, None, None);
        let mut bad = frame.to_vec();
        let pos = ((flip * bad.len() as f64) as usize).min(bad.len() - 1);
        bad[pos] ^= 0xFF;
        // A single flipped byte anywhere must be caught: the transport
        // check rejects it, and full decoding returns a typed error
        // (FNV-1a steps are bijective, so one-byte flips always change
        // the checksum; magic flips fail the magic check first).
        prop_assert!(!frame_checksum_ok(&bad), "flip at {} passed the checksum", pos);
        prop_assert!(decode_state_v2(&bad, None).is_err(), "flip at {} decoded", pos);
    }

    #[test]
    fn truncated_frames_fail_typed_never_panic(
        seed in 0u64..100_000,
        codec_idx in 0usize..5,
        keep in 0.05f32..1.0,
        cut in 0.0f64..1.0,
    ) {
        let state = random_state(seed);
        let codec = codec_from(codec_idx, keep);
        let frame = encode_state_v2(&state, codec, None, None);
        let len = ((cut * frame.len() as f64) as usize).min(frame.len() - 1);
        prop_assert!(decode_state_v2(&frame[..len], None).is_err(), "prefix {} decoded", len);
        prop_assert!(!frame_checksum_ok(&frame[..len]));
    }
}

// ---------------------------------------------------------------------
// Analytic error budgets
// ---------------------------------------------------------------------

fn one_tensor_state(data: Vec<f32>) -> Vec<StateEntry> {
    let n = data.len();
    vec![entry("w", data, &[n], true)]
}

#[test]
fn int8_error_is_within_half_a_quantization_step() {
    // Symmetric int8: scale = max|x| / 127, rounding error ≤ scale / 2,
    // i.e. ≤ max|x| / 254 per coordinate.
    let mut rng = seeded_rng(41);
    let data = uniform_vec(512, -3.0, 3.0, &mut rng);
    let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let bound = max_abs / 254.0 * (1.0 + 1e-5);
    let state = one_tensor_state(data.clone());
    let delivered = codec_delivered(&state, Codec::Int8, None, None);
    for (x, y) in data.iter().zip(delivered[0].tensor.data()) {
        assert!((x - y).abs() <= bound, "int8 error {} exceeds bound {bound}", (x - y).abs());
    }
}

#[test]
fn f16_error_is_within_half_an_ulp() {
    // binary16 round-to-nearest: relative error ≤ 2⁻¹¹ in the normal
    // range, absolute error ≤ 2⁻²⁵ in the subnormal range.
    let mut rng = seeded_rng(43);
    let mut data = uniform_vec(512, -4.0, 4.0, &mut rng);
    data.extend([0.0, -0.0, 1e-6, -1e-6, 6.1e-5, 65504.0]);
    let state = one_tensor_state(data.clone());
    let delivered = codec_delivered(&state, Codec::DenseF16, None, None);
    for (x, y) in data.iter().zip(delivered[0].tensor.data()) {
        let bound = x.abs() * (1.0 / 2048.0) + f32::powi(2.0, -25);
        assert!((x - y).abs() <= bound, "f16 error for {x}: {y}");
        // And the bit conversion itself round-trips through the same
        // public helpers the codec uses.
        assert_eq!(*y, f16_bits_to_f32(f32_to_f16_bits(*x)));
    }
}

#[test]
fn error_feedback_keeps_twenty_round_bias_below_epsilon() {
    // EF telescopes: corrected_r = x_r + residual_{r-1} and
    // delivered_r = corrected_r − residual_r, so over R rounds
    //   Σ delivered = Σ x − residual_R.
    // The residual stays bounded (it is re-fed and re-quantized every
    // round), so the accumulated bias |Σ delivered − Σ x| / R vanishes
    // as 1/R — the delivered signal carries the full generated mass.
    for codec in [Codec::DenseF16, Codec::Int8, Codec::TopKInt8 { keep: 0.25 }] {
        let mut rng = seeded_rng(47);
        let n = 64;
        let rounds = 20;
        let mut feedback = ErrorFeedback::new();
        let mut sum_x = vec![0.0f64; n];
        let mut sum_delivered = vec![0.0f64; n];
        let mut residual = vec![0.0f32; n];
        for _ in 0..rounds {
            let data = uniform_vec(n, -1.0, 1.0, &mut rng);
            let state = one_tensor_state(data.clone());
            let delivered = codec_delivered(&state, codec, None, Some(&mut feedback));
            for i in 0..n {
                sum_x[i] += data[i] as f64;
                sum_delivered[i] += delivered[0].tensor.data()[i] as f64;
            }
            for (r, (x, y)) in residual.iter_mut().zip(data.iter().zip(delivered[0].tensor.data()))
            {
                *r += x - y;
            }
        }
        let label = codec.label();
        for i in 0..n {
            // Telescoping identity: the undelivered mass IS the final
            // residual, to float tolerance.
            let gap = sum_x[i] - sum_delivered[i];
            assert!(
                (gap - residual[i] as f64).abs() < 1e-3,
                "{label}: residual accounting broke at {i}: gap {gap} vs {}",
                residual[i]
            );
            // Bias vanishes as 1/R: far below one quantization step.
            let bias = gap.abs() / rounds as f64;
            assert!(bias < 0.05, "{label}: accumulated bias {bias} at {i}");
        }
        assert!(feedback.max_abs() > 0.0, "{label}: lossy codec left no residual");
    }
}

#[test]
fn without_error_feedback_topk_bias_persists() {
    // The control: the same top-k codec with NO feedback starves the
    // never-selected coordinates entirely, so its accumulated bias is
    // an order of magnitude worse — this is what EF buys.
    let mut rng = seeded_rng(47);
    let n = 64;
    let rounds = 20;
    let codec = Codec::TopKInt8 { keep: 0.25 };
    let mut gaps = vec![0.0f64; n];
    for _ in 0..rounds {
        let data = uniform_vec(n, -1.0, 1.0, &mut rng);
        let state = one_tensor_state(data.clone());
        let delivered = codec_delivered(&state, codec, None, None);
        for i in 0..n {
            gaps[i] += (data[i] - delivered[0].tensor.data()[i]) as f64;
        }
    }
    let worst_gap = gaps.iter().fold(0.0f64, |m, g| m.max(g.abs()));
    assert!(
        worst_gap / rounds as f64 > 0.05,
        "feedback-free top-k unexpectedly unbiased: {worst_gap}"
    );
}
