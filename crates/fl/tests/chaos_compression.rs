//! Chaos × compression interaction regression: a seeded [`ChaosPlan`]
//! corrupting and dropping **wire-v2 compressed** frames must still
//! drive every exchange to a terminal outcome — retransmit, exclusion,
//! crash/rejoin — complete every round, stay seed-reproducible, and
//! leave zero live worker threads behind.
//!
//! The recovery path is codec-agnostic by construction (retransmits
//! resend the *cached* encoded frame, so error feedback is never
//! double-counted and a retransmitted frame decodes identically to the
//! first transmission — see the frame-level test below), but this
//! binary proves it end-to-end.
//!
//! The runtime test is deliberately the only *threaded* test in this
//! binary: [`fedmp_fl::live_worker_threads`] is a process-global
//! counter, so a concurrently running threaded test in the same
//! process would make the post-run zero assertion racy. The
//! frame-level test spawns no runtime threads.

use fedmp_data::{iid_partition, mnist_like};
use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
use fedmp_fl::{
    decode_state_v2, encode_state_v2, frame_checksum_ok, live_worker_threads,
    run_fedmp_threaded_chaos, ChaosOptions, Codec, CompressionPolicy, ErrorFeedback, FaultOptions,
    FedMpOptions, FlConfig, FlSetup, ImageTask, RunHistory,
};
use fedmp_nn::zoo;
use fedmp_tensor::seeded_rng;

fn canonical(h: &RunHistory) -> String {
    serde_json::to_string(h).expect("serialise history")
}

#[test]
fn chaos_over_compressed_frames_recovers_and_joins() {
    let (train, test) = mnist_like(0.1, 300).generate();
    let mut rng = seeded_rng(300);
    let part = iid_partition(&train, 3, &mut rng);
    let task = ImageTask::new(train, test, part);
    // Near/Mid/Far: the Far worker sits below the adaptive policy's
    // bandwidth threshold, so chaos hits dense *and* compressed frames.
    let devices = vec![
        tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
        tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
        tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
    ];
    let setup = FlSetup::new(&task, devices, TimeModel::default());
    let mut grng = seeded_rng(301);
    let global = zoo::cnn_mnist(0.1, &mut grng);
    let cfg = FlConfig { rounds: 5, eval_every: 2, ..Default::default() };
    let opts = FedMpOptions {
        compression: CompressionPolicy::adaptive(),
        faults: Some(FaultOptions { fail_prob: 0.1, recover_rounds: 1, ..Default::default() }),
        ..Default::default()
    };
    // Every upload corrupted, with streaks long enough to exhaust the
    // 2-resend budget regularly; crashes cover respawned workers (whose
    // fresh error-feedback accumulators must also be deterministic).
    let chaos = ChaosOptions {
        corrupt_prob: 1.0,
        max_corrupt_sends: 8,
        max_retransmits: 2,
        crash_prob: 0.25,
        ..ChaosOptions::none()
    };

    let a = run_fedmp_threaded_chaos(&cfg, &setup, global.clone(), &opts, &chaos)
        .expect("corrupted compressed frames must be recoverable, not an error");
    assert_eq!(a.rounds.len(), 5, "chaos must not shorten the run");
    let exclusions: usize = a.rounds.iter().map(|r| r.exclusions).sum();
    let retries: usize = a.rounds.iter().map(|r| r.retries).sum();
    assert!(exclusions > 0, "retry exhaustion never excluded a worker");
    assert!(retries > 0, "corruption never triggered a retransmit");

    // Seed-reproducibility: worker-side lossy encodes and respawn-reset
    // feedback accumulators are all deterministic, so a rerun is
    // bit-identical.
    let b =
        run_fedmp_threaded_chaos(&cfg, &setup, global, &opts, &chaos).expect("second chaos run");
    assert_eq!(canonical(&a), canonical(&b), "compressed chaos run is not seed-reproducible");

    // The join guarantee: every worker thread — initial and respawned —
    // is joined before the runtime returns.
    assert_eq!(live_worker_threads(), 0, "worker threads leaked past the run");
}

#[test]
fn retransmitted_compressed_frames_decode_identically() {
    // The runtime's retransmit path resends the *cached* clean frame —
    // it never re-encodes, so error feedback is untouched and every
    // decode of that frame yields the same state. Model the transport
    // here: encode once (EF updates once), corrupt a copy in transit,
    // detect, "resend" the clean frame, decode twice.
    let mut rng = seeded_rng(303);
    let m = zoo::cnn_mnist(0.1, &mut rng);
    let state = m.state();
    let mut feedback = ErrorFeedback::new();
    let frame = encode_state_v2(&state, Codec::TopKInt8 { keep: 0.1 }, None, Some(&mut feedback));
    let feedback_after_encode = feedback.clone();

    // In transit: the middle byte flips (what the chaos plan does).
    let mut corrupt = frame.to_vec();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    assert!(!frame_checksum_ok(&corrupt), "corruption went undetected");
    assert!(decode_state_v2(&corrupt, None).is_err(), "corrupt frame decoded");

    // Retransmission: same frame, no re-encode — feedback unchanged,
    // and both decodes are bit-identical.
    assert!(frame_checksum_ok(&frame));
    let first = decode_state_v2(&frame, None).expect("first transmission");
    let second = decode_state_v2(&frame, None).expect("retransmission");
    assert_eq!(feedback, feedback_after_encode, "retransmit touched error feedback");
    assert_eq!(first.len(), second.len());
    for (x, y) in first.iter().zip(second.iter()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.tensor.dims(), y.tensor.dims());
        let xb: Vec<u32> = x.tensor.data().iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u32> = y.tensor.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "retransmitted decode differs for {}", x.name);
    }
}
