//! Trace acceptance tests: `summarize` reproduces `resource_totals`
//! exactly from the event stream alone, and the event stream is
//! invariant to the kernel thread count.
//!
//! Everything lives in ONE test function: trace sessions are process-
//! exclusive and the kernel-dispatch counters are process-global, so
//! concurrent tests in this binary would pollute the per-round deltas.

use fedmp_data::{iid_partition, mnist_like};
use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
use fedmp_fl::{
    resource_totals, run_fedmp, FaultOptions, FedMpOptions, FlConfig, FlSetup, ImageTask,
    RunHistory,
};
use fedmp_nn::zoo;
use fedmp_obs::{diff, summarize, RunManifest, Trace, TraceEvent, TraceSession};
use fedmp_tensor::seeded_rng;

const WORKERS: usize = 4;
const ROUNDS: usize = 5;

fn run_traced(threads: usize, seed: u64, opts: &FedMpOptions) -> (RunHistory, Trace) {
    fedmp_tensor::parallel::override_threads(Some(threads));
    let (train, test) = mnist_like(0.1, seed).generate();
    let mut rng = seeded_rng(seed);
    let part = iid_partition(&train, WORKERS, &mut rng);
    let task = ImageTask::new(train, test, part);
    let devices = vec![
        tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
        tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
        tx2_profile(ComputeMode::Mode2, LinkQuality::Mid),
        tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
    ];
    let setup = FlSetup::new(&task, devices, TimeModel::default());
    let global = zoo::cnn_mnist(0.1, &mut rng);
    let cfg = FlConfig { rounds: ROUNDS, eval_every: 2, seed, ..Default::default() };

    let manifest = RunManifest::new("FedMP", seed, WORKERS, ROUNDS, threads);
    let session = TraceSession::capture(&manifest);
    let history = run_fedmp(&cfg, &setup, global, opts);
    let trace = session.finish();
    fedmp_tensor::parallel::override_threads(None);
    (history, trace)
}

#[test]
fn trace_summarize_matches_totals_and_stream_is_thread_invariant() {
    // ── summarize == resource_totals, bit-exact ─────────────────────
    let (history, trace) = run_traced(1, 42, &FedMpOptions::default());
    let live = resource_totals(&history, WORKERS);
    let replayed = summarize(&trace).expect("trace has a manifest");
    assert_eq!(replayed.rounds, live.rounds);
    assert_eq!(replayed.wall_secs, live.wall_secs);
    assert_eq!(replayed.compute_secs, live.compute_secs);
    assert_eq!(replayed.comm_secs, live.comm_secs);
    assert_eq!(replayed.idle_secs, live.idle_secs);

    // Every round contributes the full event complement, in order.
    let kinds: Vec<&str> = trace.events.iter().map(|e| e.kind()).collect();
    assert_eq!(kinds.iter().filter(|k| **k == "RoundStart").count(), ROUNDS);
    assert_eq!(kinds.iter().filter(|k| **k == "RoundEnd").count(), ROUNDS);
    assert_eq!(kinds.iter().filter(|k| **k == "LocalTrain").count(), ROUNDS * WORKERS);
    assert_eq!(kinds.iter().filter(|k| **k == "BanditDecision").count(), ROUNDS * WORKERS);
    assert_eq!(kinds.iter().filter(|k| **k == "Aggregate").count(), ROUNDS);
    assert_eq!(kinds.iter().filter(|k| **k == "KernelDispatch").count(), ROUNDS);
    assert!(trace.events.iter().any(|e| matches!(
        e,
        TraceEvent::KernelDispatch { dispatches, .. } if *dispatches > 0
    )));

    // ── same seed, 1 vs 4 kernel threads: zero divergence ───────────
    let (_h4, trace4) = run_traced(4, 42, &FedMpOptions::default());
    let d = diff(&trace, &trace4);
    assert!(!d.is_divergent(), "thread count changed the event stream: {:?}", d.divergence);
    assert_eq!(d.len_a, d.len_b);
    // The only manifest difference is the thread count, reported as a
    // note rather than a divergence.
    assert_eq!(d.manifest_notes.len(), 1, "{:?}", d.manifest_notes);
    assert!(d.manifest_notes[0].contains("threads"), "{:?}", d.manifest_notes);

    // ── a different seed must diverge ───────────────────────────────
    let (_h, other) = run_traced(1, 43, &FedMpOptions::default());
    assert!(diff(&trace, &other).is_divergent());

    // ── faults: events appear and summarize still matches ───────────
    let opts = FedMpOptions {
        faults: Some(FaultOptions { fail_prob: 0.3, recover_rounds: 1, ..Default::default() }),
        ..Default::default()
    };
    let (fh, ft) = run_traced(1, 44, &opts);
    let flive = resource_totals(&fh, WORKERS);
    let freplay = summarize(&ft).expect("fault trace has a manifest");
    assert_eq!(freplay.wall_secs, flive.wall_secs);
    assert_eq!(freplay.idle_secs, flive.idle_secs);
    let injected = ft.events.iter().filter(|e| e.kind() == "FaultInjected").count();
    let recovered = ft.events.iter().filter(|e| e.kind() == "FaultRecovered").count();
    assert!(injected > 0, "no faults materialised at fail_prob=0.3 over {ROUNDS} rounds");
    assert!(recovered <= injected);
}
