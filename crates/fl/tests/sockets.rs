//! Socket-runtime acceptance: the determinism contract of
//! `run_fedmp_sockets` and its structural teardown guarantees.
//!
//! Everything lives in ONE test function, deliberately: trace sessions
//! are process-exclusive, the kernel-dispatch counters are
//! process-global, and the `live_worker_threads()` leak gauge counts
//! every runtime-managed thread in the process — concurrent socket
//! runs in this binary would pollute all three.

use core::time::Duration;
use fedmp_data::{iid_partition, mnist_like};
use fedmp_edgesim::{tx2_profile, ComputeMode, DeviceProfile, LinkQuality, TimeModel};
use fedmp_fl::{
    live_worker_threads, run_fedmp, run_fedmp_sockets, unique_socket_path, ChaosOptions,
    FaultOptions, FedMpOptions, FlConfig, FlSetup, ImageTask, RunHistory, SocketRunOptions,
    ThreadNodes,
};
use fedmp_nn::zoo;
use fedmp_obs::{diff, RunManifest, Trace, TraceSession};
use fedmp_tensor::seeded_rng;
use std::sync::Arc;

const WORKERS: usize = 3;

fn setup_task(seed: u64) -> (Arc<ImageTask>, Vec<DeviceProfile>) {
    let (train, test) = mnist_like(0.1, seed).generate();
    let mut rng = seeded_rng(seed);
    let part = iid_partition(&train, WORKERS, &mut rng);
    let devices = vec![
        tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
        tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
        tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
    ];
    (Arc::new(ImageTask::new(train, test, part)), devices)
}

fn canonical(h: &RunHistory) -> String {
    serde_json::to_string(h).expect("serialise history")
}

/// One traced socket run over in-process thread nodes on a fresh
/// socket path. Asserts the structural teardown guarantees before
/// returning: no live runtime threads, no socket file left behind.
fn run_sockets_traced(
    tag: &str,
    task: &Arc<ImageTask>,
    setup: &FlSetup<'_>,
    cfg: &FlConfig,
    opts: &FedMpOptions,
    chaos: &ChaosOptions,
    global: fedmp_nn::Sequential,
) -> (RunHistory, Trace) {
    let sock = SocketRunOptions::new(unique_socket_path(tag), Vec::new());
    let mut spawner = ThreadNodes {
        task: Arc::clone(task),
        socket: sock.socket.clone(),
        connect_attempts: 12,
        connect_backoff: Duration::from_millis(2),
    };
    let manifest = RunManifest::new("FedMP-sockets", cfg.seed, WORKERS, cfg.rounds, 1);
    let session = TraceSession::capture(&manifest);
    let history = run_fedmp_sockets(cfg, setup, global, opts, chaos, &sock, &mut spawner)
        .expect("socket run");
    let trace = session.finish();
    assert_eq!(live_worker_threads(), 0, "run `{tag}` leaked runtime threads");
    assert!(!sock.socket.exists(), "run `{tag}` left its socket file behind");
    (history, trace)
}

#[test]
fn socket_runtime_matches_loop_engine_and_chaos_is_deterministic() {
    let (task, devices) = setup_task(280);
    let setup = FlSetup::new(task.as_ref(), devices, TimeModel::default());
    let mut rng = seeded_rng(281);
    let global = zoo::cnn_mnist(0.12, &mut rng);
    let cfg = FlConfig { rounds: 4, eval_every: 2, ..Default::default() };
    // §V-A churn on, so worker exclusion and partial aggregation are
    // exercised on the identity path too.
    let opts = FedMpOptions {
        faults: Some(FaultOptions {
            fail_prob: 0.3,
            recover_rounds: 1,
            deadline_frac: 0.75,
            deadline_factor: 1.2,
            ..Default::default()
        }),
        ..Default::default()
    };

    // ── chaos off: history AND trace bit-identical to the loop engine
    let manifest = RunManifest::new("FedMP", cfg.seed, WORKERS, cfg.rounds, 1);
    let session = TraceSession::capture(&manifest);
    let h_loop = run_fedmp(&cfg, &setup, global.clone(), &opts);
    let t_loop = session.finish();

    let (h_sock, t_sock) = run_sockets_traced(
        "identity",
        &task,
        &setup,
        &cfg,
        &opts,
        &ChaosOptions::none(),
        global.clone(),
    );
    assert_eq!(canonical(&h_loop), canonical(&h_sock), "socket history diverged");
    let d = diff(&t_loop, &t_sock);
    assert!(!d.is_divergent(), "socket trace diverged from the loop engine: {:?}", d.divergence);
    assert_eq!(d.len_a, d.len_b);
    // A chaos-off socket trace contains no transport-only events.
    assert!(
        !t_sock.events.iter().any(|e| matches!(
            e.kind(),
            "ConnEstablished" | "FrameTimeout" | "ConnReset" | "NodeRespawned"
        )),
        "transport events leaked into a chaos-off trace"
    );

    // ── seeded packet chaos: bit-identical run to run, recovery fires
    let chaos = ChaosOptions::demo(1);
    let cfg8 = FlConfig { rounds: 8, eval_every: 4, ..cfg };
    let (h_a, t_a) =
        run_sockets_traced("chaos-a", &task, &setup, &cfg8, &opts, &chaos, global.clone());
    let (h_b, t_b) = run_sockets_traced("chaos-b", &task, &setup, &cfg8, &opts, &chaos, global);
    assert_eq!(canonical(&h_a), canonical(&h_b), "chaos history not reproducible");
    let d = diff(&t_a, &t_b);
    assert!(!d.is_divergent(), "chaos trace not reproducible: {:?}", d.divergence);
    assert_eq!(d.len_a, d.len_b);

    // The recovery machinery demonstrably fired, packet-level events
    // included: respawn + reconnect for crashes, timeouts for drops.
    let kinds: Vec<&str> = t_a.events.iter().map(|e| e.kind()).collect();
    for needed in ["NodeRespawned", "ConnEstablished", "WorkerRejoined", "FrameTimeout"] {
        assert!(kinds.contains(&needed), "no {needed} event under demo chaos");
    }
    assert!(
        kinds.contains(&"ConnReset"),
        "no ConnReset: crash draws never excluded a worker mid-round"
    );
    assert!(
        h_a.rounds.iter().map(|r| r.retries + r.exclusions).sum::<usize>() > 0,
        "demo chaos produced no recoveries"
    );
    assert_eq!(h_a.rounds.len(), 8, "chaos must not shorten the run");
}
