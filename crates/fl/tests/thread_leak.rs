//! Regression test for the threaded runtime's join guarantee: a run
//! whose chaos plan exhausts retransmit budgets (and crashes workers)
//! must still return normally — recoverable outcomes, not errors — and
//! leave **zero** live worker threads behind.
//!
//! This is deliberately the only test in this binary:
//! [`fedmp_fl::live_worker_threads`] is a process-global counter, so a
//! concurrently running threaded test elsewhere in the same process
//! would make the post-run zero assertion racy.

use fedmp_data::{iid_partition, mnist_like};
use fedmp_edgesim::{tx2_profile, ComputeMode, LinkQuality, TimeModel};
use fedmp_fl::{
    live_worker_threads, run_fedmp_threaded_chaos, ChaosOptions, FaultOptions, FedMpOptions,
    FlConfig, FlSetup, ImageTask,
};
use fedmp_nn::zoo;
use fedmp_tensor::seeded_rng;

#[test]
fn corrupt_frames_exhaust_retries_without_leaking_threads() {
    let (train, test) = mnist_like(0.1, 280).generate();
    let mut rng = seeded_rng(280);
    let part = iid_partition(&train, 3, &mut rng);
    let task = ImageTask::new(train, test, part);
    let devices = vec![
        tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
        tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
        tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
    ];
    let setup = FlSetup::new(&task, devices, TimeModel::default());
    let mut grng = seeded_rng(281);
    let global = zoo::cnn_mnist(0.1, &mut grng);
    let cfg = FlConfig { rounds: 4, eval_every: 2, ..Default::default() };
    let opts = FedMpOptions {
        faults: Some(FaultOptions { fail_prob: 0.1, recover_rounds: 1, ..Default::default() }),
        ..Default::default()
    };
    // Every upload corrupted, with streaks long enough that a 2-resend
    // budget is regularly exhausted — the worst case for the old
    // runtime, which turned the first corrupt frame into a terminal
    // error and could leave workers blocked mid-send. Crashes included
    // so respawned threads are covered by the join guarantee too.
    let chaos = ChaosOptions {
        corrupt_prob: 1.0,
        max_corrupt_sends: 8,
        max_retransmits: 2,
        crash_prob: 0.25,
        ..ChaosOptions::none()
    };

    let h = run_fedmp_threaded_chaos(&cfg, &setup, global, &opts, &chaos)
        .expect("transport corruption must be recoverable, not an error");
    assert_eq!(h.rounds.len(), 4, "chaos must not shorten the run");
    let exclusions: usize = h.rounds.iter().map(|r| r.exclusions).sum();
    let retries: usize = h.rounds.iter().map(|r| r.retries).sum();
    assert!(exclusions > 0, "retry exhaustion never excluded a worker");
    assert!(retries > 0, "corruption never triggered a retransmit");

    // The join guarantee: the scope has returned, so every worker
    // thread — initial and respawned — is joined.
    assert_eq!(live_worker_threads(), 0, "worker threads leaked past the run");
}
