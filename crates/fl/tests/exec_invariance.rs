//! Executor invariance: every loop engine must produce a bit-identical
//! [`RunHistory`] and a divergence-free trace stream whether the round
//! executor runs on one thread or four — including rounds with injected
//! faults, where the fault decisions come from the round-start RNG and
//! must not move when training fans out.
//!
//! Everything lives in ONE proptest-driven test function: trace
//! sessions are process-exclusive and the thread override plus the
//! kernel-dispatch counters are process-global, so concurrent tests in
//! this binary would corrupt both streams.

use fedmp_data::{iid_partition, mnist_like, ptb_like, TextBatch, TextDataset};
use fedmp_edgesim::{
    tx2_profile, ComputeMode, HeterogeneityLevel, LinkQuality, Population, TimeModel,
};
use fedmp_fl::{
    run_async, run_fedmp, run_fedmp_hier, run_fedmp_hier_threaded, run_fedmp_threaded,
    run_fedmp_threaded_chaos, run_fedprox, run_flexcom, run_lm, run_synfl, run_upfl, AsyncMode,
    AsyncOptions, ChaosOptions, CompressionPolicy, CostScale, FaultOptions, FedMpOptions,
    FedProxOptions, FlConfig, FlSetup, FlexComOptions, HierSetup, HierarchyOptions, ImageTask,
    LmMethod, LmOptions, LmSetup, RunHistory, SyncScheme, UpFlOptions,
};
use fedmp_nn::zoo;
use fedmp_obs::{diff, RunManifest, Trace, TraceSession};
use fedmp_tensor::{parallel, seeded_rng};
use proptest::prelude::*;

const WORKERS: usize = 3;
const ROUNDS: usize = 2;

fn image_task(seed: u64) -> (ImageTask, Vec<fedmp_edgesim::DeviceProfile>) {
    let (train, test) = mnist_like(0.1, seed).generate();
    let mut rng = seeded_rng(seed);
    let part = iid_partition(&train, WORKERS, &mut rng);
    let task = ImageTask::new(train, test, part);
    let devices = vec![
        tx2_profile(ComputeMode::Mode0, LinkQuality::Near),
        tx2_profile(ComputeMode::Mode1, LinkQuality::Mid),
        tx2_profile(ComputeMode::Mode3, LinkQuality::Far),
    ];
    (task, devices)
}

fn lm_task() -> LmSetup {
    let corpus = ptb_like(30, 6_000, 7);
    let (train, eval) = corpus.split(0.9);
    let lane = train.len() / WORKERS;
    let worker_batches: Vec<Vec<TextBatch>> = (0..WORKERS)
        .map(|w| {
            let t = TextDataset {
                tokens: train.tokens[w * lane..(w + 1) * lane].to_vec(),
                vocab: train.vocab,
            };
            t.batches(4, 8)
        })
        .collect();
    LmSetup {
        worker_batches,
        eval_batches: eval.batches(4, 8),
        devices: (0..WORKERS).map(|_| tx2_profile(ComputeMode::Mode1, LinkQuality::Mid)).collect(),
        time: TimeModel::deterministic(),
        cost_scale: CostScale::default(),
    }
}

/// Runs every engine once at the given thread count, each under its own
/// trace session, and returns `(engine, history, trace)` triples.
fn run_all(threads: usize, seed: u64) -> Vec<(&'static str, RunHistory, Trace)> {
    parallel::override_threads(Some(threads));
    let (task, devices) = image_task(seed);
    let setup = FlSetup::new(&task, devices.clone(), TimeModel::default());
    let mut rng = seeded_rng(seed ^ 0xBEEF);
    let global = zoo::cnn_mnist(0.1, &mut rng);
    let cfg = FlConfig { rounds: ROUNDS, eval_every: 2, seed, ..Default::default() };
    let faulty = FedMpOptions {
        faults: Some(FaultOptions { fail_prob: 0.6, recover_rounds: 1, ..Default::default() }),
        ..Default::default()
    };
    // The Near/Mid/Far fleet puts worker 2 below the adaptive policy's
    // bandwidth threshold, so dense and compressed codec pairs are both
    // exercised in the same run.
    let compressed =
        FedMpOptions { compression: CompressionPolicy::adaptive(), ..Default::default() };
    // Population-scale hierarchy: client-tier chaos on, so the
    // invariance sweep covers the fate/retransmit machinery too.
    let hier_setup = HierSetup::new(
        &task,
        Population::new(40, seed, HeterogeneityLevel::High),
        TimeModel::default(),
    );
    let hier_opts = HierarchyOptions {
        cohort: 6,
        shards: 3,
        edges: 2,
        chaos_client: ChaosOptions::demo(seed),
        ..Default::default()
    };
    let lm_setup = lm_task();
    let mut lm_rng = seeded_rng(seed ^ 0xF00D);
    let lm_global = zoo::lstm_ptb(30, 0.15, &mut lm_rng);
    let lm_opts = LmOptions { rounds: ROUNDS, eval_every: 2, seed, ..Default::default() };

    type Engine<'a> = Box<dyn FnOnce() -> RunHistory + 'a>;
    let engines: Vec<(&'static str, Engine<'_>)> = vec![
        ("fedmp", Box::new(|| run_fedmp(&cfg, &setup, global.clone(), &FedMpOptions::default()))),
        ("fedmp-faults", Box::new(|| run_fedmp(&cfg, &setup, global.clone(), &faulty))),
        (
            "fedmp-bsp",
            Box::new(|| {
                let opts = FedMpOptions { sync: SyncScheme::BSP, ..Default::default() };
                run_fedmp(&cfg, &setup, global.clone(), &opts)
            }),
        ),
        ("synfl", Box::new(|| run_synfl(&cfg, &setup, global.clone()))),
        ("upfl", Box::new(|| run_upfl(&cfg, &setup, global.clone(), &UpFlOptions::default()))),
        (
            "fedprox",
            Box::new(|| run_fedprox(&cfg, &setup, global.clone(), &FedProxOptions::default())),
        ),
        (
            "flexcom",
            Box::new(|| run_flexcom(&cfg, &setup, global.clone(), &FlexComOptions::default())),
        ),
        (
            "asynfl",
            Box::new(|| {
                let opts = AsyncOptions { mode: AsyncMode::AsynFl, m: 2, ..Default::default() };
                run_async(&cfg, &setup, global.clone(), &opts)
            }),
        ),
        (
            "asynfedmp",
            Box::new(|| {
                let opts = AsyncOptions { mode: AsyncMode::AsynFedMp, m: 2, ..Default::default() };
                run_async(&cfg, &setup, global.clone(), &opts)
            }),
        ),
        (
            "threaded",
            Box::new(|| {
                run_fedmp_threaded(&cfg, &setup, global.clone(), &FedMpOptions::default())
                    .expect("threaded runtime")
            }),
        ),
        ("lm-fedmp", Box::new(|| run_lm(&lm_setup, &lm_opts, LmMethod::FedMp, lm_global.clone()))),
        // Appended last so earlier indices (the serial[1] sanity check
        // below) stay stable.
        ("fedmp-compressed", Box::new(|| run_fedmp(&cfg, &setup, global.clone(), &compressed))),
        (
            "threaded-compressed",
            Box::new(|| {
                run_fedmp_threaded(&cfg, &setup, global.clone(), &compressed)
                    .expect("threaded compressed runtime")
            }),
        ),
        (
            "threaded-faults",
            Box::new(|| {
                run_fedmp_threaded(&cfg, &setup, global.clone(), &faulty)
                    .expect("threaded faulted runtime")
            }),
        ),
        ("hier", Box::new(|| run_fedmp_hier(&cfg, &hier_setup, global.clone(), &hier_opts))),
        (
            "hier-threaded",
            Box::new(|| {
                run_fedmp_hier_threaded(&cfg, &hier_setup, global.clone(), &hier_opts)
                    .expect("threaded hier runtime")
            }),
        ),
        (
            "threaded-chaos",
            Box::new(|| {
                run_fedmp_threaded_chaos(
                    &cfg,
                    &setup,
                    global.clone(),
                    &faulty,
                    &ChaosOptions::demo(1),
                )
                .expect("threaded chaos runtime")
            }),
        ),
    ];

    let mut out = Vec::with_capacity(engines.len());
    for (name, run) in engines {
        let manifest = RunManifest::new(name, seed, WORKERS, ROUNDS, threads);
        let session = TraceSession::capture(&manifest);
        let history = run();
        let trace = session.finish();
        out.push((name, history, trace));
    }
    parallel::override_threads(None);
    out
}

fn canonical(h: &RunHistory) -> String {
    serde_json::to_string(h).expect("serialise history")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn every_engine_is_thread_invariant(seed in 0u64..500) {
        let serial = run_all(1, seed);
        let fanned = run_all(4, seed);
        prop_assert_eq!(serial.len(), fanned.len());
        for ((name, h1, t1), (_, h4, t4)) in serial.iter().zip(fanned.iter()) {
            prop_assert_eq!(
                canonical(h1),
                canonical(h4),
                "{} history differs between 1 and 4 executor threads (seed {})",
                name,
                seed
            );
            let d = diff(t1, t4);
            prop_assert!(
                !d.is_divergent(),
                "{} trace diverged between 1 and 4 executor threads (seed {}): {:?}",
                name,
                seed,
                d.divergence
            );
            prop_assert_eq!(d.len_a, d.len_b, "{} trace length changed (seed {})", name, seed);
        }
        // Sanity: faults actually fired, so the invariance above covers
        // fault rounds rather than vacuously passing.
        let (_, _, ft) = &serial[1];
        let injected = ft.events.iter().filter(|e| e.kind() == "FaultInjected").count();
        prop_assert!(injected > 0, "no faults materialised at fail_prob=0.6 (seed {})", seed);
        // Sanity for the chaos variant: at least one recovery event
        // fired, so its invariance covers the retransmit / exclusion /
        // rejoin machinery rather than a quiet run. (Any single event
        // class alone can legitimately sit out a short run; the union
        // is near-certain under the demo plan.)
        let (cn, _, ct) = serial.last().expect("engines non-empty");
        prop_assert_eq!(*cn, "threaded-chaos");
        let recoveries = ct
            .events
            .iter()
            .filter(|e| {
                matches!(e.kind(), "FrameRetransmit" | "WorkerExcluded" | "WorkerRejoined")
            })
            .count();
        prop_assert!(recoveries > 0, "demo chaos produced no recovery events (seed {})", seed);
        // Sanity for the compressed rows: the wire-v2 codec events
        // fired, so their invariance covers the lossy encode paths.
        let (_, _, wt) = serial
            .iter()
            .find(|(n, _, _)| *n == "fedmp-compressed")
            .expect("fedmp-compressed row present");
        let codec_events = wt
            .events
            .iter()
            .filter(|e| matches!(e.kind(), "CodecSelected" | "CompressionApplied"))
            .count();
        prop_assert!(codec_events > 0, "compressed run emitted no codec events (seed {})", seed);
    }
}
