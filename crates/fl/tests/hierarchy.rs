//! Population-scale hierarchy invariants.
//!
//! The engine-driven checks live in ONE test function: trace sessions
//! are process-exclusive and the kernel-dispatch counters are
//! process-global, so concurrent engine runs in this binary would
//! corrupt each other's streams. The aggregation-algebra proptest runs
//! separately — it never touches kernels or traces.

use fedmp_data::{iid_partition, mnist_like};
use fedmp_edgesim::{HeterogeneityLevel, Population, TimeModel};
use fedmp_fl::{
    average_states, live_worker_threads, run_fedmp_hier, run_fedmp_hier_threaded, ChaosOptions,
    CompressionPolicy, ExactState, FlConfig, HierSetup, HierarchyOptions, ImageTask, RunHistory,
};
use fedmp_nn::{zoo, StateEntry};
use fedmp_obs::{diff, RunManifest, Trace, TraceSession};
use fedmp_tensor::{parallel, seeded_rng, Tensor};
use proptest::prelude::*;

const ROUNDS: usize = 2;
const COHORT: usize = 8;

fn image_task(seed: u64) -> ImageTask {
    let (train, test) = mnist_like(0.1, seed).generate();
    let mut rng = seeded_rng(seed);
    let part = iid_partition(&train, 3, &mut rng);
    ImageTask::new(train, test, part)
}

fn hier_opts(shards: usize, edges: usize) -> HierarchyOptions {
    HierarchyOptions { cohort: COHORT, shards, edges, ..Default::default() }
}

/// Runs the loop engine under a trace session.
fn run_loop(
    cfg: &FlConfig,
    setup: &HierSetup<'_>,
    opts: &HierarchyOptions,
    name: &str,
    threads: usize,
) -> (RunHistory, Trace) {
    parallel::override_threads(Some(threads));
    let mut rng = seeded_rng(cfg.seed ^ 0xBEEF);
    let global = zoo::cnn_mnist(0.1, &mut rng);
    let manifest = RunManifest::new(name, cfg.seed, opts.cohort, cfg.rounds, threads);
    let session = TraceSession::capture(&manifest);
    let history = run_fedmp_hier(cfg, setup, global, opts);
    let trace = session.finish();
    parallel::override_threads(None);
    (history, trace)
}

/// Runs the threaded engine under a trace session (same manifest shape
/// as the loop runs so traces stay comparable).
fn run_threaded(
    cfg: &FlConfig,
    setup: &HierSetup<'_>,
    opts: &HierarchyOptions,
    name: &str,
    threads: usize,
) -> (RunHistory, Trace) {
    parallel::override_threads(Some(threads));
    let mut rng = seeded_rng(cfg.seed ^ 0xBEEF);
    let global = zoo::cnn_mnist(0.1, &mut rng);
    let manifest = RunManifest::new(name, cfg.seed, opts.cohort, cfg.rounds, threads);
    let session = TraceSession::capture(&manifest);
    let history = run_fedmp_hier_threaded(cfg, setup, global, opts).expect("threaded hier runtime");
    let trace = session.finish();
    parallel::override_threads(None);
    (history, trace)
}

fn canonical(h: &RunHistory) -> String {
    serde_json::to_string(h).expect("serialise history")
}

/// Edge-tier chaos aggressive enough to exercise drops, corruption
/// retransmits AND retry exhaustion within two rounds.
fn edge_chaos() -> ChaosOptions {
    ChaosOptions {
        corrupt_prob: 0.6,
        max_corrupt_sends: 3,
        drop_prob: 0.25,
        crash_prob: 0.2,
        max_retransmits: 2,
        ..ChaosOptions::none()
    }
}

#[test]
fn hierarchy_engines_agree_and_are_partition_invariant() {
    let seed = 7u64;
    let task = image_task(seed);
    let population = Population::new(50, seed, HeterogeneityLevel::High);
    let setup = HierSetup::new(&task, population, TimeModel::default());
    let cfg = FlConfig { rounds: ROUNDS, eval_every: 2, seed, ..Default::default() };

    // ── baseline topology, loop engine ──────────────────────────────
    let opts = hier_opts(4, 2);
    let (h_loop, t_loop) = run_loop(&cfg, &setup, &opts, "hier", 1);
    assert_eq!(h_loop.rounds.len(), ROUNDS);
    let last = h_loop.rounds.last().expect("rounds non-empty");
    assert_eq!(last.participants, COHORT, "chaos-free run must deliver the whole cohort");
    assert!(last.eval.is_some(), "final round must evaluate");

    // The population must actually be heterogeneous, otherwise the
    // per-class machinery is vacuous.
    let classes: std::collections::BTreeSet<usize> = setup
        .population
        .sample_cohort(0, COHORT)
        .iter()
        .map(|&id| fedmp_edgesim::class_of(&setup.population.device(id)))
        .collect();
    assert!(classes.len() >= 2, "cohort collapsed to a single device class");

    // New trace events fired.
    let kind_count = |t: &Trace, k: &str| t.events.iter().filter(|e| e.kind() == k).count();
    assert_eq!(kind_count(&t_loop, "CohortSampled"), ROUNDS);
    assert_eq!(kind_count(&t_loop, "ShardReduced"), ROUNDS * opts.shards);
    assert_eq!(kind_count(&t_loop, "EdgeAggregate"), ROUNDS * opts.edges);

    // ── executor-thread invariance (1 vs 4) ─────────────────────────
    let (h_loop4, t_loop4) = run_loop(&cfg, &setup, &opts, "hier", 4);
    assert_eq!(canonical(&h_loop), canonical(&h_loop4), "hier history differs across threads");
    let d = diff(&t_loop, &t_loop4);
    assert!(!d.is_divergent(), "hier trace diverged across threads: {:?}", d.divergence);
    assert_eq!(d.len_a, d.len_b);

    // ── threaded protocol engine == loop engine, bit for bit ────────
    let (h_thr, t_thr) = run_threaded(&cfg, &setup, &opts, "hier", 1);
    assert_eq!(canonical(&h_loop), canonical(&h_thr), "threaded hier differs from loop hier");
    let d = diff(&t_loop, &t_thr);
    assert!(!d.is_divergent(), "threaded hier trace diverged from loop: {:?}", d.divergence);
    assert_eq!(d.len_a, d.len_b);
    assert_eq!(live_worker_threads(), 0, "edge aggregator threads leaked past the run");

    // ── shard/edge partition invariance of the history ──────────────
    for (shards, edges) in [(1, 1), (2, 2), (8, 4)] {
        let alt = hier_opts(shards, edges);
        let (h_alt, _) = run_loop(&cfg, &setup, &alt, "hier", 1);
        assert_eq!(
            canonical(&h_loop),
            canonical(&h_alt),
            "history changed when repartitioned to {shards} shards / {edges} edges"
        );
        let (h_alt_thr, _) = run_threaded(&cfg, &setup, &alt, "hier", 1);
        assert_eq!(
            canonical(&h_loop),
            canonical(&h_alt_thr),
            "threaded history changed at {shards} shards / {edges} edges"
        );
    }

    // ── compression stays engine-invariant too ──────────────────────
    let comp = HierarchyOptions { compression: CompressionPolicy::adaptive(), ..hier_opts(4, 2) };
    let (h_comp, t_comp) = run_loop(&cfg, &setup, &comp, "hier-comp", 1);
    let (h_comp_thr, t_comp_thr) = run_threaded(&cfg, &setup, &comp, "hier-comp", 1);
    assert_eq!(canonical(&h_comp), canonical(&h_comp_thr), "compressed hier engines disagree");
    let d = diff(&t_comp, &t_comp_thr);
    assert!(!d.is_divergent(), "compressed hier traces diverged: {:?}", d.divergence);
    assert!(kind_count(&t_comp, "CompressionApplied") > 0, "no compression events fired");

    // ── chaos at both tiers: loop == threaded, runs reproduce ───────
    let chaotic = HierarchyOptions {
        chaos_client: ChaosOptions::demo(1),
        chaos_edge: edge_chaos(),
        ..hier_opts(4, 2)
    };
    let (h_chaos, t_chaos) = run_loop(&cfg, &setup, &chaotic, "hier-chaos", 1);
    let (h_chaos2, t_chaos2) = run_loop(&cfg, &setup, &chaotic, "hier-chaos", 1);
    assert_eq!(canonical(&h_chaos), canonical(&h_chaos2), "same-seed chaos runs diverged");
    assert!(!diff(&t_chaos, &t_chaos2).is_divergent());
    let (h_chaos_thr, t_chaos_thr) = run_threaded(&cfg, &setup, &chaotic, "hier-chaos", 1);
    assert_eq!(
        canonical(&h_chaos),
        canonical(&h_chaos_thr),
        "chaotic threaded hier differs from loop hier"
    );
    let d = diff(&t_chaos, &t_chaos_thr);
    assert!(!d.is_divergent(), "chaotic hier traces diverged: {:?}", d.divergence);
    assert_eq!(live_worker_threads(), 0, "chaotic run leaked edge threads");
    // Sanity: the chaos actually bit — recovery machinery events fired,
    // so the equalities above cover the fault paths, not a quiet run.
    let recoveries = t_chaos
        .events
        .iter()
        .filter(|e| matches!(e.kind(), "FrameRetransmit" | "WorkerExcluded"))
        .count();
    assert!(recoveries > 0, "no chaos events materialised under the demo plan");
}

// ---- aggregation algebra --------------------------------------------

/// Builds state snapshots from raw 10-value rows, two entries with odd
/// shapes each. Deterministic extremes are spliced in so every run
/// covers magnitude spread, exact-cancellation bait, subnormals and
/// zeros regardless of what the generator drew.
fn mk_states(raw: &[Vec<f32>]) -> Vec<Vec<StateEntry>> {
    raw.iter()
        .enumerate()
        .map(|(k, row)| {
            let mut v = row.clone();
            v.resize(10, 0.0);
            v[0] = if k % 2 == 0 { 1e8 } else { -1e8 };
            if k % 3 == 0 {
                v[1] = 1e-40;
            }
            if k % 4 == 0 {
                v[2] = 0.0;
            }
            vec![
                StateEntry::trainable("w", Tensor::from_vec(v[..6].to_vec(), &[2, 3]).expect("w")),
                StateEntry::trainable("b", Tensor::from_vec(v[6..].to_vec(), &[4]).expect("b")),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming the same client states through ANY (shards, edges)
    /// fan-in tree finalises bit-identically to the flat
    /// [`average_states`] call — the algebra `docs/SCALE.md` argues and
    /// the engines rely on.
    #[test]
    fn hierarchical_reduction_equals_flat_average(
        raw in prop::collection::vec(prop::collection::vec(-1e8f32..1e8, 10..11), 1..12),
        shards in 1usize..9,
        edges in 1usize..5,
    ) {
        let states = mk_states(&raw);
        let shards = shards.min(states.len());
        let edges = edges.min(shards);
        let flat = average_states(&states);

        // Shard tier: contiguous slices, streamed one state at a time.
        let mut shard_accs: Vec<ExactState> = Vec::new();
        for s in 0..shards {
            let lo = s * states.len() / shards;
            let hi = (s + 1) * states.len() / shards;
            let mut acc = ExactState::like(&states[0]);
            for st in &states[lo..hi] {
                acc.fold(st);
            }
            shard_accs.push(acc);
        }
        // Edge tier: merge contiguous shard ranges, then round-trip
        // each partial through the checksummed wire frame the threaded
        // runtime ships.
        let template = ExactState::like(&states[0]);
        let mut cloud: Option<ExactState> = None;
        for e in 0..edges {
            let lo = e * shards / edges;
            let hi = (e + 1) * shards / edges;
            let mut merged = ExactState::like(&states[0]);
            for acc in &shard_accs[lo..hi] {
                merged.merge(acc);
            }
            let decoded = ExactState::decode(&merged.encode(), &template)
                .expect("well-formed frame")
                .expect("checksum must verify");
            prop_assert_eq!(&decoded, &merged, "wire round-trip changed the partial");
            match cloud.as_mut() {
                Some(c) => c.merge(&decoded),
                None => cloud = Some(decoded),
            }
        }
        let hier = cloud.expect("at least one edge").finalize(states.len());

        prop_assert_eq!(flat.len(), hier.len());
        for (f, h) in flat.iter().zip(hier.iter()) {
            prop_assert_eq!(&f.name, &h.name);
            for (a, b) in f.tensor.data().iter().zip(h.tensor.data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "hier != flat: {} vs {}", a, b);
            }
        }
    }

    /// A corrupted frame never decodes: the checksum catches any
    /// single-byte flip (the transit-corruption model), so the PS
    /// always detects and re-requests rather than folding garbage.
    #[test]
    fn corrupted_frames_fail_the_checksum(
        raw in prop::collection::vec(prop::collection::vec(-1e8f32..1e8, 10..11), 1..2),
        flip in 0usize..1000,
        xor in 1u32..256,
    ) {
        let xor = xor as u8;
        let state = mk_states(&raw).pop().expect("one state");
        let mut acc = ExactState::like(&state);
        acc.fold(&state);
        let frame = acc.encode();
        let mut bytes = frame.to_vec();
        let at = flip % bytes.len();
        bytes[at] ^= xor;
        let template = ExactState::like(&state);
        let decoded = ExactState::decode(&bytes, &template);
        prop_assert!(
            !matches!(decoded, Ok(Some(_))),
            "a flipped byte at {} survived the checksum", at
        );
    }
}
