//! Property tests for the quorum aggregation path of the threaded
//! runtime: a k-of-n partial round must aggregate **bit-identically**
//! to [`r2sp_aggregate`] over the same participant set — the recovery
//! policy changes *who* is averaged, never *how*.

use fedmp_fl::{quorum_aggregate, r2sp_aggregate};
use fedmp_nn::StateEntry;
use fedmp_tensor::{seeded_rng, Tensor};
use proptest::prelude::*;
use rand::Rng;

/// A small random two-entry snapshot (a "weight" matrix and a "bias"
/// vector), values in ±2.
fn random_state(rng: &mut impl Rng) -> Vec<StateEntry> {
    let w: Vec<f32> = (0..12).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect();
    let b: Vec<f32> = (0..4).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect();
    vec![
        StateEntry::trainable("w", Tensor::from_vec(w, &[3, 4]).expect("weight shape")),
        StateEntry::trainable("b", Tensor::from_vec(b, &[4]).expect("bias shape")),
    ]
}

/// Bitwise canonical form of a snapshot — `f32` payloads as raw bits,
/// so the comparison cannot be fooled by `-0.0 == 0.0` or NaN quirks.
fn bits(state: &[StateEntry]) -> Vec<(String, Vec<u32>)> {
    state
        .iter()
        .map(|e| (e.name.clone(), e.tensor.data().iter().map(|v| v.to_bits()).collect()))
        .collect()
}

/// Independent reference for the R2SP mean, mirroring the production
/// semantics (complete each participant with its residual, sum each
/// scalar exactly, round once, then multiply by `1/k`) with its own
/// loops over one `ExactSum` register per parameter.
fn reference_r2sp(recovered: &[Vec<StateEntry>], residuals: &[Vec<StateEntry>]) -> Vec<Vec<u32>> {
    let completed: Vec<Vec<Vec<f32>>> = recovered
        .iter()
        .zip(residuals.iter())
        .map(|(r, q)| {
            r.iter()
                .zip(q.iter())
                .map(|(x, y)| {
                    x.tensor.data().iter().zip(y.tensor.data().iter()).map(|(a, b)| a + b).collect()
                })
                .collect()
        })
        .collect();
    let s = 1.0 / completed.len() as f32;
    let entries = completed[0].len();
    (0..entries)
        .map(|e| {
            (0..completed[0][e].len())
                .map(|i| {
                    let mut acc = fedmp_tensor::ExactSum::new();
                    for c in &completed {
                        acc.add(c[e][i]);
                    }
                    (acc.value() * s).to_bits()
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every quorum the runtime actually uses — full strength `n`,
    /// one-short `n − 1`, and the bare majority `⌈n/2⌉` — aggregating a
    /// random k-subset under `quorum = k` equals `r2sp_aggregate` over
    /// that same subset, bit for bit, and matches an independently
    /// computed reference mean.
    #[test]
    fn k_of_n_quorum_matches_r2sp_bitwise(seed in 0u64..100_000, n in 2usize..7) {
        let mut rng = seeded_rng(seed);
        let recovered: Vec<Vec<StateEntry>> = (0..n).map(|_| random_state(&mut rng)).collect();
        let residuals: Vec<Vec<StateEntry>> = (0..n).map(|_| random_state(&mut rng)).collect();

        for k in [n, n - 1, n.div_ceil(2)] {
            if k == 0 {
                continue;
            }
            // A random k-subset of the fleet, in worker order (the
            // runtime always keeps participants in worker order).
            let mut picks: Vec<usize> = (0..n).collect();
            for i in (1..picks.len()).rev() {
                picks.swap(i, rng.gen_range(0..=i));
            }
            let mut subset = picks[..k].to_vec();
            subset.sort_unstable();
            let rec: Vec<_> = subset.iter().map(|&i| recovered[i].clone()).collect();
            let res: Vec<_> = subset.iter().map(|&i| residuals[i].clone()).collect();

            let via_quorum = quorum_aggregate(&rec, &res, k)
                .expect("k participants meet a quorum of k");
            let via_r2sp = r2sp_aggregate(&rec, &res);
            prop_assert_eq!(
                bits(&via_quorum),
                bits(&via_r2sp),
                "quorum path diverged from r2sp at k={}/{}",
                k,
                n
            );
            let reference = reference_r2sp(&rec, &res);
            for (entry, expected) in bits(&via_quorum).iter().zip(reference.iter()) {
                prop_assert_eq!(&entry.1, expected, "reference mean mismatch at k={}/{}", k, n);
            }

            // One participant short of the quorum: no aggregation.
            prop_assert!(quorum_aggregate(&rec[..k - 1], &res[..k - 1], k).is_none());
        }
        // No participants at all never aggregates, whatever the quorum.
        prop_assert!(quorum_aggregate(&[], &[], 0).is_none());
        prop_assert!(quorum_aggregate(&[], &[], 1).is_none());
    }
}
