//! Pruned fast path ≡ extracted sub-model, bit for bit.
//!
//! `pruning::forward_pruned` runs a plan directly against the full-size
//! parameters through the pruning-aware kernels
//! (`conv2d_forward_pruned` / `matmul_nt_pruned`). The contract is
//! **bitwise equality** with `extract_sequential(model, plan)
//! .forward(x, false)`: the fast path gathers byte-identical weight
//! panels and feeds them through the same deterministic GEMM/band
//! machinery, so not even the last ulp may differ. That has to hold
//!
//! * across architectures, including residual blocks whose skip
//!   connections pin the block output width,
//! * across pruning ratios (0 = dense as a degenerate case),
//! * at 1 and 4 threads (the band decomposition is shape-only), and
//! * on both SIMD dispatch paths — equality is *within* a path; dense
//!   and pruned runs under the same `FEDMP_SIMD` use the same kernel.

use std::sync::Mutex;

use fedmp_nn::zoo;
use fedmp_pruning::{extract_sequential, forward_pruned, plan_sequential};
use fedmp_tensor::simd::{self, SimdPath};
use fedmp_tensor::{parallel, seeded_rng, Tensor};

/// Serialises tests that flip the process-global SIMD path override.
static PATH_LOCK: Mutex<()> = Mutex::new(());

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: dims");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

fn with_path<R>(path: SimdPath, f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            simd::override_path(None);
        }
    }
    simd::override_path(Some(path));
    let _reset = Reset;
    f()
}

fn forced_paths() -> Vec<SimdPath> {
    let mut paths = vec![SimdPath::Scalar];
    if simd::avx2_supported() {
        paths.push(SimdPath::Avx2);
    }
    paths
}

/// Every (model, input-shape) pair the structured planner supports.
fn check_model(
    model: &fedmp_nn::Sequential,
    chw: (usize, usize, usize),
    input: &Tensor,
    ratios: &[f32],
    label: &str,
) {
    let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for &ratio in ratios {
        let plan = plan_sequential(model, chw, ratio);
        let mut sub = extract_sequential(model, &plan);
        for path in forced_paths() {
            for threads in [1usize, 4] {
                let (fast, dense) = with_path(path, || {
                    parallel::override_threads(Some(threads));
                    let fast = forward_pruned(model, &plan, input);
                    let dense = sub.forward(input, false);
                    parallel::override_threads(None);
                    (fast, dense)
                });
                assert_bits_eq(
                    &fast,
                    &dense,
                    &format!("{label} ratio {ratio} path {} threads {threads}", path.name()),
                );
            }
        }
    }
}

#[test]
fn cnn_mnist_fastpath_is_bitwise_identical() {
    let mut rng = seeded_rng(1201);
    let model = zoo::cnn_mnist(0.25, &mut rng);
    let x = Tensor::randn(&[2, 1, 28, 28], &mut rng);
    check_model(&model, (1, 28, 28), &x, &[0.0, 0.3, 0.5, 0.7], "cnn_mnist");
}

#[test]
fn alexnet_cifar_fastpath_is_bitwise_identical() {
    let mut rng = seeded_rng(1202);
    let model = zoo::alexnet_cifar(0.125, &mut rng);
    let x = Tensor::randn(&[1, 3, 32, 32], &mut rng);
    check_model(&model, (3, 32, 32), &x, &[0.3, 0.7], "alexnet_cifar");
}

#[test]
fn resnet_tiny_fastpath_is_bitwise_identical() {
    let mut rng = seeded_rng(1203);
    let model = zoo::resnet_tiny(0.125, &mut rng);
    let x = Tensor::randn(&[1, 3, 64, 64], &mut rng);
    check_model(&model, (3, 64, 64), &x, &[0.5], "resnet_tiny");
}
