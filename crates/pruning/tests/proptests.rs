//! Property tests of the pruning crate over random models and ratios.

use fedmp_nn::{zoo, LayerNode};
use fedmp_pruning::{
    dequantize_state, extract_sequential, magnitude_mask, mask_density, plan_sequential,
    quant_error_bound, quantize_state, LayerPlan,
};
use fedmp_tensor::seeded_rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// L1 ranking: every kept filter scores at least as high as every
    /// pruned filter of the same layer.
    #[test]
    fn kept_filters_dominate_pruned_ones(seed in 0u64..1000, ratio in 0.1f32..0.85) {
        let mut rng = seeded_rng(seed);
        let model = zoo::cnn_mnist(0.25, &mut rng);
        let plan = plan_sequential(&model, (1, 28, 28), ratio);
        for (node, lp) in model.layers.iter().zip(plan.layers.iter()) {
            if let (LayerNode::Conv2d(conv), LayerPlan::Conv { kept_out, .. }) = (node, lp) {
                let oc = conv.out_channels();
                let per = conv.weight.value.numel() / oc;
                let score = |f: usize| -> f32 {
                    conv.weight.value.data()[f * per..(f + 1) * per].iter().map(|v| v.abs()).sum()
                };
                let min_kept = kept_out.iter().map(|&f| score(f)).fold(f32::INFINITY, f32::min);
                for f in 0..oc {
                    if !kept_out.contains(&f) {
                        prop_assert!(score(f) <= min_kept + 1e-5,
                            "pruned filter {} outranks a kept one", f);
                    }
                }
            }
        }
    }

    /// The sub-model's parameter count matches what the plan promises.
    #[test]
    fn extraction_matches_plan_arithmetic(seed in 0u64..1000, ratio in 0.0f32..0.85) {
        let mut rng = seeded_rng(seed);
        let model = zoo::cnn_mnist(0.25, &mut rng);
        let plan = plan_sequential(&model, (1, 28, 28), ratio);
        let sub = extract_sequential(&model, &plan);
        for (node, lp) in sub.layers.iter().zip(plan.layers.iter()) {
            match (node, lp) {
                (LayerNode::Conv2d(c), LayerPlan::Conv { kept_out, kept_in }) => {
                    prop_assert_eq!(c.out_channels(), kept_out.len());
                    prop_assert_eq!(c.in_channels(), kept_in.len());
                }
                (LayerNode::Linear(l), LayerPlan::Linear { kept_out, kept_in }) => {
                    prop_assert_eq!(l.out_features(), kept_out.len());
                    prop_assert_eq!(l.in_features(), kept_in.len());
                }
                _ => {}
            }
        }
    }

    /// Quantization round-trip error never exceeds its own bound.
    #[test]
    fn quantization_error_is_bounded(seed in 0u64..1000, scale in 0.01f32..10.0) {
        let mut rng = seeded_rng(seed);
        let model = zoo::cnn_mnist(0.1, &mut rng);
        let state: Vec<_> = model
            .state()
            .into_iter()
            .map(|mut e| {
                e.tensor.scale_in_place(scale);
                e
            })
            .collect();
        let q = quantize_state(&state);
        let back = dequantize_state(&q);
        let bound = quant_error_bound(&q);
        for (a, b) in state.iter().zip(back.iter()) {
            for (x, y) in a.tensor.data().iter().zip(b.tensor.data().iter()) {
                prop_assert!((x - y).abs() <= bound + 1e-6);
            }
        }
    }

    /// Magnitude-mask density tracks the requested sparsity.
    #[test]
    fn magnitude_mask_density(seed in 0u64..1000, sparsity in 0.0f32..0.95) {
        let mut rng = seeded_rng(seed);
        let model = zoo::cnn_mnist(0.1, &mut rng);
        let state = model.state();
        let mask = magnitude_mask(&state, sparsity);
        let density = mask_density(&mask);
        // Tracked BN statistics are always kept, so density exceeds
        // 1 − sparsity slightly; allow a modest envelope.
        prop_assert!(density >= 1.0 - sparsity - 0.02, "density {} too low", density);
        prop_assert!(density <= 1.0 - sparsity + 0.1, "density {} too high", density);
    }
}
