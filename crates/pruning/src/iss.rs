//! ISS (Intrinsic Sparse Structure) pruning for stacked LSTMs —
//! the paper's §VI extension to recurrent networks.
//!
//! Removing hidden unit `k` of an LSTM layer removes, *simultaneously*:
//! the four gate rows `g·h + k` of `w_x` and `w_h`, the recurrent column
//! `k` of `w_h`, the four bias entries, and the input column `k` of
//! every downstream consumer (the next LSTM layer's `w_x`, or the
//! decoder). The result is a dense, smaller LSTM — no sparse kernels
//! needed, mirroring [Wen et al., 2017].

use crate::plan::{ratio_keep_count, top_indices};
use fedmp_nn::{Embedding, Linear, Lstm, LstmLm, StateEntry};
use fedmp_tensor::parallel::sum_f32;
use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// ISS pruning plan: the kept hidden-unit indices of each LSTM layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmPlan {
    /// Kept hidden units per LSTM layer, sorted ascending.
    pub kept: Vec<Vec<usize>>,
    /// The ratio the plan was built for.
    pub ratio: f32,
}

/// Builds an ISS plan: each layer keeps the `⌈(1−α)·h⌉` hidden units
/// with the largest aggregate L1 importance (gate rows + recurrent
/// column).
pub fn plan_lstm(lm: &LstmLm, ratio: f32) -> LstmPlan {
    let kept = lm
        .lstms
        .iter()
        .map(|l| {
            let h = l.hidden();
            let scores: Vec<f32> = (0..h).map(|k| unit_importance(l, k)).collect();
            top_indices(&scores, ratio_keep_count(h, ratio))
        })
        .collect();
    LstmPlan { kept, ratio }
}

/// Aggregate L1 importance of hidden unit `k`: all four gate rows of
/// `w_x` and `w_h` plus the recurrent column `k`.
fn unit_importance(l: &Lstm, k: usize) -> f32 {
    let h = l.hidden();
    let mut score = 0.0f32;
    for g in 0..4 {
        score += sum_f32(l.w_x.value.row(g * h + k).iter().map(|v| v.abs()));
        score += sum_f32(l.w_h.value.row(g * h + k).iter().map(|v| v.abs()));
    }
    for r in 0..4 * h {
        score += l.w_h.value.at(&[r, k]).abs();
    }
    score
}

/// Expands kept hidden units into the `4h`-row gate index space.
fn gate_rows(kept: &[usize], h: usize) -> Vec<usize> {
    let mut rows = Vec::with_capacity(4 * kept.len());
    for g in 0..4 {
        for &k in kept {
            rows.push(g * h + k);
        }
    }
    rows
}

fn gather_2d(t: &Tensor, rows: &[usize], cols: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(&[rows.len(), cols.len()]);
    for (i, &r) in rows.iter().enumerate() {
        let src = t.row(r);
        let dst = out.row_mut(i);
        for (j, &c) in cols.iter().enumerate() {
            dst[j] = src[c];
        }
    }
    out
}

fn gather_1d(t: &Tensor, idx: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(&[idx.len()]);
    for (i, &k) in idx.iter().enumerate() {
        out.data_mut()[i] = t.data()[k];
    }
    out
}

fn scatter_2d_into(small: &Tensor, rows: &[usize], cols: &[usize], full: &mut Tensor) {
    let full_cols = full.dims()[1];
    for (i, &r) in rows.iter().enumerate() {
        let src = small.row(i);
        for (j, &c) in cols.iter().enumerate() {
            full.data_mut()[r * full_cols + c] = src[j];
        }
    }
}

/// Materialises the ISS-pruned sub-model: dense LSTM layers with fewer
/// hidden units; embedding and decoder output untouched.
pub fn extract_lstm(lm: &LstmLm, plan: &LstmPlan) -> LstmLm {
    assert_eq!(plan.kept.len(), lm.lstms.len(), "lstm plan layer count mismatch");
    let mut prev_cols: Vec<usize> = (0..lm.embedding.dim()).collect();
    let mut lstms = Vec::with_capacity(lm.lstms.len());
    for (l, kept) in lm.lstms.iter().zip(plan.kept.iter()) {
        let h = l.hidden();
        let rows = gate_rows(kept, h);
        let w_x = gather_2d(&l.w_x.value, &rows, &prev_cols);
        let w_h = gather_2d(&l.w_h.value, &rows, kept);
        let bias = gather_1d(&l.bias.value, &rows);
        lstms.push(Lstm::from_parts(w_x, w_h, bias));
        prev_cols = kept.clone();
    }
    let dec_rows: Vec<usize> = (0..lm.decoder.out_features()).collect();
    let decoder = Linear::from_parts(
        gather_2d(&lm.decoder.weight.value, &dec_rows, &prev_cols),
        lm.decoder.bias.value.clone(),
    );
    LstmLm { embedding: Embedding::from_parts(lm.embedding.weight.value.clone()), lstms, decoder }
}

/// Scatters a trained ISS sub-model back into full-model coordinates
/// (the LSTM analogue of [`crate::recover_state`]). Embedding and
/// decoder bias are carried over in full; pruned positions are zero.
pub fn recover_lstm_state(sub: &LstmLm, plan: &LstmPlan, global: &LstmLm) -> Vec<StateEntry> {
    let mut out =
        vec![StateEntry::trainable("embedding.weight", sub.embedding.weight.value.clone())];
    let mut prev_cols: Vec<usize> = (0..global.embedding.dim()).collect();
    for (i, ((gl, sl), kept)) in
        global.lstms.iter().zip(sub.lstms.iter()).zip(plan.kept.iter()).enumerate()
    {
        let h = gl.hidden();
        let rows = gate_rows(kept, h);
        let mut w_x = Tensor::zeros(gl.w_x.value.dims());
        scatter_2d_into(&sl.w_x.value, &rows, &prev_cols, &mut w_x);
        let mut w_h = Tensor::zeros(gl.w_h.value.dims());
        scatter_2d_into(&sl.w_h.value, &rows, kept, &mut w_h);
        let mut bias = Tensor::zeros(gl.bias.value.dims());
        for (j, &r) in rows.iter().enumerate() {
            bias.data_mut()[r] = sl.bias.value.data()[j];
        }
        out.push(StateEntry::trainable(format!("lstm.{i}.w_x"), w_x));
        out.push(StateEntry::trainable(format!("lstm.{i}.w_h"), w_h));
        out.push(StateEntry::trainable(format!("lstm.{i}.bias"), bias));
        prev_cols = kept.clone();
    }
    let dec_rows: Vec<usize> = (0..global.decoder.out_features()).collect();
    let mut dec_w = Tensor::zeros(global.decoder.weight.value.dims());
    scatter_2d_into(&sub.decoder.weight.value, &dec_rows, &prev_cols, &mut dec_w);
    out.push(StateEntry::trainable("decoder.weight", dec_w));
    out.push(StateEntry::trainable("decoder.bias", sub.decoder.bias.value.clone()));
    out
}

/// The sparse LSTM model: full shape, pruned positions zeroed.
pub fn sparse_lstm_state(global: &LstmLm, plan: &LstmPlan) -> Vec<StateEntry> {
    let sub = extract_lstm(global, plan);
    recover_lstm_state(&sub, plan, global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_nn::{state_add, state_sub, zoo};
    use fedmp_tensor::{cross_entropy_loss, seeded_rng};

    #[test]
    fn plan_keeps_requested_fraction() {
        let mut rng = seeded_rng(220);
        let lm = zoo::lstm_ptb(40, 0.25, &mut rng);
        let plan = plan_lstm(&lm, 0.5);
        for (kept, l) in plan.kept.iter().zip(lm.lstms.iter()) {
            assert_eq!(kept.len(), l.hidden().div_ceil(2));
            assert!(kept.windows(2).all(|w| w[0] < w[1]), "kept indices not sorted");
        }
    }

    #[test]
    fn extracted_lstm_runs_and_shrinks() {
        let mut rng = seeded_rng(221);
        let mut lm = zoo::lstm_ptb(30, 0.25, &mut rng);
        let plan = plan_lstm(&lm, 0.6);
        let mut sub = extract_lstm(&lm, &plan);
        assert!(sub.num_params() < lm.num_params());
        let logits = sub.forward(&[vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        assert!(logits.all_finite());
        let targets = vec![1usize; 8];
        let out = cross_entropy_loss(&logits, &targets);
        sub.backward(&out.grad_logits);
    }

    #[test]
    fn lstm_r2sp_identity_holds() {
        let mut rng = seeded_rng(222);
        for ratio in [0.0, 0.3, 0.7] {
            let lm = zoo::lstm_ptb(25, 0.25, &mut rng);
            let plan = plan_lstm(&lm, ratio);
            let global_state = lm.state();
            let sub = extract_lstm(&lm, &plan);
            let recovered = recover_lstm_state(&sub, &plan, &lm);
            let sparse = sparse_lstm_state(&lm, &plan);
            let rebuilt = state_add(&recovered, &state_sub(&global_state, &sparse));
            for (a, b) in rebuilt.iter().zip(global_state.iter()) {
                assert_eq!(a.tensor, b.tensor, "mismatch in {} at ratio {ratio}", a.name);
            }
        }
    }

    #[test]
    fn pruned_unit_rows_are_zero_in_sparse_state() {
        let mut rng = seeded_rng(223);
        let lm = zoo::lstm_ptb(20, 0.25, &mut rng);
        let plan = plan_lstm(&lm, 0.5);
        let sparse = sparse_lstm_state(&lm, &plan);
        let h = lm.lstms[0].hidden();
        let w_x = &sparse[1].tensor; // lstm.0.w_x
        for k in 0..h {
            let pruned = !plan.kept[0].contains(&k);
            for g in 0..4 {
                let norm: f32 = w_x.row(g * h + k).iter().map(|v| v.abs()).sum();
                if pruned {
                    assert_eq!(norm, 0.0, "gate {g} unit {k} not zeroed");
                } else {
                    assert!(norm > 0.0);
                }
            }
        }
    }

    #[test]
    fn stacked_layer_input_follows_previous_kept() {
        let mut rng = seeded_rng(224);
        let lm = zoo::lstm_ptb(20, 0.25, &mut rng);
        let plan = plan_lstm(&lm, 0.5);
        let sub = extract_lstm(&lm, &plan);
        assert_eq!(sub.lstms[1].input_size(), plan.kept[0].len());
        assert_eq!(sub.decoder.in_features(), plan.kept[1].len());
        // Spot-check one value: sub lstm1 w_x[0][0] comes from the first
        // kept gate-row and the first kept unit of layer 0.
        let r = plan.kept[1][0]; // gate 0 row of first kept unit
        let c = plan.kept[0][0];
        assert_eq!(sub.lstms[1].w_x.value.at(&[0, 0]), lm.lstms[1].w_x.value.at(&[r, c]));
    }
}
