//! Pruning-aware inference without sub-model materialisation.
//!
//! [`extract_sequential`](crate::extract_sequential) copies every kept
//! filter/neuron into a physically smaller model before it can run.
//! This module runs the same computation **directly against the
//! full-size parameters**: conv and FC layers dispatch to the
//! pruning-aware tensor kernels (`conv2d_forward_pruned` /
//! `matmul_nt_pruned`), which gather only the kept weight panels and
//! skip masked channels inside im2col — so a ρ-pruned layer costs
//! ≈ (1−ρ)² of the dense GEMM FLOPs and never allocates the sub-model's
//! parameter copies. Cheap layer kinds (batch norm, activations, pools,
//! flatten) are extracted per call — parameter gathers of vectors, not
//! weight matrices — and run dense.
//!
//! The contract, enforced by `tests/fastpath.rs` at 1 and 4 threads:
//! [`forward_pruned`] is **bit-identical** to
//! `extract_sequential(model, plan).forward(input, false)`. It holds
//! because the pruned kernels consume byte-identical gathered operands
//! through the same deterministic GEMM/band machinery, and every other
//! layer kind literally runs the extracted node.
//!
//! This is an **inference** path (the paper's deployment story for a
//! ρ-pruned worker): nothing is cached, so there is no backward pass —
//! training still goes through the extracted sub-model.

use crate::iss::LstmPlan;
use crate::plan::{LayerPlan, PrunePlan};
use crate::rebuild::extract_node;
use fedmp_nn::{LayerNode, LstmLm, Sequential};
use fedmp_tensor::Tensor;

/// Inference forward of the `plan`-pruned sub-model computed against
/// the full-size `model`, bit-identical to
/// `extract_sequential(model, plan).forward(input, false)`.
pub fn forward_pruned(model: &Sequential, plan: &PrunePlan, input: &Tensor) -> Tensor {
    assert_eq!(model.layers.len(), plan.layers.len(), "fastpath: plan/model layer count mismatch");
    let mut x = input.clone();
    for (node, lp) in model.layers.iter().zip(plan.layers.iter()) {
        x = forward_node(node, lp, &x);
    }
    x
}

fn forward_node(node: &LayerNode, lp: &LayerPlan, x: &Tensor) -> Tensor {
    match (node, lp) {
        (LayerNode::Conv2d(conv), LayerPlan::Conv { kept_out, kept_in }) => {
            conv.forward_pruned(x, kept_out, kept_in)
        }
        (LayerNode::Linear(lin), LayerPlan::Linear { kept_out, kept_in }) => {
            lin.forward_pruned(x, kept_out, kept_in)
        }
        (LayerNode::Residual(block), LayerPlan::Residual { body, shortcut }) => {
            // Mirrors `ResidualBlock::forward` at inference: body and
            // shortcut chains on clones of the input, elementwise add,
            // then ReLU (no mask cache — no backward here).
            assert_eq!(block.body.len(), body.len(), "fastpath: residual body plan mismatch");
            assert_eq!(
                block.shortcut.len(),
                shortcut.len(),
                "fastpath: residual shortcut plan mismatch"
            );
            let mut main = x.clone();
            for (n, p) in block.body.iter().zip(body.iter()) {
                main = forward_node(n, p, &main);
            }
            let mut side = x.clone();
            for (n, p) in block.shortcut.iter().zip(shortcut.iter()) {
                side = forward_node(n, p, &side);
            }
            assert_eq!(main.dims(), side.dims(), "fastpath: body/shortcut output shapes differ");
            let pre = main.add(&side);
            pre.map(|v| if v > 0.0 { v } else { 0.0 })
        }
        // Batch norm (vector-parameter gathers) and parameterless
        // layers: extracting the node is as cheap as any bespoke path
        // would be, and running it keeps bit-identity trivially.
        (node, lp) => extract_node(node, lp).forward(x, false),
    }
}

/// Decoder logits of an ISS-pruned LSTM language model computed against
/// the full-size decoder: `hidden` is the last LSTM layer's output
/// (either already shrunk to the kept units, or full-width with pruned
/// units present), and the result is bit-identical to the extracted
/// decoder of [`extract_lstm`](crate::extract_lstm) on the shrunk
/// hidden state. The decoder keeps every output row (the vocabulary is
/// never pruned), so only the input features are gathered.
pub fn lstm_decoder_pruned(lm: &LstmLm, plan: &LstmPlan, hidden: &Tensor) -> Tensor {
    let kept_in = plan.kept.last().expect("fastpath: empty LSTM plan");
    let all_rows: Vec<usize> = (0..lm.decoder.out_features()).collect();
    lm.decoder.forward_pruned(hidden, &all_rows, kept_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_sequential;
    use crate::rebuild::extract_sequential;
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn fastpath_matches_extracted_on_cnn() {
        let mut rng = seeded_rng(230);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let x = Tensor::randn(&[2, 1, 28, 28], &mut rng);
        for ratio in [0.0, 0.3, 0.7] {
            let plan = plan_sequential(&m, (1, 28, 28), ratio);
            let mut sub = extract_sequential(&m, &plan);
            assert_eq!(forward_pruned(&m, &plan, &x), sub.forward(&x, false), "ratio {ratio}");
        }
    }

    #[test]
    fn lstm_decoder_fastpath_matches_extracted() {
        let mut rng = seeded_rng(231);
        let lm = zoo::lstm_ptb(30, 0.25, &mut rng);
        let plan = crate::iss::plan_lstm(&lm, 0.5);
        let sub = crate::iss::extract_lstm(&lm, &plan);
        let kept = plan.kept.last().unwrap();
        let hidden = Tensor::randn(&[3, kept.len()], &mut rng);
        let mut dec = sub.decoder.clone();
        assert_eq!(lstm_decoder_pruned(&lm, &plan, &hidden), dec.forward(&hidden, false));
    }
}
