//! Unstructured (magnitude) pruning — the approach of Jiang et al.
//! [15] that FedMP's §II-B argues against. Included as a comparator: it
//! produces sparse masks rather than smaller dense models, so it reduces
//! wire size but not dense-kernel compute.

use fedmp_nn::StateEntry;
use serde::{Deserialize, Serialize};

/// A per-entry boolean keep-mask over a model snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightMask {
    /// One keep-flag vector per state entry (aligned by order).
    pub keep: Vec<Vec<bool>>,
}

impl WeightMask {
    /// Number of kept weights.
    pub fn kept_count(&self) -> usize {
        self.keep.iter().map(|v| v.iter().filter(|&&k| k).count()).sum()
    }

    /// Total number of weights.
    pub fn total(&self) -> usize {
        self.keep.iter().map(Vec::len).sum()
    }
}

/// Builds a global-threshold magnitude mask keeping the largest
/// `1 − sparsity` fraction of **trainable** weights (tracked statistics
/// are always kept).
pub fn magnitude_mask(state: &[StateEntry], sparsity: f32) -> WeightMask {
    assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
    // Global threshold over trainable weights.
    let mut mags: Vec<f32> = state
        .iter()
        .filter(|e| e.trainable)
        .flat_map(|e| e.tensor.data().iter().map(|v| v.abs()))
        .collect();
    if mags.is_empty() {
        return WeightMask { keep: state.iter().map(|e| vec![true; e.tensor.numel()]).collect() };
    }
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    let cut = ((mags.len() as f32) * sparsity) as usize;
    let threshold = if cut == 0 { f32::NEG_INFINITY } else { mags[cut.min(mags.len() - 1)] };

    let keep = state
        .iter()
        .map(|e| {
            if e.trainable {
                e.tensor.data().iter().map(|v| v.abs() >= threshold).collect()
            } else {
                vec![true; e.tensor.numel()]
            }
        })
        .collect();
    WeightMask { keep }
}

/// Zeroes masked-out weights in place.
pub fn apply_mask(state: &mut [StateEntry], mask: &WeightMask) {
    assert_eq!(state.len(), mask.keep.len(), "mask entry count mismatch");
    for (e, keep) in state.iter_mut().zip(mask.keep.iter()) {
        assert_eq!(e.tensor.numel(), keep.len(), "mask length mismatch for {}", e.name);
        for (v, &k) in e.tensor.data_mut().iter_mut().zip(keep.iter()) {
            if !k {
                *v = 0.0;
            }
        }
    }
}

/// Fraction of weights kept by the mask.
pub fn mask_density(mask: &WeightMask) -> f32 {
    mask.kept_count() as f32 / mask.total().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::Tensor;

    fn state() -> Vec<StateEntry> {
        vec![
            StateEntry::trainable(
                "w",
                Tensor::from_vec(vec![0.1, -0.9, 0.5, -0.2, 0.7, 0.05], &[6]).unwrap(),
            ),
            StateEntry::tracked("rv", Tensor::from_vec(vec![0.01, 0.02], &[2]).unwrap()),
        ]
    }

    #[test]
    fn mask_keeps_requested_density() {
        let s = state();
        let mask = magnitude_mask(&s, 0.5);
        // 3 of 6 trainable weights kept (+2 tracked always kept).
        let kept_trainable = mask.keep[0].iter().filter(|&&k| k).count();
        assert_eq!(kept_trainable, 3);
        assert!(mask.keep[1].iter().all(|&k| k));
        assert!((mask_density(&mask) - 5.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn mask_keeps_largest_magnitudes() {
        let s = state();
        let mask = magnitude_mask(&s, 0.5);
        // Largest three: -0.9, 0.7, 0.5
        assert_eq!(mask.keep[0], vec![false, true, true, false, true, false]);
    }

    #[test]
    fn apply_zeroes_masked_weights() {
        let mut s = state();
        let mask = magnitude_mask(&s, 0.5);
        apply_mask(&mut s, &mask);
        assert_eq!(s[0].tensor.data(), &[0.0, -0.9, 0.5, 0.0, 0.7, 0.0]);
        assert_eq!(s[1].tensor.data(), &[0.01, 0.02]);
    }

    #[test]
    fn zero_sparsity_keeps_everything() {
        let s = state();
        let mask = magnitude_mask(&s, 0.0);
        assert_eq!(mask.kept_count(), mask.total());
    }
}
