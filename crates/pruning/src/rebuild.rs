//! Sub-model extraction and R2SP recovery.

use crate::plan::{LayerPlan, PrunePlan};
use fedmp_nn::{BatchNorm2d, Conv2d, LayerNode, Linear, ResidualBlock, Sequential, StateEntry};
use fedmp_tensor::Tensor;

// ---------------------------------------------------------------------
// Extraction: global model + plan → physically smaller sub-model
// ---------------------------------------------------------------------

/// Materialises the sub-model `x̂ₙ` described by `plan`: every kept
/// filter/neuron's weights are copied from the global model into a
/// smaller architecture (paper §III-B).
pub fn extract_sequential(model: &Sequential, plan: &PrunePlan) -> Sequential {
    assert_eq!(model.layers.len(), plan.layers.len(), "extract: plan/model layer count mismatch");
    let layers = model
        .layers
        .iter()
        .zip(plan.layers.iter())
        .map(|(node, lp)| extract_node(node, lp))
        .collect();
    Sequential::new(layers)
}

/// Extracts one node (crate-visible so the kernel fast path in
/// [`crate::fastpath`] can materialise the cheap layer kinds — batch
/// norm, activations, pools — while conv/FC run pruning-aware kernels
/// against the full-size weights).
pub(crate) fn extract_node(node: &LayerNode, plan: &LayerPlan) -> LayerNode {
    match (node, plan) {
        (LayerNode::Conv2d(conv), LayerPlan::Conv { kept_out, kept_in }) => {
            let weight = gather_conv_weight(&conv.weight.value, kept_out, kept_in);
            let bias = gather_1d(&conv.bias.value, kept_out);
            LayerNode::Conv2d(Conv2d::from_parts(weight, bias, conv.spec))
        }
        (LayerNode::Linear(lin), LayerPlan::Linear { kept_out, kept_in }) => {
            let weight = gather_2d(&lin.weight.value, kept_out, kept_in);
            let bias = gather_1d(&lin.bias.value, kept_out);
            LayerNode::Linear(Linear::from_parts(weight, bias))
        }
        (LayerNode::BatchNorm2d(bn), LayerPlan::BatchNorm { kept }) => {
            let mut sub = BatchNorm2d::from_parts(
                gather_1d(&bn.gamma.value, kept),
                gather_1d(&bn.beta.value, kept),
                gather_1d(&bn.running_mean, kept),
                gather_1d(&bn.running_var, kept),
            );
            sub.momentum = bn.momentum;
            sub.eps = bn.eps;
            LayerNode::BatchNorm2d(sub)
        }
        (LayerNode::Residual(block), LayerPlan::Residual { body, shortcut }) => {
            assert_eq!(block.body.len(), body.len(), "extract: residual body plan mismatch");
            assert_eq!(
                block.shortcut.len(),
                shortcut.len(),
                "extract: residual shortcut plan mismatch"
            );
            let new_body =
                block.body.iter().zip(body.iter()).map(|(n, p)| extract_node(n, p)).collect();
            let new_short = block
                .shortcut
                .iter()
                .zip(shortcut.iter())
                .map(|(n, p)| extract_node(n, p))
                .collect();
            LayerNode::Residual(ResidualBlock::new(new_body, new_short))
        }
        (
            n @ (LayerNode::ReLU(_)
            | LayerNode::Dropout(_)
            | LayerNode::MaxPool2d(_)
            | LayerNode::AvgPool2d(_)
            | LayerNode::Flatten(_)),
            LayerPlan::Passthrough,
        ) => n.clone(),
        (n, p) => panic!("extract: plan kind mismatch at layer {n:?} vs {p:?}"),
    }
}

// ---------------------------------------------------------------------
// Recovery: trained sub-model → full-model coordinates (R2SP §III-C)
// ---------------------------------------------------------------------

/// Scatters a trained sub-model back into full-model shape: kept
/// positions carry the sub-model's values, pruned positions are zero.
/// The result is "the recovered model" of R2SP; adding the residual
/// model (`global − sparse`) restores the pruned parameters.
pub fn recover_state(sub: &Sequential, plan: &PrunePlan, global: &Sequential) -> Vec<StateEntry> {
    assert_eq!(global.layers.len(), plan.layers.len(), "recover: plan/global layer count mismatch");
    assert_eq!(sub.layers.len(), plan.layers.len(), "recover: plan/sub layer count mismatch");
    let mut out = Vec::new();
    for (i, ((g, s), lp)) in
        global.layers.iter().zip(sub.layers.iter()).zip(plan.layers.iter()).enumerate()
    {
        scatter_node(g, s, lp, &i.to_string(), &mut out);
    }
    out
}

/// The sparse model `xₙ` of R2SP: the full-shape model with every pruned
/// position set to zero. Computed as `recover(extract(global))`, which
/// makes the R2SP identity hold by construction.
pub fn sparse_state(global: &Sequential, plan: &PrunePlan) -> Vec<StateEntry> {
    let sub = extract_sequential(global, plan);
    recover_state(&sub, plan, global)
}

fn scatter_node(
    g: &LayerNode,
    s: &LayerNode,
    plan: &LayerPlan,
    prefix: &str,
    out: &mut Vec<StateEntry>,
) {
    match (g, s, plan) {
        (LayerNode::Conv2d(gc), LayerNode::Conv2d(sc), LayerPlan::Conv { kept_out, kept_in }) => {
            out.push(StateEntry::trainable(
                format!("{prefix}.weight"),
                scatter_conv_weight(&sc.weight.value, gc.weight.value.dims(), kept_out, kept_in),
            ));
            out.push(StateEntry::trainable(
                format!("{prefix}.bias"),
                scatter_1d(&sc.bias.value, gc.bias.value.numel(), kept_out),
            ));
        }
        (LayerNode::Linear(gl), LayerNode::Linear(sl), LayerPlan::Linear { kept_out, kept_in }) => {
            out.push(StateEntry::trainable(
                format!("{prefix}.weight"),
                scatter_2d(&sl.weight.value, gl.weight.value.dims(), kept_out, kept_in),
            ));
            out.push(StateEntry::trainable(
                format!("{prefix}.bias"),
                scatter_1d(&sl.bias.value, gl.bias.value.numel(), kept_out),
            ));
        }
        (LayerNode::BatchNorm2d(gb), LayerNode::BatchNorm2d(sb), LayerPlan::BatchNorm { kept }) => {
            let c = gb.channels();
            out.push(StateEntry::trainable(
                format!("{prefix}.gamma"),
                scatter_1d(&sb.gamma.value, c, kept),
            ));
            out.push(StateEntry::trainable(
                format!("{prefix}.beta"),
                scatter_1d(&sb.beta.value, c, kept),
            ));
            out.push(StateEntry::tracked(
                format!("{prefix}.running_mean"),
                scatter_1d(&sb.running_mean, c, kept),
            ));
            out.push(StateEntry::tracked(
                format!("{prefix}.running_var"),
                scatter_1d(&sb.running_var, c, kept),
            ));
        }
        (
            LayerNode::Residual(gr),
            LayerNode::Residual(sr),
            LayerPlan::Residual { body, shortcut },
        ) => {
            for (i, ((gn, sn), p)) in
                gr.body.iter().zip(sr.body.iter()).zip(body.iter()).enumerate()
            {
                scatter_node(gn, sn, p, &format!("{prefix}.body.{i}"), out);
            }
            for (i, ((gn, sn), p)) in
                gr.shortcut.iter().zip(sr.shortcut.iter()).zip(shortcut.iter()).enumerate()
            {
                scatter_node(gn, sn, p, &format!("{prefix}.shortcut.{i}"), out);
            }
        }
        (
            LayerNode::ReLU(_)
            | LayerNode::Dropout(_)
            | LayerNode::MaxPool2d(_)
            | LayerNode::AvgPool2d(_)
            | LayerNode::Flatten(_),
            _,
            LayerPlan::Passthrough,
        ) => {}
        (g, _, p) => panic!("recover: plan kind mismatch at layer {g:?} vs {p:?}"),
    }
}

// ---------------------------------------------------------------------
// Gather / scatter kernels
// ---------------------------------------------------------------------

/// Selects rows and columns of a `[rows, cols]` tensor.
fn gather_2d(t: &Tensor, rows: &[usize], cols: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(&[rows.len(), cols.len()]);
    for (i, &r) in rows.iter().enumerate() {
        let src = t.row(r);
        let dst = out.row_mut(i);
        for (j, &c) in cols.iter().enumerate() {
            dst[j] = src[c];
        }
    }
    out
}

/// Selects entries of a rank-1 tensor.
fn gather_1d(t: &Tensor, idx: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(&[idx.len()]);
    for (i, &k) in idx.iter().enumerate() {
        out.data_mut()[i] = t.data()[k];
    }
    out
}

/// Selects output filters and input channels of a `[oc, ic, kh, kw]`
/// conv weight.
fn gather_conv_weight(t: &Tensor, kept_out: &[usize], kept_in: &[usize]) -> Tensor {
    let d = t.dims();
    let (ic, kh, kw) = (d[1], d[2], d[3]);
    let k2 = kh * kw;
    let mut out = Tensor::zeros(&[kept_out.len(), kept_in.len(), kh, kw]);
    for (i, &f) in kept_out.iter().enumerate() {
        for (j, &c) in kept_in.iter().enumerate() {
            let src = &t.data()[(f * ic + c) * k2..(f * ic + c + 1) * k2];
            let base = (i * kept_in.len() + j) * k2;
            out.data_mut()[base..base + k2].copy_from_slice(src);
        }
    }
    out
}

/// Adjoint of [`gather_2d`]: places a small matrix into a zeroed
/// full-size matrix at the kept rows/columns.
fn scatter_2d(small: &Tensor, full_dims: &[usize], rows: &[usize], cols: &[usize]) -> Tensor {
    assert_eq!(small.dims(), &[rows.len(), cols.len()], "scatter_2d: sub shape mismatch");
    let mut out = Tensor::zeros(full_dims);
    let full_cols = full_dims[1];
    for (i, &r) in rows.iter().enumerate() {
        let src = small.row(i);
        for (j, &c) in cols.iter().enumerate() {
            out.data_mut()[r * full_cols + c] = src[j];
        }
    }
    out
}

/// Adjoint of [`gather_1d`].
fn scatter_1d(small: &Tensor, full_len: usize, idx: &[usize]) -> Tensor {
    assert_eq!(small.numel(), idx.len(), "scatter_1d: sub length mismatch");
    let mut out = Tensor::zeros(&[full_len]);
    for (i, &k) in idx.iter().enumerate() {
        out.data_mut()[k] = small.data()[i];
    }
    out
}

/// Adjoint of [`gather_conv_weight`].
fn scatter_conv_weight(
    small: &Tensor,
    full_dims: &[usize],
    kept_out: &[usize],
    kept_in: &[usize],
) -> Tensor {
    let (ic, kh, kw) = (full_dims[1], full_dims[2], full_dims[3]);
    let k2 = kh * kw;
    assert_eq!(
        small.dims(),
        &[kept_out.len(), kept_in.len(), kh, kw],
        "scatter_conv: sub shape mismatch"
    );
    let mut out = Tensor::zeros(full_dims);
    for (i, &f) in kept_out.iter().enumerate() {
        for (j, &c) in kept_in.iter().enumerate() {
            let src = &small.data()[(i * kept_in.len() + j) * k2..(i * kept_in.len() + j + 1) * k2];
            let base = (f * ic + c) * k2;
            out.data_mut()[base..base + k2].copy_from_slice(src);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_sequential;
    use fedmp_nn::{state_add, state_sub, zoo};
    use fedmp_tensor::{cross_entropy_loss, seeded_rng};

    #[test]
    fn extract_shrinks_parameter_count() {
        let mut rng = seeded_rng(210);
        let mut m = zoo::cnn_mnist(0.5, &mut rng);
        let plan = plan_sequential(&m, (1, 28, 28), 0.5);
        let mut sub = extract_sequential(&m, &plan);
        let full = m.num_params();
        let small = sub.num_params();
        assert!(small < full / 2, "sub {small} vs full {full}");
    }

    #[test]
    fn extracted_submodel_runs_forward_and_backward() {
        let mut rng = seeded_rng(211);
        for (model, chw, input) in [
            (zoo::cnn_mnist(0.25, &mut rng), (1usize, 28usize, 28usize), [1usize, 1, 28, 28]),
            (zoo::alexnet_cifar(0.1, &mut rng), (3, 32, 32), [1, 3, 32, 32]),
            (zoo::vgg_emnist(0.1, &mut rng), (1, 28, 28), [1, 1, 28, 28]),
            (zoo::resnet_tiny(0.1, &mut rng), (3, 64, 64), [1, 3, 64, 64]),
        ] {
            for ratio in [0.0, 0.3, 0.7] {
                let plan = plan_sequential(&model, chw, ratio);
                let mut sub = extract_sequential(&model, &plan);
                let x = fedmp_tensor::Tensor::randn(&input, &mut rng);
                let y = sub.forward(&x, true);
                assert!(y.all_finite(), "ratio {ratio}");
                let out = cross_entropy_loss(&y, &[0]);
                sub.backward(&out.grad_logits);
            }
        }
    }

    #[test]
    fn r2sp_identity_holds_exactly() {
        // recover(extract(g)) + (g − sparse(g)) == g, elementwise.
        let mut rng = seeded_rng(212);
        for ratio in [0.0, 0.25, 0.5, 0.8] {
            let m = zoo::cnn_mnist(0.25, &mut rng);
            let plan = plan_sequential(&m, (1, 28, 28), ratio);
            let global_state = m.state();
            let sub = extract_sequential(&m, &plan);
            let recovered = recover_state(&sub, &plan, &m);
            let sparse = sparse_state(&m, &plan);
            let residual = state_sub(&global_state, &sparse);
            let rebuilt = state_add(&recovered, &residual);
            for (a, b) in rebuilt.iter().zip(global_state.iter()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.tensor, b.tensor, "mismatch in {} at ratio {ratio}", a.name);
            }
        }
    }

    #[test]
    fn r2sp_identity_holds_for_resnet() {
        let mut rng = seeded_rng(213);
        let m = zoo::resnet_tiny(0.2, &mut rng);
        let plan = plan_sequential(&m, (3, 64, 64), 0.6);
        let global_state = m.state();
        let sub = extract_sequential(&m, &plan);
        let recovered = recover_state(&sub, &plan, &m);
        let sparse = sparse_state(&m, &plan);
        let rebuilt = state_add(&recovered, &state_sub(&global_state, &sparse));
        for (a, b) in rebuilt.iter().zip(global_state.iter()) {
            assert_eq!(a.tensor, b.tensor, "mismatch in {}", a.name);
        }
    }

    #[test]
    fn recovered_state_is_zero_outside_kept_positions() {
        let mut rng = seeded_rng(214);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let plan = plan_sequential(&m, (1, 28, 28), 0.5);
        let sub = extract_sequential(&m, &plan);
        let recovered = recover_state(&sub, &plan, &m);
        let sparse = sparse_state(&m, &plan);
        // Since sub was extracted (not trained), recovered == sparse.
        for (a, b) in recovered.iter().zip(sparse.iter()) {
            assert_eq!(a.tensor, b.tensor);
        }
        // And the sparse conv1 weight has zero rows for pruned filters.
        let conv1 = &sparse[0].tensor;
        let per_filter = conv1.numel() / conv1.dims()[0];
        let kept = match &plan.layers[0] {
            crate::plan::LayerPlan::Conv { kept_out, .. } => kept_out.clone(),
            other => panic!("unexpected plan kind {other:?}"),
        };
        for f in 0..conv1.dims()[0] {
            let norm: f32 =
                conv1.data()[f * per_filter..(f + 1) * per_filter].iter().map(|v| v.abs()).sum();
            if kept.contains(&f) {
                assert!(norm > 0.0, "kept filter {f} zeroed");
            } else {
                assert_eq!(norm, 0.0, "pruned filter {f} non-zero");
            }
        }
    }

    #[test]
    fn sub_and_sparse_agree_in_forward_at_inference() {
        // A sparse model (zeros in pruned positions) and the physically
        // extracted sub-model compute the same logits for conv-only nets
        // without batch norm (BN statistics differ on zero channels).
        let mut rng = seeded_rng(215);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let plan = plan_sequential(&m, (1, 28, 28), 0.5);
        let mut sub = extract_sequential(&m, &plan);
        let mut sparse_model = m.clone();
        sparse_model.load_state(&sparse_state(&m, &plan));
        let x = fedmp_tensor::Tensor::randn(&[2, 1, 28, 28], &mut rng);
        let y_sub = sub.forward(&x, false);
        let y_sparse = sparse_model.forward(&x, false);
        for (a, b) in y_sub.data().iter().zip(y_sparse.data().iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn gather_scatter_roundtrip_2d() {
        let mut rng = seeded_rng(216);
        let t = Tensor::randn(&[5, 6], &mut rng);
        let rows = vec![0, 2, 4];
        let cols = vec![1, 5];
        let small = gather_2d(&t, &rows, &cols);
        assert_eq!(small.at(&[1, 1]), t.at(&[2, 5]));
        let back = scatter_2d(&small, &[5, 6], &rows, &cols);
        assert_eq!(back.at(&[2, 5]), t.at(&[2, 5]));
        assert_eq!(back.at(&[1, 1]), 0.0);
    }
}
