//! Residual-model quantization (paper §III-C): "when there are many
//! workers, we can quantize each parameter in residual models with fewer
//! bits to further reduce the memory overhead" — the residual occupies
//! "only 10–20% of the original model".
//!
//! We implement symmetric per-tensor 8-bit affine quantization: each
//! tensor stores `i8` codes plus one `f32` scale, a 4× memory saving
//! that bounds per-weight error by `max|w| / 127`.

use fedmp_nn::StateEntry;
use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One quantized tensor: symmetric 8-bit codes plus a scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantTensor {
    /// Quantized codes, row-major.
    pub codes: Vec<i8>,
    /// Dequantization scale (`value ≈ code · scale`).
    pub scale: f32,
    /// Original shape.
    pub dims: Vec<usize>,
}

/// A quantized model snapshot (the PS-side residual store).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantState {
    /// Entry names, aligned with `tensors`.
    pub names: Vec<String>,
    /// Trainability flags, aligned with `tensors`.
    pub trainable: Vec<bool>,
    /// Quantized tensors.
    pub tensors: Vec<QuantTensor>,
}

impl QuantState {
    /// Approximate memory footprint in bytes (1 byte/code + scale).
    pub fn memory_bytes(&self) -> usize {
        self.tensors.iter().map(|t| t.codes.len() + 4).sum()
    }
}

/// Quantizes a snapshot to 8 bits per weight.
pub fn quantize_state(state: &[StateEntry]) -> QuantState {
    let mut names = Vec::with_capacity(state.len());
    let mut trainable = Vec::with_capacity(state.len());
    let mut tensors = Vec::with_capacity(state.len());
    for e in state {
        names.push(e.name.clone());
        trainable.push(e.trainable);
        let max = e.tensor.data().iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
        let codes = e
            .tensor
            .data()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        tensors.push(QuantTensor { codes, scale, dims: e.tensor.dims().to_vec() });
    }
    QuantState { names, trainable, tensors }
}

/// Reconstructs an approximate snapshot from quantized storage.
pub fn dequantize_state(q: &QuantState) -> Vec<StateEntry> {
    q.names
        .iter()
        .zip(q.trainable.iter())
        .zip(q.tensors.iter())
        .map(|((name, &trainable), t)| {
            let data: Vec<f32> = t.codes.iter().map(|&c| c as f32 * t.scale).collect();
            StateEntry {
                name: name.clone(),
                tensor: Tensor::from_vec(data, &t.dims).expect("quantized shape"),
                trainable,
            }
        })
        .collect()
}

/// Worst-case absolute reconstruction error of a quantized snapshot:
/// half a code step per tensor, i.e. `scale / 2`.
pub fn quant_error_bound(q: &QuantState) -> f32 {
    q.tensors.iter().map(|t| t.scale * 0.5).fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::seeded_rng;

    fn snapshot() -> Vec<StateEntry> {
        let mut rng = seeded_rng(230);
        vec![
            StateEntry::trainable("w", Tensor::randn(&[8, 4], &mut rng)),
            StateEntry::tracked("rv", Tensor::rand_uniform(&[8], 0.0, 2.0, &mut rng)),
        ]
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let state = snapshot();
        let q = quantize_state(&state);
        let back = dequantize_state(&q);
        let bound = quant_error_bound(&q);
        for (a, b) in state.iter().zip(back.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.trainable, b.trainable);
            assert_eq!(a.tensor.dims(), b.tensor.dims());
            for (x, y) in a.tensor.data().iter().zip(b.tensor.data().iter()) {
                assert!((x - y).abs() <= bound + 1e-6, "{x} vs {y} (bound {bound})");
            }
        }
    }

    #[test]
    fn memory_is_quarter_of_f32() {
        let state = snapshot();
        let q = quantize_state(&state);
        let f32_bytes: usize = state.iter().map(|e| e.tensor.numel() * 4).sum();
        assert!(q.memory_bytes() * 3 < f32_bytes, "{} vs {}", q.memory_bytes(), f32_bytes);
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let state = vec![StateEntry::trainable("z", Tensor::zeros(&[5]))];
        let back = dequantize_state(&quantize_state(&state));
        assert_eq!(back[0].tensor.data(), &[0.0; 5]);
    }

    #[test]
    fn extreme_values_survive() {
        let state =
            vec![StateEntry::trainable("w", Tensor::from_vec(vec![-3.0, 0.0, 3.0], &[3]).unwrap())];
        let back = dequantize_state(&quantize_state(&state));
        assert!((back[0].tensor.data()[0] + 3.0).abs() < 0.05);
        assert!((back[0].tensor.data()[2] - 3.0).abs() < 0.05);
    }
}
