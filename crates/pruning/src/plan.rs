//! Prune-plan construction: which filters/neurons survive at a given
//! pruning ratio.

use fedmp_nn::{LayerNode, ResidualBlock, Sequential};
use fedmp_tensor::parallel::sum_f32;
use serde::{Deserialize, Serialize};

/// Per-layer pruning decision, aligned with the model's layer traversal.
///
/// All index lists are **sorted ascending** and refer to positions in the
/// *full* (global) model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerPlan {
    /// Convolution: which output filters and input channels survive.
    Conv {
        /// Kept output-filter indices.
        kept_out: Vec<usize>,
        /// Kept input-channel indices (inherited from the previous layer).
        kept_in: Vec<usize>,
    },
    /// Fully connected layer: which output neurons and input features
    /// survive.
    Linear {
        /// Kept output-neuron indices.
        kept_out: Vec<usize>,
        /// Kept input-feature indices.
        kept_in: Vec<usize>,
    },
    /// Batch norm: which channels survive (mirrors the preceding conv).
    BatchNorm {
        /// Kept channel indices.
        kept: Vec<usize>,
    },
    /// Layer untouched by pruning (activations, pooling, flatten…).
    Passthrough,
    /// Residual block: nested plans for body and shortcut.
    Residual {
        /// Plans for the body layers.
        body: Vec<LayerPlan>,
        /// Plans for the shortcut layers.
        shortcut: Vec<LayerPlan>,
    },
}

/// A complete pruning plan for one model at one ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunePlan {
    /// Per-layer decisions, aligned with `Sequential::layers`.
    pub layers: Vec<LayerPlan>,
    /// The pruning ratio α ∈ [0, 1) the plan was built for.
    pub ratio: f32,
}

/// Number of units kept at ratio α out of `total`: `⌈(1−α)·total⌉`,
/// floored at 1 so a layer never vanishes entirely.
pub fn ratio_keep_count(total: usize, ratio: f32) -> usize {
    assert!((0.0..1.0).contains(&ratio), "pruning ratio must be in [0, 1), got {ratio}");
    (((1.0 - ratio) * total as f32).ceil() as usize).clamp(1, total)
}

/// Filter/neuron importance metric. The paper uses L1 (§III-B) and
/// notes in §VI that FedMP "can be extended … by easily replacing
/// different pruning strategies"; L2 and seeded-random comparators back
/// the importance-metric ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Importance {
    /// Sum of absolute weights (the paper's metric).
    #[default]
    L1,
    /// Euclidean norm of the unit's weights.
    L2,
    /// Seeded random scores — the "pruning does not look at weights at
    /// all" control.
    Random {
        /// Score seed.
        seed: u64,
    },
}

impl Importance {
    /// Scores `units` weight groups, where group `u` occupies
    /// `weights[u·stride..(u+1)·stride]`.
    fn score_groups(&self, weights: &[f32], units: usize, stride: usize) -> Vec<f32> {
        match self {
            Importance::L1 => (0..units)
                .map(|u| sum_f32(weights[u * stride..(u + 1) * stride].iter().map(|v| v.abs())))
                .collect(),
            Importance::L2 => (0..units)
                .map(|u| {
                    sum_f32(weights[u * stride..(u + 1) * stride].iter().map(|v| v * v)).sqrt()
                })
                .collect(),
            Importance::Random { seed } => {
                // Stable pseudo-random score per unit index.
                (0..units)
                    .map(|u| {
                        let mut z =
                            seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u as u64 + 1));
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        (z >> 11) as f32 / (1u64 << 53) as f32
                    })
                    .collect()
            }
        }
    }
}

/// What flows between layers during planning: the surviving positions of
/// the previous layer's output.
#[derive(Debug, Clone)]
enum Flow {
    /// Spatial activations: kept channel indices, spatial size, and the
    /// full channel count.
    Chw { kept: Vec<usize>, total: usize, h: usize, w: usize },
    /// Flat features: kept feature indices and the full feature count.
    Flat { kept: Vec<usize>, total: usize },
}

/// Builds a pruning plan: every prunable layer keeps the
/// `⌈(1−α)·total⌉` highest-L1 units (paper §III-B). The model's final
/// linear layer (the classifier head) is never pruned on its output side.
pub fn plan_sequential(
    model: &Sequential,
    input_chw: (usize, usize, usize),
    ratio: f32,
) -> PrunePlan {
    plan_sequential_with(model, input_chw, ratio, Importance::L1)
}

/// [`plan_sequential`] with a custom importance metric (§VI extension).
pub fn plan_sequential_with(
    model: &Sequential,
    input_chw: (usize, usize, usize),
    ratio: f32,
    importance: Importance,
) -> PrunePlan {
    let (c, h, w) = input_chw;
    let mut flow = Flow::Chw { kept: (0..c).collect(), total: c, h, w };
    let last_linear =
        model.layers.iter().rposition(|l| matches!(l, LayerNode::Linear(_))).unwrap_or(usize::MAX);
    let mut layers = Vec::with_capacity(model.layers.len());
    for (i, node) in model.layers.iter().enumerate() {
        let pin_output = i == last_linear;
        let (plan, new_flow) = plan_node(node, flow, ratio, pin_output, importance);
        layers.push(plan);
        flow = new_flow;
    }
    PrunePlan { layers, ratio }
}

fn plan_node(
    node: &LayerNode,
    flow: Flow,
    ratio: f32,
    pin_output: bool,
    importance: Importance,
) -> (LayerPlan, Flow) {
    match node {
        LayerNode::Conv2d(conv) => {
            let (kept_in, _total_c, h, w) = expect_chw(&flow, "conv");
            let kept_out = if pin_output {
                (0..conv.out_channels()).collect()
            } else {
                top_filters(conv, ratio, importance)
            };
            let (oh, ow) = conv.spec.out_hw(h, w);
            let new_flow =
                Flow::Chw { kept: kept_out.clone(), total: conv.out_channels(), h: oh, w: ow };
            (LayerPlan::Conv { kept_out, kept_in }, new_flow)
        }
        LayerNode::Linear(lin) => {
            let (kept_in, _total) = expect_flat(&flow, "linear");
            let kept_out = if pin_output {
                (0..lin.out_features()).collect()
            } else {
                top_neurons(lin, ratio, importance)
            };
            let new_flow = Flow::Flat { kept: kept_out.clone(), total: lin.out_features() };
            (LayerPlan::Linear { kept_out, kept_in }, new_flow)
        }
        LayerNode::BatchNorm2d(_) => {
            let (kept, _, _, _) = expect_chw(&flow, "batchnorm");
            (LayerPlan::BatchNorm { kept }, flow)
        }
        LayerNode::ReLU(_) | LayerNode::Dropout(_) => (LayerPlan::Passthrough, flow),
        LayerNode::MaxPool2d(p) => {
            let (kept, total, h, w) = expect_chw(&flow, "maxpool");
            let (oh, ow) = p.spec.out_hw(h, w);
            (LayerPlan::Passthrough, Flow::Chw { kept, total, h: oh, w: ow })
        }
        LayerNode::AvgPool2d(p) => {
            let (kept, total, h, w) = expect_chw(&flow, "avgpool");
            let (oh, ow) = p.spec.out_hw(h, w);
            (LayerPlan::Passthrough, Flow::Chw { kept, total, h: oh, w: ow })
        }
        LayerNode::Flatten(_) => {
            let (kept, total, h, w) = expect_chw(&flow, "flatten");
            // Channel c occupies features [c·h·w, (c+1)·h·w).
            let hw = h * w;
            let mut feat = Vec::with_capacity(kept.len() * hw);
            for &c in &kept {
                feat.extend(c * hw..(c + 1) * hw);
            }
            (LayerPlan::Passthrough, Flow::Flat { kept: feat, total: total * hw })
        }
        LayerNode::Residual(block) => plan_residual(block, flow, ratio, importance),
    }
}

/// Plans a residual block. Internal convolutions prune freely; the
/// block's *last* prunable site on each path is pinned so the two paths
/// stay addable:
///
/// * identity shortcut — the body's final conv must reproduce exactly the
///   incoming channel set;
/// * projection shortcut — both the projection conv and the body's final
///   conv keep the full output width.
fn plan_residual(
    block: &ResidualBlock,
    flow: Flow,
    ratio: f32,
    importance: Importance,
) -> (LayerPlan, Flow) {
    let (in_kept, _in_total, h, w) = expect_chw(&flow, "residual");

    // Which channel set must both paths end with?
    let (out_kept, out_total): (Vec<usize>, usize) = if block.shortcut.is_empty() {
        (in_kept.clone(), expect_chw(&flow, "residual").1)
    } else {
        // Full width of the projection conv's output.
        let oc = block
            .shortcut
            .iter()
            .find_map(|l| match l {
                LayerNode::Conv2d(c) => Some(c.out_channels()),
                _ => None,
            })
            .expect("projection shortcut must contain a conv");
        ((0..oc).collect(), oc)
    };

    // Index of the last conv in the body — its outputs are pinned.
    let last_conv = block
        .body
        .iter()
        .rposition(|l| matches!(l, LayerNode::Conv2d(_)))
        .expect("residual body must contain a conv");

    let mut body_plans = Vec::with_capacity(block.body.len());
    let mut bflow = flow.clone();
    for (i, node) in block.body.iter().enumerate() {
        if i == last_conv {
            // Pin the final conv's outputs to `out_kept`.
            if let LayerNode::Conv2d(conv) = node {
                let (kept_in, _, bh, bw) = expect_chw(&bflow, "residual body");
                let (oh, ow) = conv.spec.out_hw(bh, bw);
                body_plans.push(LayerPlan::Conv { kept_out: out_kept.clone(), kept_in });
                bflow = Flow::Chw { kept: out_kept.clone(), total: out_total, h: oh, w: ow };
                continue;
            }
            unreachable!("last_conv points at a conv");
        }
        let (p, f) = plan_node(node, bflow, ratio, false, importance);
        body_plans.push(p);
        bflow = f;
    }

    let mut shortcut_plans = Vec::with_capacity(block.shortcut.len());
    let mut sflow = Flow::Chw { kept: in_kept, total: expect_chw(&flow, "residual").1, h, w };
    for node in &block.shortcut {
        // The projection conv keeps its full output width.
        let (p, f) = plan_node(node, sflow, 0.0, matches!(node, LayerNode::Conv2d(_)), importance);
        shortcut_plans.push(p);
        sflow = f;
    }

    let out_flow = bflow;
    (LayerPlan::Residual { body: body_plans, shortcut: shortcut_plans }, out_flow)
}

/// Kept filter indices of a conv at ratio α: the top `⌈(1−α)·oc⌉`
/// filters by L1 norm of their kernel weights (paper's importance
/// metric), returned sorted ascending.
fn top_filters(conv: &fedmp_nn::Conv2d, ratio: f32, importance: Importance) -> Vec<usize> {
    let oc = conv.out_channels();
    let per_filter = conv.weight.value.numel() / oc;
    let scores = importance.score_groups(conv.weight.value.data(), oc, per_filter);
    top_indices(&scores, ratio_keep_count(oc, ratio))
}

/// Kept neuron indices of a linear layer at ratio α: the top rows by L1
/// norm of incoming weights.
fn top_neurons(lin: &fedmp_nn::Linear, ratio: f32, importance: Importance) -> Vec<usize> {
    let of = lin.out_features();
    let stride = lin.in_features();
    let scores = importance.score_groups(lin.weight.value.data(), of, stride);
    top_indices(&scores, ratio_keep_count(of, ratio))
}

/// Indices of the `k` largest scores, sorted ascending. Stable under
/// ties (lower index wins), so plans are deterministic.
pub(crate) fn top_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).expect("finite scores").then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = order.into_iter().take(k).collect();
    kept.sort_unstable();
    kept
}

fn expect_chw(flow: &Flow, what: &str) -> (Vec<usize>, usize, usize, usize) {
    match flow {
        Flow::Chw { kept, total, h, w } => (kept.clone(), *total, *h, *w),
        Flow::Flat { .. } => panic!("plan: {what} needs spatial input but flow is flat"),
    }
}

fn expect_flat(flow: &Flow, what: &str) -> (Vec<usize>, usize) {
    match flow {
        Flow::Flat { kept, total } => (kept.clone(), *total),
        Flow::Chw { .. } => panic!("plan: {what} needs flat input (missing Flatten?)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn keep_count_formula() {
        assert_eq!(ratio_keep_count(10, 0.0), 10);
        assert_eq!(ratio_keep_count(10, 0.5), 5);
        assert_eq!(ratio_keep_count(10, 0.25), 8);
        assert_eq!(ratio_keep_count(10, 0.99), 1);
        assert_eq!(ratio_keep_count(3, 0.9), 1);
    }

    #[test]
    #[should_panic(expected = "pruning ratio must be in")]
    fn ratio_one_rejected() {
        let _ = ratio_keep_count(10, 1.0);
    }

    #[test]
    fn top_indices_sorted_and_correct() {
        let scores = [0.5f32, 3.0, 1.0, 2.0];
        assert_eq!(top_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_indices(&scores, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_ratio_keeps_everything() {
        let mut rng = seeded_rng(200);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let plan = plan_sequential(&m, (1, 28, 28), 0.0);
        match &plan.layers[0] {
            LayerPlan::Conv { kept_out, kept_in } => {
                assert_eq!(kept_out.len(), 8); // 32·0.25
                assert_eq!(kept_in, &vec![0]);
            }
            other => panic!("expected conv plan, got {other:?}"),
        }
    }

    #[test]
    fn classifier_head_never_pruned() {
        let mut rng = seeded_rng(201);
        let m = zoo::cnn_mnist(0.25, &mut rng);
        let plan = plan_sequential(&m, (1, 28, 28), 0.8);
        match plan.layers.last().unwrap() {
            LayerPlan::Linear { kept_out, .. } => assert_eq!(kept_out.len(), 10),
            other => panic!("expected linear plan, got {other:?}"),
        }
    }

    #[test]
    fn channel_propagation_through_flatten() {
        let mut rng = seeded_rng(202);
        let m = zoo::cnn_mnist(0.5, &mut rng); // conv2 out = 32, 7×7 spatial
        let plan = plan_sequential(&m, (1, 28, 28), 0.5);
        let conv2_kept = match &plan.layers[3] {
            LayerPlan::Conv { kept_out, .. } => kept_out.clone(),
            other => panic!("layer 3 should be conv, got {other:?}"),
        };
        assert_eq!(conv2_kept.len(), 16);
        match &plan.layers[7] {
            LayerPlan::Linear { kept_in, .. } => {
                assert_eq!(kept_in.len(), conv2_kept.len() * 49);
                // First kept channel maps to features [c·49, (c+1)·49).
                assert_eq!(kept_in[0], conv2_kept[0] * 49);
                assert_eq!(kept_in[48], conv2_kept[0] * 49 + 48);
            }
            other => panic!("layer 7 should be linear, got {other:?}"),
        }
    }

    #[test]
    fn batchnorm_mirrors_preceding_conv() {
        let mut rng = seeded_rng(203);
        let m = zoo::vgg_emnist(0.125, &mut rng);
        let plan = plan_sequential(&m, (1, 28, 28), 0.5);
        let conv_kept = match &plan.layers[0] {
            LayerPlan::Conv { kept_out, .. } => kept_out.clone(),
            other => panic!("expected conv, got {other:?}"),
        };
        match &plan.layers[1] {
            LayerPlan::BatchNorm { kept } => assert_eq!(kept, &conv_kept),
            other => panic!("expected bn, got {other:?}"),
        }
    }

    #[test]
    fn residual_identity_block_pins_last_conv_to_input_set() {
        let mut rng = seeded_rng(204);
        let m = zoo::resnet_tiny(0.25, &mut rng);
        let plan = plan_sequential(&m, (3, 64, 64), 0.5);
        // Layer 0 is the stem conv; layer 4 is the first identity block.
        let stem_kept = match &plan.layers[0] {
            LayerPlan::Conv { kept_out, .. } => kept_out.clone(),
            other => panic!("expected conv, got {other:?}"),
        };
        match &plan.layers[4] {
            LayerPlan::Residual { body, shortcut } => {
                assert!(shortcut.is_empty());
                // Body: conv, bn, relu, conv, bn
                match &body[0] {
                    LayerPlan::Conv { kept_in, kept_out } => {
                        assert_eq!(kept_in, &stem_kept);
                        assert!(kept_out.len() < stem_kept.len().max(2) * 2); // pruned freely
                    }
                    other => panic!("expected conv, got {other:?}"),
                }
                match &body[3] {
                    LayerPlan::Conv { kept_out, .. } => assert_eq!(kept_out, &stem_kept),
                    other => panic!("expected conv, got {other:?}"),
                }
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn residual_projection_block_keeps_full_width() {
        let mut rng = seeded_rng(205);
        let m = zoo::resnet_tiny(0.25, &mut rng);
        let plan = plan_sequential(&m, (3, 64, 64), 0.5);
        // Layer 6 is the first downsampling (projection) block: 8→16 ch.
        match &plan.layers[6] {
            LayerPlan::Residual { body, shortcut } => {
                let full = match &shortcut[0] {
                    LayerPlan::Conv { kept_out, .. } => {
                        // Projection keeps full width.
                        kept_out.clone()
                    }
                    other => panic!("expected conv, got {other:?}"),
                };
                assert_eq!(full, (0..full.len()).collect::<Vec<_>>());
                match &body[3] {
                    LayerPlan::Conv { kept_out, .. } => assert_eq!(kept_out, &full),
                    other => panic!("expected conv, got {other:?}"),
                }
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn higher_ratio_keeps_fewer_units_everywhere() {
        let mut rng = seeded_rng(206);
        let m = zoo::alexnet_cifar(0.125, &mut rng);
        let lo = plan_sequential(&m, (3, 32, 32), 0.2);
        let hi = plan_sequential(&m, (3, 32, 32), 0.7);
        fn kept_counts(plans: &[LayerPlan], out: &mut Vec<usize>) {
            for p in plans {
                match p {
                    LayerPlan::Conv { kept_out, .. } | LayerPlan::Linear { kept_out, .. } => {
                        out.push(kept_out.len())
                    }
                    LayerPlan::Residual { body, shortcut } => {
                        kept_counts(body, out);
                        kept_counts(shortcut, out);
                    }
                    _ => {}
                }
            }
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        kept_counts(&lo.layers, &mut a);
        kept_counts(&hi.layers, &mut b);
        assert_eq!(a.len(), b.len());
        // Every prunable layer keeps at least as many units at the lower
        // ratio; the head stays identical.
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x >= y);
        }
        assert!(a.iter().sum::<usize>() > b.iter().sum::<usize>());
    }
}
