//! # fedmp-pruning
//!
//! Structured model pruning and the R2SP synchronisation primitives of
//! the FedMP paper (§III-B, §III-C):
//!
//! * **Planning** ([`plan_sequential`]): every layer uses the same
//!   pruning ratio; filters/neurons are ranked by L1 importance and the
//!   lowest-scoring fraction is removed. Channel removal propagates to
//!   the next layer's input channels and to the following batch-norm, and
//!   residual blocks only prune their internal convolutions (the block
//!   output width is pinned by the skip connection).
//! * **Extraction** ([`extract_sequential`]): materialises the physically
//!   smaller sub-model `x̂ₙ` that is sent to a worker.
//! * **Recovery** ([`recover_state`]): scatters a trained sub-model back
//!   into full-model coordinates (zeros elsewhere) — the recovered model
//!   of R2SP.
//! * **Sparse model** ([`sparse_state`]): the full-shape model with
//!   pruned positions zeroed; the **residual model** is
//!   `global − sparse` (computed with [`fedmp_nn::state_sub`]).
//!
//! The defining R2SP identity, tested as a property over random models,
//! ratios and architectures:
//!
//! ```text
//! recover(extract(global, plan)) + (global − sparse(global, plan)) == global
//! ```
//!
//! The crate also implements **ISS pruning** for the §VI LSTM extension
//! ([`plan_lstm`], [`extract_lstm`], [`recover_lstm_state`]), magnitude
//! (unstructured) pruning for comparison, and top-k gradient
//! sparsification with error feedback — the substrate of the FlexCom
//! baseline.

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
mod fastpath;
mod iss;
mod plan;
mod quant;
mod rebuild;
mod topk;
mod unstructured;

pub use fastpath::{forward_pruned, lstm_decoder_pruned};
pub use iss::{extract_lstm, plan_lstm, recover_lstm_state, sparse_lstm_state, LstmPlan};
pub use plan::{
    plan_sequential, plan_sequential_with, ratio_keep_count, Importance, LayerPlan, PrunePlan,
};
pub use quant::{dequantize_state, quant_error_bound, quantize_state, QuantState, QuantTensor};
pub use rebuild::{extract_sequential, recover_state, sparse_state};
pub use topk::{densify_into_state, topk_sparsify, SparseUpdate, TopKCompressor};
pub use unstructured::{apply_mask, magnitude_mask, mask_density, WeightMask};
