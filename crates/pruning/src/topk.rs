//! Top-k gradient sparsification with error feedback — the compression
//! substrate of the FlexCom baseline (Li et al., INFOCOM'21), which
//! assigns *different* compression ratios to heterogeneous workers.

use fedmp_nn::StateEntry;
use serde::{Deserialize, Serialize};

/// A sparsified model update: the `k` largest-magnitude coordinates of a
/// flattened update vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseUpdate {
    /// Flat coordinates of the transmitted values.
    pub indices: Vec<u32>,
    /// Transmitted values.
    pub values: Vec<f32>,
    /// Length of the dense vector this sparsifies.
    pub dense_len: usize,
}

impl SparseUpdate {
    /// Wire size in bytes: 4-byte index + 4-byte value per coordinate.
    pub fn wire_bytes(&self) -> u64 {
        (self.indices.len() * 8) as u64
    }

    /// Densifies back to a full vector (zeros elsewhere).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dense_len];
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            out[i as usize] = v;
        }
        out
    }
}

/// Sparsifies `dense` to its `k` largest-magnitude coordinates.
pub fn topk_sparsify(dense: &[f32], k: usize) -> SparseUpdate {
    let k = k.min(dense.len());
    let mut order: Vec<usize> = (0..dense.len()).collect();
    order.sort_by(|&a, &b| {
        dense[b].abs().partial_cmp(&dense[a].abs()).expect("finite update").then(a.cmp(&b))
    });
    let mut picks: Vec<usize> = order.into_iter().take(k).collect();
    picks.sort_unstable();
    SparseUpdate {
        indices: picks.iter().map(|&i| i as u32).collect(),
        values: picks.iter().map(|&i| dense[i]).collect(),
        dense_len: dense.len(),
    }
}

/// Per-worker top-k compressor with **error feedback**: coordinates not
/// transmitted accumulate locally and are added to the next round's
/// update, so nothing is permanently lost.
#[derive(Debug, Clone)]
pub struct TopKCompressor {
    /// Fraction of coordinates transmitted per round, in (0, 1].
    pub keep_fraction: f32,
    error: Vec<f32>,
}

impl TopKCompressor {
    /// A compressor keeping `keep_fraction` of coordinates per round.
    pub fn new(keep_fraction: f32) -> Self {
        assert!(keep_fraction > 0.0 && keep_fraction <= 1.0, "keep fraction must be in (0, 1]");
        TopKCompressor { keep_fraction, error: Vec::new() }
    }

    /// Compresses a model update expressed as state entries. The
    /// flattening order is the entry order, so both ends must use the
    /// same snapshot layout.
    pub fn compress(&mut self, update: &[StateEntry]) -> SparseUpdate {
        let dense: Vec<f32> = update.iter().flat_map(|e| e.tensor.data().iter().copied()).collect();
        if self.error.len() != dense.len() {
            self.error = vec![0.0; dense.len()];
        }
        let corrected: Vec<f32> = dense.iter().zip(self.error.iter()).map(|(d, e)| d + e).collect();
        let k = ((corrected.len() as f32 * self.keep_fraction).ceil() as usize).max(1);
        let sparse = topk_sparsify(&corrected, k);
        // Error feedback: remember what was left behind.
        let sent = sparse.to_dense();
        for ((e, &c), &s) in self.error.iter_mut().zip(corrected.iter()).zip(sent.iter()) {
            *e = c - s;
        }
        sparse
    }

    /// Accumulated (untransmitted) error magnitude — for tests and
    /// diagnostics.
    pub fn error_l1(&self) -> f32 {
        self.error.iter().map(|e| e.abs()).sum()
    }
}

/// Reassembles a dense vector into state entries shaped like `template`.
pub fn densify_into_state(dense: &[f32], template: &[StateEntry]) -> Vec<StateEntry> {
    let total: usize = template.iter().map(|e| e.tensor.numel()).sum();
    assert_eq!(dense.len(), total, "densify: length mismatch");
    let mut out = Vec::with_capacity(template.len());
    let mut off = 0usize;
    for e in template {
        let n = e.tensor.numel();
        let t = fedmp_tensor::Tensor::from_vec(dense[off..off + n].to_vec(), e.tensor.dims())
            .expect("densify: shape error");
        out.push(StateEntry { name: e.name.clone(), tensor: t, trainable: e.trainable });
        off += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::Tensor;

    fn entries(vals: &[f32]) -> Vec<StateEntry> {
        vec![StateEntry::trainable("w", Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap())]
    }

    #[test]
    fn topk_picks_largest_magnitudes() {
        let s = topk_sparsify(&[0.1, -5.0, 2.0, 0.0, 3.0], 2);
        assert_eq!(s.indices, vec![1, 4]);
        assert_eq!(s.values, vec![-5.0, 3.0]);
        assert_eq!(s.to_dense(), vec![0.0, -5.0, 0.0, 0.0, 3.0]);
        assert_eq!(s.wire_bytes(), 16);
    }

    #[test]
    fn error_feedback_conserves_mass_exactly() {
        // Error feedback's defining invariant: over any number of rounds,
        // (total transmitted) + (residual error) == (total generated),
        // coordinate by coordinate. Nothing is ever lost.
        let mut comp = TopKCompressor::new(0.25);
        let u = [1.0f32, 0.8, 0.6, 0.4];
        let update = entries(&u);
        let rounds = 16;
        let mut received = [0.0f32; 4];
        for _ in 0..rounds {
            let s = comp.compress(&update);
            for (r, v) in received.iter_mut().zip(s.to_dense().iter()) {
                *r += v;
            }
        }
        for (i, (&r, &ui)) in received.iter().zip(u.iter()).enumerate() {
            let residual = comp.error[i];
            let generated = rounds as f32 * ui;
            assert!(
                (r + residual - generated).abs() < 1e-4,
                "coord {i}: sent {r} + residual {residual} != generated {generated}"
            );
        }
        // And the dominant coordinate is transmitted most often.
        assert!(received[0] >= received[3]);
    }

    #[test]
    fn full_fraction_is_lossless() {
        let mut comp = TopKCompressor::new(1.0);
        let update = entries(&[0.5, -0.25, 0.0, 2.0]);
        let s = comp.compress(&update);
        assert_eq!(s.to_dense(), vec![0.5, -0.25, 0.0, 2.0]);
        assert_eq!(comp.error_l1(), 0.0);
    }

    #[test]
    fn densify_roundtrip() {
        let template = vec![
            StateEntry::trainable("a", Tensor::zeros(&[2, 2])),
            StateEntry::tracked("b", Tensor::zeros(&[3])),
        ];
        let dense: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let state = densify_into_state(&dense, &template);
        assert_eq!(state[0].tensor.dims(), &[2, 2]);
        assert_eq!(state[1].tensor.data(), &[4.0, 5.0, 6.0]);
        assert!(!state[1].trainable);
    }
}
