//! # fedmp-edgesim
//!
//! A deterministic simulator of the paper's heterogeneous edge testbed:
//! 30 NVIDIA Jetson TX2 workers in four computing modes (Table II),
//! placed at different distances from the parameter server (Fig. 3), so
//! both computation and communication capabilities vary across workers.
//!
//! The paper's completion-time model (Eq. 5) is
//! `Tₙ = Tₙ_comp + Tₙ_comm`; this crate evaluates it analytically from
//! per-model FLOP counts and wire bytes on a **virtual clock**:
//!
//! * computation time = training FLOPs ÷ effective device throughput,
//! * communication time = (download + upload bytes) ÷ link bandwidth,
//! * both scaled by seeded log-normal jitter to model real-world
//!   variance.
//!
//! Absolute seconds are calibrated to be *plausible* for a TX2-class
//! device, but every result reported by the benchmark harness is a ratio
//! of completion times, which is insensitive to the absolute
//! calibration. The crate also implements the §V-A fault/deadline rule
//! (deadline = 1.5 × the time at which 85 % of local models arrived) and
//! the arrival queue used by asynchronous FedMP (Algorithm 2).

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
mod cluster;
mod device;
mod drift;
mod energy;
mod faults;
mod population;
mod queue;
mod time_model;

pub use cluster::{
    heterogeneity_scenario, level_fractions, sample_cluster_device, Cluster, HeterogeneityLevel,
};
pub use device::{tx2_profile, ComputeMode, DeviceProfile, LinkQuality, SLOW_LINK_BPS};
pub use drift::DriftModel;
pub use energy::{EnergyModel, EnergyReport};
pub use faults::{deadline_for, FaultInjector};
pub use population::{class_of, Population, CLASS_COUNT};
pub use queue::{ArrivalQueue, Completion};
pub use time_model::{RoundCost, RoundTime, TimeModel};
