//! Lazy device populations for population-scale rounds.
//!
//! The paper's testbed stops at 30 devices; the ROADMAP's north star is
//! rounds over *millions* of edge clients. A [`Population`] makes that
//! tractable in simulation by never materialising the fleet: a device's
//! profile is a **pure function** of `(population seed, device id)`, so
//! a 10⁵- or 10⁸-device population costs the same handful of bytes, and
//! any client the round sampler picks can be (re-)derived on demand —
//! on any thread, in any order — without shared state.
//!
//! Per-round cohorts come from [`Population::sample_cohort`]: `k`
//! distinct device ids drawn uniformly without replacement via a
//! partial Fisher–Yates shuffle keyed by `(seed, round)`, returned in
//! ascending id order so every consumer walks the cohort in one fixed,
//! thread-count-independent order.
//!
//! Device *classes* ([`class_of`], [`CLASS_COUNT`]) discretise profiles
//! into the 4 compute modes × 3 link tiers. Population-scale engines
//! keep per-class (not per-client) adaptive state — e.g. one E-UCB
//! pruning agent per class — because a sampled client may never be seen
//! again, while its class recurs every round.

use crate::cluster::{level_fractions, sample_cluster_device, HeterogeneityLevel};
use crate::device::{ComputeMode, DeviceProfile, LinkQuality};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of distinct device classes: 4 compute modes × 3 link tiers.
pub const CLASS_COUNT: usize = 12;

/// The class index of a profile in `[0, CLASS_COUNT)`: compute mode
/// (major) × link tier (minor). Stable across runs — it is a pure
/// function of the enum variants.
pub fn class_of(device: &DeviceProfile) -> usize {
    let mode = match device.mode {
        ComputeMode::Mode0 => 0,
        ComputeMode::Mode1 => 1,
        ComputeMode::Mode2 => 2,
        ComputeMode::Mode3 => 3,
    };
    let link = match device.link {
        LinkQuality::Near => 0,
        LinkQuality::Mid => 1,
        LinkQuality::Far => 2,
    };
    mode * 3 + link
}

/// A seeded, lazily evaluated population of edge devices.
///
/// ```
/// use fedmp_edgesim::{HeterogeneityLevel, Population};
///
/// let pop = Population::new(100_000, 7, HeterogeneityLevel::High);
/// let cohort = pop.sample_cohort(0, 64);
/// assert_eq!(cohort.len(), 64);
/// // Profiles are pure functions of (seed, id): no storage, any order.
/// let d = pop.device(cohort[0]);
/// assert_eq!(d, pop.device(cohort[0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// Total number of devices (ids are `0..size`).
    pub size: u64,
    /// Seed deriving every profile and every cohort draw.
    pub seed: u64,
    /// Cluster mix the per-device draws follow (§V-E proportions).
    pub level: HeterogeneityLevel,
}

impl Population {
    /// A population of `size` devices drawn i.i.d. from the cluster mix
    /// of `level`.
    pub fn new(size: u64, seed: u64, level: HeterogeneityLevel) -> Self {
        assert!(size > 0, "population must have at least one device");
        Population { size, seed, level }
    }

    /// The profile of device `id` — a pure function of
    /// `(self.seed, id)`, identical no matter when, where or how often
    /// it is evaluated.
    pub fn device(&self, id: u64) -> DeviceProfile {
        assert!(id < self.size, "device id {id} out of range (size {})", self.size);
        let mut rng =
            StdRng::seed_from_u64(splitmix64(splitmix64(self.seed ^ 0x00D0_01CE_0000_0000) ^ id));
        let u: f64 = rng.gen_range(0.0..1.0);
        let fractions = level_fractions(self.level);
        let mut acc = 0.0;
        let mut cluster = fractions[0].0;
        for (c, frac) in fractions {
            acc += frac;
            if u < acc {
                cluster = c;
                break;
            }
        }
        sample_cluster_device(cluster, &mut rng)
    }

    /// Draws `k` distinct device ids for `round`, uniformly without
    /// replacement, keyed by `(self.seed, round)`. Returned in
    /// ascending id order — the canonical cohort order all downstream
    /// per-client processing follows.
    ///
    /// The draw is a partial Fisher–Yates shuffle over the virtual
    /// array `[0, size)` with only the touched slots stored in a
    /// `BTreeMap`, so cost is O(k log k) regardless of population size.
    pub fn sample_cohort(&self, round: usize, k: usize) -> Vec<u64> {
        assert!((k as u64) <= self.size, "cohort of {k} exceeds population of {}", self.size);
        let mut rng = StdRng::seed_from_u64(splitmix64(
            splitmix64(self.seed ^ 0x00C0_480E_7000_0000) ^ round as u64,
        ));
        let mut swapped: BTreeMap<u64, u64> = BTreeMap::new();
        let mut cohort = Vec::with_capacity(k);
        for i in 0..k as u64 {
            let j = rng.gen_range(i..self.size);
            let vi = swapped.get(&i).copied().unwrap_or(i);
            let vj = swapped.get(&j).copied().unwrap_or(j);
            cohort.push(vj);
            swapped.insert(j, vi);
        }
        cohort.sort_unstable();
        cohort
    }
}

/// SplitMix64 — the same bit-mixing finaliser the `fl` engines use to
/// derive per-(seed, round, worker) streams; duplicated here because
/// `edgesim` sits below `fl` in the crate graph.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_is_pure_in_seed_and_id() {
        let p = Population::new(1_000, 3, HeterogeneityLevel::Medium);
        for id in [0u64, 1, 500, 999] {
            assert_eq!(p.device(id), p.device(id));
        }
        let q = Population::new(1_000, 4, HeterogeneityLevel::Medium);
        let differs = (0..100u64).any(|id| p.device(id) != q.device(id));
        assert!(differs, "different seeds should produce different fleets");
    }

    #[test]
    fn cohorts_are_distinct_sorted_and_reproducible() {
        let p = Population::new(100_000, 9, HeterogeneityLevel::High);
        for round in 0..5 {
            let c = p.sample_cohort(round, 256);
            assert_eq!(c, p.sample_cohort(round, 256), "round {round} not reproducible");
            assert!(c.windows(2).all(|w| w[0] < w[1]), "round {round} not sorted-distinct");
            assert!(c.iter().all(|&id| id < p.size));
        }
        assert_ne!(p.sample_cohort(0, 256), p.sample_cohort(1, 256));
    }

    #[test]
    fn full_population_cohort_is_everyone() {
        let p = Population::new(64, 1, HeterogeneityLevel::Low);
        let c = p.sample_cohort(0, 64);
        assert_eq!(c, (0..64u64).collect::<Vec<_>>());
    }

    #[test]
    fn class_indexing_is_a_bijection_over_the_grid() {
        let mut seen = [false; CLASS_COUNT];
        for mode in ComputeMode::all() {
            for link in [LinkQuality::Near, LinkQuality::Mid, LinkQuality::Far] {
                let idx = class_of(&DeviceProfile { mode, link });
                assert!(idx < CLASS_COUNT);
                assert!(!seen[idx], "class index {idx} repeated");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn population_mix_tracks_level_fractions() {
        // High level: cluster C (modes 2-3, far links) is 40% of draws.
        let p = Population::new(20_000, 11, HeterogeneityLevel::High);
        let far = (0..p.size).filter(|&id| p.device(id).link == LinkQuality::Far).count();
        let frac = far as f64 / p.size as f64;
        assert!((0.35..0.45).contains(&frac), "far-link fraction {frac} off the 0.4 mix");
        // Low level: cluster A only — no far links at all.
        let p = Population::new(5_000, 11, HeterogeneityLevel::Low);
        assert!((0..p.size).all(|id| p.device(id).link != LinkQuality::Far));
    }
}
