//! Worker-failure injection and the paper's deadline rule (§V-A).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The §V-A deadline rule: record the time `d` at which `frac` (the
/// paper uses 85 %) of the local models have been received, then set the
/// round deadline to `factor · d` (the paper uses 1.5).
///
/// Returns `None` when `times` is empty.
pub fn deadline_for(times: &[f64], frac: f64, factor: f64) -> Option<f64> {
    if times.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&frac), "frac must be a fraction");
    let mut sorted = times.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let k = ((sorted.len() as f64 * frac).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[k - 1] * factor)
}

/// Bernoulli worker-failure injection with a fixed recovery delay:
/// a failed worker misses its failure round plus `recover_rounds`
/// further rounds, then rejoins (the paper's PS "periodically asks
/// whether these workers have recovered").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Per-round failure probability of a healthy worker.
    pub fail_prob: f64,
    /// Rounds a failed worker stays offline.
    pub recover_rounds: u32,
    /// When set, each failure's downtime is drawn from an exponential
    /// distribution with this mean instead of the fixed
    /// `recover_rounds`. The draw is clamped to ≥ 1 round: with a mean
    /// of 0 every draw would truncate to 0, and a worker failing with 0
    /// remaining down-rounds re-rolls the failure Bernoulli on its next
    /// step — at `fail_prob` near 1 that leaves it offline forever.
    #[serde(default)]
    mean_down: Option<f64>,
    /// Remaining offline rounds per worker (0 = healthy).
    down: Vec<u32>,
    /// Whether each worker was offline in the previous round — the
    /// memory that turns a countdown reaching zero into a single
    /// `FaultRecovered` trace event.
    was_down: Vec<bool>,
}

impl FaultInjector {
    /// A fault injector for `workers` devices.
    pub fn new(workers: usize, fail_prob: f64, recover_rounds: u32) -> Self {
        assert!((0.0..=1.0).contains(&fail_prob), "fail_prob must be a probability");
        FaultInjector {
            fail_prob,
            recover_rounds,
            mean_down: None,
            down: vec![0; workers],
            was_down: vec![false; workers],
        }
    }

    /// A fault injector whose downtimes are exponentially distributed
    /// with mean `mean_down_rounds` (clamped per draw to ≥ 1 round).
    pub fn with_mean_downtime(workers: usize, fail_prob: f64, mean_down_rounds: f64) -> Self {
        let mut inj = Self::new(workers, fail_prob, 0);
        inj.mean_down = Some(mean_down_rounds.max(0.0));
        inj
    }

    /// Draws one downtime: exponential with mean `mean`, truncated to
    /// whole rounds and clamped to ≥ 1 so a failed worker always
    /// eventually rejoins (see `mean_down`).
    fn draw_downtime(rng: &mut StdRng, mean: f64) -> u32 {
        let u: f64 = rng.gen(); // in [0, 1)
        ((-(1.0 - u).ln() * mean).floor() as u32).max(1)
    }

    /// Advances one round. Returns the indices of workers that are
    /// **online** this round. Emits `FaultInjected` / `FaultRecovered`
    /// trace events (in worker-index order) when tracing is enabled.
    pub fn step(&mut self, rng: &mut StdRng) -> Vec<usize> {
        let recover_rounds = self.recover_rounds;
        let mean_down = self.mean_down;
        let mut online = Vec::with_capacity(self.down.len());
        for (i, d) in self.down.iter_mut().enumerate() {
            if *d > 0 {
                *d -= 1;
                self.was_down[i] = true;
                continue;
            }
            if self.was_down[i] {
                fedmp_obs::emit(|| fedmp_obs::TraceEvent::FaultRecovered { worker: i });
            }
            if self.fail_prob > 0.0 && rng.gen::<f64>() < self.fail_prob {
                let down_rounds = match mean_down {
                    Some(m) => Self::draw_downtime(rng, m),
                    None => recover_rounds,
                };
                *d = down_rounds;
                fedmp_obs::emit(|| fedmp_obs::TraceEvent::FaultInjected { worker: i, down_rounds });
                self.was_down[i] = true;
                continue;
            }
            self.was_down[i] = false;
            online.push(i);
        }
        online
    }

    /// Whether worker `i` is currently offline.
    pub fn is_down(&self, i: usize) -> bool {
        self.down[i] > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deadline_matches_paper_rule() {
        // 10 times; 85% → 9th order statistic; ×1.5.
        let times: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let d = deadline_for(&times, 0.85, 1.5).unwrap();
        assert!((d - 13.5).abs() < 1e-9, "deadline {d}");
    }

    #[test]
    fn deadline_empty_is_none() {
        assert!(deadline_for(&[], 0.85, 1.5).is_none());
    }

    #[test]
    fn deadline_single_worker() {
        assert_eq!(deadline_for(&[4.0], 0.85, 1.5), Some(6.0));
    }

    #[test]
    fn no_faults_means_everyone_online() {
        let mut inj = FaultInjector::new(5, 0.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(inj.step(&mut rng), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn failed_workers_recover_after_the_delay() {
        let mut inj = FaultInjector::new(200, 0.5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let online1 = inj.step(&mut rng);
        assert!(online1.len() < 150, "expected many failures, got {}", online1.len());
        let failed: Vec<usize> = (0..200).filter(|&i| inj.is_down(i)).collect();
        assert!(!failed.is_empty());
        // After recover_rounds steps with fail_prob forced to 0, all back.
        inj.fail_prob = 0.0;
        inj.step(&mut rng);
        inj.step(&mut rng);
        let online = inj.step(&mut rng);
        assert_eq!(online.len(), 200);
    }

    #[test]
    fn zero_mean_downtime_cannot_strand_a_worker() {
        // Regression: with mean_down_rounds = 0 the exponential draw
        // truncates to 0 every time, so an unclamped injector would
        // re-roll the failure Bernoulli forever at fail_prob = 1 and
        // never bring the worker back. The ≥1-round clamp guarantees a
        // recovery window once failures stop.
        let mut inj = FaultInjector::with_mean_downtime(1, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(inj.step(&mut rng).is_empty()); // fails; clamped to 1 down round
        assert!(inj.is_down(0), "clamp must leave at least one down round");
        inj.fail_prob = 0.0;
        assert!(inj.step(&mut rng).is_empty()); // 1 → 0
        assert_eq!(inj.step(&mut rng), vec![0]); // recovered
    }

    #[test]
    fn mean_downtime_draws_average_out_near_the_mean() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 4000;
        let mut total = 0.0;
        for _ in 0..n {
            let d = FaultInjector::draw_downtime(&mut rng, 3.0);
            assert!(d >= 1);
            total += d as f64;
        }
        // floor() biases the mean down by up to ~0.5; the clamp pulls
        // short draws up. Just require the right ballpark.
        let mean = total / n as f64;
        assert!((2.0..4.5).contains(&mean), "mean downtime {mean} far from 3");
    }

    #[test]
    fn downtime_counts_down() {
        let mut inj = FaultInjector::new(1, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(inj.step(&mut rng).is_empty()); // fails immediately (misses this round)
        assert!(inj.is_down(0));
        inj.fail_prob = 0.0;
        assert!(inj.step(&mut rng).is_empty()); // 3 → 2
        assert!(inj.step(&mut rng).is_empty()); // 2 → 1
        assert!(inj.step(&mut rng).is_empty()); // 1 → 0
        assert_eq!(inj.step(&mut rng), vec![0]); // recovered
    }
}
