//! Worker-failure injection and the paper's deadline rule (§V-A).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The §V-A deadline rule: record the time `d` at which `frac` (the
/// paper uses 85 %) of the local models have been received, then set the
/// round deadline to `factor · d` (the paper uses 1.5).
///
/// Returns `None` when `times` is empty.
pub fn deadline_for(times: &[f64], frac: f64, factor: f64) -> Option<f64> {
    if times.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&frac), "frac must be a fraction");
    let mut sorted = times.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let k = ((sorted.len() as f64 * frac).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[k - 1] * factor)
}

/// Bernoulli worker-failure injection with a fixed recovery delay:
/// a failed worker misses its failure round plus `recover_rounds`
/// further rounds, then rejoins (the paper's PS "periodically asks
/// whether these workers have recovered").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Per-round failure probability of a healthy worker.
    pub fail_prob: f64,
    /// Rounds a failed worker stays offline.
    pub recover_rounds: u32,
    /// Remaining offline rounds per worker (0 = healthy).
    down: Vec<u32>,
    /// Whether each worker was offline in the previous round — the
    /// memory that turns a countdown reaching zero into a single
    /// `FaultRecovered` trace event.
    was_down: Vec<bool>,
}

impl FaultInjector {
    /// A fault injector for `workers` devices.
    pub fn new(workers: usize, fail_prob: f64, recover_rounds: u32) -> Self {
        assert!((0.0..=1.0).contains(&fail_prob), "fail_prob must be a probability");
        FaultInjector {
            fail_prob,
            recover_rounds,
            down: vec![0; workers],
            was_down: vec![false; workers],
        }
    }

    /// Advances one round. Returns the indices of workers that are
    /// **online** this round. Emits `FaultInjected` / `FaultRecovered`
    /// trace events (in worker-index order) when tracing is enabled.
    pub fn step(&mut self, rng: &mut StdRng) -> Vec<usize> {
        let recover_rounds = self.recover_rounds;
        let mut online = Vec::with_capacity(self.down.len());
        for (i, d) in self.down.iter_mut().enumerate() {
            if *d > 0 {
                *d -= 1;
                self.was_down[i] = true;
                continue;
            }
            if self.was_down[i] {
                fedmp_obs::emit(|| fedmp_obs::TraceEvent::FaultRecovered { worker: i });
            }
            if self.fail_prob > 0.0 && rng.gen::<f64>() < self.fail_prob {
                *d = recover_rounds;
                fedmp_obs::emit(|| fedmp_obs::TraceEvent::FaultInjected {
                    worker: i,
                    down_rounds: recover_rounds,
                });
                self.was_down[i] = true;
                continue;
            }
            self.was_down[i] = false;
            online.push(i);
        }
        online
    }

    /// Whether worker `i` is currently offline.
    pub fn is_down(&self, i: usize) -> bool {
        self.down[i] > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deadline_matches_paper_rule() {
        // 10 times; 85% → 9th order statistic; ×1.5.
        let times: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let d = deadline_for(&times, 0.85, 1.5).unwrap();
        assert!((d - 13.5).abs() < 1e-9, "deadline {d}");
    }

    #[test]
    fn deadline_empty_is_none() {
        assert!(deadline_for(&[], 0.85, 1.5).is_none());
    }

    #[test]
    fn deadline_single_worker() {
        assert_eq!(deadline_for(&[4.0], 0.85, 1.5), Some(6.0));
    }

    #[test]
    fn no_faults_means_everyone_online() {
        let mut inj = FaultInjector::new(5, 0.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(inj.step(&mut rng), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn failed_workers_recover_after_the_delay() {
        let mut inj = FaultInjector::new(200, 0.5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let online1 = inj.step(&mut rng);
        assert!(online1.len() < 150, "expected many failures, got {}", online1.len());
        let failed: Vec<usize> = (0..200).filter(|&i| inj.is_down(i)).collect();
        assert!(!failed.is_empty());
        // After recover_rounds steps with fail_prob forced to 0, all back.
        inj.fail_prob = 0.0;
        inj.step(&mut rng);
        inj.step(&mut rng);
        let online = inj.step(&mut rng);
        assert_eq!(online.len(), 200);
    }

    #[test]
    fn downtime_counts_down() {
        let mut inj = FaultInjector::new(1, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(inj.step(&mut rng).is_empty()); // fails immediately (misses this round)
        assert!(inj.is_down(0));
        inj.fail_prob = 0.0;
        assert!(inj.step(&mut rng).is_empty()); // 3 → 2
        assert!(inj.step(&mut rng).is_empty()); // 2 → 1
        assert!(inj.step(&mut rng).is_empty()); // 1 → 0
        assert_eq!(inj.step(&mut rng), vec![0]); // recovered
    }
}
