//! Device energy model.
//!
//! The FlexCom baseline ([13], "energy efficient federated learning")
//! motivates compression by worker energy budgets; this module lets the
//! harness report per-run energy alongside completion time. Constants
//! are calibrated to a Jetson-TX2-class board: ~10 GFLOP/s per watt of
//! effective training throughput, a Wi-Fi-class radio, and a few watts
//! of idle draw while a worker waits at the synchronisation barrier.

use serde::{Deserialize, Serialize};

/// Power/efficiency constants of a simulated worker.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Compute energy per FLOP (J/FLOP) — inverse of GFLOP/s-per-watt.
    pub joules_per_flop: f64,
    /// Radio power while transmitting or receiving (W).
    pub radio_power_watts: f64,
    /// Idle draw while waiting at the barrier (W).
    pub idle_power_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            joules_per_flop: 1.0e-10, // 10 GFLOP/s/W effective
            radio_power_watts: 1.3,
            idle_power_watts: 2.0,
        }
    }
}

/// Energy totals of one run (joules).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Training compute energy.
    pub compute_j: f64,
    /// Radio energy (download + upload).
    pub comm_j: f64,
    /// Barrier idle energy (fast workers waiting for stragglers).
    pub idle_j: f64,
}

impl EnergyReport {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.comm_j + self.idle_j
    }
}

impl EnergyModel {
    /// Estimates fleet energy from per-round aggregates: each round
    /// contributes `workers` × (mean compute seconds × device power +
    /// mean comm seconds × radio power), plus idle energy for the time
    /// each worker spends waiting below the round barrier.
    ///
    /// `rounds` yields `(round_time, mean_comp_secs, mean_comm_secs)`;
    /// `mean_device_flops` is the fleet's average effective throughput
    /// (used to convert compute seconds back to FLOPs).
    pub fn estimate_run(
        &self,
        rounds: impl IntoIterator<Item = (f64, f64, f64)>,
        workers: usize,
        mean_device_flops: f64,
    ) -> EnergyReport {
        let mut report = EnergyReport::default();
        let n = workers as f64;
        for (round_time, mean_comp, mean_comm) in rounds {
            let flops = mean_comp * mean_device_flops;
            report.compute_j += n * flops * self.joules_per_flop;
            report.comm_j += n * mean_comm * self.radio_power_watts;
            let busy = mean_comp + mean_comm;
            let idle = (round_time - busy).max(0.0);
            report.idle_j += n * idle * self.idle_power_watts;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_round() {
        let m =
            EnergyModel { joules_per_flop: 1.0e-9, radio_power_watts: 2.0, idle_power_watts: 1.0 };
        // One round: 10 s barrier, 4 s compute at 1 GFLOP/s, 2 s comm.
        let report = m.estimate_run([(10.0, 4.0, 2.0)], 2, 1.0e9);
        // compute: 2 workers × 4e9 FLOPs × 1e-9 J = 8 J
        assert!((report.compute_j - 8.0).abs() < 1e-9);
        // comm: 2 × 2 s × 2 W = 8 J
        assert!((report.comm_j - 8.0).abs() < 1e-9);
        // idle: 2 × (10 − 6) s × 1 W = 8 J
        assert!((report.idle_j - 8.0).abs() < 1e-9);
        assert!((report.total_j() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn less_work_is_less_energy() {
        let m = EnergyModel::default();
        let heavy = m.estimate_run([(10.0, 8.0, 2.0)], 4, 50.0e9);
        let light = m.estimate_run([(5.0, 3.0, 1.0)], 4, 50.0e9);
        assert!(light.total_j() < heavy.total_j());
    }

    #[test]
    fn idle_never_negative() {
        let m = EnergyModel::default();
        // busy > round_time (deadline-truncated rounds) must clamp.
        let r = m.estimate_run([(1.0, 3.0, 2.0)], 2, 1.0e9);
        assert!(r.idle_j == 0.0);
    }
}
