//! Device profiles derived from the paper's Table II computing modes.

use serde::{Deserialize, Serialize};

/// The four Jetson TX2 computing modes of Table II. Capability decreases
/// from mode 0 to mode 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeMode {
    /// Denver2 2×2.0 GHz + A57 4×2.0 GHz + GPU 1.30 GHz.
    Mode0,
    /// A57 4×2.0 GHz + GPU 1.12 GHz (Denver cluster off).
    Mode1,
    /// Denver2 2×1.4 GHz + A57 4×1.4 GHz + GPU 1.12 GHz.
    Mode2,
    /// A57 4×1.2 GHz + GPU 0.85 GHz.
    Mode3,
}

impl ComputeMode {
    /// Effective sustained training throughput in FLOP/s.
    ///
    /// Calibration: a TX2 GPU peaks around 1.3 TFLOP/s (FP16) at mode 0,
    /// but sustained f32 *training* throughput — framework overhead,
    /// small batches, memory-bound layers — is well under 1 % of peak
    /// (the paper's AlexNet rounds take minutes on a TX2). The mode
    /// ratios follow the GPU clocks of Table II (1.30 / 1.12 / 1.12 /
    /// 0.85 GHz) with CPU-cluster differences nudging modes 1 and 2
    /// apart.
    pub fn effective_flops(self) -> f64 {
        match self {
            ComputeMode::Mode0 => 6.5e9,
            ComputeMode::Mode1 => 5.2e9,
            ComputeMode::Mode2 => 4.5e9,
            ComputeMode::Mode3 => 2.8e9,
        }
    }

    /// All modes, strongest first.
    pub fn all() -> [ComputeMode; 4] {
        [ComputeMode::Mode0, ComputeMode::Mode1, ComputeMode::Mode2, ComputeMode::Mode3]
    }
}

/// Wireless-link quality tiers, standing in for the paper's physical
/// placement of devices at different distances from the PS (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkQuality {
    /// Close to the access point.
    Near,
    /// Mid-range placement.
    Mid,
    /// Far placement / weak signal.
    Far,
}

impl LinkQuality {
    /// Sustained link bandwidth in bits per second. WAN-constrained FL
    /// links are an order of magnitude slower than LAN (Hsieh et al.,
    /// NSDI'17, cited by the paper as the 15× gap).
    pub fn bandwidth_bps(self) -> f64 {
        match self {
            LinkQuality::Near => 80.0e6,
            LinkQuality::Mid => 40.0e6,
            LinkQuality::Far => 12.0e6,
        }
    }
}

/// Default bandwidth threshold (bit/s) below which a link counts as
/// *slow* for adaptive compression policies: between the Mid tier
/// (40 Mbit/s) and the Far tier (12 Mbit/s), so only bandwidth-starved
/// placements pay the lossy-codec accuracy tax.
pub const SLOW_LINK_BPS: f64 = 20.0e6;

/// A simulated edge worker: computing mode plus link quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Computing mode (Table II).
    pub mode: ComputeMode,
    /// Link quality tier (placement).
    pub link: LinkQuality,
}

impl DeviceProfile {
    /// Effective training throughput, FLOP/s.
    pub fn flops(&self) -> f64 {
        self.mode.effective_flops()
    }

    /// Link bandwidth, bit/s.
    pub fn bandwidth(&self) -> f64 {
        self.link.bandwidth_bps()
    }

    /// Whether this device's link is bandwidth-constrained: at or below
    /// `threshold_bps` sustained bits per second (see [`SLOW_LINK_BPS`]).
    pub fn is_slow_link(&self, threshold_bps: f64) -> bool {
        self.bandwidth() <= threshold_bps
    }
}

/// Convenience constructor matching the paper's tables.
pub fn tx2_profile(mode: ComputeMode, link: LinkQuality) -> DeviceProfile {
    DeviceProfile { mode, link }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_are_ordered_by_capability() {
        let f: Vec<f64> = ComputeMode::all().iter().map(|m| m.effective_flops()).collect();
        assert!(f.windows(2).all(|w| w[0] > w[1]), "modes not monotonically decreasing: {f:?}");
    }

    #[test]
    fn mode_ratio_tracks_table_ii_clocks() {
        // Mode0/Mode3 GPU clocks are 1.30/0.85 ≈ 1.53; with the CPU
        // cluster fully on, the overall gap should be at least that.
        let ratio = ComputeMode::Mode0.effective_flops() / ComputeMode::Mode3.effective_flops();
        assert!(ratio > 1.5 && ratio < 4.0, "mode0/mode3 = {ratio}");
    }

    #[test]
    fn link_tiers_are_ordered() {
        assert!(LinkQuality::Near.bandwidth_bps() > LinkQuality::Mid.bandwidth_bps());
        assert!(LinkQuality::Mid.bandwidth_bps() > LinkQuality::Far.bandwidth_bps());
    }

    #[test]
    fn profile_accessors() {
        let p = tx2_profile(ComputeMode::Mode1, LinkQuality::Far);
        assert_eq!(p.flops(), ComputeMode::Mode1.effective_flops());
        assert_eq!(p.bandwidth(), LinkQuality::Far.bandwidth_bps());
    }

    #[test]
    fn slow_link_threshold_splits_far_from_mid() {
        let far = tx2_profile(ComputeMode::Mode3, LinkQuality::Far);
        let mid = tx2_profile(ComputeMode::Mode2, LinkQuality::Mid);
        let near = tx2_profile(ComputeMode::Mode0, LinkQuality::Near);
        assert!(far.is_slow_link(SLOW_LINK_BPS));
        assert!(!mid.is_slow_link(SLOW_LINK_BPS));
        assert!(!near.is_slow_link(SLOW_LINK_BPS));
    }
}
