//! Arrival-ordered completion queue for asynchronous FedMP
//! (paper Algorithm 2): the PS aggregates the first `m` arrivals of each
//! round while the rest keep training.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A worker's pending completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Virtual-clock time at which the worker's upload arrives.
    pub at: f64,
    /// Worker index.
    pub worker: usize,
}

// Min-heap ordering by arrival time (BinaryHeap is a max-heap, so
// reverse). Ties break by worker index for determinism.
impl Eq for Completion {}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .partial_cmp(&self.at)
            .expect("finite completion times")
            .then_with(|| other.worker.cmp(&self.worker))
    }
}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The PS-side arrival queue of asynchronous FL.
#[derive(Debug, Clone, Default)]
pub struct ArrivalQueue {
    heap: BinaryHeap<Completion>,
}

impl ArrivalQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ArrivalQueue { heap: BinaryHeap::new() }
    }

    /// Schedules a worker's completion.
    pub fn push(&mut self, at: f64, worker: usize) {
        assert!(at.is_finite() && at >= 0.0, "completion time must be non-negative");
        self.heap.push(Completion { at, worker });
    }

    /// Pops the earliest completion.
    pub fn pop(&mut self) -> Option<Completion> {
        self.heap.pop()
    }

    /// Pops the earliest `m` completions (fewer if the queue drains).
    pub fn pop_first(&mut self, m: usize) -> Vec<Completion> {
        let mut out = Vec::with_capacity(m);
        while out.len() < m {
            match self.heap.pop() {
                Some(c) => out.push(c),
                None => break,
            }
        }
        out
    }

    /// Number of pending completions.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_arrival_order() {
        let mut q = ArrivalQueue::new();
        q.push(5.0, 0);
        q.push(1.0, 1);
        q.push(3.0, 2);
        assert_eq!(q.pop().unwrap().worker, 1);
        assert_eq!(q.pop().unwrap().worker, 2);
        assert_eq!(q.pop().unwrap().worker, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_first_m() {
        let mut q = ArrivalQueue::new();
        for (t, w) in [(4.0, 0), (2.0, 1), (6.0, 2), (1.0, 3)] {
            q.push(t, w);
        }
        let first = q.pop_first(2);
        assert_eq!(first.iter().map(|c| c.worker).collect::<Vec<_>>(), vec![3, 1]);
        assert_eq!(q.len(), 2);
        let rest = q.pop_first(10);
        assert_eq!(rest.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let mut q = ArrivalQueue::new();
        q.push(1.0, 5);
        q.push(1.0, 2);
        assert_eq!(q.pop().unwrap().worker, 2);
    }
}
