//! Dynamic capability drift.
//!
//! The paper's §I motivates adaptivity with capabilities that "vary
//! significantly and even **dynamically**" — thermal throttling,
//! background load, radio fading. [`DriftModel`] produces a slowly
//! varying multiplier per worker per round (a mean-reverting random
//! walk), which the caller applies to a device's effective throughput
//! and bandwidth. The E-UCB discount factor λ exists precisely to track
//! this drift (tested in `fedmp-bandit`'s non-stationary test).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mean-reverting multiplicative drift (Ornstein–Uhlenbeck in log
/// space): `log m ← (1 − κ)·log m + σ·ε`, clamped to `[floor, ceil]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftModel {
    /// Reversion strength κ ∈ (0, 1]: higher snaps back to 1 faster.
    pub reversion: f64,
    /// Per-round innovation σ.
    pub sigma: f64,
    /// Lower clamp on the multiplier.
    pub floor: f64,
    /// Upper clamp on the multiplier.
    pub ceil: f64,
    /// Current log-multiplier per worker.
    state: Vec<f64>,
}

impl DriftModel {
    /// A drift model for `workers` devices, starting at multiplier 1.
    pub fn new(workers: usize, reversion: f64, sigma: f64) -> Self {
        assert!((0.0..=1.0).contains(&reversion), "reversion must be in (0, 1]");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        DriftModel { reversion, sigma, floor: 0.3, ceil: 2.0, state: vec![0.0; workers] }
    }

    /// A disabled drift model (multiplier 1 forever).
    pub fn none(workers: usize) -> Self {
        DriftModel::new(workers, 1.0, 0.0)
    }

    /// Advances one round; returns the capability multiplier per worker.
    pub fn step(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.state
            .iter_mut()
            .map(|s| {
                // Box–Muller standard normal.
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                *s = (1.0 - self.reversion) * *s + self.sigma * z;
                let m = s.exp();
                m.clamp(self.floor, self.ceil)
            })
            .collect()
    }

    /// Number of tracked workers.
    pub fn workers(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn disabled_drift_is_identity() {
        let mut d = DriftModel::none(3);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert!(d.step(&mut rng).iter().all(|&m| (m - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    fn drift_stays_in_bounds_and_varies() {
        let mut d = DriftModel::new(4, 0.1, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..500 {
            for &m in &d.step(&mut rng) {
                assert!((0.3..=2.0).contains(&m), "multiplier {m} out of bounds");
                if m < 0.9 {
                    seen_low = true;
                }
                if m > 1.1 {
                    seen_high = true;
                }
            }
        }
        assert!(seen_low && seen_high, "drift never moved");
    }

    #[test]
    fn mean_reversion_pulls_back_to_one() {
        let mut d = DriftModel::new(1, 0.5, 0.0);
        d.state[0] = 1.0; // multiplier e ≈ 2.72 before clamping
        let mut rng = StdRng::seed_from_u64(2);
        let mut last = f64::INFINITY;
        for _ in 0..10 {
            let m = d.step(&mut rng)[0];
            assert!(m <= last + 1e-12, "not reverting: {m} after {last}");
            last = m;
        }
        assert!((last - 1.0).abs() < 0.1, "did not revert near 1: {last}");
    }

    #[test]
    fn workers_tracked() {
        assert_eq!(DriftModel::none(7).workers(), 7);
    }
}
