//! The paper's Eq. 5 completion-time model on a virtual clock.

use crate::device::DeviceProfile;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a worker must pay for one round: training compute plus model
/// transfer in both directions. Produced by the FL engine from the
/// *actual* sub-model it trains (so pruning automatically shrinks both
/// terms).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RoundCost {
    /// Total training FLOPs for the round (per-sample train FLOPs ×
    /// batch size × local iterations).
    pub train_flops: f64,
    /// Bytes received from the PS (the pruned sub-model).
    pub download_bytes: f64,
    /// Bytes sent to the PS (the trained sub-model, or a sparse update).
    pub upload_bytes: f64,
}

/// One worker's simulated round time, split as the paper reports it
/// (Fig. 5 separates computation and communication).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundTime {
    /// Local computation seconds.
    pub comp: f64,
    /// Transfer seconds (down + up).
    pub comm: f64,
}

impl RoundTime {
    /// Total completion time `Tₙ = Tₙ_comp + Tₙ_comm` (Eq. 5).
    pub fn total(&self) -> f64 {
        self.comp + self.comm
    }
}

/// Evaluates Eq. 5 with multiplicative log-normal jitter.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeModel {
    /// Log-normal σ of the per-round jitter (0 disables jitter). Models
    /// OS scheduling, thermal throttling and radio variance.
    pub jitter_sigma: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel { jitter_sigma: 0.08 }
    }
}

impl TimeModel {
    /// A jitter-free model (unit tests, analytic sweeps).
    pub fn deterministic() -> Self {
        TimeModel { jitter_sigma: 0.0 }
    }

    /// Simulates one round for one worker.
    pub fn round_time(
        &self,
        device: &DeviceProfile,
        cost: &RoundCost,
        rng: &mut StdRng,
    ) -> RoundTime {
        assert!(cost.train_flops >= 0.0 && cost.download_bytes >= 0.0 && cost.upload_bytes >= 0.0);
        let comp = cost.train_flops / device.flops();
        let comm = (cost.download_bytes + cost.upload_bytes) * 8.0 / device.bandwidth();
        RoundTime { comp: comp * self.jitter(rng), comm: comm * self.jitter(rng) }
    }

    fn jitter(&self, rng: &mut StdRng) -> f64 {
        if self.jitter_sigma == 0.0 {
            return 1.0;
        }
        // Box–Muller log-normal with mean ≈ 1.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.jitter_sigma * z - 0.5 * self.jitter_sigma * self.jitter_sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{tx2_profile, ComputeMode, LinkQuality};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn cost(flops: f64, bytes: f64) -> RoundCost {
        RoundCost { train_flops: flops, download_bytes: bytes, upload_bytes: bytes }
    }

    #[test]
    fn deterministic_times_match_hand_computation() {
        let model = TimeModel::deterministic();
        let dev = tx2_profile(ComputeMode::Mode0, LinkQuality::Near);
        let t = model.round_time(&dev, &cost(6.5e9, 10.0e6), &mut rng());
        assert!((t.comp - 1.0).abs() < 1e-9, "comp {}", t.comp);
        // 20 MB total · 8 bits / 80 Mbps = 2 s
        assert!((t.comm - 2.0).abs() < 1e-9, "comm {}", t.comm);
        assert!((t.total() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn weaker_devices_take_longer() {
        let model = TimeModel::deterministic();
        let strong = tx2_profile(ComputeMode::Mode0, LinkQuality::Near);
        let weak = tx2_profile(ComputeMode::Mode3, LinkQuality::Far);
        let c = cost(1.0e12, 20.0e6);
        let mut r = rng();
        assert!(
            model.round_time(&weak, &c, &mut r).total()
                > model.round_time(&strong, &c, &mut r).total()
        );
    }

    #[test]
    fn cost_scales_linearly() {
        let model = TimeModel::deterministic();
        let dev = tx2_profile(ComputeMode::Mode1, LinkQuality::Mid);
        let mut r = rng();
        let t1 = model.round_time(&dev, &cost(1.0e11, 5.0e6), &mut r);
        let t2 = model.round_time(&dev, &cost(2.0e11, 10.0e6), &mut r);
        assert!((t2.comp / t1.comp - 2.0).abs() < 1e-9);
        assert!((t2.comm / t1.comm - 2.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_has_mean_near_one_and_is_positive() {
        let model = TimeModel { jitter_sigma: 0.2 };
        let dev = tx2_profile(ComputeMode::Mode0, LinkQuality::Near);
        let mut r = rng();
        let c = cost(6.5e9, 0.0);
        let times: Vec<f64> = (0..4000).map(|_| model.round_time(&dev, &c, &mut r).comp).collect();
        assert!(times.iter().all(|&t| t > 0.0));
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "jitter mean {mean}");
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let model = TimeModel::default();
        let dev = tx2_profile(ComputeMode::Mode2, LinkQuality::Mid);
        let c = cost(1.0e11, 1.0e6);
        let a = model.round_time(&dev, &c, &mut StdRng::seed_from_u64(1));
        let b = model.round_time(&dev, &c, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
