//! Worker clusters (paper Fig. 3) and the §V-E heterogeneity scenarios.

use crate::device::{ComputeMode, DeviceProfile, LinkQuality};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The three clusters of Fig. 3, partitioning devices by computing mode
/// (X-axis) and location (Y-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cluster {
    /// Strong devices close to the PS: modes 0–1, near/mid links.
    A,
    /// Mid devices: modes 1–2, mid links.
    B,
    /// Weak, far devices: modes 2–3, far links.
    C,
}

/// Samples a device uniformly from a cluster's mode/link ranges.
pub fn sample_cluster_device(cluster: Cluster, rng: &mut StdRng) -> DeviceProfile {
    let (modes, links): (&[ComputeMode], &[LinkQuality]) = match cluster {
        Cluster::A => {
            (&[ComputeMode::Mode0, ComputeMode::Mode1], &[LinkQuality::Near, LinkQuality::Mid])
        }
        Cluster::B => (&[ComputeMode::Mode1, ComputeMode::Mode2], &[LinkQuality::Mid]),
        Cluster::C => (&[ComputeMode::Mode2, ComputeMode::Mode3], &[LinkQuality::Far]),
    };
    DeviceProfile {
        mode: modes[rng.gen_range(0..modes.len())],
        link: links[rng.gen_range(0..links.len())],
    }
}

/// The heterogeneity levels of §V-E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeterogeneityLevel {
    /// 10 workers from cluster A.
    Low,
    /// 5 from A + 5 from B (the paper's default setting).
    Medium,
    /// 3 from A + 3 from B + 4 from C.
    High,
}

/// The cluster mix of a heterogeneity level as (cluster, fraction)
/// pairs summing to 1. Shared by the finite fleets of
/// [`heterogeneity_scenario`] and the lazy device populations in
/// [`crate::Population`], so both draw from the same distribution.
pub fn level_fractions(level: HeterogeneityLevel) -> [(Cluster, f64); 3] {
    match level {
        HeterogeneityLevel::Low => [(Cluster::A, 1.0), (Cluster::B, 0.0), (Cluster::C, 0.0)],
        HeterogeneityLevel::Medium => [(Cluster::A, 0.5), (Cluster::B, 0.5), (Cluster::C, 0.0)],
        HeterogeneityLevel::High => [(Cluster::A, 0.3), (Cluster::B, 0.3), (Cluster::C, 0.4)],
    }
}

/// Builds the worker fleet for a heterogeneity level, scaled to
/// `workers` devices while preserving the paper's cluster proportions.
pub fn heterogeneity_scenario(
    level: HeterogeneityLevel,
    workers: usize,
    rng: &mut StdRng,
) -> Vec<DeviceProfile> {
    assert!(workers > 0, "need at least one worker");
    let fractions = level_fractions(level);
    let mut fleet = Vec::with_capacity(workers);
    for (cluster, frac) in fractions {
        let count = (workers as f64 * frac).round() as usize;
        for _ in 0..count {
            fleet.push(sample_cluster_device(cluster, rng));
        }
    }
    // Rounding may drop or add a worker; fix up from cluster A.
    while fleet.len() < workers {
        fleet.push(sample_cluster_device(Cluster::A, rng));
    }
    fleet.truncate(workers);
    fleet
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn cluster_a_is_strong_and_near() {
        let mut r = rng();
        for _ in 0..50 {
            let d = sample_cluster_device(Cluster::A, &mut r);
            assert!(matches!(d.mode, ComputeMode::Mode0 | ComputeMode::Mode1));
            assert!(matches!(d.link, LinkQuality::Near | LinkQuality::Mid));
        }
    }

    #[test]
    fn cluster_c_is_weak_and_far() {
        let mut r = rng();
        for _ in 0..50 {
            let d = sample_cluster_device(Cluster::C, &mut r);
            assert!(matches!(d.mode, ComputeMode::Mode2 | ComputeMode::Mode3));
            assert_eq!(d.link, LinkQuality::Far);
        }
    }

    #[test]
    fn scenarios_have_requested_size() {
        let mut r = rng();
        for level in [HeterogeneityLevel::Low, HeterogeneityLevel::Medium, HeterogeneityLevel::High]
        {
            for n in [10usize, 13, 30] {
                assert_eq!(heterogeneity_scenario(level, n, &mut r).len(), n);
            }
        }
    }

    #[test]
    fn higher_level_means_weaker_slowest_worker() {
        let mut r = rng();
        let min_flops =
            |fleet: &[DeviceProfile]| fleet.iter().map(|d| d.flops()).fold(f64::INFINITY, f64::min);
        let low = heterogeneity_scenario(HeterogeneityLevel::Low, 10, &mut r);
        let high = heterogeneity_scenario(HeterogeneityLevel::High, 10, &mut r);
        assert!(min_flops(&low) > min_flops(&high));
    }

    #[test]
    fn medium_is_half_a_half_b() {
        let mut r = rng();
        let fleet = heterogeneity_scenario(HeterogeneityLevel::Medium, 10, &mut r);
        // Cluster B devices have Mid links and mode 1/2; count non-A-only
        // characteristics loosely: at least some devices must be mode 2.
        let weak = fleet.iter().filter(|d| matches!(d.mode, ComputeMode::Mode2)).count();
        assert!(weak > 0, "no cluster-B-grade devices in Medium scenario");
    }
}
