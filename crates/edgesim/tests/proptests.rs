//! Property tests of the edge simulator.

use fedmp_edgesim::{
    deadline_for, heterogeneity_scenario, tx2_profile, ArrivalQueue, ComputeMode,
    HeterogeneityLevel, LinkQuality, RoundCost, TimeModel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Time is monotone in every cost component.
    #[test]
    fn time_monotone_in_cost(flops in 1.0e6f64..1.0e12, bytes in 1.0e3f64..1.0e8) {
        let model = TimeModel::deterministic();
        let dev = tx2_profile(ComputeMode::Mode1, LinkQuality::Mid);
        let mut rng = StdRng::seed_from_u64(0);
        let base = RoundCost { train_flops: flops, download_bytes: bytes, upload_bytes: bytes };
        let bigger = RoundCost { train_flops: flops * 1.5, download_bytes: bytes * 2.0, upload_bytes: bytes };
        let t1 = model.round_time(&dev, &base, &mut rng).total();
        let t2 = model.round_time(&dev, &bigger, &mut rng).total();
        prop_assert!(t2 > t1);
    }

    /// Deadline is at least `factor ×` the fastest completion and no more
    /// than `factor ×` the slowest.
    #[test]
    fn deadline_bounds(times in prop::collection::vec(0.1f64..1000.0, 1..40),
                       frac in 0.1f64..1.0, factor in 1.0f64..3.0) {
        let d = deadline_for(&times, frac, factor).unwrap();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0, f64::max);
        prop_assert!(d >= min * factor - 1e-9);
        prop_assert!(d <= max * factor + 1e-9);
    }

    /// The arrival queue dequeues in non-decreasing time order.
    #[test]
    fn queue_orders_arrivals(times in prop::collection::vec(0.0f64..100.0, 1..30)) {
        let mut q = ArrivalQueue::new();
        for (w, &t) in times.iter().enumerate() {
            q.push(t, w);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(c) = q.pop() {
            prop_assert!(c.at >= last);
            last = c.at;
        }
    }

    /// Scenario fleets always match the requested size and only contain
    /// profiles from the defined mode/link ranges.
    #[test]
    fn scenarios_well_formed(n in 1usize..40, seed in 0u64..500, level in 0u8..3) {
        let level = match level {
            0 => HeterogeneityLevel::Low,
            1 => HeterogeneityLevel::Medium,
            _ => HeterogeneityLevel::High,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let fleet = heterogeneity_scenario(level, n, &mut rng);
        prop_assert_eq!(fleet.len(), n);
        for d in &fleet {
            prop_assert!(d.flops() > 0.0);
            prop_assert!(d.bandwidth() > 0.0);
        }
    }

    /// Jitter keeps times strictly positive and finite.
    #[test]
    fn jitter_times_positive(seed in 0u64..1000, sigma in 0.0f64..0.5) {
        let model = TimeModel { jitter_sigma: sigma };
        let dev = tx2_profile(ComputeMode::Mode3, LinkQuality::Far);
        let mut rng = StdRng::seed_from_u64(seed);
        let cost = RoundCost { train_flops: 1.0e9, download_bytes: 1.0e6, upload_bytes: 1.0e6 };
        for _ in 0..20 {
            let t = model.round_time(&dev, &cost, &mut rng);
            prop_assert!(t.comp > 0.0 && t.comp.is_finite());
            prop_assert!(t.comm > 0.0 && t.comm.is_finite());
        }
    }
}
