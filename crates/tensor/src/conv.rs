//! 2-D convolution via im2col/col2im.
//!
//! Layouts follow the usual deep-learning convention:
//! * activations: `[batch, channels, height, width]` (NCHW)
//! * filters: `[out_channels, in_channels, kh, kw]`
//!
//! The im2col transform turns convolution into one GEMM per image, which
//! keeps the hot loop inside the blocked kernel of [`crate::matmul`].
//!
//! Forward and input-gradient passes parallelise over the batch via
//! [`crate::parallel`]: each image owns a disjoint slice of the output,
//! and the per-image GEMMs run sequentially inside the band workers, so
//! results are bit-identical at any thread count.
//!
//! Per-image scratch (column buffers, GEMM products, packed transposes)
//! comes from the calling thread's [`crate::workspace`] pool rather
//! than fresh allocations; every pooled buffer is zero-filled on take,
//! so outputs are bit-identical to the allocating formulation — the
//! `workspace_path_is_bit_identical` test below proves it against a
//! fresh thread with an empty pool.

use crate::matmul::{gemm_nn_into, gemm_nn_into_tagged, pack_transpose_into};
use crate::parallel;
use crate::tensor::Tensor;
use crate::workspace::with_thread_workspace;
use serde::{Deserialize, Serialize};

/// Static geometry of a conv2d: kernel size, stride and zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an input of `h × w`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kh) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kw) / self.stride + 1;
        (oh, ow)
    }
}

/// Unfolds one image `[c, h, w]` into columns `[c*kh*kw, oh*ow]`.
///
/// Out-of-bounds taps (from padding) contribute zeros.
pub fn im2col(image: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Tensor {
    let (oh, ow) = spec.out_hw(h, w);
    let col_rows = c * spec.kh * spec.kw;
    let col_cols = oh * ow;
    let mut cols = Tensor::zeros(&[col_rows, col_cols]);
    im2col_into(image, c, h, w, spec, cols.data_mut());
    cols
}

/// [`im2col`] into a caller-provided buffer of `c*kh*kw × oh*ow`
/// elements, which must be **zeroed** (only in-bounds taps are written;
/// padding taps rely on the zeroed background).
pub fn im2col_into(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    data: &mut [f32],
) {
    let (oh, ow) = spec.out_hw(h, w);
    let col_cols = oh * ow;
    assert_eq!(data.len(), c * spec.kh * spec.kw * col_cols, "im2col_into: buffer size");

    for ch in 0..c {
        let img_ch = &image[ch * h * w..(ch + 1) * h * w];
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = (ch * spec.kh + ky) * spec.kw + kx;
                let out_row = &mut data[row * col_cols..(row + 1) * col_cols];
                unfold_tap(img_ch, h, w, spec, ky, kx, oh, ow, out_row);
            }
        }
    }
}

/// Writes one `(ky, kx)` tap of the unfold: for every output position,
/// copies the in-bounds source element into `out_row[oy*ow + ox]`,
/// leaving padding taps untouched (the caller's buffer is zeroed).
///
/// At stride 1 each output row maps to a *contiguous* source segment,
/// so the in-bounds span collapses to one `copy_from_slice` — the same
/// elements land in the same slots as the per-element loop, so outputs
/// are bit-identical either way.
#[allow(clippy::too_many_arguments)]
fn unfold_tap(
    img_ch: &[f32],
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    ky: usize,
    kx: usize,
    oh: usize,
    ow: usize,
    out_row: &mut [f32],
) {
    if spec.stride == 1 {
        // ix = ox + kx - padding must lie in [0, w): solve for ox.
        let ox_lo = spec.padding.saturating_sub(kx);
        let ox_hi = (w + spec.padding).saturating_sub(kx).min(ow);
        for oy in 0..oh {
            let iy = (oy + ky) as isize - spec.padding as isize;
            if iy < 0 || iy >= h as isize || ox_lo >= ox_hi {
                continue;
            }
            let ix0 = ox_lo + kx - spec.padding;
            let len = ox_hi - ox_lo;
            let src = &img_ch[iy as usize * w + ix0..iy as usize * w + ix0 + len];
            out_row[oy * ow + ox_lo..oy * ow + ox_hi].copy_from_slice(src);
        }
        return;
    }
    for oy in 0..oh {
        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
        if iy < 0 || iy >= h as isize {
            continue;
        }
        let iy = iy as usize;
        for ox in 0..ow {
            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
            if ix < 0 || ix >= w as isize {
                continue;
            }
            out_row[oy * ow + ox] = img_ch[iy * w + ix as usize];
        }
    }
}

/// [`im2col_into`] over a **channel subset**: unfolds only the channels
/// listed in `kept_in` (full-model indices into a `c_full`-channel
/// image), producing `kept_in.len()*kh*kw × oh*ow` columns with rows
/// ordered by position in `kept_in`.
///
/// The output is bit-identical to first gathering the kept channels
/// into a dense image and then running [`im2col_into`] — both are pure
/// copies of the same source elements into the same destinations — but
/// skips materialising the gathered image. This is what lets the
/// pruning-aware conv path consume a full-width activation map while
/// paying only for the kept channels. `data` must be zeroed, as for
/// [`im2col_into`].
pub fn im2col_pruned_into(
    image: &[f32],
    c_full: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    kept_in: &[usize],
    data: &mut [f32],
) {
    let (oh, ow) = spec.out_hw(h, w);
    let col_cols = oh * ow;
    assert_eq!(image.len(), c_full * h * w, "im2col_pruned_into: image size");
    assert_eq!(
        data.len(),
        kept_in.len() * spec.kh * spec.kw * col_cols,
        "im2col_pruned_into: buffer size"
    );

    for (jc, &ch) in kept_in.iter().enumerate() {
        assert!(ch < c_full, "im2col_pruned_into: channel {ch} out of {c_full}");
        let img_ch = &image[ch * h * w..(ch + 1) * h * w];
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = (jc * spec.kh + ky) * spec.kw + kx;
                let out_row = &mut data[row * col_cols..(row + 1) * col_cols];
                unfold_tap(img_ch, h, w, spec, ky, kx, oh, ow, out_row);
            }
        }
    }
}

/// Folds columns `[c*kh*kw, oh*ow]` back into an image `[c, h, w]`,
/// accumulating overlapping taps — the adjoint of [`im2col`].
pub fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Vec<f32> {
    let mut image = vec![0.0f32; c * h * w];
    col2im_into(cols.data(), c, h, w, spec, &mut image);
    image
}

/// [`col2im`] accumulating into a caller-provided image buffer of
/// `c*h*w` elements (`+=` per tap, so start from zeros for the plain
/// adjoint).
pub fn col2im_into(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    image: &mut [f32],
) {
    let (oh, ow) = spec.out_hw(h, w);
    let col_cols = oh * ow;
    assert_eq!(data.len(), c * spec.kh * spec.kw * col_cols, "col2im_into: cols size");
    assert_eq!(image.len(), c * h * w, "col2im_into: image size");

    for ch in 0..c {
        let img_ch = &mut image[ch * h * w..(ch + 1) * h * w];
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = (ch * spec.kh + ky) * spec.kw + kx;
                let col_row = &data[row * col_cols..(row + 1) * col_cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        img_ch[iy * w + ix as usize] += col_row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Convolution forward pass.
///
/// * `input` — `[n, c, h, w]`
/// * `weight` — `[oc, c, kh, kw]`
/// * `bias` — `[oc]`
///
/// Returns `[n, oc, oh, ow]`.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let (n, c, h, w) = nchw(input);
    let oc = weight.dims()[0];
    assert_eq!(weight.dims()[1], c, "conv2d: weight in-channels mismatch");
    assert_eq!(weight.dims()[2], spec.kh);
    assert_eq!(weight.dims()[3], spec.kw);
    assert_eq!(bias.numel(), oc, "conv2d: bias length mismatch");
    let (oh, ow) = spec.out_hw(h, w);

    // `weight` is already contiguous `[oc, c*kh*kw]` row-major, so the
    // GEMM reads it in place — no reshape clone per call.
    let ck = c * spec.kh * spec.kw;
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let out_img = oc * oh * ow;
    let in_img = c * h * w;
    let input_data = input.data();
    let weight_data = weight.data();
    let bias_data = bias.data();
    let work = 2 * n * out_img * ck;
    parallel::for_each_band(out.data_mut(), n, out_img, 1, work, |i, dst| {
        with_thread_workspace(|ws| {
            let mut cols = ws.take_zeroed(ck * oh * ow);
            im2col_into(&input_data[i * in_img..(i + 1) * in_img], c, h, w, spec, &mut cols);
            let mut res = ws.take_zeroed(oc * oh * ow); // [oc, oh*ow]
            gemm_nn_into(weight_data, &cols, oc, ck, oh * ow, &mut res);
            for f in 0..oc {
                let b = bias_data[f];
                let src = &res[f * oh * ow..(f + 1) * oh * ow];
                let d = &mut dst[f * oh * ow..(f + 1) * oh * ow];
                for (dv, &sv) in d.iter_mut().zip(src.iter()) {
                    *dv = sv + b;
                }
            }
            ws.give(cols);
            ws.give(res);
        });
    });
    out
}

/// Pruning-aware convolution forward: computes only the kept filters
/// over the kept input channels of a **full-size** weight/bias, without
/// materialising the extracted sub-model.
///
/// * `input` — `[n, c, h, w]` where `c` is either the full channel
///   count (`weight.dims()[1]`, "masked" mode: pruned channels are
///   present but skipped by [`im2col_pruned_into`]) or exactly
///   `kept_in.len()` ("chain" mode: the input already flows through a
///   pruned pipeline).
/// * `weight` — full `[oc, ic, kh, kw]`; `bias` — full `[oc]`.
/// * `kept_out` / `kept_in` — full-model filter/channel indices, as in
///   a `PrunePlan` layer.
///
/// Returns `[n, kept_out.len(), oh, ow]`, **bit-identical** to
/// [`conv2d_forward`] on the extracted sub-model (gathered weight/bias,
/// kept-channel input): the gathered weight panel and columns are pure
/// element copies of the same values, the GEMM is the same deterministic
/// kernel over the same band geometry, and the bias add reads the same
/// scalars. The GEMM is tagged `pruned` in the dispatch-path counters.
pub fn conv2d_forward_pruned(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
    kept_out: &[usize],
    kept_in: &[usize],
) -> Tensor {
    let (n, c, h, w) = nchw(input);
    assert_eq!(weight.shape().rank(), 4, "conv2d pruned: weight must be [oc, ic, kh, kw]");
    let (oc_full, ic_full) = (weight.dims()[0], weight.dims()[1]);
    assert_eq!(weight.dims()[2], spec.kh);
    assert_eq!(weight.dims()[3], spec.kw);
    assert_eq!(bias.numel(), oc_full, "conv2d pruned: bias length mismatch");
    let (ko, ki) = (kept_out.len(), kept_in.len());
    assert!(ko >= 1 && ki >= 1, "conv2d pruned: empty kept set");
    assert!(kept_out.iter().all(|&f| f < oc_full), "conv2d pruned: kept_out out of range");
    assert!(kept_in.iter().all(|&ch| ch < ic_full), "conv2d pruned: kept_in out of range");
    let masked = c == ic_full && ic_full != ki;
    assert!(
        c == ic_full || c == ki,
        "conv2d pruned: input has {c} channels, expected {ic_full} (masked) or {ki} (pruned chain)"
    );
    let (oh, ow) = spec.out_hw(h, w);

    // Gather the kept weight panel once, outside the band workers —
    // byte-for-byte the `[ko, ki*kh*kw]` row-major view of the
    // extracted sub-model's weight.
    let k2 = spec.kh * spec.kw;
    let ck = ki * k2;
    let weight_data = weight.data();
    let mut wp = with_thread_workspace(|ws| ws.take_zeroed(ko * ck));
    for (i, &f) in kept_out.iter().enumerate() {
        for (j, &ch) in kept_in.iter().enumerate() {
            let src = &weight_data[(f * ic_full + ch) * k2..(f * ic_full + ch + 1) * k2];
            wp[(i * ki + j) * k2..(i * ki + j + 1) * k2].copy_from_slice(src);
        }
    }

    let mut out = Tensor::zeros(&[n, ko, oh, ow]);
    let out_img = ko * oh * ow;
    let in_img = c * h * w;
    let input_data = input.data();
    let bias_data = bias.data();
    let work = 2 * n * out_img * ck;
    let wp_ref = &wp;
    parallel::for_each_band(out.data_mut(), n, out_img, 1, work, |i, dst| {
        with_thread_workspace(|ws| {
            let mut cols = ws.take_zeroed(ck * oh * ow);
            let image = &input_data[i * in_img..(i + 1) * in_img];
            if masked {
                im2col_pruned_into(image, c, h, w, spec, kept_in, &mut cols);
            } else {
                im2col_into(image, ki, h, w, spec, &mut cols);
            }
            let mut res = ws.take_zeroed(ko * oh * ow); // [ko, oh*ow]
            gemm_nn_into_tagged(wp_ref, &cols, ko, ck, oh * ow, &mut res, true);
            for (f, &of) in kept_out.iter().enumerate() {
                let b = bias_data[of];
                let src = &res[f * oh * ow..(f + 1) * oh * ow];
                let d = &mut dst[f * oh * ow..(f + 1) * oh * ow];
                for (dv, &sv) in d.iter_mut().zip(src.iter()) {
                    *dv = sv + b;
                }
            }
            ws.give(cols);
            ws.give(res);
        });
    });
    with_thread_workspace(|ws| ws.give(wp));
    out
}

/// Gradient of the loss with respect to the convolution input.
///
/// * `grad_out` — `[n, oc, oh, ow]`
///
/// Returns `[n, c, h, w]`.
pub fn conv2d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    spec: &Conv2dSpec,
) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let oc = weight.dims()[0];
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(grad_out.dims(), &[n, oc, oh, ow], "conv2d bwd: grad_out shape");

    // `weightᵀ @ grad` is the same for every image, so pack the
    // transpose once here instead of once per image inside the band
    // workers (same values, computed in one place).
    let ck = c * spec.kh * spec.kw;
    let mut wt = with_thread_workspace(|ws| ws.take_zeroed(oc * ck));
    pack_transpose_into(weight.data(), oc, ck, &mut wt); // [ck, oc]
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let in_img = c * h * w;
    let grad_data = grad_out.data();
    let work = 2 * n * oc * oh * ow * ck;
    parallel::for_each_band(grad_in.data_mut(), n, in_img, 1, work, |i, dst| {
        with_thread_workspace(|ws| {
            let go = &grad_data[i * oc * oh * ow..(i + 1) * oc * oh * ow]; // [oc, oh*ow]
            let mut cols_grad = ws.take_zeroed(ck * oh * ow); // [c*kh*kw, oh*ow]
            gemm_nn_into(&wt, go, ck, oc, oh * ow, &mut cols_grad);
            // `dst` is this image's slice of the zero-initialised
            // gradient tensor, so accumulating the adjoint into it
            // directly matches col2im-into-fresh-zeros bit for bit.
            col2im_into(&cols_grad, c, h, w, spec, dst);
            ws.give(cols_grad);
        });
    });
    with_thread_workspace(|ws| ws.give(wt));
    grad_in
}

/// Gradients of the loss with respect to the filters and bias.
///
/// Returns `(grad_weight [oc, c, kh, kw], grad_bias [oc])`, summed over the
/// batch.
pub fn conv2d_backward_weight(
    grad_out: &Tensor,
    input: &Tensor,
    weight_dims: &[usize],
    spec: &Conv2dSpec,
) -> (Tensor, Tensor) {
    let (n, c, h, w) = nchw(input);
    let oc = weight_dims[0];
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(grad_out.dims(), &[n, oc, oh, ow], "conv2d bwd: grad_out shape");

    // The weight gradient accumulates across images, so the batch loop
    // stays sequential to keep one summation order; the per-image GEMMs
    // below still use the blocked kernels, with all scratch (columns,
    // packed transpose, per-image product) drawn from the thread pool.
    let ck = c * spec.kh * spec.kw;
    let mut gw = Tensor::zeros(&[oc, ck]);
    let mut gb = Tensor::zeros(&[oc]);
    with_thread_workspace(|ws| {
        let mut cols = ws.take_zeroed(ck * oh * ow);
        let mut cols_t = ws.take_zeroed(ck * oh * ow);
        let mut prod = ws.take_zeroed(oc * ck);
        for i in 0..n {
            cols.fill(0.0);
            im2col_into(
                &input.data()[i * c * h * w..(i + 1) * c * h * w],
                c,
                h,
                w,
                spec,
                &mut cols,
            );
            let go = &grad_out.data()[i * oc * oh * ow..(i + 1) * oc * oh * ow]; // [oc, oh*ow]
                                                                                 // grad @ colsᵀ, exactly as `matmul_nt` computes it: pack the
                                                                                 // columns transposed, then run the blocked NN kernel.
            pack_transpose_into(&cols, ck, oh * ow, &mut cols_t);
            prod.fill(0.0);
            gemm_nn_into(go, &cols_t, oc, oh * ow, ck, &mut prod);
            for (g, &p) in gw.data_mut().iter_mut().zip(prod.iter()) {
                *g += p;
            }
            for f in 0..oc {
                gb.data_mut()[f] +=
                    parallel::sum_f32(go[f * oh * ow..(f + 1) * oh * ow].iter().copied());
            }
        }
        ws.give(cols);
        ws.give(cols_t);
        ws.give(prod);
    });
    (gw.reshape(weight_dims), gb)
}

fn nchw(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.shape().rank(), 4, "expected an NCHW tensor, got {}", t.shape());
    let d = t.dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn naive_conv(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let (n, c, h, w) = nchw(input);
        let oc = weight.dims()[0];
        let (oh, ow) = spec.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for i in 0..n {
            for f in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.data()[f];
                        for ch in 0..c {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[i, ch, iy as usize, ix as usize])
                                        * weight.at(&[f, ch, ky, kx]);
                                }
                            }
                        }
                        out.set(&[i, f, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn forward_matches_naive_no_padding() {
        let mut rng = seeded_rng(11);
        let spec = Conv2dSpec { kh: 3, kw: 3, stride: 1, padding: 0 };
        let input = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let weight = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let bias = Tensor::randn(&[4], &mut rng);
        assert_close(
            &conv2d_forward(&input, &weight, &bias, &spec),
            &naive_conv(&input, &weight, &bias, &spec),
            1e-4,
        );
    }

    #[test]
    fn forward_matches_naive_padded_strided() {
        let mut rng = seeded_rng(12);
        let spec = Conv2dSpec { kh: 5, kw: 5, stride: 2, padding: 2 };
        let input = Tensor::randn(&[1, 2, 9, 9], &mut rng);
        let weight = Tensor::randn(&[3, 2, 5, 5], &mut rng);
        let bias = Tensor::zeros(&[3]);
        assert_close(
            &conv2d_forward(&input, &weight, &bias, &spec),
            &naive_conv(&input, &weight, &bias, &spec),
            1e-4,
        );
    }

    #[test]
    fn out_hw_formula() {
        let spec = Conv2dSpec { kh: 5, kw: 5, stride: 1, padding: 2 };
        assert_eq!(spec.out_hw(28, 28), (28, 28));
        let spec2 = Conv2dSpec { kh: 2, kw: 2, stride: 2, padding: 0 };
        assert_eq!(spec2.out_hw(28, 28), (14, 14));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the backward pass relies on.
        let mut rng = seeded_rng(13);
        let spec = Conv2dSpec { kh: 3, kw: 3, stride: 2, padding: 1 };
        let (c, h, w) = (2, 5, 5);
        let (oh, ow) = spec.out_hw(h, w);
        let x = Tensor::randn(&[c, h, w], &mut rng);
        let y = Tensor::randn(&[c * 9, oh * ow], &mut rng);
        let cols = im2col(x.data(), c, h, w, &spec);
        let lhs: f32 = cols.data().iter().zip(y.data().iter()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, c, h, w, &spec);
        let rhs: f32 = x.data().iter().zip(folded.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_into_matches_allocating_im2col() {
        let mut rng = seeded_rng(15);
        let spec = Conv2dSpec { kh: 3, kw: 3, stride: 2, padding: 1 };
        let (c, h, w) = (3, 7, 6);
        let x = Tensor::randn(&[c, h, w], &mut rng);
        let cols = im2col(x.data(), c, h, w, &spec);
        let mut buf = vec![0.0f32; cols.numel()];
        im2col_into(x.data(), c, h, w, &spec, &mut buf);
        assert_eq!(buf, cols.data());
    }

    /// The workspace-pooled kernels must be *bit-identical* to the
    /// allocating formulation. A fresh thread starts with an empty pool
    /// (so every buffer it uses is freshly allocated and zeroed); the
    /// main thread first pollutes its pool with differently-shaped conv
    /// calls, then both compute the same passes and must agree exactly.
    #[test]
    fn workspace_path_is_bit_identical() {
        let run = || {
            let mut rng = seeded_rng(16);
            let spec = Conv2dSpec { kh: 5, kw: 5, stride: 1, padding: 2 };
            let input = Tensor::randn(&[3, 2, 9, 9], &mut rng);
            let weight = Tensor::randn(&[4, 2, 5, 5], &mut rng);
            let bias = Tensor::randn(&[4], &mut rng);
            let out = conv2d_forward(&input, &weight, &bias, &spec);
            let grad_out = Tensor::randn(out.dims(), &mut rng);
            let gi = conv2d_backward_input(&grad_out, &weight, input.dims(), &spec);
            let (gw, gb) = conv2d_backward_weight(&grad_out, &input, weight.dims(), &spec);
            (out, gi, gw, gb)
        };

        // Pollute the calling thread's pool with buffers from conv
        // calls of a different geometry.
        let mut rng = seeded_rng(17);
        let small_spec = Conv2dSpec { kh: 3, kw: 3, stride: 1, padding: 0 };
        let small_in = Tensor::randn(&[2, 1, 5, 5], &mut rng);
        let small_w = Tensor::randn(&[2, 1, 3, 3], &mut rng);
        let _ = conv2d_forward(&small_in, &small_w, &Tensor::zeros(&[2]), &small_spec);

        let dirty = run();
        let fresh = std::thread::spawn(run).join().expect("fresh-thread run");
        assert_eq!(dirty.0, fresh.0, "forward");
        assert_eq!(dirty.1, fresh.1, "grad input");
        assert_eq!(dirty.2, fresh.2, "grad weight");
        assert_eq!(dirty.3, fresh.3, "grad bias");
    }

    /// Gathers kept channels of one `[c, h, w]` image into a dense
    /// `[ki, h, w]` image — the reference the pruned path must match.
    fn gather_channels(image: &[f32], h: usize, w: usize, kept: &[usize]) -> Vec<f32> {
        let mut out = Vec::with_capacity(kept.len() * h * w);
        for &ch in kept {
            out.extend_from_slice(&image[ch * h * w..(ch + 1) * h * w]);
        }
        out
    }

    #[test]
    fn im2col_pruned_matches_gather_then_im2col_bitwise() {
        let mut rng = seeded_rng(18);
        let spec = Conv2dSpec { kh: 3, kw: 3, stride: 2, padding: 1 };
        let (c, h, w) = (5, 7, 6);
        let x = Tensor::randn(&[c, h, w], &mut rng);
        let kept = vec![0, 2, 4];
        let gathered = gather_channels(x.data(), h, w, &kept);
        let dense = im2col(&gathered, kept.len(), h, w, &spec);
        let mut pruned = vec![0.0f32; dense.numel()];
        im2col_pruned_into(x.data(), c, h, w, &spec, &kept, &mut pruned);
        assert_eq!(pruned, dense.data());
    }

    #[test]
    fn pruned_forward_is_bitwise_identical_to_extracted_dense() {
        let mut rng = seeded_rng(19);
        let spec = Conv2dSpec { kh: 3, kw: 3, stride: 1, padding: 1 };
        let (n, c, h, w, oc) = (2, 6, 8, 8, 8);
        let input = Tensor::randn(&[n, c, h, w], &mut rng);
        let weight = Tensor::randn(&[oc, c, 3, 3], &mut rng);
        let bias = Tensor::randn(&[oc], &mut rng);
        let kept_out = vec![1, 2, 5, 7];
        let kept_in = vec![0, 3, 4];

        // Reference: dense kernel on the physically extracted operands.
        let mut sub_w = Vec::new();
        for &f in &kept_out {
            for &ch in &kept_in {
                sub_w.extend_from_slice(&weight.data()[(f * c + ch) * 9..(f * c + ch + 1) * 9]);
            }
        }
        let sub_w = Tensor::from_vec(sub_w, &[kept_out.len(), kept_in.len(), 3, 3]).unwrap();
        let sub_b =
            Tensor::from_vec(kept_out.iter().map(|&f| bias.data()[f]).collect(), &[kept_out.len()])
                .unwrap();
        let mut sub_x = Vec::new();
        for i in 0..n {
            sub_x.extend(gather_channels(
                &input.data()[i * c * h * w..(i + 1) * c * h * w],
                h,
                w,
                &kept_in,
            ));
        }
        let sub_x = Tensor::from_vec(sub_x, &[n, kept_in.len(), h, w]).unwrap();
        let dense = conv2d_forward(&sub_x, &sub_w, &sub_b, &spec);

        // Masked mode: full-width input, channels skipped in im2col.
        let masked = conv2d_forward_pruned(&input, &weight, &bias, &spec, &kept_out, &kept_in);
        assert_eq!(masked, dense, "masked mode");
        // Chain mode: pre-gathered input.
        let chained = conv2d_forward_pruned(&sub_x, &weight, &bias, &spec, &kept_out, &kept_in);
        assert_eq!(chained, dense, "chain mode");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = seeded_rng(14);
        let spec = Conv2dSpec { kh: 3, kw: 3, stride: 1, padding: 1 };
        let input = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let weight = Tensor::randn(&[2, 2, 3, 3], &mut rng).scale(0.5);
        let bias = Tensor::randn(&[2], &mut rng);

        // Scalar loss = sum of outputs; so grad_out = ones.
        let out = conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = Tensor::ones(out.dims());
        let gi = conv2d_backward_input(&grad_out, &weight, input.dims(), &spec);
        let (gw, gb) = conv2d_backward_weight(&grad_out, &input, weight.dims(), &spec);

        let eps = 1e-2f32;
        let loss = |inp: &Tensor, wt: &Tensor, b: &Tensor| conv2d_forward(inp, wt, b, &spec).sum();

        for idx in [0usize, 7, 15, 31] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            assert!(
                (num - gi.data()[idx]).abs() < 0.05,
                "input grad {idx}: {num} vs {}",
                gi.data()[idx]
            );
        }
        for idx in [0usize, 9, 17, 35] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            assert!(
                (num - gw.data()[idx]).abs() < 0.05,
                "weight grad {idx}: {num} vs {}",
                gw.data()[idx]
            );
        }
        for idx in 0..2 {
            let mut bp = bias.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = bias.clone();
            bm.data_mut()[idx] -= eps;
            let num = (loss(&input, &weight, &bp) - loss(&input, &weight, &bm)) / (2.0 * eps);
            assert!(
                (num - gb.data()[idx]).abs() < 0.1,
                "bias grad {idx}: {num} vs {}",
                gb.data()[idx]
            );
        }
    }
}
