//! The dense tensor type and its elementwise / reduction operations.

use crate::error::TensorError;
use crate::rng::{standard_normal_vec, uniform_vec};
use crate::shape::Shape;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is deliberately minimal: no views, no broadcasting, no lazy
/// evaluation. Every operation either consumes slices directly or produces
/// a fresh tensor. The simplicity keeps the pruning code (which rebuilds
/// weight tensors with rows/columns removed) easy to audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from a flat buffer, checking the length.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch { got: data.len(), expected: shape.numel() });
        }
        Ok(Tensor { shape, data })
    }

    /// Samples each element from `N(0, 1)` using the supplied RNG.
    pub fn randn(dims: &[usize], rng: &mut StdRng) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor { shape, data: standard_normal_vec(n, rng) }
    }

    /// Samples each element uniformly from `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor { shape, data: uniform_vec(n, lo, hi, rng) }
    }

    /// Kaiming/He-normal initialisation: `N(0, sqrt(2 / fan_in))`.
    ///
    /// `fan_in` is the number of input connections of the unit this weight
    /// feeds (e.g. `in_channels * kh * kw` for a conv filter).
    pub fn kaiming(dims: &[usize], fan_in: usize, rng: &mut StdRng) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        let mut t = Self::randn(dims, rng);
        t.scale_in_place(std);
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data but a new shape of equal volume.
    ///
    /// # Panics
    /// Panics if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape volume mismatch: {} -> {}",
            self.shape,
            shape
        );
        Tensor { shape, data: self.data.clone() }
    }

    /// Row `r` of a rank-2 tensor, as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.shape.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (allocating)
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert!(
            self.shape.same_as(&other.shape),
            "{op}: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&a| f(a)).collect() }
    }

    /// Combines two equal-shaped tensors elementwise.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip_with");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (in place — the SGD hot path)
    // ------------------------------------------------------------------

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "sub_assign");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// `self += alpha * other` — the fused update every optimizer uses.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// `self *= s`.
    pub fn scale_in_place(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Sets every element to zero without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element (NaN-propagating max is not needed here; inputs are
    /// finite by construction).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Sum of absolute values (the paper's filter-importance metric).
    pub fn l1_norm(&self) -> f32 {
        crate::parallel::sum_f32(self.data.iter().map(|a| a.abs()))
    }

    /// Euclidean norm.
    pub fn l2_norm(&self) -> f32 {
        crate::parallel::sum_f32(self.data.iter().map(|a| a * a)).sqrt()
    }

    /// Squared Euclidean distance to another tensor — the paper's pruning
    /// error `Q = ||x - x_n||²`.
    pub fn sq_distance(&self, other: &Tensor) -> f32 {
        self.assert_same_shape(other, "sq_distance");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "argmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            let mut best_v = row[0];
            for (i, &v) in row.iter().enumerate().skip(1) {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            out.push(best);
        }
        out
    }

    /// Whether every element is finite. Training loops assert this to
    /// catch divergence early.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full(&[2, 2], 2.5);
        assert_eq!(f.mean(), 2.5);
        let e = Tensor::eye(3);
        assert_eq!(e.sum(), 3.0);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[0, 1]), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
        assert_eq!(Tensor::from_vec(vec![], &[]), Err(TensorError::EmptyShape));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.axpy(-0.5, &b);
        assert_eq!(a.data(), &[-4.0, -8.0]);
        a.scale_in_place(0.0);
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![-3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.l1_norm(), 7.0);
        assert_eq!(a.l2_norm(), 5.0);
        assert_eq!(a.max(), 4.0);
        let b = Tensor::zeros(&[2]);
        assert_eq!(a.sq_distance(&b), 25.0);
    }

    #[test]
    fn argmax_rows() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = seeded_rng(7);
        let a = Tensor::randn(&[3, 5], &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(&[4, 2]), a.at(&[2, 4]));
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let _ = a.add(&b);
    }

    #[test]
    fn kaiming_scale_is_sane() {
        let mut rng = seeded_rng(0);
        let w = Tensor::kaiming(&[64, 32], 32, &mut rng);
        let var = w.data().iter().map(|x| x * x).sum::<f32>() / w.numel() as f32;
        // Expected variance 2/32 = 0.0625; allow generous tolerance.
        assert!((var - 0.0625).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn rows_are_views() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        a.row_mut(1)[0] = 9.0;
        assert_eq!(a.row(1), &[9.0, 4.0]);
    }

    #[test]
    fn finite_check() {
        let mut a = Tensor::ones(&[2]);
        assert!(a.all_finite());
        a.data_mut()[0] = f32::NAN;
        assert!(!a.all_finite());
    }
}
