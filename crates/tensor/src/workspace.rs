//! Per-thread scratch-buffer pools for the im2col/GEMM kernels.
//!
//! The convolution kernels need several short-lived `f32` buffers per
//! image (unfolded columns, GEMM products, packed transposes). Under
//! the round executor in `fedmp-fl`, one worker thread trains a whole
//! local model — hundreds of such buffers per round — so allocating
//! them afresh each call puts the allocator on the hot path and makes
//! concurrent workers contend on it. A [`Workspace`] keeps returned
//! buffers and hands them back on the next request.
//!
//! Determinism: [`Workspace::take_zeroed`] zero-fills every buffer it
//! returns, which is exactly the state a fresh `vec![0.0; len]` starts
//! in, so kernels built on the pool are bit-identical to their
//! allocating counterparts — no data can leak between uses. The
//! equivalence tests in the conv module assert this against runs on a
//! fresh thread (whose pool is empty).
//!
//! The pool is reached through a thread-local via
//! [`with_thread_workspace`]; each kernel borrows it for one leaf-level
//! scope (the closure must not re-enter `with_thread_workspace`, which
//! the kernels honour by taking every buffer they need up front).

use std::cell::RefCell;

/// Buffers kept per thread; beyond this, returned buffers are dropped.
/// The conv kernels use at most four distinct buffers at a time, so a
/// small cap bounds memory without ever thrashing.
const MAX_POOLED: usize = 8;

/// A pool of reusable `f32` scratch buffers. See the module docs.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// An empty workspace (no buffers pooled yet).
    pub const fn new() -> Self {
        Workspace { pool: Vec::new() }
    }

    /// Returns a zero-filled buffer of exactly `len` elements,
    /// preferring a pooled buffer whose capacity already suffices.
    /// The contents are indistinguishable from `vec![0.0; len]`.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let picked = self.pool.iter().position(|b| b.capacity() >= len);
        let mut buf = match picked {
            Some(i) => self.pool.swap_remove(i),
            None => self.pool.pop().unwrap_or_default(),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse by a later
    /// [`take_zeroed`](Self::take_zeroed).
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.pool.len() < MAX_POOLED {
            self.pool.push(buf);
        }
    }

    /// Number of buffers currently pooled (for tests/diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<Workspace> = const { RefCell::new(Workspace::new()) };
}

/// Runs `f` with exclusive access to the calling thread's [`Workspace`].
///
/// Not re-entrant: `f` must not call `with_thread_workspace` again
/// (kernels take all their buffers at the top of one scope instead).
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_returns_cleared_buffers() {
        let mut ws = Workspace::new();
        let mut a = ws.take_zeroed(16);
        assert_eq!(a, vec![0.0; 16]);
        a.iter_mut().for_each(|v| *v = f32::NAN);
        ws.give(a);
        // The polluted buffer comes back zeroed, like a fresh vec.
        let b = ws.take_zeroed(16);
        assert_eq!(b, vec![0.0; 16]);
    }

    #[test]
    fn pool_reuses_capacity_across_sizes() {
        let mut ws = Workspace::new();
        let big = ws.take_zeroed(1024);
        let cap = big.capacity();
        ws.give(big);
        // A smaller request reuses the big buffer's allocation.
        let small = ws.take_zeroed(100);
        assert_eq!(small.len(), 100);
        assert_eq!(small.capacity(), cap);
        ws.give(small);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..MAX_POOLED + 5 {
            ws.give(vec![0.0; 8]);
        }
        assert_eq!(ws.pooled(), MAX_POOLED);
        // Zero-capacity buffers are never pooled.
        let mut empty = Workspace::new();
        empty.give(Vec::new());
        assert_eq!(empty.pooled(), 0);
    }

    #[test]
    fn thread_workspace_is_per_thread() {
        with_thread_workspace(|ws| {
            ws.give(vec![1.0; 32]);
        });
        let other =
            std::thread::spawn(|| with_thread_workspace(|ws| ws.pooled())).join().expect("thread");
        assert_eq!(other, 0, "fresh thread starts with an empty pool");
        with_thread_workspace(|ws| assert!(ws.pooled() >= 1));
    }
}
