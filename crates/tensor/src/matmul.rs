//! Matrix multiplication kernels.
//!
//! The training stack only needs rank-2 GEMM in three transpose
//! configurations (forward pass, weight gradient, input gradient). The
//! kernels below use the i-k-j loop order so the inner loop streams both
//! operands — fast enough for the scaled model zoo without bringing in a
//! BLAS dependency.

use crate::tensor::Tensor;

impl Tensor {
    /// `self @ other` for rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    /// Panics if either operand is not rank-2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.shape().rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = Tensor::zeros(&[m, n]);
        let c = out.data_mut();
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row.iter()) {
                    *c_ij += a_ip * b_pj;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ`: `[m, k] x [n, k] -> [m, n]` without materialising
    /// the transpose. This is the input-gradient GEMM of a linear layer.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul_nt lhs must be rank-2");
        assert_eq!(other.shape().rank(), 2, "matmul_nt rhs must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = Tensor::zeros(&[m, n]);
        let c = out.data_mut();
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                c[i * n + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ @ other`: `[k, m] x [k, n] -> [m, n]` without materialising
    /// the transpose. This is the weight-gradient GEMM of a linear layer.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul_tn lhs must be rank-2");
        assert_eq!(other.shape().rank(), 2, "matmul_tn rhs must be rank-2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = Tensor::zeros(&[m, n]);
        let c = out.data_mut();
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n..(i + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row.iter()) {
                    *c_ij += a_pi * b_pj;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = seeded_rng(5);
        let a = Tensor::randn(&[4, 4], &mut rng);
        assert_close(&a.matmul(&Tensor::eye(4)), &a, 1e-6);
        assert_close(&Tensor::eye(4).matmul(&a), &a, 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = seeded_rng(6);
        let a = Tensor::randn(&[3, 5], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        assert_close(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-5);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = seeded_rng(7);
        let a = Tensor::randn(&[5, 3], &mut rng);
        let b = Tensor::randn(&[5, 4], &mut rng);
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn associativity_with_identity_chain() {
        let mut rng = seeded_rng(8);
        let a = Tensor::randn(&[2, 6], &mut rng);
        let b = Tensor::randn(&[6, 3], &mut rng);
        let c = Tensor::randn(&[3, 4], &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-4);
    }
}
