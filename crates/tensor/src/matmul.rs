//! Matrix multiplication kernels.
//!
//! The training stack only needs rank-2 GEMM in three transpose
//! configurations (forward pass, weight gradient, input gradient). All
//! three route through one cache-blocked kernel: the k dimension is
//! tiled so a block of `B` stays hot in cache, a four-row micro-kernel
//! amortises each `B` load across four output rows, and the j-inner
//! accumulation loop is a vectorisable axpy. The transposed variants
//! pack their transposed operand once and reuse the same kernel.
//!
//! Output rows are split into fixed-size bands executed by
//! [`crate::parallel`]; each element's accumulation order is ascending
//! in `k` regardless of banding, so results are bit-identical at any
//! thread count (and to the un-banded kernel).
//!
//! Per-band execution dispatches on [`crate::simd::active_path`]: the
//! hand-written AVX2/FMA microkernel when the host supports it (and
//! `FEDMP_SIMD` doesn't say otherwise), else this file's blocked scalar
//! kernel. Both are thread-count and run-to-run bit-deterministic for a
//! fixed path; `FEDMP_SIMD=scalar` reproduces the pre-SIMD results
//! exactly.
//!
//! The original naive loops are kept as [`matmul_reference`],
//! [`matmul_nt_reference`] and [`matmul_tn_reference`]: slow, obviously
//! correct oracles for the equivalence test suite and the kernel
//! benchmarks.

use crate::parallel;
use crate::simd::{self, SimdPath};
use crate::tensor::Tensor;

/// Rows of `k` processed per cache tile: a tile of `B` (`KC × n`) is
/// reused by every row band while it is hot.
const KC: usize = 128;
/// Output rows computed together by the micro-kernel; each loaded `B`
/// row updates this many `C` rows.
const MR: usize = 4;
/// Output rows per parallel band. Fixed (never derived from the thread
/// count) so the band decomposition — and thus the result — is the same
/// however many workers run.
const BAND_ROWS: usize = 64;

/// Blocked `C += A @ B` on row-major slices: `[m, k] x [k, n]`, banded
/// over output rows. `c` must be zero-initialised by the caller.
/// Crate-visible so the conv kernels can run the exact same GEMM into
/// workspace-pooled buffers without building `Tensor` operands.
pub(crate) fn gemm_nn_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    gemm_nn_into_tagged(a, b, m, k, n, c, false);
}

/// [`gemm_nn_into`] with a dispatch tag: `pruned` marks calls made by
/// the pruning-aware fast paths so the path counters in
/// [`crate::parallel`] distinguish dense from pruned work. The kernel
/// itself is identical; the active [`SimdPath`] is resolved **once per
/// call** so every band of one GEMM runs the same kernel even if a
/// test flips the override concurrently.
pub(crate) fn gemm_nn_into_tagged(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    pruned: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let path = simd::active_path();
    parallel::record_gemm_path(path == SimdPath::Avx2, pruned);
    let work = 2 * m * n * k;
    parallel::for_each_band(c, m, n, BAND_ROWS, work, |row0, band| {
        let rows = band.len() / n;
        let a_band = &a[row0 * k..(row0 + rows) * k];
        match path {
            SimdPath::Avx2 => simd::gemm_band_avx2(a_band, b, rows, k, n, band),
            SimdPath::Scalar => gemm_band(a_band, b, rows, k, n, band),
        }
    });
}

/// One band of the blocked kernel: `rows × n` of `C`, all of `k`.
fn gemm_band(a: &[f32], b: &[f32], rows: usize, k: usize, n: usize, c: &mut [f32]) {
    for p0 in (0..k).step_by(KC) {
        let p1 = (p0 + KC).min(k);
        let mut i = 0;
        while i + MR <= rows {
            let block = &mut c[i * n..(i + MR) * n];
            let (c0, rest) = block.split_at_mut(n);
            let (c1, rest) = rest.split_at_mut(n);
            let (c2, c3) = rest.split_at_mut(n);
            for p in p0..p1 {
                let b_row = &b[p * n..p * n + n];
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                for j in 0..n {
                    let bv = b_row[j];
                    c0[j] += a0 * bv;
                    c1[j] += a1 * bv;
                    c2[j] += a2 * bv;
                    c3[j] += a3 * bv;
                }
            }
            i += MR;
        }
        while i < rows {
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in p0..p1 {
                let b_row = &b[p * n..p * n + n];
                let a_ip = a[i * k + p];
                for j in 0..n {
                    c_row[j] += a_ip * b_row[j];
                }
            }
            i += 1;
        }
    }
}

/// Cache-tiled transpose of a row-major `rows × cols` slice.
fn pack_transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut dst = vec![0.0f32; src.len()];
    pack_transpose_into(src, rows, cols, &mut dst);
    dst
}

/// [`pack_transpose`] into a caller-provided buffer (every element is
/// written, so `dst` need not be zeroed). Crate-visible for the
/// workspace-pooled conv kernels.
///
/// Dispatches to the AVX2 8×8 in-register transpose when the SIMD path
/// is active — a transpose is pure element copies, so both routes fill
/// `dst` with the same bits and the choice never affects a numeric
/// result, only pack throughput.
pub(crate) fn pack_transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    const TILE: usize = 32;
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), src.len());
    if simd::active_path() == SimdPath::Avx2 {
        simd::transpose_avx2(src, rows, cols, dst);
        return;
    }
    for r0 in (0..rows).step_by(TILE) {
        for c0 in (0..cols).step_by(TILE) {
            for r in r0..(r0 + TILE).min(rows) {
                for c in c0..(c0 + TILE).min(cols) {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// [`pack_transpose_into`] over a **row subset**: packs the transpose
/// of the logical `[row_ids.len(), src_cols]` matrix whose row `i` is
/// row `row_ids[i]` of `src`, without materialising the gathered
/// matrix. Pure element copies either way, so the output is
/// bit-identical to gather-then-[`pack_transpose_into`] on both
/// dispatch paths; skipping the intermediate copy is what lets the
/// pruned NT fast path beat its FLOP fraction.
pub(crate) fn pack_transpose_rows_into(
    src: &[f32],
    src_cols: usize,
    row_ids: &[usize],
    dst: &mut [f32],
) {
    const TILE: usize = 32;
    let rows = row_ids.len();
    debug_assert_eq!(dst.len(), rows * src_cols);
    if simd::active_path() == SimdPath::Avx2 {
        simd::transpose_rows_avx2(src, src_cols, row_ids, dst);
        return;
    }
    for r0 in (0..rows).step_by(TILE) {
        for c0 in (0..src_cols).step_by(TILE) {
            for r in r0..(r0 + TILE).min(rows) {
                let row = &src[row_ids[r] * src_cols..(row_ids[r] + 1) * src_cols];
                for c in c0..(c0 + TILE).min(src_cols) {
                    dst[c * rows + r] = row[c];
                }
            }
        }
    }
}

impl Tensor {
    /// `self @ other` for rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    /// Panics if either operand is not rank-2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.shape().rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

        let mut out = Tensor::zeros(&[m, n]);
        if m > 0 && n > 0 && k > 0 {
            gemm_nn_into(self.data(), other.data(), m, k, n, out.data_mut());
        }
        out
    }

    /// `self @ otherᵀ`: `[m, k] x [n, k] -> [m, n]` without materialising
    /// the transpose at the call site. This is the forward/input-gradient
    /// GEMM of a linear layer. Internally `other` is packed transposed
    /// once so the blocked kernel's streaming inner loop applies; the
    /// per-element accumulation order (ascending `k`) matches the naive
    /// dot product.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul_nt lhs must be rank-2");
        assert_eq!(other.shape().rank(), 2, "matmul_nt rhs must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");

        let mut out = Tensor::zeros(&[m, n]);
        if m > 0 && n > 0 && k > 0 {
            let bt = pack_transpose(other.data(), n, k);
            gemm_nn_into(self.data(), &bt, m, k, n, out.data_mut());
        }
        out
    }

    /// `selfᵀ @ other`: `[k, m] x [k, n] -> [m, n]` without materialising
    /// the transpose at the call site. This is the weight-gradient GEMM
    /// of a linear layer; `self` is packed transposed once.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul_tn lhs must be rank-2");
        assert_eq!(other.shape().rank(), 2, "matmul_tn rhs must be rank-2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");

        let mut out = Tensor::zeros(&[m, n]);
        if m > 0 && n > 0 && k > 0 {
            let at = pack_transpose(self.data(), k, m);
            gemm_nn_into(&at, other.data(), m, k, n, out.data_mut());
        }
        out
    }
}

/// Pruning-aware `x @ Wᵀ` against a **full-size** weight: computes only
/// the kept output neurons over the kept input features, without
/// materialising the extracted sub-weight.
///
/// * `input` — `[m, f]` where `f` is either the full feature count
///   (`weight.dims()[1]`, "masked" mode: pruned features present but
///   skipped by the gather) or exactly `kept_in.len()` ("chain" mode).
/// * `weight` — full `[out_features, in_features]`.
///
/// Returns `[m, kept_out.len()]` (no bias), **bit-identical** to
/// [`Tensor::matmul_nt`] between the gathered input and the gathered
/// sub-weight: the packed-transpose panel built here contains exactly
/// the bytes `pack_transpose` would produce from the gathered weight,
/// and the GEMM is the same deterministic kernel. Tagged `pruned` in
/// the dispatch-path counters.
pub fn matmul_nt_pruned(
    input: &Tensor,
    weight: &Tensor,
    kept_out: &[usize],
    kept_in: &[usize],
) -> Tensor {
    assert_eq!(input.shape().rank(), 2, "matmul_nt_pruned input must be rank-2");
    assert_eq!(weight.shape().rank(), 2, "matmul_nt_pruned weight must be rank-2");
    let (m, f) = (input.dims()[0], input.dims()[1]);
    let (of_full, if_full) = (weight.dims()[0], weight.dims()[1]);
    let (ko, ki) = (kept_out.len(), kept_in.len());
    assert!(ko >= 1 && ki >= 1, "matmul_nt_pruned: empty kept set");
    assert!(kept_out.iter().all(|&o| o < of_full), "matmul_nt_pruned: kept_out out of range");
    assert!(kept_in.iter().all(|&j| j < if_full), "matmul_nt_pruned: kept_in out of range");
    let masked = f == if_full && if_full != ki;
    assert!(
        f == if_full || f == ki,
        "matmul_nt_pruned: input has {f} features, expected {if_full} (masked) or {ki} (chain)"
    );

    let mut out = Tensor::zeros(&[m, ko]);
    if m == 0 {
        return out;
    }
    let w = weight.data();
    crate::workspace::with_thread_workspace(|ws| {
        // Build the `[ki, ko]` packed panel of the gathered sub-weight.
        // Unpruned input features: transpose straight out of the kept
        // rows of `w` (no intermediate gather). Pruned input features:
        // gather the `[ko, ki]` sub-weight first, then run the same
        // tiled/SIMD `pack_transpose_into` as the dense path. All
        // routes are element copies, so `bt` holds exactly the bytes
        // `pack_transpose` would produce from the gathered sub-weight.
        let mut bt = ws.take_zeroed(ki * ko);
        if ki == if_full {
            pack_transpose_rows_into(w, if_full, kept_out, &mut bt);
        } else {
            let mut sub = ws.take_zeroed(ko * ki);
            for (i, &of) in kept_out.iter().enumerate() {
                let row = &w[of * if_full..(of + 1) * if_full];
                for (d, &jf) in sub[i * ki..(i + 1) * ki].iter_mut().zip(kept_in.iter()) {
                    *d = row[jf];
                }
            }
            pack_transpose_into(&sub, ko, ki, &mut bt);
            ws.give(sub);
        }
        if masked {
            let x = input.data();
            let mut xs = ws.take_zeroed(m * ki);
            for r in 0..m {
                let row = &x[r * f..(r + 1) * f];
                let dst = &mut xs[r * ki..(r + 1) * ki];
                for (d, &jf) in dst.iter_mut().zip(kept_in.iter()) {
                    *d = row[jf];
                }
            }
            gemm_nn_into_tagged(&xs, &bt, m, ki, ko, out.data_mut(), true);
            ws.give(xs);
        } else {
            gemm_nn_into_tagged(input.data(), &bt, m, ki, ko, out.data_mut(), true);
        }
        ws.give(bt);
    });
    out
}

/// Naive i-k-j `[m, k] x [k, n]` GEMM: the pre-blocking kernel, kept as
/// the oracle for equivalence tests and benchmark baselines.
pub fn matmul_reference(lhs: &Tensor, rhs: &Tensor) -> Tensor {
    assert_eq!(lhs.shape().rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(rhs.shape().rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (lhs.dims()[0], lhs.dims()[1]);
    let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let a = lhs.data();
    let b = rhs.data();
    let mut out = Tensor::zeros(&[m, n]);
    let c = out.data_mut();
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ip * b_pj;
            }
        }
    }
    out
}

/// Naive dot-product `[m, k] x [n, k] -> [m, n]` GEMM (implicit
/// transpose of `rhs`): oracle and baseline for [`Tensor::matmul_nt`].
pub fn matmul_nt_reference(lhs: &Tensor, rhs: &Tensor) -> Tensor {
    assert_eq!(lhs.shape().rank(), 2, "matmul_nt lhs must be rank-2");
    assert_eq!(rhs.shape().rank(), 2, "matmul_nt rhs must be rank-2");
    let (m, k) = (lhs.dims()[0], lhs.dims()[1]);
    let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");

    let a = lhs.data();
    let b = rhs.data();
    let mut out = Tensor::zeros(&[m, n]);
    let c = out.data_mut();
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            c[i * n + j] = acc;
        }
    }
    out
}

/// Naive p-i-j `[k, m] x [k, n] -> [m, n]` GEMM (implicit transpose of
/// `lhs`): oracle and baseline for [`Tensor::matmul_tn`].
pub fn matmul_tn_reference(lhs: &Tensor, rhs: &Tensor) -> Tensor {
    assert_eq!(lhs.shape().rank(), 2, "matmul_tn lhs must be rank-2");
    assert_eq!(rhs.shape().rank(), 2, "matmul_tn rhs must be rank-2");
    let (k, m) = (lhs.dims()[0], lhs.dims()[1]);
    let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");

    let a = lhs.data();
    let b = rhs.data();
    let mut out = Tensor::zeros(&[m, n]);
    let c = out.data_mut();
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_pi * b_pj;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = seeded_rng(5);
        let a = Tensor::randn(&[4, 4], &mut rng);
        assert_close(&a.matmul(&Tensor::eye(4)), &a, 1e-6);
        assert_close(&Tensor::eye(4).matmul(&a), &a, 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = seeded_rng(6);
        let a = Tensor::randn(&[3, 5], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        assert_close(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-5);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = seeded_rng(7);
        let a = Tensor::randn(&[5, 3], &mut rng);
        let b = Tensor::randn(&[5, 4], &mut rng);
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn associativity_with_identity_chain() {
        let mut rng = seeded_rng(8);
        let a = Tensor::randn(&[2, 6], &mut rng);
        let b = Tensor::randn(&[6, 3], &mut rng);
        let c = Tensor::randn(&[3, 4], &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-4);
    }

    #[test]
    fn blocked_matches_reference_past_tile_boundaries() {
        // Shapes straddling KC, MR and BAND_ROWS multiples.
        let mut rng = seeded_rng(9);
        for (m, k, n) in [(1, 1, 1), (3, 130, 5), (65, 129, 7), (130, 257, 66)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(&a.matmul(&b), &matmul_reference(&a, &b), 1e-4);
            let bt = Tensor::randn(&[n, k], &mut rng);
            assert_close(&a.matmul_nt(&bt), &matmul_nt_reference(&a, &bt), 1e-4);
            let at = Tensor::randn(&[k, m], &mut rng);
            let bn = Tensor::randn(&[k, n], &mut rng);
            assert_close(&at.matmul_tn(&bn), &matmul_tn_reference(&at, &bn), 1e-4);
        }
    }

    #[test]
    fn zero_sized_dims_produce_empty_outputs() {
        for (m, k, n) in [(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0)] {
            let a = Tensor::zeros(&[m, k]);
            let b = Tensor::zeros(&[k, n]);
            assert_eq!(a.matmul(&b).dims(), &[m, n]);
            let bt = Tensor::zeros(&[n, k]);
            assert_eq!(a.matmul_nt(&bt).dims(), &[m, n]);
            let at = Tensor::zeros(&[k, m]);
            assert_eq!(at.matmul_tn(&b).dims(), &[m, n]);
        }
    }

    #[test]
    fn nt_pruned_is_bitwise_identical_to_extracted_dense() {
        let mut rng = seeded_rng(11);
        let (m, of, inf) = (5, 9, 12);
        let x = Tensor::randn(&[m, inf], &mut rng);
        let w = Tensor::randn(&[of, inf], &mut rng);
        let kept_out = vec![0, 3, 4, 8];
        let kept_in = vec![1, 2, 5, 9, 11];

        // Reference: dense matmul_nt on gathered operands.
        let mut sub_w = Vec::new();
        for &o in &kept_out {
            for &j in &kept_in {
                sub_w.push(w.data()[o * inf + j]);
            }
        }
        let sub_w = Tensor::from_vec(sub_w, &[kept_out.len(), kept_in.len()]).unwrap();
        let mut sub_x = Vec::new();
        for r in 0..m {
            for &j in &kept_in {
                sub_x.push(x.data()[r * inf + j]);
            }
        }
        let sub_x = Tensor::from_vec(sub_x, &[m, kept_in.len()]).unwrap();
        let dense = sub_x.matmul_nt(&sub_w);

        assert_eq!(matmul_nt_pruned(&x, &w, &kept_out, &kept_in), dense, "masked mode");
        assert_eq!(matmul_nt_pruned(&sub_x, &w, &kept_out, &kept_in), dense, "chain mode");
    }

    #[test]
    fn pack_transpose_round_trips() {
        let mut rng = seeded_rng(10);
        let t = Tensor::randn(&[37, 41], &mut rng);
        let packed = pack_transpose(t.data(), 37, 41);
        let back = pack_transpose(&packed, 41, 37);
        assert_eq!(back, t.data());
    }
}
