//! Shape bookkeeping: dimensions, volumes and row-major strides.

use serde::{Deserialize, Serialize};

/// The shape of a tensor: an ordered list of dimension sizes.
///
/// Shapes are immutable once created; reshaping a tensor produces a new
/// `Shape`. The empty shape is disallowed — scalars are `[1]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Panics
    /// Panics if `dims` is empty.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "tensor shape must have at least one dimension");
        Shape(dims.to_vec())
    }

    /// The dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics (in debug builds) if the index rank or any coordinate is out
    /// of range.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for (i, (&idx, &dim)) in index.iter().zip(self.0.iter()).enumerate().rev() {
            debug_assert!(idx < dim, "index {idx} out of range for dim {i} of size {dim}");
            off += idx * stride;
            stride *= dim;
            let _ = i;
        }
        off
    }

    /// Whether two shapes are compatible for elementwise binary ops
    /// (exact equality — this library does not broadcast implicitly).
    #[inline]
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::new(&[5]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[1, 0, 1]), 13);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_shape_panics() {
        let _ = Shape::new(&[]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }
}
