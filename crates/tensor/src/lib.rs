//! # fedmp-tensor
//!
//! A small, dependency-light dense tensor library in pure Rust. It is the
//! training substrate for the FedMP reproduction: every layer in
//! `fedmp-nn` is built from the operations here, and the structured-pruning
//! machinery in `fedmp-pruning` manipulates these tensors directly.
//!
//! Design notes:
//!
//! * Tensors are **row-major, contiguous `f32`** buffers. FL training for
//!   the paper's workloads never needs strided views, so contiguity keeps
//!   every hot loop a straight slice walk.
//! * Shape mismatches are **programming errors** and panic with a
//!   descriptive message; fallible construction from external data returns
//!   [`TensorError`].
//! * All randomness is funnelled through seeded [`rand::rngs::StdRng`]
//!   instances so every experiment in the repository is reproducible.
//!
//! ```
//! use fedmp_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

// The only crate in the workspace allowed to contain `unsafe` (the band
// scheduler in `parallel`); every other crate carries
// `#![forbid(unsafe_code)]`. Operations inside `unsafe fn` still need
// their own `unsafe {}` blocks so each one carries a SAFETY comment —
// backed statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![deny(unsafe_op_in_unsafe_fn)]

mod conv;
mod error;
pub mod exact;
mod matmul;
mod ops;
pub mod parallel;
mod pool;
mod rng;
mod shape;
pub mod simd;
mod tensor;
pub mod workspace;

pub use conv::{
    col2im, col2im_into, conv2d_backward_input, conv2d_backward_weight, conv2d_forward,
    conv2d_forward_pruned, im2col, im2col_into, im2col_pruned_into, Conv2dSpec,
};
pub use error::TensorError;
pub use exact::{exact_sum_f32, ExactSum};
pub use matmul::{matmul_nt_pruned, matmul_nt_reference, matmul_reference, matmul_tn_reference};
pub use ops::{cross_entropy_loss, log_softmax_rows, softmax_rows, CrossEntropyOutput};
pub use pool::{
    avg_pool2d_backward, avg_pool2d_forward, max_pool2d_backward, max_pool2d_forward, Pool2dSpec,
};
pub use rng::{normal, seeded_rng, shuffled_indices, standard_normal_vec, uniform_vec};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{with_thread_workspace, Workspace};
