//! Explicit SIMD GEMM microkernels and the `FEDMP_SIMD` path switch.
//!
//! The blocked scalar kernel in `crate::matmul` is what LLVM
//! auto-vectorises against the x86-64 baseline (SSE2). This module adds
//! a hand-written AVX2/FMA band kernel — 4×16 register-blocked, eight
//! YMM accumulators held across each `KC`-sized `k` tile — plus the
//! runtime machinery that decides, once per process, which kernel the
//! dispatch in `matmul::gemm_nn_into` uses:
//!
//! 1. a test/bench override ([`override_path`]),
//! 2. the `FEDMP_SIMD` environment variable (`auto` | `avx2` | `scalar`),
//! 3. runtime CPU feature detection (`avx2` **and** `fma` required).
//!
//! A request for `avx2` on a host without the features downgrades to
//! the scalar path with a warning rather than risking an illegal
//! instruction; `scalar` always wins so any run can be reproduced
//! bit-for-bit on a machine without AVX2.
//!
//! # Determinism under SIMD
//!
//! The workspace contract — bit-identical results run-to-run and at any
//! thread count for a fixed configuration — holds for the AVX2 kernel
//! by the same argument as the scalar one:
//!
//! * every output element is accumulated in **one fixed lane** of one
//!   accumulator register as a single FMA chain ascending in `k`; there
//!   are no horizontal sums, so lanes never interact. The `KC` tiling
//!   only inserts exact f32 store/load round-trips of the running value
//!   between tiles — tile boundaries are a function of `k` alone;
//! * which sub-kernel (16-wide / 8-wide / scalar-tail) owns an element
//!   is a function of the shape alone, never of the thread count — the
//!   band decomposition above this kernel is likewise shape-only;
//! * FMA is an IEEE 754 fused operation (one rounding), so each chain
//!   is a pure function of its inputs.
//!
//! The SIMD result *differs* from the scalar path in the last ulps
//! (fused vs separate rounding, different tile widths) — that
//! cross-path difference is bounded by the tolerance proptests, while
//! each path is exactly reproducible on its own.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which inner GEMM kernel the dispatch uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPath {
    /// Hand-written AVX2/FMA 4×16 register-blocked kernel.
    Avx2,
    /// The portable blocked scalar kernel (LLVM auto-vectorised against
    /// the target baseline).
    Scalar,
}

impl SimdPath {
    /// Stable lowercase name, as accepted by `FEDMP_SIMD` and reported
    /// in benches/traces.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Avx2 => "avx2",
            SimdPath::Scalar => "scalar",
        }
    }
}

/// Whether this host can run the AVX2 kernel (needs `avx2` + `fma`).
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static SUPPORTED: OnceLock<bool> = OnceLock::new();
        *SUPPORTED
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Detected ISA summary for bench metadata, e.g. `"x86_64:avx2+fma"` or
/// `"x86_64:baseline"`; non-x86 hosts report the architecture alone.
pub fn detected_features() -> String {
    let arch = std::env::consts::ARCH;
    if avx2_supported() {
        format!("{arch}:avx2+fma")
    } else {
        format!("{arch}:baseline")
    }
}

const OVERRIDE_NONE: u8 = 0;
const OVERRIDE_AVX2: u8 = 1;
const OVERRIDE_SCALAR: u8 = 2;

static OVERRIDE: AtomicU8 = AtomicU8::new(OVERRIDE_NONE);
static CONFIGURED: OnceLock<SimdPath> = OnceLock::new();

fn configured_path() -> SimdPath {
    *CONFIGURED.get_or_init(|| {
        // The env read below is the one sanctioned ambient input of this
        // module (mirroring FEDMP_THREADS in `parallel`): read once,
        // pre-run, then pinned for the process lifetime.
        match std::env::var("FEDMP_SIMD") {
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "scalar" => SimdPath::Scalar,
                "avx2" => {
                    if avx2_supported() {
                        SimdPath::Avx2
                    } else {
                        eprintln!(
                            "FEDMP_SIMD=avx2 requested but this host lacks avx2+fma; \
                             falling back to the scalar kernel"
                        );
                        SimdPath::Scalar
                    }
                }
                "auto" | "" => auto_path(),
                _ => {
                    eprintln!("FEDMP_SIMD={raw:?} is not one of auto|avx2|scalar; using auto");
                    auto_path()
                }
            },
            Err(_) => auto_path(),
        }
    })
}

fn auto_path() -> SimdPath {
    if avx2_supported() {
        SimdPath::Avx2
    } else {
        SimdPath::Scalar
    }
}

/// The kernel path GEMM dispatch will use: the [`override_path`] value
/// if one is set, else the `FEDMP_SIMD` choice, else auto-detection.
/// An override of [`SimdPath::Avx2`] on a host without the features
/// resolves to [`SimdPath::Scalar`] (the kernel is never selected
/// unsupported, which is what makes `gemm_band_avx2` safe to call).
pub fn active_path() -> SimdPath {
    match OVERRIDE.load(Ordering::Relaxed) {
        OVERRIDE_AVX2 if avx2_supported() => SimdPath::Avx2,
        OVERRIDE_AVX2 => SimdPath::Scalar,
        OVERRIDE_SCALAR => SimdPath::Scalar,
        _ => configured_path(),
    }
}

/// Forces the kernel path for this process (`None` restores the
/// `FEDMP_SIMD`/auto default). Intended for tests and benches that
/// compare both paths within one process; like
/// [`crate::parallel::override_threads`], kernels running concurrently
/// with a change may use either path, so bitwise path comparisons must
/// serialise their flips.
pub fn override_path(path: Option<SimdPath>) {
    let v = match path {
        None => OVERRIDE_NONE,
        Some(SimdPath::Avx2) => OVERRIDE_AVX2,
        Some(SimdPath::Scalar) => OVERRIDE_SCALAR,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// One band of the AVX2/FMA kernel: `C += A @ B` over `rows × n` of the
/// output with the full `k` extent, matching the contract of the scalar
/// `matmul::gemm_band`.
///
/// # Panics
/// Panics if the slice lengths disagree with `rows`/`k`/`n`, or if the
/// caller selected this kernel on a host without avx2+fma — dispatch
/// must route through [`active_path`], which never does.
pub(crate) fn gemm_band_avx2(a: &[f32], b: &[f32], rows: usize, k: usize, n: usize, c: &mut [f32]) {
    assert_eq!(a.len(), rows * k, "gemm_band_avx2: lhs len");
    assert_eq!(b.len(), k * n, "gemm_band_avx2: rhs len");
    assert_eq!(c.len(), rows * n, "gemm_band_avx2: out len");
    assert!(avx2_supported(), "gemm_band_avx2 selected without avx2+fma");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the assert above proves the host supports avx2+fma at
    // runtime, which is the only precondition of the target_feature fn.
    unsafe {
        x86::gemm_band(a, b, rows, k, n, c)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("avx2_supported() is false on non-x86_64, so the assert above already fired");
}

/// Cache-tiled transpose (`dst[c * rows + r] = src[r * cols + c]`)
/// through AVX2 8×8 in-register blocks. A transpose is pure element
/// copies, so this is **bit-identical** to the scalar tile loop in
/// `matmul::pack_transpose_into` — which path packs a panel never
/// affects any numeric result, only how fast the pack runs.
///
/// # Panics
/// Panics if the slice lengths disagree with `rows`/`cols`, or if
/// called on a host without avx2+fma (dispatch must check
/// [`active_path`] first).
pub(crate) fn transpose_avx2(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), rows * cols, "transpose_avx2: src len");
    assert_eq!(dst.len(), src.len(), "transpose_avx2: dst len");
    assert!(avx2_supported(), "transpose_avx2 selected without avx2+fma");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the assert above proves the host supports avx2+fma at
    // runtime, which is the only precondition of the target_feature fn.
    unsafe {
        x86::transpose(src, rows, cols, dst)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("avx2_supported() is false on non-x86_64, so the assert above already fired");
}

/// [`transpose_avx2`] over a **row subset**: transposes the logical
/// `[row_ids.len(), src_cols]` matrix whose row `i` is row `row_ids[i]`
/// of `src`, without materialising the gathered matrix first. Pure
/// element copies — bit-identical to gather-then-transpose.
///
/// # Panics
/// Panics if any row id is out of range, if `dst` is not
/// `row_ids.len() * src_cols` long, or if called on a host without
/// avx2+fma (dispatch must check [`active_path`] first).
pub(crate) fn transpose_rows_avx2(
    src: &[f32],
    src_cols: usize,
    row_ids: &[usize],
    dst: &mut [f32],
) {
    assert!(
        row_ids.iter().all(|&r| (r + 1) * src_cols <= src.len()),
        "transpose_rows_avx2: row id out of range"
    );
    assert_eq!(dst.len(), row_ids.len() * src_cols, "transpose_rows_avx2: dst len");
    assert!(avx2_supported(), "transpose_rows_avx2 selected without avx2+fma");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the assert above proves the host supports avx2+fma at
    // runtime, which is the only precondition of the target_feature fn.
    unsafe {
        x86::transpose_rows(src, src_cols, row_ids, dst)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("avx2_supported() is false on non-x86_64, so the assert above already fired");
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The AVX2/FMA band kernel proper. Everything here is compiled
    //! with `target_feature(enable = "avx2,fma")` and reached only
    //! through the runtime-detection gate in the parent module.

    use core::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_permute2f128_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_shuffle_ps, _mm256_storeu_ps, _mm256_unpackhi_ps,
        _mm256_unpacklo_ps,
    };

    /// Cache-tiled transpose with an 8×8 in-register inner block
    /// (unpack / shuffle / 128-bit-lane permute — the classic AVX
    /// pattern). Element copies only: bit-identical to the scalar
    /// tile loop whatever the tiling.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn transpose(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
        const TILE: usize = 32;
        for r0 in (0..rows).step_by(TILE) {
            let r_end = (r0 + TILE).min(rows);
            for c0 in (0..cols).step_by(TILE) {
                let c_end = (c0 + TILE).min(cols);
                let mut r = r0;
                while r + 8 <= r_end {
                    let mut c = c0;
                    while c + 8 <= c_end {
                        t8x8(src, rows, cols, r, c, dst);
                        c += 8;
                    }
                    for rr in r..r + 8 {
                        for cc in c..c_end {
                            dst[cc * rows + rr] = src[rr * cols + cc];
                        }
                    }
                    r += 8;
                }
                for rr in r..r_end {
                    for cc in c0..c_end {
                        dst[cc * rows + rr] = src[rr * cols + cc];
                    }
                }
            }
        }
    }

    /// Transposes the 8×8 block at `src[r.., c..]` into `dst[c.., r..]`
    /// entirely in registers.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn t8x8(src: &[f32], rows: usize, cols: usize, r: usize, c: usize, dst: &mut [f32]) {
        let mut i = [_mm256_setzero_ps(); 8];
        for (q, iq) in i.iter_mut().enumerate() {
            *iq = load8(src, (r + q) * cols + c);
        }
        store_t8x8(shuffle8(i), dst, rows, r, c);
    }

    /// [`t8x8`] with the 8 source rows at arbitrary row bases
    /// (`row_ids[q] * cols`) — the gathered-row transpose inner block.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn t8x8_rows(
        src: &[f32],
        cols: usize,
        row_ids: &[usize],
        rows: usize,
        r: usize,
        c: usize,
        dst: &mut [f32],
    ) {
        let mut i = [_mm256_setzero_ps(); 8];
        for (q, iq) in i.iter_mut().enumerate() {
            *iq = load8(src, row_ids[r + q] * cols + c);
        }
        store_t8x8(shuffle8(i), dst, rows, r, c);
    }

    /// The classic AVX 8×8 transpose shuffle network (unpack / shuffle
    /// / 128-bit-lane permute): returns the transposed registers.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn shuffle8(i: [__m256; 8]) -> [__m256; 8] {
        let t0 = _mm256_unpacklo_ps(i[0], i[1]);
        let t1 = _mm256_unpackhi_ps(i[0], i[1]);
        let t2 = _mm256_unpacklo_ps(i[2], i[3]);
        let t3 = _mm256_unpackhi_ps(i[2], i[3]);
        let t4 = _mm256_unpacklo_ps(i[4], i[5]);
        let t5 = _mm256_unpackhi_ps(i[4], i[5]);
        let t6 = _mm256_unpacklo_ps(i[6], i[7]);
        let t7 = _mm256_unpackhi_ps(i[6], i[7]);
        let s0 = _mm256_shuffle_ps::<0x44>(t0, t2);
        let s1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
        let s2 = _mm256_shuffle_ps::<0x44>(t1, t3);
        let s3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
        let s4 = _mm256_shuffle_ps::<0x44>(t4, t6);
        let s5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
        let s6 = _mm256_shuffle_ps::<0x44>(t5, t7);
        let s7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
        [
            _mm256_permute2f128_ps::<0x20>(s0, s4),
            _mm256_permute2f128_ps::<0x20>(s1, s5),
            _mm256_permute2f128_ps::<0x20>(s2, s6),
            _mm256_permute2f128_ps::<0x20>(s3, s7),
            _mm256_permute2f128_ps::<0x31>(s0, s4),
            _mm256_permute2f128_ps::<0x31>(s1, s5),
            _mm256_permute2f128_ps::<0x31>(s2, s6),
            _mm256_permute2f128_ps::<0x31>(s3, s7),
        ]
    }

    /// Stores the transposed 8×8 block to `dst[c.., r..]` (dst stride
    /// `rows`).
    #[target_feature(enable = "avx2", enable = "fma")]
    fn store_t8x8(o: [__m256; 8], dst: &mut [f32], rows: usize, r: usize, c: usize) {
        for (q, oq) in o.iter().enumerate() {
            store8(dst, (c + q) * rows + r, *oq);
        }
    }

    /// Gathered-row variant of [`transpose`]: logical row `i` lives at
    /// `src[row_ids[i] * src_cols ..]`. Same tiling, same element
    /// copies, bit-identical output.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn transpose_rows(src: &[f32], src_cols: usize, row_ids: &[usize], dst: &mut [f32]) {
        const TILE: usize = 32;
        let (rows, cols) = (row_ids.len(), src_cols);
        for r0 in (0..rows).step_by(TILE) {
            let r_end = (r0 + TILE).min(rows);
            for c0 in (0..cols).step_by(TILE) {
                let c_end = (c0 + TILE).min(cols);
                let mut r = r0;
                while r + 8 <= r_end {
                    let mut c = c0;
                    while c + 8 <= c_end {
                        t8x8_rows(src, cols, row_ids, rows, r, c, dst);
                        c += 8;
                    }
                    for rr in r..r + 8 {
                        for cc in c..c_end {
                            dst[cc * rows + rr] = src[row_ids[rr] * cols + cc];
                        }
                    }
                    r += 8;
                }
                for rr in r..r_end {
                    for cc in c0..c_end {
                        dst[cc * rows + rr] = src[row_ids[rr] * cols + cc];
                    }
                }
            }
        }
    }

    /// `k`-tile size: large enough to amortise the C round-trip between
    /// tiles, small enough that a tile's 16-column B strip (`KC × 16`
    /// floats = 16 KiB) stays L1-resident while every row block of the
    /// band traverses it.
    const KC: usize = 256;

    /// Entry point: `KC`-sized `k` tiles; inside each tile the column
    /// strips are the outer loop (so a strip's B panel is reused by all
    /// row blocks straight out of L1) and the 4-row/1-row blocks the
    /// inner one. Tiling only inserts exact f32 store/load round-trips
    /// of the running C value between tiles — the per-element FMA chain
    /// still consumes `k` in ascending order. The caller
    /// (`gemm_band_avx2`) has asserted all slice geometry.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn gemm_band(a: &[f32], b: &[f32], rows: usize, k: usize, n: usize, c: &mut [f32]) {
        let mut p0 = 0;
        loop {
            let p1 = (p0 + KC).min(k);
            let mut j = 0;
            while j + 16 <= n {
                let mut i = 0;
                while i + 4 <= rows {
                    rows4(a, b, i, k, p0, p1, n, j, c);
                    i += 4;
                }
                while i < rows {
                    rows1(a, b, i, k, p0, p1, n, j, c);
                    i += 1;
                }
                j += 16;
            }
            while j + 8 <= n {
                let mut i = 0;
                while i + 4 <= rows {
                    rows4_w8(a, b, i, k, p0, p1, n, j, c);
                    i += 4;
                }
                while i < rows {
                    rows1_w8(a, b, i, k, p0, p1, n, j, c);
                    i += 1;
                }
                j += 8;
            }
            if j < n {
                for i in 0..rows {
                    tail_cols(a, b, i, k, p0, p1, n, j, c);
                }
            }
            p0 = p1;
            if p0 >= k {
                break;
            }
        }
    }

    /// 4×16 block at rows `i..i+4`, columns `j..j+16`, over the `k`
    /// tile `p0..p1`: eight YMM accumulators live across the tile.
    /// Each element is one FMA chain ascending in `k` in a fixed lane.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    fn rows4(
        a: &[f32],
        b: &[f32],
        i: usize,
        k: usize,
        p0: usize,
        p1: usize,
        n: usize,
        j: usize,
        c: &mut [f32],
    ) {
        let bp = b.as_ptr();
        let mut acc = [[_mm256_setzero_ps(); 2]; 4];
        for (r, accr) in acc.iter_mut().enumerate() {
            *accr = [load8(c, (i + r) * n + j), load8(c, (i + r) * n + j + 8)];
        }
        for p in p0..p1 {
            let base = p * n + j;
            // SAFETY: p < k and j + 16 <= n, so base + 16 <=
            // k * n == b.len(); unaligned loads are permitted.
            let b0 = unsafe { _mm256_loadu_ps(bp.add(base)) };
            // SAFETY: as above — base + 8 + 8 <= b.len().
            let b1 = unsafe { _mm256_loadu_ps(bp.add(base + 8)) };
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(a[(i + r) * k + p]);
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            store8(c, (i + r) * n + j, accr[0]);
            store8(c, (i + r) * n + j + 8, accr[1]);
        }
    }

    /// 4×8 block (column tail) at rows `i..i+4`, columns `j..j+8`.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    fn rows4_w8(
        a: &[f32],
        b: &[f32],
        i: usize,
        k: usize,
        p0: usize,
        p1: usize,
        n: usize,
        j: usize,
        c: &mut [f32],
    ) {
        let bp = b.as_ptr();
        let mut acc = [_mm256_setzero_ps(); 4];
        for (r, accr) in acc.iter_mut().enumerate() {
            *accr = load8(c, (i + r) * n + j);
        }
        for p in p0..p1 {
            let base = p * n + j;
            // SAFETY: p < k and j + 8 <= n, so base + 8 <= b.len().
            let bv = unsafe { _mm256_loadu_ps(bp.add(base)) };
            for (r, accr) in acc.iter_mut().enumerate() {
                *accr = _mm256_fmadd_ps(_mm256_set1_ps(a[(i + r) * k + p]), bv, *accr);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            store8(c, (i + r) * n + j, *accr);
        }
    }

    /// 1×16 block (row tail) at row `i`, columns `j..j+16`.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    fn rows1(
        a: &[f32],
        b: &[f32],
        i: usize,
        k: usize,
        p0: usize,
        p1: usize,
        n: usize,
        j: usize,
        c: &mut [f32],
    ) {
        let bp = b.as_ptr();
        let mut acc0 = load8(c, i * n + j);
        let mut acc1 = load8(c, i * n + j + 8);
        for p in p0..p1 {
            let base = p * n + j;
            // SAFETY: p < k and j + 16 <= n, so base + 16 <= b.len().
            let b0 = unsafe { _mm256_loadu_ps(bp.add(base)) };
            // SAFETY: as above — base + 8 + 8 <= b.len().
            let b1 = unsafe { _mm256_loadu_ps(bp.add(base + 8)) };
            let av = _mm256_set1_ps(a[i * k + p]);
            acc0 = _mm256_fmadd_ps(av, b0, acc0);
            acc1 = _mm256_fmadd_ps(av, b1, acc1);
        }
        store8(c, i * n + j, acc0);
        store8(c, i * n + j + 8, acc1);
    }

    /// 1×8 block (row and column tail) at row `i`, columns `j..j+8`.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    fn rows1_w8(
        a: &[f32],
        b: &[f32],
        i: usize,
        k: usize,
        p0: usize,
        p1: usize,
        n: usize,
        j: usize,
        c: &mut [f32],
    ) {
        let bp = b.as_ptr();
        let mut acc = load8(c, i * n + j);
        for p in p0..p1 {
            let base = p * n + j;
            // SAFETY: p < k and j + 8 <= n, so base + 8 <= b.len().
            let bv = unsafe { _mm256_loadu_ps(bp.add(base)) };
            acc = _mm256_fmadd_ps(_mm256_set1_ps(a[i * k + p]), bv, acc);
        }
        store8(c, i * n + j, acc);
    }

    /// Scalar tail columns `j0..n` of row `i` over the `k` tile
    /// `p0..p1`, with the same fused multiply-add and ascending-`k`
    /// chain as the vector lanes (`mul_add` compiles to `vfmadd` under
    /// the enabled features).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    fn tail_cols(
        a: &[f32],
        b: &[f32],
        i: usize,
        k: usize,
        p0: usize,
        p1: usize,
        n: usize,
        j0: usize,
        c: &mut [f32],
    ) {
        for jj in j0..n {
            let mut acc = c[i * n + jj];
            for p in p0..p1 {
                acc = a[i * k + p].mul_add(b[p * n + jj], acc);
            }
            c[i * n + jj] = acc;
        }
    }

    /// Eight lanes of `s` starting at `off`, bounds-checked.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn load8(s: &[f32], off: usize) -> __m256 {
        let lanes = &s[off..off + 8];
        // SAFETY: `lanes` is a checked slice of exactly 8 f32s; the
        // unaligned load reads precisely those 32 bytes.
        unsafe { _mm256_loadu_ps(lanes.as_ptr()) }
    }

    /// Stores eight lanes into `s` starting at `off`, bounds-checked.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn store8(s: &mut [f32], off: usize, v: __m256) {
        let lanes = &mut s[off..off + 8];
        // SAFETY: `lanes` is a checked slice of exactly 8 f32s; the
        // unaligned store writes precisely those 32 bytes.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_names_round_trip() {
        assert_eq!(SimdPath::Avx2.name(), "avx2");
        assert_eq!(SimdPath::Scalar.name(), "scalar");
    }

    #[test]
    fn detected_features_names_the_arch() {
        assert!(detected_features().starts_with(std::env::consts::ARCH));
    }

    #[test]
    fn scalar_override_always_wins() {
        override_path(Some(SimdPath::Scalar));
        assert_eq!(active_path(), SimdPath::Scalar);
        override_path(None);
    }

    #[test]
    fn avx2_override_is_clamped_to_support() {
        override_path(Some(SimdPath::Avx2));
        let got = active_path();
        if avx2_supported() {
            assert_eq!(got, SimdPath::Avx2);
        } else {
            assert_eq!(got, SimdPath::Scalar);
        }
        override_path(None);
    }

    #[test]
    fn avx2_band_matches_scalar_shape_contract() {
        if !avx2_supported() {
            return;
        }
        // 5 rows exercises the 4-row block plus a 1-row tail; n = 21
        // exercises 16-wide, (no 8-wide), and 5 scalar tail columns.
        let (rows, k, n) = (5, 7, 21);
        let a: Vec<f32> = (0..rows * k).map(|v| (v as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|v| (v as f32 * 0.21).cos()).collect();
        let mut c = vec![0.0f32; rows * n];
        gemm_band_avx2(&a, &b, rows, k, n, &mut c);
        for i in 0..rows {
            for j in 0..n {
                let mut want = 0.0f64;
                for p in 0..k {
                    want += a[i * k + p] as f64 * b[p * n + j] as f64;
                }
                let got = c[i * n + j] as f64;
                assert!((got - want).abs() < 1e-4, "c[{i},{j}] = {got} vs {want}");
            }
        }
    }
}
