//! Seeded randomness helpers.
//!
//! Every stochastic component in the repository (weight init, data
//! synthesis, SGD shuffling, bandit arm sampling, simulator jitter) draws
//! from a seeded [`StdRng`] so experiments are bit-reproducible. The
//! `rand` crate ships no normal distribution by itself, so we implement
//! Box–Muller here rather than add a dependency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One sample from `N(mean, std²)` via the Box–Muller transform.
pub fn normal(mean: f32, std: f32, rng: &mut StdRng) -> f32 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std * mag * (2.0 * std::f32::consts::PI * u2).cos()
}

/// `n` i.i.d. samples from the standard normal distribution.
pub fn standard_normal_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| normal(0.0, 1.0, rng)).collect()
}

/// `n` i.i.d. samples from `U[lo, hi)`.
pub fn uniform_vec(n: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A Fisher–Yates-shuffled permutation of `0..n`.
pub fn shuffled_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a = standard_normal_vec(16, &mut seeded_rng(42));
        let b = standard_normal_vec(16, &mut seeded_rng(42));
        assert_eq!(a, b);
        let c = standard_normal_vec(16, &mut seeded_rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded_rng(1);
        let xs = standard_normal_vec(20_000, &mut rng);
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = seeded_rng(2);
        for x in uniform_vec(1000, -1.5, 2.5, &mut rng) {
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = seeded_rng(3);
        let mut p = shuffled_indices(100, &mut rng);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn normal_values_finite() {
        let mut rng = seeded_rng(4);
        for _ in 0..10_000 {
            assert!(normal(0.0, 1.0, &mut rng).is_finite());
        }
    }
}
