//! 2-D max and average pooling with backward passes.
//!
//! All four kernels parallelise over the batch via [`crate::parallel`]:
//! every image owns a disjoint slice of the output buffer, so results
//! are bit-identical at any thread count.

use crate::parallel;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Geometry of a pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool2dSpec {
    /// Window height.
    pub kh: usize,
    /// Window width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
}

impl Pool2dSpec {
    /// A square window with stride equal to its size (the common case).
    pub fn square(k: usize) -> Self {
        Pool2dSpec { kh: k, kw: k, stride: k }
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        ((h - self.kh) / self.stride + 1, (w - self.kw) / self.stride + 1)
    }
}

/// Max-pool forward. Returns the pooled tensor and the argmax indices
/// (flat offsets into the input) needed by the backward pass.
pub fn max_pool2d_forward(input: &Tensor, spec: &Pool2dSpec) -> (Tensor, Vec<usize>) {
    let d = input.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (oh, ow) = spec.out_hw(h, w);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let src = input.data();
    let out_img = c * oh * ow;
    let work = n * out_img * spec.kh * spec.kw;

    // Pass 1 (batch-parallel): argmax offsets, one disjoint band of the
    // index buffer per image.
    parallel::for_each_band(&mut argmax, n, out_img, 1, work, |i, band| {
        let mut o = 0usize;
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..spec.kh {
                        let iy = oy * spec.stride + ky;
                        for kx in 0..spec.kw {
                            let ix = ox * spec.stride + kx;
                            let idx = base + iy * w + ix;
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    band[o] = best_idx;
                    o += 1;
                }
            }
        }
    });

    // Pass 2: gather the pooled values through the argmax offsets.
    for (dv, &idx) in out.data_mut().iter_mut().zip(argmax.iter()) {
        *dv = src[idx];
    }
    (out, argmax)
}

/// Max-pool backward: routes each output gradient to its argmax input.
/// Argmax offsets stay within their own image, so the scatter is
/// batch-parallel over disjoint `grad_in` slices.
pub fn max_pool2d_backward(grad_out: &Tensor, argmax: &[usize], input_dims: &[usize]) -> Tensor {
    assert_eq!(grad_out.numel(), argmax.len(), "max-pool backward: argmax length");
    let n = input_dims[0];
    let mut grad_in = Tensor::zeros(input_dims);
    let in_img = grad_in.numel() / n.max(1);
    let out_img = argmax.len() / n.max(1);
    let go = grad_out.data();
    parallel::for_each_band(grad_in.data_mut(), n, in_img, 1, argmax.len(), |i, band| {
        let base = i * in_img;
        let go_img = &go[i * out_img..(i + 1) * out_img];
        let am_img = &argmax[i * out_img..(i + 1) * out_img];
        for (&g, &idx) in go_img.iter().zip(am_img.iter()) {
            band[idx - base] += g;
        }
    });
    grad_in
}

/// Average-pool forward.
pub fn avg_pool2d_forward(input: &Tensor, spec: &Pool2dSpec) -> Tensor {
    let d = input.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (oh, ow) = spec.out_hw(h, w);
    let inv = 1.0 / (spec.kh * spec.kw) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let src = input.data();
    let out_img = c * oh * ow;
    let work = n * out_img * spec.kh * spec.kw;
    parallel::for_each_band(out.data_mut(), n, out_img, 1, work, |i, band| {
        let mut o = 0usize;
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..spec.kh {
                        let iy = oy * spec.stride + ky;
                        for kx in 0..spec.kw {
                            acc += src[base + iy * w + ox * spec.stride + kx];
                        }
                    }
                    band[o] = acc * inv;
                    o += 1;
                }
            }
        }
    });
    out
}

/// Average-pool backward: spreads each output gradient uniformly over its
/// window.
pub fn avg_pool2d_backward(grad_out: &Tensor, input_dims: &[usize], spec: &Pool2dSpec) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(grad_out.dims(), &[n, c, oh, ow], "avg-pool backward: grad shape");
    let inv = 1.0 / (spec.kh * spec.kw) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let go = grad_out.data();
    let in_img = c * h * w;
    let out_img = c * oh * ow;
    let work = n * out_img * spec.kh * spec.kw;
    parallel::for_each_band(grad_in.data_mut(), n, in_img, 1, work, |i, band| {
        let mut o = i * out_img;
        for ch in 0..c {
            let base = ch * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[o] * inv;
                    o += 1;
                    for ky in 0..spec.kh {
                        let iy = oy * spec.stride + ky;
                        for kx in 0..spec.kw {
                            band[base + iy * w + ox * spec.stride + kx] += g;
                        }
                    }
                }
            }
        }
    });
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn max_pool_known_values() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, argmax) = max_pool2d_forward(&input, &Pool2dSpec::square(2));
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 4.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let spec = Pool2dSpec::square(2);
        let (_, argmax) = max_pool2d_forward(&input, &spec);
        let grad_out = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let gi = max_pool2d_backward(&grad_out, &argmax, input.dims());
        assert_eq!(gi.data(), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn avg_pool_known_values() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let out = avg_pool2d_forward(&input, &Pool2dSpec::square(2));
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let grad_out = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap();
        let gi = avg_pool2d_backward(&grad_out, &[1, 1, 2, 2], &Pool2dSpec::square(2));
        assert_eq!(gi.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    // The index arithmetic spells out (image * channels + channel) *
    // plane even where a factor is zero.
    #[allow(clippy::identity_op, clippy::erasing_op)]
    fn pooling_preserves_batch_and_channel_structure() {
        let mut rng = seeded_rng(20);
        let input = Tensor::randn(&[3, 4, 8, 8], &mut rng);
        let spec = Pool2dSpec::square(2);
        let (out, _) = max_pool2d_forward(&input, &spec);
        assert_eq!(out.dims(), &[3, 4, 4, 4]);
        // Channel 2 of image 1 must only depend on channel 2 of image 1.
        let mut input2 = input.clone();
        // Perturb a different channel; pooled output for [1,2,..] unchanged.
        for v in &mut input2.data_mut()[(0 * 4 + 1) * 64..(0 * 4 + 2) * 64] {
            *v += 100.0;
        }
        let (out2, _) = max_pool2d_forward(&input2, &spec);
        let off = (1 * 4 + 2) * 16;
        assert_eq!(&out.data()[off..off + 16], &out2.data()[off..off + 16]);
    }

    #[test]
    fn avg_pool_grad_matches_finite_difference() {
        let mut rng = seeded_rng(21);
        let input = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        let spec = Pool2dSpec::square(2);
        let grad_out = Tensor::ones(&[1, 1, 2, 2]);
        let gi = avg_pool2d_backward(&grad_out, input.dims(), &spec);
        let eps = 1e-3f32;
        for idx in 0..16 {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (avg_pool2d_forward(&ip, &spec).sum() - avg_pool2d_forward(&im, &spec).sum())
                / (2.0 * eps);
            assert!((num - gi.data()[idx]).abs() < 1e-2);
        }
    }
}
