//! Deterministic data parallelism for the tensor kernels.
//!
//! Every parallel kernel in this crate decomposes its **output** buffer
//! into fixed-size disjoint row bands and lets worker threads claim
//! bands from a shared counter. Three properties make the results
//! bit-identical to a sequential run at any thread count:
//!
//! 1. the band geometry depends only on the problem shape, never on the
//!    worker count;
//! 2. each band is computed by straight-line code with a fixed
//!    per-element accumulation order; and
//! 3. bands write disjoint output ranges, so there is no cross-thread
//!    reduction whose order could vary.
//!
//! The worker count is configured once per process from the
//! `FEDMP_THREADS` environment variable (default: all available cores;
//! `1` forces sequential execution). Tests and benches can flip the
//! count at runtime with [`override_threads`].
//!
//! Nested regions run sequentially: a kernel invoked from inside a band
//! worker (e.g. a GEMM inside a batch-parallel convolution) must not
//! spawn its own workers, both to bound the thread count and to keep
//! the outer decomposition the only source of scheduling.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Minimum number of scalar operations before a kernel is worth
/// parallelising; below this, thread launch overhead dominates.
pub const MIN_PARALLEL_WORK: usize = 1 << 19;

static CONFIGURED: OnceLock<usize> = OnceLock::new();
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

static DISPATCHES: AtomicU64 = AtomicU64::new(0);
static BANDS: AtomicU64 = AtomicU64::new(0);

static GEMM_SIMD_DENSE: AtomicU64 = AtomicU64::new(0);
static GEMM_SCALAR_DENSE: AtomicU64 = AtomicU64::new(0);
static GEMM_SIMD_PRUNED: AtomicU64 = AtomicU64::new(0);
static GEMM_SCALAR_PRUNED: AtomicU64 = AtomicU64::new(0);

/// Monotonic process-wide kernel-scheduler counters, read by the
/// observability layer (`fedmp-obs`) to emit per-round `KernelDispatch`
/// events as deltas between two snapshots.
///
/// Both counters are **thread-count-invariant**: they count
/// [`for_each_band`] invocations and the bands each call decomposes its
/// output into — functions of the problem shape only, identical whether
/// the bands then run sequentially or across workers. That keeps traces
/// byte-identical across `FEDMP_THREADS` settings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Total [`for_each_band`] invocations (with non-empty output).
    pub dispatches: u64,
    /// Total bands those invocations were decomposed into.
    pub bands: u64,
    /// GEMM dispatches that ran the SIMD kernel on dense operands.
    pub gemm_simd_dense: u64,
    /// GEMM dispatches that ran the scalar kernel on dense operands.
    pub gemm_scalar_dense: u64,
    /// GEMM dispatches that ran the SIMD kernel for a pruning-aware
    /// fast path (shape-shrunken conv/FC submodel work).
    pub gemm_simd_pruned: u64,
    /// GEMM dispatches that ran the scalar kernel for a pruning-aware
    /// fast path.
    pub gemm_scalar_pruned: u64,
}

/// Snapshot of the process-wide [`KernelStats`] counters.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        dispatches: DISPATCHES.load(Ordering::Relaxed),
        bands: BANDS.load(Ordering::Relaxed),
        gemm_simd_dense: GEMM_SIMD_DENSE.load(Ordering::Relaxed),
        gemm_scalar_dense: GEMM_SCALAR_DENSE.load(Ordering::Relaxed),
        gemm_simd_pruned: GEMM_SIMD_PRUNED.load(Ordering::Relaxed),
        gemm_scalar_pruned: GEMM_SCALAR_PRUNED.load(Ordering::Relaxed),
    }
}

/// Records which GEMM kernel path a dispatch selected
/// (`simd`/`scalar` × `dense`/`pruned`). Counted once per GEMM call,
/// before banding, so the numbers are thread-count-invariant for a
/// fixed `FEDMP_SIMD` setting (they *do* differ across settings — path
/// choice is configuration, like the thread count itself).
pub fn record_gemm_path(simd: bool, pruned: bool) {
    let counter = match (simd, pruned) {
        (true, false) => &GEMM_SIMD_DENSE,
        (false, false) => &GEMM_SCALAR_DENSE,
        (true, true) => &GEMM_SIMD_PRUNED,
        (false, true) => &GEMM_SCALAR_PRUNED,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

thread_local! {
    static IN_BAND_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the calling thread marked as a parallel worker, so any
/// kernel dispatched inside runs sequentially instead of spawning its
/// own band workers.
///
/// This is how higher-level schedulers (the round executor in
/// `fedmp-fl`) compose with the kernel scheduler without multiplying
/// thread counts: the outer fan-out claims the configured threads, and
/// everything beneath it stays single-threaded. Results are unaffected
/// — kernels are bit-identical at any thread count — only scheduling
/// changes.
pub fn with_nested_sequential<R>(f: impl FnOnce() -> R) -> R {
    let prev = IN_BAND_WORKER.with(|flag| flag.replace(true));
    let out = f();
    IN_BAND_WORKER.with(|flag| flag.set(prev));
    out
}

/// Whether the calling thread is already inside a parallel worker
/// (a band worker, or a [`with_nested_sequential`] scope). Outer
/// schedulers check this to run nested fan-outs inline.
pub fn in_parallel_worker() -> bool {
    IN_BAND_WORKER.with(|flag| flag.get())
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The worker count kernels will use: the [`override_threads`] value if
/// one is set, else `FEDMP_THREADS`, else the available core count.
pub fn configured_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    *CONFIGURED.get_or_init(|| match std::env::var("FEDMP_THREADS") {
        Ok(raw) => raw.trim().parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
            eprintln!("FEDMP_THREADS={raw:?} is not a positive integer; using core count");
            default_threads()
        }),
        Err(_) => default_threads(),
    })
}

/// Forces the worker count for this process (`None` restores the
/// `FEDMP_THREADS`/core-count default). Intended for tests and benches
/// that compare thread counts within one process; kernels running
/// concurrently with a change may use either count, which is safe
/// precisely because results are thread-count-invariant.
pub fn override_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Hands out band indices to workers; bands are pre-sliced disjoint
/// sub-slices of one output buffer, stored as raw parts so the queue
/// can be shared. Safety rests on the disjointness `chunks_mut`
/// guarantees.
struct BandQueue<T> {
    bands: Vec<(usize, *mut T, usize)>,
    next: AtomicUsize,
}

// SAFETY: the queue is only shared between scoped worker threads, and
// the raw (ptr, len) pairs it hands out come from `chunks_mut` over one
// exclusively borrowed buffer — disjoint regions, each claimed by
// exactly one worker via the atomic counter. `T: Send` is required so a
// band may be written from a thread other than the buffer's owner.
unsafe impl<T: Send> Sync for BandQueue<T> {}

impl<T> BandQueue<T> {
    fn run(&self, f: &(impl Fn(usize, &mut [T]) + Sync)) {
        IN_BAND_WORKER.with(|flag| flag.set(true));
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(&(start_row, ptr, len)) = self.bands.get(idx) else { break };
            // SAFETY: each (ptr, len) came from `chunks_mut`, so the
            // slices are disjoint, and `fetch_add` hands each index to
            // exactly one worker. The scope below outlives no band.
            let band = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
            f(start_row, band);
        }
        IN_BAND_WORKER.with(|flag| flag.set(false));
    }
}

/// Splits `out` (logically `rows × row_len`) into bands of `band_rows`
/// rows and runs `f(first_row, band)` over every band, in parallel when
/// `work` (a scalar-op estimate) and the configured thread count warrant
/// it. Band geometry is independent of the thread count, so the output
/// is identical — bit for bit — however many workers run.
pub fn for_each_band<T, F>(
    out: &mut [T],
    rows: usize,
    row_len: usize,
    band_rows: usize,
    work: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(out.len(), rows * row_len, "for_each_band: buffer/shape mismatch");
    if rows == 0 || row_len == 0 {
        return;
    }
    let band_rows = band_rows.max(1);
    let threads = configured_threads();
    let nested = IN_BAND_WORKER.with(|flag| flag.get());
    let n_bands = rows.div_ceil(band_rows);
    // Counted before the sequential/parallel branch so the numbers are
    // identical at every thread count.
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    BANDS.fetch_add(n_bands as u64, Ordering::Relaxed);
    if threads == 1 || nested || n_bands == 1 || work < MIN_PARALLEL_WORK {
        for (band_idx, band) in out.chunks_mut(band_rows * row_len).enumerate() {
            f(band_idx * band_rows, band);
        }
        return;
    }

    let bands: Vec<(usize, *mut T, usize)> = out
        .chunks_mut(band_rows * row_len)
        .enumerate()
        .map(|(i, band)| (i * band_rows, band.as_mut_ptr(), band.len()))
        .collect();
    let queue = BandQueue { bands, next: AtomicUsize::new(0) };
    let extra = threads.min(n_bands) - 1;
    std::thread::scope(|scope| {
        for _ in 0..extra {
            scope.spawn(|| queue.run(&f));
        }
        // The calling thread is the final worker.
        queue.run(&f);
    });
}

/// Fixed-order `f32` sum: a strict left-to-right fold in the order the
/// iterator yields its items.
///
/// Floating-point addition is not associative, so *any* reordering of a
/// reduction — parallel tree sums, unordered-container iteration — can
/// change the result bit-for-bit. The deterministic crates therefore
/// route every order-sensitive float reduction through this function
/// (or [`sum_f64`]) instead of ad-hoc `iter().sum()` calls; the
/// `float-reduction` lint in `fedmp-analysis` enforces this, and having
/// one named entry point keeps the accumulation order auditable in a
/// single place. Order-*insensitive* reductions (`max`/`min`) are
/// exempt and may use plain folds.
pub fn sum_f32<I: IntoIterator<Item = f32>>(xs: I) -> f32 {
    xs.into_iter().fold(0.0f32, |acc, v| acc + v)
}

/// Fixed-order `f64` sum: the [`sum_f32`] contract at double precision.
pub fn sum_f64<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    xs.into_iter().fold(0.0f64, |acc, v| acc + v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_bands(threads: usize, rows: usize, band_rows: usize) -> Vec<f32> {
        override_threads(Some(threads));
        let row_len = 3;
        let mut out = vec![0.0f32; rows * row_len];
        // `work` above the threshold so the parallel path is exercised.
        for_each_band(&mut out, rows, row_len, band_rows, MIN_PARALLEL_WORK * 2, |row0, band| {
            for (r, row) in band.chunks_mut(row_len).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (row0 + r) as f32 * 10.0 + j as f32;
                }
            }
        });
        override_threads(None);
        out
    }

    #[test]
    fn bands_cover_every_row_once() {
        let out = fill_bands(1, 37, 4);
        for r in 0..37 {
            assert_eq!(out[r * 3], r as f32 * 10.0);
            assert_eq!(out[r * 3 + 2], r as f32 * 10.0 + 2.0);
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let one = fill_bands(1, 53, 8);
        for threads in [2, 3, 7] {
            assert_eq!(fill_bands(threads, 53, 8), one);
        }
    }

    #[test]
    fn empty_work_is_a_noop() {
        let mut out: Vec<f32> = vec![];
        for_each_band(&mut out, 0, 5, 4, 0, |_, _| panic!("no bands expected"));
        for_each_band(&mut out, 5, 0, 4, 0, |_, _| panic!("no bands expected"));
    }

    #[test]
    fn nested_regions_run_sequentially() {
        override_threads(Some(4));
        let mut out = vec![0.0f32; 16];
        for_each_band(&mut out, 16, 1, 1, MIN_PARALLEL_WORK * 2, |row0, band| {
            // A nested call must not deadlock or spawn; it just runs.
            let mut inner = vec![0.0f32; 4];
            for_each_band(&mut inner, 4, 1, 1, MIN_PARALLEL_WORK * 2, |r0, b| {
                b[0] = r0 as f32;
            });
            band[0] = row0 as f32 + inner.iter().sum::<f32>();
        });
        override_threads(None);
        for (r, &v) in out.iter().enumerate() {
            assert_eq!(v, r as f32 + 6.0);
        }
    }

    #[test]
    fn nested_sequential_scope_sets_and_restores_the_flag() {
        assert!(!in_parallel_worker());
        let out = with_nested_sequential(|| {
            assert!(in_parallel_worker());
            // Nesting keeps the flag set and still restores correctly.
            with_nested_sequential(|| assert!(in_parallel_worker()));
            assert!(in_parallel_worker());
            7
        });
        assert_eq!(out, 7);
        assert!(!in_parallel_worker());
    }

    #[test]
    fn nested_sequential_scope_does_not_change_kernel_output() {
        override_threads(Some(4));
        let direct = fill_bands(4, 53, 8);
        override_threads(Some(4));
        let row_len = 3;
        let mut out = vec![0.0f32; 53 * row_len];
        with_nested_sequential(|| {
            for_each_band(&mut out, 53, row_len, 8, MIN_PARALLEL_WORK * 2, |row0, band| {
                for (r, row) in band.chunks_mut(row_len).enumerate() {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (row0 + r) as f32 * 10.0 + j as f32;
                    }
                }
            });
        });
        override_threads(None);
        assert_eq!(out, direct);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn fixed_order_sums_match_sequential_iteration() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32).sin() * 1e-3).collect();
        let mut acc = 0.0f32;
        for &v in &xs {
            acc += v;
        }
        assert_eq!(sum_f32(xs.iter().copied()), acc);
        let ys: Vec<f64> = (0..100).map(|i| (i as f64).cos() * 1e-7).collect();
        let mut acc64 = 0.0f64;
        for &v in &ys {
            acc64 += v;
        }
        assert_eq!(sum_f64(ys.iter().copied()), acc64);
        assert_eq!(sum_f32(std::iter::empty()), 0.0);
    }

    #[test]
    fn kernel_stats_count_dispatches_and_bands() {
        // Counters are process-global and other tests run concurrently,
        // so assert monotone growth by at least this call's contribution
        // rather than exact deltas (exact thread-invariance is asserted
        // by the single-threaded trace tests in `fedmp-fl`).
        let before = kernel_stats();
        let mut out = vec![0.0f32; 10 * 3];
        for_each_band(&mut out, 10, 3, 4, 0, |_, _| {});
        let after = kernel_stats();
        assert!(after.dispatches > before.dispatches);
        assert!(after.bands >= before.bands + 3); // ceil(10/4) = 3 bands
    }
}
