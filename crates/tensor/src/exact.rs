//! Exact `f32` accumulation: a Kulisch-style fixed-point superaccumulator.
//!
//! Float addition is not associative, so any tree-shaped reduction — a
//! shard-then-edge-then-cloud hierarchy in particular — produces bits
//! that depend on the grouping. [`ExactSum`] removes the problem at the
//! root: every finite `f32` is an integer multiple of 2⁻¹⁴⁹, so a wide
//! enough two's-complement fixed-point register can hold *any* sum of
//! `f32` values without rounding. Accumulation is then plain integer
//! addition — associative and commutative — and a single correctly
//! rounded conversion back to `f32` happens at the very end. Two
//! consequences the rest of the workspace builds on:
//!
//! 1. **Grouping invariance.** Splitting a cohort into any number of
//!    shards, merging shard accumulators into edge accumulators, and
//!    edge accumulators into one cloud accumulator yields bit-identical
//!    results to a single flat accumulation — for *every* partition.
//! 2. **Permutation invariance.** The order clients fold in does not
//!    matter, so a streaming reducer can consume updates as they become
//!    available without losing determinism.
//!
//! # Register layout
//!
//! The accumulator scales everything by 2¹⁴⁹ and stores the running sum
//! as a 384-bit two's-complement integer in six little-endian `u64`
//! limbs. A finite `f32` contributes a 24-bit integer mantissa shifted
//! left by `max(e, 1) − 1 ∈ [0, 253]` bits, so a single addend occupies
//! at most bit 277; 384 bits leave headroom for well over 2⁶⁴ addends of
//! the largest magnitude before the sign bit could be disturbed —
//! unreachable in practice. Non-finite inputs (±∞, NaN) poison the
//! accumulator: [`ExactSum::value`] then returns NaN, mirroring what a
//! float sum would produce.

/// Number of 64-bit limbs in the fixed-point register (384 bits).
const LIMBS: usize = 6;

/// Scale exponent: stored integer = sum × 2¹⁴⁹.
const SCALE: i32 = 149;

/// An exact, order- and grouping-invariant accumulator for `f32` sums.
///
/// ```
/// use fedmp_tensor::ExactSum;
///
/// let mut flat = ExactSum::new();
/// for x in [0.1f32, 0.2, -0.3, 1e-8] {
///     flat.add(x);
/// }
/// // Any partition of the same addends merges to the same bits.
/// let mut left = ExactSum::new();
/// left.add(0.1);
/// let mut right = ExactSum::new();
/// right.add(0.2);
/// right.add(-0.3);
/// right.add(1e-8);
/// left.merge(&right);
/// assert_eq!(flat.value().to_bits(), left.value().to_bits());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactSum {
    /// Little-endian two's-complement limbs of sum × 2¹⁴⁹.
    limbs: [u64; LIMBS],
    /// Set once any non-finite addend is seen; poisons `value()` to NaN.
    nonfinite: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// The additive identity (sum of zero addends).
    pub fn new() -> Self {
        ExactSum { limbs: [0; LIMBS], nonfinite: false }
    }

    /// Bytes of state held by one accumulator (for memory accounting in
    /// the scale benchmarks; constant regardless of how many addends
    /// have been folded in).
    pub const fn state_bytes() -> usize {
        std::mem::size_of::<ExactSum>()
    }

    /// Folds one `f32` into the accumulator. Exact for every finite
    /// input (including subnormals and signed zeros); non-finite inputs
    /// poison the accumulator so [`value`](Self::value) returns NaN.
    pub fn add(&mut self, x: f32) {
        if !x.is_finite() {
            self.nonfinite = true;
            return;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x7F_FFFF;
        // value = ±mant × 2^(shift − SCALE) with mant < 2²⁴, shift ∈ [0, 253].
        let mant = if exp == 0 { u64::from(frac) } else { u64::from(frac | 0x80_0000) };
        if mant == 0 {
            return; // ±0.0 contributes nothing.
        }
        let shift = (exp.max(1) - 1) as u32;
        let limb = (shift / 64) as usize;
        let off = shift % 64;
        let wide = u128::from(mant) << off; // ≤ 24 + 63 = 87 bits
        let lo = wide as u64;
        let hi = (wide >> 64) as u64;
        if bits >> 31 == 0 {
            self.add_at(limb, lo, hi);
        } else {
            self.sub_at(limb, lo, hi);
        }
    }

    /// Adds another accumulator into this one. Integer addition of the
    /// registers, so `a.merge(&b)` holds exactly the sum of both addend
    /// multisets — the operation the aggregation hierarchy is built on.
    pub fn merge(&mut self, other: &ExactSum) {
        self.nonfinite |= other.nonfinite;
        let mut carry = 0u64;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        // Two's-complement wraparound at 384 bits is the correct modular
        // behaviour; with ≤ 2⁶⁴ addends the register cannot overflow.
    }

    /// The correctly rounded (round-to-nearest, ties-to-even) `f32`
    /// value of the exact sum. Returns NaN iff a non-finite value was
    /// ever added, and ±∞ on (practically unreachable) overflow of the
    /// `f32` range.
    pub fn value(&self) -> f32 {
        if self.nonfinite {
            return f32::NAN;
        }
        let negative = self.limbs[LIMBS - 1] >> 63 == 1;
        let mag = if negative { negate(&self.limbs) } else { self.limbs };
        let sign = u32::from(negative) << 31;
        // Highest set bit of the magnitude, or zero sum.
        let mut h: i32 = -1;
        for i in (0..LIMBS).rev() {
            if mag[i] != 0 {
                h = i as i32 * 64 + 63 - mag[i].leading_zeros() as i32;
                break;
            }
        }
        if h < 0 {
            return 0.0;
        }
        if h <= 22 {
            // Magnitude < 2²³ ⇒ an exact subnormal (value = mag × 2⁻¹⁴⁹).
            return f32::from_bits(sign | mag[0] as u32);
        }
        // Round the top 24 bits with guard + sticky (ties to even).
        let mut mant = extract_bits(&mag, h - 23) & 0xFF_FFFF;
        let round = h >= 24 && bit(&mag, h - 24);
        let sticky = h >= 25 && any_below(&mag, h - 24);
        if round && (sticky || mant & 1 == 1) {
            mant += 1;
        }
        if mant == 0x100_0000 {
            mant = 0x80_0000;
            h += 1;
        }
        // value = 1.f × 2^(h − SCALE); biased exponent = h − SCALE + 127.
        let e = h - SCALE + 127;
        if e >= 255 {
            return f32::from_bits(sign | 0x7F80_0000); // ±∞
        }
        f32::from_bits(sign | (e as u32) << 23 | (mant as u32 & 0x7F_FFFF))
    }

    /// True iff no finite mass has been accumulated and no poison seen.
    pub fn is_zero(&self) -> bool {
        !self.nonfinite && self.limbs == [0; LIMBS]
    }

    /// The raw little-endian limbs (two's complement, ×2¹⁴⁹). Stable
    /// encoding for wire transport of partial sums between aggregation
    /// tiers; feed back through [`from_raw`](Self::from_raw).
    pub fn to_raw(&self) -> ([u64; LIMBS], bool) {
        (self.limbs, self.nonfinite)
    }

    /// Rebuilds an accumulator from [`to_raw`](Self::to_raw) output.
    pub fn from_raw(limbs: [u64; LIMBS], nonfinite: bool) -> Self {
        ExactSum { limbs, nonfinite }
    }

    fn add_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let (s, c) = self.limbs[limb].overflowing_add(lo);
        self.limbs[limb] = s;
        let mut carry = u64::from(c);
        let mut i = limb + 1;
        if i < LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(hi);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
            i += 1;
        }
        while carry != 0 && i < LIMBS {
            let (s, c) = self.limbs[i].overflowing_add(carry);
            self.limbs[i] = s;
            carry = u64::from(c);
            i += 1;
        }
    }

    fn sub_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let (d, b) = self.limbs[limb].overflowing_sub(lo);
        self.limbs[limb] = d;
        let mut borrow = u64::from(b);
        let mut i = limb + 1;
        if i < LIMBS {
            let (d1, b1) = self.limbs[i].overflowing_sub(hi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = u64::from(b1) + u64::from(b2);
            i += 1;
        }
        while borrow != 0 && i < LIMBS {
            let (d, b) = self.limbs[i].overflowing_sub(borrow);
            self.limbs[i] = d;
            borrow = u64::from(b);
            i += 1;
        }
    }
}

/// Two's-complement negation of a 384-bit register.
fn negate(limbs: &[u64; LIMBS]) -> [u64; LIMBS] {
    let mut out = [0u64; LIMBS];
    let mut carry = 1u64;
    for i in 0..LIMBS {
        let (s, c) = (!limbs[i]).overflowing_add(carry);
        out[i] = s;
        carry = u64::from(c);
    }
    out
}

/// True iff bit `pos` (0-indexed from the LSB) is set.
fn bit(limbs: &[u64; LIMBS], pos: i32) -> bool {
    let pos = pos as usize;
    limbs[pos / 64] >> (pos % 64) & 1 == 1
}

/// True iff any bit strictly below `pos` is set.
fn any_below(limbs: &[u64; LIMBS], pos: i32) -> bool {
    let pos = pos as usize;
    let (limb, off) = (pos / 64, pos % 64);
    for l in limbs.iter().take(limb) {
        if *l != 0 {
            return true;
        }
    }
    off > 0 && limbs[limb] & ((1u64 << off) - 1) != 0
}

/// The 64-bit window of the register starting at bit `pos ≥ 0`.
fn extract_bits(limbs: &[u64; LIMBS], pos: i32) -> u64 {
    let pos = pos as usize;
    let (limb, off) = (pos / 64, pos % 64);
    let lo = limbs[limb] >> off;
    if off == 0 || limb + 1 >= LIMBS {
        lo
    } else {
        lo | limbs[limb + 1] << (64 - off)
    }
}

/// Exact sum of a slice: convenience over [`ExactSum`].
pub fn exact_sum_f32(xs: &[f32]) -> f32 {
    let mut acc = ExactSum::new();
    for &x in xs {
        acc.add(x);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use rand::Rng;

    fn sum_bits(xs: &[f32]) -> u32 {
        exact_sum_f32(xs).to_bits()
    }

    #[test]
    fn empty_and_zero_sums() {
        assert_eq!(ExactSum::new().value().to_bits(), 0.0f32.to_bits());
        assert_eq!(sum_bits(&[0.0, -0.0]), 0.0f32.to_bits());
        assert_eq!(sum_bits(&[1.0, -1.0]), 0.0f32.to_bits());
    }

    #[test]
    fn single_values_round_trip_exactly() {
        for &x in &[
            1.0f32,
            -1.0,
            0.1,
            -3.25e-12,
            f32::MIN_POSITIVE,
            f32::MAX,
            -f32::MAX,
            1.4e-45,  // smallest subnormal
            -8.3e-40, // subnormal
            2.0f32.powi(-149),
            1.999_999_9,
        ] {
            assert_eq!(sum_bits(&[x]), x.to_bits(), "round trip of {x:e}");
        }
    }

    #[test]
    fn exact_cancellation() {
        // 1e8 + 1 − 1e8 = 1 exactly, though f32 left-fold loses the 1.
        assert_eq!(exact_sum_f32(&[1e8, 1.0, -1e8]), 1.0);
        let naive = (1e8f32 + 1.0) - 1e8;
        assert_eq!(naive, 0.0, "sanity: naive f32 fold drops the small addend");
    }

    #[test]
    fn correct_rounding_ties_to_even() {
        // 1 + 2⁻²⁴ is the exact midpoint between 1.0 and nextafter(1.0):
        // ties-to-even rounds down to 1.0.
        assert_eq!(exact_sum_f32(&[1.0, 2.0f32.powi(-24)]), 1.0);
        // 1 + 2⁻²³ is exactly representable.
        assert_eq!(exact_sum_f32(&[1.0, 2.0f32.powi(-23)]), 1.0 + 2.0f32.powi(-23));
        // (1 + 2⁻²³) + 2⁻²⁴ is a midpoint whose lower neighbour is odd:
        // rounds up to 1 + 2⁻²².
        assert_eq!(
            exact_sum_f32(&[1.0 + 2.0f32.powi(-23), 2.0f32.powi(-24)]),
            1.0 + 2.0f32.powi(-22)
        );
        // A sticky bit below the midpoint forces rounding up.
        assert_eq!(
            exact_sum_f32(&[1.0, 2.0f32.powi(-24), 2.0f32.powi(-60)]),
            1.0 + 2.0f32.powi(-23)
        );
    }

    #[test]
    fn subnormal_results_are_exact() {
        let tiny = f32::from_bits(3); // 3 × 2⁻¹⁴⁹
        assert_eq!(sum_bits(&[tiny, tiny]), f32::from_bits(6).to_bits());
        assert_eq!(sum_bits(&[tiny, -f32::from_bits(1)]), f32::from_bits(2).to_bits());
        // Crossing the subnormal/normal boundary.
        let half_min = f32::from_bits(0x40_0000); // 2⁻¹²⁷
        assert_eq!(sum_bits(&[half_min, half_min]), f32::MIN_POSITIVE.to_bits());
    }

    #[test]
    fn nonfinite_poisons_to_nan() {
        assert!(exact_sum_f32(&[1.0, f32::INFINITY]).is_nan());
        assert!(exact_sum_f32(&[f32::NAN]).is_nan());
        let mut a = ExactSum::new();
        a.add(2.0);
        let mut b = ExactSum::new();
        b.add(f32::NEG_INFINITY);
        a.merge(&b);
        assert!(a.value().is_nan());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let xs = vec![f32::MAX; 3];
        assert_eq!(exact_sum_f32(&xs), f32::INFINITY);
        let xs = vec![-f32::MAX; 3];
        assert_eq!(exact_sum_f32(&xs), f32::NEG_INFINITY);
    }

    #[test]
    fn raw_round_trip() {
        let mut a = ExactSum::new();
        a.add(0.3);
        a.add(-7.5e-20);
        let (limbs, poison) = a.to_raw();
        assert_eq!(ExactSum::from_raw(limbs, poison), a);
    }

    #[test]
    fn grouping_and_permutation_invariance_randomised() {
        let mut rng = seeded_rng(0xE5AC7);
        for trial in 0..200 {
            let n = rng.gen_range(1..60);
            let xs: Vec<f32> = (0..n)
                .map(|_| {
                    let mag = 10.0f32.powf(rng.gen_range(-42.0..38.0));
                    let v = rng.gen_range(-1.0f32..1.0) * mag;
                    if rng.gen_range(0..20) == 0 {
                        0.0
                    } else {
                        v
                    }
                })
                .collect();
            let flat = sum_bits(&xs);

            // Random partition into contiguous shards, shards into edges.
            let shards = rng.gen_range(1..=n.min(8));
            let edges = rng.gen_range(1..=shards);
            let mut shard_accs: Vec<ExactSum> = vec![ExactSum::new(); shards];
            for (i, &x) in xs.iter().enumerate() {
                shard_accs[i * shards / n].add(x);
            }
            let mut edge_accs: Vec<ExactSum> = vec![ExactSum::new(); edges];
            for (s, acc) in shard_accs.iter().enumerate() {
                edge_accs[s * edges / shards].merge(acc);
            }
            let mut cloud = ExactSum::new();
            for e in &edge_accs {
                cloud.merge(e);
            }
            assert_eq!(cloud.value().to_bits(), flat, "trial {trial}: grouping changed bits");

            // Reversed order.
            let rev: Vec<f32> = xs.iter().rev().copied().collect();
            assert_eq!(sum_bits(&rev), flat, "trial {trial}: permutation changed bits");
        }
    }

    #[test]
    fn matches_f64_reference_on_moderate_ranges() {
        // For magnitudes well inside f64's 53-bit window, an f64 sum is
        // itself exact, so rounding it to f32 is the correctly rounded
        // answer — cross-check ExactSum against it.
        let mut rng = seeded_rng(0x5EED5);
        for _ in 0..500 {
            let n = rng.gen_range(1..40);
            let xs: Vec<f32> =
                (0..n).map(|_| (rng.gen_range(-1_000_000i64..1_000_000) as f32) / 1024.0).collect();
            let exact: f64 = xs.iter().map(|&x| f64::from(x)).sum();
            assert_eq!(exact_sum_f32(&xs).to_bits(), (exact as f32).to_bits());
        }
    }
}
