//! Softmax and cross-entropy, the loss head shared by every classifier in
//! the model zoo (and, via perplexity, the LSTM language model).

use crate::parallel::sum_f32;
use crate::tensor::Tensor;

/// Row-wise softmax of a `[batch, classes]` tensor, computed with the
/// max-subtraction trick for numerical stability.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax_rows requires rank-2 logits");
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        let src = logits.row(r);
        let m = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let dst = out.row_mut(r);
        let mut sum = 0.0f32;
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            let e = (s - m).exp();
            *d = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for d in dst.iter_mut() {
            *d *= inv;
        }
    }
    out
}

/// Row-wise log-softmax.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "log_softmax_rows requires rank-2 logits");
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        let src = logits.row(r);
        let m = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = sum_f32(src.iter().map(|&s| (s - m).exp())).ln() + m;
        for (d, &s) in out.row_mut(r).iter_mut().zip(src.iter()) {
            *d = s - lse;
        }
    }
    out
}

/// Result of a fused softmax-cross-entropy evaluation.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits:
    /// `(softmax - onehot) / batch`.
    pub grad_logits: Tensor,
    /// Number of rows whose argmax equals the label.
    pub correct: usize,
}

/// Fused softmax + cross-entropy with labels, returning loss, logit
/// gradient and correct-prediction count in one pass.
///
/// # Panics
/// Panics if `labels.len()` differs from the batch size or any label is
/// out of range.
pub fn cross_entropy_loss(logits: &Tensor, labels: &[usize]) -> CrossEntropyOutput {
    assert_eq!(logits.shape().rank(), 2, "cross_entropy requires rank-2 logits");
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), rows, "cross_entropy: label count mismatch");

    let probs = softmax_rows(logits);
    let mut grad = probs.clone();
    let inv_batch = 1.0 / rows as f32;
    let mut loss = 0.0f32;
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < cols, "label {label} out of range for {cols} classes");
        let p = probs.row(r)[label].max(1e-12);
        loss -= p.ln();
        let row = grad.row_mut(r);
        row[label] -= 1.0;
        for g in row.iter_mut() {
            *g *= inv_batch;
        }
        let pred = probs
            .row(r)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("non-empty row");
        if pred == label {
            correct += 1;
        }
    }
    CrossEntropyOutput { loss: loss * inv_batch, grad_logits: grad, correct }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = seeded_rng(30);
        let logits = Tensor::randn(&[8, 10], &mut rng).scale(3.0);
        let p = softmax_rows(&logits);
        for r in 0..8 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 1001.0, 999.0], &[1, 3]).unwrap();
        let p = softmax_rows(&logits);
        assert!(p.all_finite());
        assert!((p.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let mut rng = seeded_rng(31);
        let logits = Tensor::randn(&[4, 6], &mut rng);
        let p = softmax_rows(&logits);
        let lp = log_softmax_rows(&logits);
        for (a, b) in p.data().iter().zip(lp.data().iter()) {
            assert!((a.ln() - b).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = cross_entropy_loss(&logits, &[0, 3]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut rng = seeded_rng(32);
        let logits = Tensor::randn(&[3, 5], &mut rng);
        let labels = vec![1usize, 4, 0];
        let out = cross_entropy_loss(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..15 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let num = (cross_entropy_loss(&lp, &labels).loss
                - cross_entropy_loss(&lm, &labels).loss)
                / (2.0 * eps);
            let ana = out.grad_logits.data()[idx];
            assert!((num - ana).abs() < 1e-3, "idx {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn accuracy_counting() {
        let logits =
            Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]).unwrap();
        let out = cross_entropy_loss(&logits, &[0, 1, 0]);
        assert_eq!(out.correct, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = cross_entropy_loss(&logits, &[3]);
    }
}
