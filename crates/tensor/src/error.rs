//! Error type for fallible tensor construction.

use std::fmt;

/// Errors returned by fallible tensor constructors.
///
/// In-library shape mismatches (e.g. adding a `[2, 3]` tensor to a
/// `[3, 2]` tensor) are programming errors and panic instead; this type
/// only covers the boundary where external data enters the library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the
    /// requested dimensions.
    LengthMismatch {
        /// Number of elements supplied.
        got: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// A shape with zero dimensions or a zero-sized axis was requested
    /// where it is not meaningful.
    EmptyShape,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { got, expected } => {
                write!(f, "buffer length {got} does not match shape volume {expected}")
            }
            TensorError::EmptyShape => write!(f, "tensor shape must be non-empty"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch { got: 3, expected: 4 };
        assert_eq!(e.to_string(), "buffer length 3 does not match shape volume 4");
    }

    #[test]
    fn display_empty_shape() {
        assert_eq!(TensorError::EmptyShape.to_string(), "tensor shape must be non-empty");
    }
}
