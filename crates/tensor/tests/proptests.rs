//! Property-based tests of tensor algebra laws and of the blocked
//! kernel / reference kernel equivalence.

use fedmp_tensor::{
    conv2d_forward, im2col, matmul_nt_reference, matmul_reference, matmul_tn_reference, parallel,
    seeded_rng, softmax_rows, Conv2dSpec, Tensor,
};
use proptest::prelude::*;

fn tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = seeded_rng(seed);
    Tensor::randn(dims, &mut rng)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims() && a.data().iter().zip(b.data().iter()).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(r in 1usize..8, c in 1usize..8, s1 in 0u64..1000, s2 in 0u64..1000) {
        let a = tensor(&[r, c], s1);
        let b = tensor(&[r, c], s2);
        prop_assert!(close(&a.add(&b), &b.add(&a), 1e-6));
    }

    #[test]
    fn addition_associates(n in 1usize..32, s in 0u64..1000) {
        let a = tensor(&[n], s);
        let b = tensor(&[n], s + 1);
        let c = tensor(&[n], s + 2);
        prop_assert!(close(&a.add(&b).add(&c), &a.add(&b.add(&c)), 1e-5));
    }

    #[test]
    fn sub_is_add_of_negation(n in 1usize..32, s in 0u64..1000) {
        let a = tensor(&[n], s);
        let b = tensor(&[n], s + 7);
        prop_assert!(close(&a.sub(&b), &a.add(&b.scale(-1.0)), 1e-6));
    }

    #[test]
    fn scaling_distributes_over_addition(n in 1usize..32, s in 0u64..1000, k in -3.0f32..3.0) {
        let a = tensor(&[n], s);
        let b = tensor(&[n], s + 3);
        prop_assert!(close(&a.add(&b).scale(k), &a.scale(k).add(&b.scale(k)), 1e-4));
    }

    #[test]
    fn matmul_distributes(m in 1usize..6, k in 1usize..6, n in 1usize..6, s in 0u64..500) {
        let a = tensor(&[m, k], s);
        let b = tensor(&[k, n], s + 1);
        let c = tensor(&[k, n], s + 2);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, s in 0u64..500) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let a = tensor(&[m, k], s);
        let b = tensor(&[k, n], s + 9);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn axpy_matches_scale_add(n in 1usize..32, s in 0u64..1000, k in -2.0f32..2.0) {
        let mut a = tensor(&[n], s);
        let b = tensor(&[n], s + 5);
        let expected = a.add(&b.scale(k));
        a.axpy(k, &b);
        prop_assert!(close(&a, &expected, 1e-5));
    }

    #[test]
    fn softmax_is_shift_invariant(r in 1usize..5, c in 2usize..8, s in 0u64..500, shift in -10.0f32..10.0) {
        let a = tensor(&[r, c], s);
        let shifted = a.map(|v| v + shift);
        prop_assert!(close(&softmax_rows(&a), &softmax_rows(&shifted), 1e-5));
    }

    #[test]
    fn l2_norm_triangle_inequality(n in 1usize..32, s in 0u64..1000) {
        let a = tensor(&[n], s);
        let b = tensor(&[n], s + 11);
        prop_assert!(a.add(&b).l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-4);
    }

    #[test]
    fn reshape_preserves_sum(r in 1usize..8, c in 1usize..8, s in 0u64..500) {
        let a = tensor(&[r, c], s);
        let b = a.reshape(&[c, r]);
        prop_assert!((a.sum() - b.sum()).abs() < 1e-4);
    }
}

// ---------------------------------------------------------------------
// Blocked kernels vs naive reference oracles.
//
// Shapes are drawn to straddle every boundary the blocked kernels care
// about: empty (0) and degenerate (1) dimensions, sizes that are not
// multiples of the k-tile (128), the micro-kernel row count (4) or the
// parallel band (64), and both 1-thread and oversubscribed execution.
// ---------------------------------------------------------------------

const KERNEL_TOL: f32 = 1e-4;

fn close_or_explain(got: &Tensor, want: &Tensor, what: &str) -> Result<(), String> {
    if got.dims() != want.dims() {
        return Err(format!("{what}: dims {:?} vs {:?}", got.dims(), want.dims()));
    }
    for (i, (x, y)) in got.data().iter().zip(want.data().iter()).enumerate() {
        if (x - y).abs() > KERNEL_TOL {
            return Err(format!("{what}: element {i}: {x} vs {y}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_reference(m in 0usize..70, k in 0usize..140, n in 0usize..70, s in 0u64..1 << 32) {
        let mut rng = seeded_rng(s);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        if let Err(e) = close_or_explain(&a.matmul(&b), &matmul_reference(&a, &b), "nn") {
            prop_assert!(false, "{}", e);
        }
    }

    #[test]
    fn matmul_nt_matches_reference(m in 0usize..70, k in 0usize..140, n in 0usize..70, s in 0u64..1 << 32) {
        let mut rng = seeded_rng(s);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[n, k], &mut rng);
        if let Err(e) = close_or_explain(&a.matmul_nt(&b), &matmul_nt_reference(&a, &b), "nt") {
            prop_assert!(false, "{}", e);
        }
    }

    #[test]
    fn matmul_tn_matches_reference(m in 0usize..70, k in 0usize..140, n in 0usize..70, s in 0u64..1 << 32) {
        let mut rng = seeded_rng(s);
        let a = Tensor::randn(&[k, m], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        if let Err(e) = close_or_explain(&a.matmul_tn(&b), &matmul_tn_reference(&a, &b), "tn") {
            prop_assert!(false, "{}", e);
        }
    }

    /// One thread and many threads must agree bit for bit: the band
    /// decomposition never depends on the worker count.
    #[test]
    fn thread_count_is_bit_invariant(m in 1usize..150, k in 1usize..100, n in 1usize..100, s in 0u64..1 << 32) {
        let mut rng = seeded_rng(s);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let bt = Tensor::randn(&[n, k], &mut rng);

        parallel::override_threads(Some(1));
        let seq = (a.matmul(&b), a.matmul_nt(&bt));
        parallel::override_threads(Some(5));
        let par = (a.matmul(&b), a.matmul_nt(&bt));
        parallel::override_threads(None);

        for (seq_t, par_t) in [(&seq.0, &par.0), (&seq.1, &par.1)] {
            prop_assert_eq!(seq_t.dims(), par_t.dims());
            for (x, y) in seq_t.data().iter().zip(par_t.data().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "1 thread vs 5 threads: {} vs {}", x, y);
            }
        }
    }

    /// Conv forward equals its own definition — im2col followed by the
    /// reference GEMM plus bias — on randomized geometry.
    #[test]
    fn conv_forward_matches_reference_composition(
        batch in 1usize..4,
        c in 1usize..4,
        hw in 3usize..11,
        oc in 1usize..6,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        s in 0u64..1 << 32,
    ) {
        // hw >= 3 >= kernel, so the output geometry is always valid.
        let spec = Conv2dSpec { kh: kernel, kw: kernel, stride, padding };
        let mut rng = seeded_rng(s);
        let input = Tensor::randn(&[batch, c, hw, hw], &mut rng);
        let weight = Tensor::randn(&[oc, c, kernel, kernel], &mut rng);
        let bias = Tensor::randn(&[oc], &mut rng);
        let got = conv2d_forward(&input, &weight, &bias, &spec);

        let (oh, ow) = spec.out_hw(hw, hw);
        let w_mat = weight.reshape(&[oc, c * kernel * kernel]);
        let mut want = Tensor::zeros(&[batch, oc, oh, ow]);
        let img = c * hw * hw;
        let out_img = oc * oh * ow;
        for i in 0..batch {
            let cols = im2col(&input.data()[i * img..(i + 1) * img], c, hw, hw, &spec);
            let res = matmul_reference(&w_mat, &cols);
            for f in 0..oc {
                for (j, &v) in res.data()[f * oh * ow..(f + 1) * oh * ow].iter().enumerate() {
                    want.data_mut()[i * out_img + f * oh * ow + j] = v + bias.data()[f];
                }
            }
        }
        if let Err(e) = close_or_explain(&got, &want, "conv") {
            prop_assert!(false, "{}", e);
        }
    }
}

/// Pinned tiny shapes: every 0/1 combination that could trip the
/// blocked paths' edge handling.
#[test]
fn degenerate_shapes_match_reference() {
    let mut rng = seeded_rng(7);
    for (m, k, n) in [
        (0, 0, 0),
        (0, 5, 3),
        (5, 0, 3),
        (5, 3, 0),
        (1, 1, 1),
        (1, 129, 1),
        (4, 1, 65),
        (65, 128, 1),
    ] {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        close_or_explain(&a.matmul(&b), &matmul_reference(&a, &b), "nn").unwrap();
        let bt = Tensor::randn(&[n, k], &mut rng);
        close_or_explain(&a.matmul_nt(&bt), &matmul_nt_reference(&a, &bt), "nt").unwrap();
        let at = Tensor::randn(&[k, m], &mut rng);
        close_or_explain(&at.matmul_tn(&b), &matmul_tn_reference(&at, &b), "tn").unwrap();
    }
}
