//! Property-based tests of tensor algebra laws.

use fedmp_tensor::{seeded_rng, softmax_rows, Tensor};
use proptest::prelude::*;

fn tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = seeded_rng(seed);
    Tensor::randn(dims, &mut rng)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(r in 1usize..8, c in 1usize..8, s1 in 0u64..1000, s2 in 0u64..1000) {
        let a = tensor(&[r, c], s1);
        let b = tensor(&[r, c], s2);
        prop_assert!(close(&a.add(&b), &b.add(&a), 1e-6));
    }

    #[test]
    fn addition_associates(n in 1usize..32, s in 0u64..1000) {
        let a = tensor(&[n], s);
        let b = tensor(&[n], s + 1);
        let c = tensor(&[n], s + 2);
        prop_assert!(close(&a.add(&b).add(&c), &a.add(&b.add(&c)), 1e-5));
    }

    #[test]
    fn sub_is_add_of_negation(n in 1usize..32, s in 0u64..1000) {
        let a = tensor(&[n], s);
        let b = tensor(&[n], s + 7);
        prop_assert!(close(&a.sub(&b), &a.add(&b.scale(-1.0)), 1e-6));
    }

    #[test]
    fn scaling_distributes_over_addition(n in 1usize..32, s in 0u64..1000, k in -3.0f32..3.0) {
        let a = tensor(&[n], s);
        let b = tensor(&[n], s + 3);
        prop_assert!(close(&a.add(&b).scale(k), &a.scale(k).add(&b.scale(k)), 1e-4));
    }

    #[test]
    fn matmul_distributes(m in 1usize..6, k in 1usize..6, n in 1usize..6, s in 0u64..500) {
        let a = tensor(&[m, k], s);
        let b = tensor(&[k, n], s + 1);
        let c = tensor(&[k, n], s + 2);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, s in 0u64..500) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let a = tensor(&[m, k], s);
        let b = tensor(&[k, n], s + 9);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn axpy_matches_scale_add(n in 1usize..32, s in 0u64..1000, k in -2.0f32..2.0) {
        let mut a = tensor(&[n], s);
        let b = tensor(&[n], s + 5);
        let expected = a.add(&b.scale(k));
        a.axpy(k, &b);
        prop_assert!(close(&a, &expected, 1e-5));
    }

    #[test]
    fn softmax_is_shift_invariant(r in 1usize..5, c in 2usize..8, s in 0u64..500, shift in -10.0f32..10.0) {
        let a = tensor(&[r, c], s);
        let shifted = a.map(|v| v + shift);
        prop_assert!(close(&softmax_rows(&a), &softmax_rows(&shifted), 1e-5));
    }

    #[test]
    fn l2_norm_triangle_inequality(n in 1usize..32, s in 0u64..1000) {
        let a = tensor(&[n], s);
        let b = tensor(&[n], s + 11);
        prop_assert!(a.add(&b).l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-4);
    }

    #[test]
    fn reshape_preserves_sum(r in 1usize..8, c in 1usize..8, s in 0u64..500) {
        let a = tensor(&[r, c], s);
        let b = a.reshape(&[c, r]);
        prop_assert!((a.sum() - b.sum()).abs() < 1e-4);
    }
}
