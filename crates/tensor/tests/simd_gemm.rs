//! SIMD microkernel contract tests.
//!
//! Three obligations, mirroring `tensor::simd`'s module doc:
//!
//! 1. **Accuracy** — the AVX2 kernel agrees with the naive reference
//!    oracles within tolerance on every transpose variant, with shapes
//!    drawn to straddle the microkernel's column widths (16/8/scalar
//!    tail) and row block (4): ones, primes, and block-size ± 1.
//! 2. **Determinism** — for a *fixed* path the result is bit-identical
//!    run-to-run and across thread counts (each output element is one
//!    fixed-lane FMA chain ascending `k`; band ownership is a function
//!    of shape only).
//! 3. **Fallback** — the forced-scalar path is the pre-SIMD blocked
//!    kernel, so it stays bit-invariant across thread counts too (the
//!    whole tier-1 suite re-runs under `FEDMP_SIMD=scalar` in CI to pin
//!    its values against the golden tests).
//!
//! The path override is process-global, so every test that flips it
//! holds `PATH_LOCK` for its whole body; the proptest cases draw shapes
//! but mutate the override only inside the lock.

use std::sync::Mutex;

use fedmp_tensor::simd::{self, SimdPath};
use fedmp_tensor::{
    matmul_nt_reference, matmul_reference, matmul_tn_reference, parallel, seeded_rng, Tensor,
};
use proptest::prelude::*;

/// Serialises tests that flip the process-global SIMD path override.
static PATH_LOCK: Mutex<()> = Mutex::new(());

/// Shapes that straddle every boundary the SIMD microkernel cares
/// about: degenerate 1s, primes (never a multiple of anything), and
/// the 16-wide / 8-wide column blocks, 4-row block and 64-row band
/// each at −1 / exact / +1.
const EDGE_SIZES: &[usize] = &[1, 2, 3, 5, 7, 8, 9, 13, 15, 16, 17, 31, 63, 64, 65, 127, 128, 129];

const TOL: f32 = 1e-4;

fn assert_close(got: &Tensor, want: &Tensor, what: &str) -> Result<(), String> {
    prop_assert_eq!(got.dims(), want.dims(), "{}: dims", what);
    for (i, (x, y)) in got.data().iter().zip(want.data().iter()).enumerate() {
        prop_assert!((x - y).abs() <= TOL, "{}: element {}: {} vs {}", what, i, x, y);
    }
    Ok(())
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: dims");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

/// Runs `f` with the SIMD path forced to `path`, restoring the default
/// dispatch afterwards even on panic (the lock guard would otherwise
/// poison every later test).
fn with_path<R>(path: SimdPath, f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            simd::override_path(None);
        }
    }
    simd::override_path(Some(path));
    let _reset = Reset;
    f()
}

fn forced_paths() -> Vec<SimdPath> {
    let mut paths = vec![SimdPath::Scalar];
    if simd::avx2_supported() {
        paths.push(SimdPath::Avx2);
    }
    paths
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three transpose variants match the reference oracles on both
    /// forced paths across tail-heavy shapes.
    #[test]
    fn gemm_tail_shapes_match_reference_on_both_paths(
        mi in 0usize..18,
        ki in 0usize..18,
        ni in 0usize..18,
        s in 0u64..1 << 32,
    ) {
        let (m, k, n) = (EDGE_SIZES[mi], EDGE_SIZES[ki], EDGE_SIZES[ni]);
        let mut rng = seeded_rng(s);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let bt = Tensor::randn(&[n, k], &mut rng);
        let at = Tensor::randn(&[k, m], &mut rng);
        let nn_ref = matmul_reference(&a, &b);
        let nt_ref = matmul_nt_reference(&a, &bt);
        let tn_ref = matmul_tn_reference(&at, &b);

        let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for path in forced_paths() {
            let (nn, nt, tn) =
                with_path(path, || (a.matmul(&b), a.matmul_nt(&bt), at.matmul_tn(&b)));
            assert_close(&nn, &nn_ref, &format!("nn/{}", path.name()))?;
            assert_close(&nt, &nt_ref, &format!("nt/{}", path.name()))?;
            assert_close(&tn, &tn_ref, &format!("tn/{}", path.name()))?;
        }
    }

    /// For a fixed forced path the kernels are bit-invariant across
    /// thread counts — SIMD included.
    #[test]
    fn fixed_path_is_bit_invariant_across_threads(
        mi in 0usize..18,
        ki in 0usize..18,
        ni in 0usize..18,
        s in 0u64..1 << 32,
    ) {
        let (m, k, n) = (EDGE_SIZES[mi], EDGE_SIZES[ki], EDGE_SIZES[ni]);
        let mut rng = seeded_rng(s);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let bt = Tensor::randn(&[n, k], &mut rng);

        let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for path in forced_paths() {
            let (seq, par) = with_path(path, || {
                parallel::override_threads(Some(1));
                let seq = (a.matmul(&b), a.matmul_nt(&bt));
                parallel::override_threads(Some(4));
                let par = (a.matmul(&b), a.matmul_nt(&bt));
                parallel::override_threads(None);
                (seq, par)
            });
            for (s_t, p_t) in [(&seq.0, &par.0), (&seq.1, &par.1)] {
                prop_assert_eq!(s_t.dims(), p_t.dims());
                for (x, y) in s_t.data().iter().zip(p_t.data().iter()) {
                    prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "{}: 1 vs 4 threads: {} vs {}", path.name(), x, y
                    );
                }
            }
        }
    }
}

/// The SIMD path is bit-identical run-to-run: repeated evaluations of
/// the same GEMM produce the same bits (each element is one fixed FMA
/// chain — nothing in the kernel depends on timing or iteration count).
#[test]
fn simd_path_is_bit_identical_run_to_run() {
    if !simd::avx2_supported() {
        eprintln!("skipping: AVX2+FMA not available on this host");
        return;
    }
    let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = seeded_rng(41);
    let a = Tensor::randn(&[67, 130], &mut rng);
    let b = Tensor::randn(&[130, 65], &mut rng);
    let bt = Tensor::randn(&[65, 130], &mut rng);
    let (first_nn, first_nt) = with_path(SimdPath::Avx2, || (a.matmul(&b), a.matmul_nt(&bt)));
    for run in 0..5 {
        let (nn, nt) = with_path(SimdPath::Avx2, || (a.matmul(&b), a.matmul_nt(&bt)));
        assert_bits_eq(&nn, &first_nn, &format!("nn run {run}"));
        assert_bits_eq(&nt, &first_nt, &format!("nt run {run}"));
    }
}

/// Forcing the scalar path yields exactly the blocked scalar kernel:
/// invariant across thread counts, and — when the host has no AVX2 —
/// identical to the default dispatch.
#[test]
fn forced_scalar_is_the_blocked_kernel() {
    let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = seeded_rng(42);
    let a = Tensor::randn(&[66, 129], &mut rng);
    let b = Tensor::randn(&[129, 63], &mut rng);
    let scalar = with_path(SimdPath::Scalar, || a.matmul(&b));
    let scalar_again = with_path(SimdPath::Scalar, || {
        parallel::override_threads(Some(4));
        let out = a.matmul(&b);
        parallel::override_threads(None);
        out
    });
    assert_bits_eq(&scalar, &scalar_again, "scalar 1 vs 4 threads");
    if !simd::avx2_supported() {
        assert_bits_eq(&scalar, &a.matmul(&b), "scalar vs default on non-AVX2 host");
    }
}

/// The two paths agree within tolerance but are *not* promised to be
/// bitwise equal to each other (FMA fuses the multiply-add rounding);
/// this pins the tolerance contract the cross-path comparison relies
/// on at a shape exercising all three column sub-kernels.
#[test]
fn paths_agree_within_tolerance_across_column_subkernels() {
    if !simd::avx2_supported() {
        eprintln!("skipping: AVX2+FMA not available on this host");
        return;
    }
    let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = seeded_rng(43);
    // n = 16 + 8 + 3: one full 16-wide block, one 8-wide, a scalar tail.
    let a = Tensor::randn(&[9, 257], &mut rng);
    let b = Tensor::randn(&[257, 27], &mut rng);
    let simd_out = with_path(SimdPath::Avx2, || a.matmul(&b));
    let scalar_out = with_path(SimdPath::Scalar, || a.matmul(&b));
    for (i, (x, y)) in simd_out.data().iter().zip(scalar_out.data().iter()).enumerate() {
        assert!((x - y).abs() <= TOL, "element {i}: simd {x} vs scalar {y}");
    }
}
