//! Criterion micro-benchmarks of the hot paths: tensor kernels, the
//! pruning pipeline, E-UCB decisions and R2SP aggregation. These back
//! the Fig. 11 overhead claims and the §5 design-choice ablations in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedmp_bandit::{Bandit, EUcbAgent, EUcbConfig};
use fedmp_nn::{model_cost, state_sub, zoo};
use fedmp_pruning::{extract_sequential, plan_sequential, recover_state, sparse_state};
use fedmp_tensor::{
    conv2d_forward, matmul_nt_reference, matmul_reference, seeded_rng, Conv2dSpec, Tensor,
};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = seeded_rng(0);
    let mut group = c.benchmark_group("tensor/matmul");
    for n in [32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

/// Blocked vs reference GEMM on the shapes the width-1.0 model zoo
/// issues: conv-as-im2col (`nn`) and batched linear forward (`nt`).
/// The standalone `kernels` bin writes the same comparison to
/// `bench-results/kernels.json`.
fn bench_gemm_zoo_shapes(c: &mut Criterion) {
    let mut rng = seeded_rng(4);
    let mut group = c.benchmark_group("tensor/gemm_zoo");
    for (name, m, k, n) in
        [("cnn_conv2", 64usize, 800usize, 196usize), ("alexnet_conv3", 384, 1728, 64)]
    {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        group.bench_with_input(BenchmarkId::new(name, "blocked"), &0, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new(name, "reference"), &0, |bench, _| {
            bench.iter(|| std::hint::black_box(matmul_reference(&a, &b)));
        });
    }
    let (name, m, k, n) = ("cnn_fc1_b64", 64usize, 3136usize, 256usize);
    let a = Tensor::randn(&[m, k], &mut rng);
    let b = Tensor::randn(&[n, k], &mut rng);
    group.bench_with_input(BenchmarkId::new(name, "blocked_nt"), &0, |bench, _| {
        bench.iter(|| std::hint::black_box(a.matmul_nt(&b)));
    });
    group.bench_with_input(BenchmarkId::new(name, "reference_nt"), &0, |bench, _| {
        bench.iter(|| std::hint::black_box(matmul_nt_reference(&a, &b)));
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let spec = Conv2dSpec { kh: 5, kw: 5, stride: 1, padding: 2 };
    let input = Tensor::randn(&[4, 8, 28, 28], &mut rng);
    let weight = Tensor::randn(&[16, 8, 5, 5], &mut rng);
    let bias = Tensor::zeros(&[16]);
    c.bench_function("tensor/conv2d_5x5_28x28", |b| {
        b.iter(|| std::hint::black_box(conv2d_forward(&input, &weight, &bias, &spec)));
    });

    // Zoo conv stages at width 1.0, small batch.
    let mut group = c.benchmark_group("tensor/conv_zoo");
    for (name, n, ch, hw, oc, kh, pad) in [
        ("cnn_conv2", 4usize, 32usize, 14usize, 64usize, 5usize, 2usize),
        ("alexnet_conv2", 4, 64, 16, 192, 3, 1),
    ] {
        let spec = Conv2dSpec { kh, kw: kh, stride: 1, padding: pad };
        let input = Tensor::randn(&[n, ch, hw, hw], &mut rng);
        let weight = Tensor::randn(&[oc, ch, kh, kh], &mut rng);
        let bias = Tensor::zeros(&[oc]);
        group.bench_with_input(BenchmarkId::from_parameter(name), &0, |b, _| {
            b.iter(|| std::hint::black_box(conv2d_forward(&input, &weight, &bias, &spec)));
        });
    }
    group.finish();
}

fn bench_pruning_pipeline(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let model = zoo::cnn_mnist(0.5, &mut rng);
    let mut group = c.benchmark_group("pruning/plan+extract");
    for ratio in [0.3f32, 0.6] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &r| {
            b.iter(|| {
                let plan = plan_sequential(&model, (1, 28, 28), r);
                std::hint::black_box(extract_sequential(&model, &plan))
            });
        });
    }
    group.finish();

    let plan = plan_sequential(&model, (1, 28, 28), 0.5);
    let sub = extract_sequential(&model, &plan);
    c.bench_function("pruning/recover", |b| {
        b.iter(|| std::hint::black_box(recover_state(&sub, &plan, &model)));
    });
    c.bench_function("pruning/residual", |b| {
        b.iter(|| {
            let sparse = sparse_state(&model, &plan);
            std::hint::black_box(state_sub(&model.state(), &sparse))
        });
    });
}

fn bench_eucb(c: &mut Criterion) {
    c.bench_function("bandit/eucb_200_rounds", |b| {
        b.iter(|| {
            let mut agent = EUcbAgent::new(EUcbConfig::default());
            for k in 0..200 {
                let a = agent.select();
                agent.observe(1.0 - (a - 0.5).abs() + (k % 7) as f32 * 0.01);
            }
            std::hint::black_box(agent.num_regions())
        });
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let mut rng = seeded_rng(3);
    let model = zoo::resnet_tiny(0.25, &mut rng);
    c.bench_function("nn/model_cost_resnet", |b| {
        b.iter(|| std::hint::black_box(model_cost(&model, (3, 64, 64))));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gemm_zoo_shapes,
    bench_conv,
    bench_pruning_pipeline,
    bench_eucb,
    bench_cost_model
);
criterion_main!(benches);
