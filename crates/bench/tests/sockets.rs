//! Multi-process socket acceptance: the protocol over real OS
//! processes, driven through the `fedmp-node` binary.
//!
//! The in-process half of the determinism contract (trace identity
//! with the loop engine, thread-leak gauges) lives in
//! `crates/fl/tests/sockets.rs` over `ThreadNodes`; kernel-dispatch
//! trace counters are process-global, so a `ProcessNodes` run cannot
//! be trace-identical to the loop engine — its workers dispatch their
//! kernels in other processes. What real processes CAN promise, and
//! what this suite pins:
//!
//! - chaos-off history bit-identical to the loop engine (the model
//!   math crosses the socket losslessly);
//! - seeded packet-chaos runs bit-identical run-to-run, PS trace
//!   stream included;
//! - every child process reaped on the way out.

use fedmp_core::{run_method, run_sockets, spec_blob, ExperimentSpec, Method, TaskKind};
use fedmp_fl::{
    unique_socket_path, ChaosOptions, FaultOptions, FedMpOptions, ProcessNodes, SocketRunOptions,
};
use fedmp_obs::{diff, Trace};
use std::path::PathBuf;
use std::process::Command;

const NODE: &str = env!("CARGO_BIN_EXE_fedmp-node");

fn small_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
    spec.workers = 2;
    spec.fl.rounds = 2;
    spec.fl.eval_every = 2;
    spec
}

/// One test function on purpose: the trace session is
/// process-exclusive and captures every in-process event, so the
/// chaos-off identity half and the traced chaos half must not run on
/// concurrent test threads.
///
/// Chaos-off: worker processes spawned from the node binary produce
/// the loop engine's history bit-for-bit — weights travel as exact f32
/// frames and outcomes as round-tripping JSON. Then chaos on, with
/// crash draws forcing real process respawns: two runs of the same
/// seed produce identical histories and identical PS trace streams,
/// and the respawn machinery demonstrably fired.
#[test]
fn process_workers_match_the_loop_engine_and_respawns_are_reproducible() {
    let spec = small_spec();
    let h_loop = run_method(&spec, Method::FedMp);

    let sock = SocketRunOptions::new(unique_socket_path("bench-proc"), spec_blob(&spec));
    let mut spawner = ProcessNodes {
        program: PathBuf::from(NODE),
        args: vec![
            "--role".to_string(),
            "worker".to_string(),
            "--socket".to_string(),
            sock.socket.display().to_string(),
        ],
    };
    let h_sock =
        run_sockets(&spec, &FedMpOptions::default(), &ChaosOptions::none(), &sock, &mut spawner)
            .expect("process-node run");
    assert_eq!(
        serde_json::to_string(&h_loop).expect("serialise"),
        serde_json::to_string(&h_sock).expect("serialise"),
        "multi-process history diverged from the loop engine"
    );
    assert!(!sock.socket.exists(), "socket file left behind");

    // ── chaos on: run-to-run reproducibility over real processes
    let opts = FedMpOptions {
        faults: Some(FaultOptions { fail_prob: 0.2, recover_rounds: 1, ..Default::default() }),
        ..Default::default()
    };
    // demo() crash_prob at the spec seed: crashes are certain enough
    // across 2 workers x 2 rounds to exercise respawn, verified below.
    let chaos = ChaosOptions::demo(spec.seed);

    let run = |tag: &str| {
        let sock = SocketRunOptions::new(unique_socket_path(tag), spec_blob(&spec));
        let mut spawner = ProcessNodes {
            program: PathBuf::from(NODE),
            args: vec![
                "--role".to_string(),
                "worker".to_string(),
                "--socket".to_string(),
                sock.socket.display().to_string(),
            ],
        };
        let manifest = fedmp_obs::RunManifest::new(
            "FedMP-sockets",
            spec.fl.seed,
            spec.workers,
            spec.fl.rounds,
            1,
        );
        let session = fedmp_obs::TraceSession::capture(&manifest);
        let h = run_sockets(&spec, &opts, &chaos, &sock, &mut spawner).expect("chaos run");
        (h, session.finish())
    };
    let (h_a, t_a) = run("bench-chaos-a");
    let (h_b, t_b) = run("bench-chaos-b");

    assert_eq!(
        serde_json::to_string(&h_a).expect("serialise"),
        serde_json::to_string(&h_b).expect("serialise"),
        "chaos history not reproducible over real processes"
    );
    let d = diff(&t_a, &t_b);
    assert!(!d.is_divergent(), "chaos trace not reproducible: {:?}", d.divergence);
    let kinds: Vec<&str> = t_a.events.iter().map(|e| e.kind()).collect();
    assert!(
        kinds.contains(&"NodeRespawned"),
        "no NodeRespawned: chaos never restarted a worker process"
    );
    assert!(kinds.contains(&"ConnEstablished"), "respawn never re-handshook");
}

/// The CLI surface CI drives: `--role ps` twice on one seed with
/// `--trace`, artifacts identical, exit codes clean.
#[test]
fn node_binary_traced_runs_are_identical() {
    let dir = std::env::temp_dir();
    let a = dir.join(format!("fedmp-node-test-{}-a.jsonl", std::process::id()));
    let b = dir.join(format!("fedmp-node-test-{}-b.jsonl", std::process::id()));
    for out in [&a, &b] {
        let status = Command::new(NODE)
            .args(["--role", "ps", "--workers", "2", "--rounds", "2", "--seed", "7", "--chaos"])
            .arg("--trace")
            .arg(out)
            .status()
            .expect("launch fedmp-node ps");
        assert!(status.success(), "fedmp-node ps exited nonzero");
    }
    let t_a = Trace::load(&a).expect("read trace a");
    let t_b = Trace::load(&b).expect("read trace b");
    let d = diff(&t_a, &t_b);
    assert!(!d.is_divergent(), "node binary traces diverged: {:?}", d.divergence);
    assert!(!t_a.events.is_empty());
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}
