//! # fedmp-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! FedMP paper's evaluation section. Each `src/bin/<id>.rs` binary
//! reproduces one experiment and prints the same rows/series the paper
//! reports, plus a JSON dump under `bench-results/`:
//!
//! ```text
//! cargo run -p fedmp-bench --release --bin fig2     # ratio sweep
//! cargo run -p fedmp-bench --release --bin table3   # accuracy in budget
//! cargo run -p fedmp-bench --release --bin all_experiments
//! ```
//!
//! Set `FEDMP_BENCH_PROFILE=full` for larger (slower, higher-fidelity)
//! runs; the default `quick` profile completes each experiment in
//! minutes on a laptop.

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
use fedmp_core::{ExperimentSpec, TaskKind};
use fedmp_fl::RunHistory;
use serde::Serialize;

/// Which fidelity to run at (`FEDMP_BENCH_PROFILE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Laptop-scale defaults.
    Quick,
    /// Larger models / more rounds.
    Full,
}

/// Reads the profile from the environment.
pub fn profile() -> Profile {
    match std::env::var("FEDMP_BENCH_PROFILE").as_deref() {
        Ok("full") => Profile::Full,
        _ => Profile::Quick,
    }
}

/// The experiment spec each bench uses for a task under the current
/// profile: the paper's default deployment (10 workers, Medium
/// heterogeneity) at laptop width.
pub fn bench_spec(task: TaskKind) -> ExperimentSpec {
    let mut spec = ExperimentSpec::bench(task);
    if profile() == Profile::Full {
        spec.width *= 2.0;
        spec.data_scale *= 2.0;
        spec.fl.rounds *= 2;
    }
    spec
}

/// Default time-to-target accuracy used across Figs. 6/8–10/12: 90 %
/// of the *baseline's* (first history's) final accuracy — the paper
/// fixes absolute targets relative to what Syn-FL achieves; methods
/// that never reach it report `-`.
pub fn common_target(histories: &[RunHistory]) -> f32 {
    let base_final = histories.first().and_then(|h| h.final_accuracy()).unwrap_or(0.5);
    (base_final * 0.9).min(0.99)
}

/// Where JSON results land.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("bench-results")
}

/// Writes an experiment's JSON result under `bench-results/`.
pub fn save_result(name: &str, value: &impl Serialize) {
    let path = results_dir().join(format!("{name}.json"));
    fedmp_core::save_json(&path, value);
    println!("\n[saved {}]", path.display());
}

/// Formats an `Option<f64>` seconds value for tables.
pub fn fmt_time(t: Option<f64>) -> String {
    match t {
        Some(v) => format!("{v:.1}s"),
        None => "-".into(),
    }
}

/// Formats a speedup column.
pub fn fmt_speedup(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:.2}x"),
        None => "-".into(),
    }
}
