//! Fig. 7: R2SP vs traditional BSP on FedMP, accuracy vs rounds. The
//! paper's shape: R2SP converges higher on every model; BSP damages the
//! final accuracy because pruned parameters never recover.

use fedmp_bench::{bench_spec, profile, save_result, Profile};
use fedmp_core::{print_table, run_method, Method, TaskKind};
use serde_json::json;

fn main() {
    let mut results = Vec::new();
    let mut rows = Vec::new();
    let tasks: Vec<TaskKind> = TaskKind::all().to_vec();
    let _ = (profile(), Profile::Full);
    for task in tasks {
        let spec = bench_spec(task);
        let r2sp = run_method(&spec, Method::FedMp);
        let bsp = run_method(&spec, Method::FedMpBsp);
        let a = r2sp.final_accuracy().unwrap_or(0.0);
        let b = bsp.final_accuracy().unwrap_or(0.0);
        rows.push(vec![
            task.name().into(),
            format!("{:.1}%", a * 100.0),
            format!("{:.1}%", b * 100.0),
            format!("{:+.1}pp", (a - b) * 100.0),
        ]);
        results.push(json!({
            "task": task.name(),
            "r2sp_curve": r2sp.accuracy_by_round(),
            "bsp_curve": bsp.accuracy_by_round(),
            "r2sp_final": a,
            "bsp_final": b,
        }));
    }
    print_table(
        "Fig. 7 — synchronisation scheme (final accuracy after equal rounds)",
        &["model", "R2SP", "BSP", "R2SP advantage"],
        &rows,
    );
    save_result("fig7", &results);
}
