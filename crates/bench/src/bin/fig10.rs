//! Fig. 10: scalability — completion time to a target accuracy as the
//! worker count grows from 10 to 30 (AlexNet/CIFAR-like, A+B mix). The
//! paper's shape: FedMP's completion time grows only slightly and stays
//! the fastest.

use fedmp_bench::{
    bench_spec, common_target, fmt_speedup, fmt_time, profile, save_result, Profile,
};
use fedmp_core::{print_table, run_method, speedup_table, Method, TaskKind};
use serde_json::json;

fn main() {
    let methods = Method::paper_five();
    let mut results = Vec::new();

    let full = profile() == Profile::Full;
    let counts: &[usize] = if full { &[10, 20, 30] } else { &[10, 30] };
    let task = if full { TaskKind::AlexnetCifar } else { TaskKind::CnnMnist };
    for &workers in counts {
        let mut spec = bench_spec(task);
        spec.workers = workers;
        let histories: Vec<_> = methods.iter().map(|&m| run_method(&spec, m)).collect();
        let target = common_target(&histories);
        let table = speedup_table(&histories, target);
        let rows: Vec<Vec<String>> =
            table.iter().map(|(n, t, s)| vec![n.clone(), fmt_time(*t), fmt_speedup(*s)]).collect();
        print_table(
            &format!("Fig. 10 — {workers} workers (target {:.0}%)", target * 100.0),
            &["method", "time to target", "speedup vs Syn-FL"],
            &rows,
        );
        results.push(json!({
            "workers": workers,
            "target": target,
            "rows": table.iter().map(|(n, t, s)| json!({
                "method": n, "time": t, "speedup": s,
            })).collect::<Vec<_>>(),
        }));
    }
    save_result("fig10", &results);
}
