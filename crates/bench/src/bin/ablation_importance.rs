//! Ablation (paper §VI / DESIGN.md §5): the pruning importance metric.
//!
//! FedMP's §VI argues the pruning strategy is pluggable. This bench
//! swaps the paper's L1 metric for L2 and for seeded-random selection
//! and measures the end-to-end effect. Expected shape: L1 ≈ L2 (both
//! weight-magnitude based) and both clearly beat random pruning.

use fedmp_bench::{bench_spec, fmt_time, save_result};
use fedmp_core::{print_table, run_fedmp_custom, TaskKind};
use fedmp_fl::FedMpOptions;
use fedmp_pruning::Importance;
use serde_json::json;

fn main() {
    let spec = bench_spec(TaskKind::CnnMnist);
    let metrics = [
        ("L1 (paper)", Importance::L1),
        ("L2", Importance::L2),
        ("random", Importance::Random { seed: 7 }),
    ];

    // All runs use a fixed moderate ratio so only the metric varies.
    let histories: Vec<_> = metrics
        .iter()
        .map(|&(_, importance)| {
            let opts = FedMpOptions { importance, fixed_ratio: Some(0.5), ..Default::default() };
            run_fedmp_custom(&spec, &opts)
        })
        .collect();
    let min_final =
        histories.iter().filter_map(|h| h.final_accuracy()).fold(f32::INFINITY, f32::min);
    let target = min_final * 0.95;

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for ((name, _), h) in metrics.iter().zip(histories.iter()) {
        let final_acc = h.final_accuracy().unwrap_or(0.0);
        let t = h.time_to_accuracy(target);
        rows.push(vec![name.to_string(), format!("{:.1}%", final_acc * 100.0), fmt_time(t)]);
        results.push(json!({"metric": name, "final_acc": final_acc, "time_to_target": t}));
    }
    print_table(
        &format!("Ablation — importance metric (alpha=0.5 fixed, target {:.0}%)", target * 100.0),
        &["metric", "final accuracy", "time to target"],
        &rows,
    );
    save_result("ablation_importance", &results);
}
