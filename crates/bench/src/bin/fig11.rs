//! Fig. 11: average per-round algorithm overhead (pruning-ratio decision
//! time + model pruning time) vs the number of workers. The paper's
//! shape: overhead grows with the worker count but stays negligible
//! next to training/transfer times.

use fedmp_bench::{bench_spec, save_result};
use fedmp_core::{measure_overhead, print_table, TaskKind};
use serde_json::json;

fn main() {
    let spec = bench_spec(TaskKind::AlexnetCifar);
    let built = spec.build();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for workers in [10usize, 15, 20, 25, 30] {
        let report = measure_overhead(&built.model, built.task.input_chw, workers, 5);
        rows.push(vec![
            workers.to_string(),
            format!("{:.2}ms", report.decision_secs * 1e3),
            format!("{:.2}ms", report.pruning_secs * 1e3),
            format!("{:.2}ms", report.total_secs() * 1e3),
        ]);
        series.push(json!({
            "workers": workers,
            "decision_ms": report.decision_secs * 1e3,
            "pruning_ms": report.pruning_secs * 1e3,
        }));
    }
    print_table(
        "Fig. 11 — PS algorithm overhead per round (wall clock)",
        &["workers", "ratio decision", "model pruning", "total"],
        &rows,
    );
    println!(
        "(for scale: simulated per-round training/transfer times are tens to hundreds of virtual seconds)"
    );
    save_result("fig11", &series);
}
