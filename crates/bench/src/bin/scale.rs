//! Population-scale benchmark: cohort curve, per-shard memory flatness
//! and the hierarchical-vs-flat bit-identity gate.
//!
//! Three sections, all written to `bench-results/scale.json`:
//!
//! 1. **Identity gate** — small real runs of the hierarchical engines
//!    over every tested `(threads, shards, edges)` configuration,
//!    including the degenerate `(1, 1)` topology (which IS the flat
//!    grouping: one reducer folds the whole cohort). All histories must
//!    be byte-identical, loop and threaded alike, or the bin exits
//!    non-zero. A direct aggregation-layer check against
//!    [`average_states`] guards the algebra itself.
//! 2. **Cohort curve** — streaming shard reduction at the aggregation
//!    layer over cohorts up to 10⁵ synthetic clients: each shard folds
//!    its slice into an [`ExactState`] and reports its peak tracked
//!    allocation. The per-shard peak must stay flat (≤ 10% variation)
//!    across the whole curve — memory is a function of the model
//!    shape, not the cohort size.
//! 3. **Engine rows** — real traced runs at small cohorts over a
//!    100 000-device population, reporting the `ShardReduced`
//!    peak-byte meta the engine itself emits.
//!
//! Run with `cargo run --release -p fedmp-bench --bin scale`. Set
//! `FEDMP_BENCH_SMOKE=1` (CI) for a seconds-scale configuration that
//! exercises the same code paths and gates.

use std::time::Instant;

use fedmp_bench::save_result;
use fedmp_core::{print_table, run_hier, run_hier_threaded, ExperimentSpec, TaskKind};
use fedmp_fl::{average_states, ExactState, HierarchyOptions, RunHistory};
use fedmp_nn::StateEntry;
use fedmp_obs::{RunManifest, TraceEvent, TraceSession};
use fedmp_tensor::{parallel, Tensor};
use serde_json::json;

/// Parameter count of the synthetic template the cohort curve streams
/// (the curve measures memory shape, not model quality).
const TEMPLATE_PARAMS: usize = 4096;

fn canonical(h: &RunHistory) -> String {
    serde_json::to_string(h).expect("serialise history")
}

/// A deterministic synthetic client update: `TEMPLATE_PARAMS` values
/// derived from the client id, spanning signs and magnitudes.
fn synthetic_update(id: u64) -> Vec<StateEntry> {
    let mut z = id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
    let vals: Vec<f32> = (0..TEMPLATE_PARAMS)
        .map(|_| {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let u = (z >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
            (u - 0.5) * 2e4
        })
        .collect();
    vec![StateEntry::trainable(
        "w",
        Tensor::from_vec(vals, &[TEMPLATE_PARAMS]).expect("synthetic template"),
    )]
}

/// Streams `cohort` synthetic clients through `shards` reducers and
/// returns (max per-shard peak bytes, finalised mean) — the
/// aggregation-layer analogue of one hierarchical round.
fn stream_cohort(cohort: u64, shards: usize) -> (u64, Vec<StateEntry>) {
    let template = synthetic_update(0);
    let mut peak = 0u64;
    let mut cloud: Option<ExactState> = None;
    for s in 0..shards as u64 {
        let lo = s * cohort / shards as u64;
        let hi = (s + 1) * cohort / shards as u64;
        let mut acc = ExactState::like(&template);
        let acc_bytes = acc.tracked_bytes() as u64;
        let mut shard_peak = acc_bytes;
        for id in lo..hi {
            // The streaming contract: materialise one update, fold it,
            // drop it. The transient is one f32 snapshot.
            let update = synthetic_update(id);
            acc.fold(&update);
            shard_peak = shard_peak.max(acc_bytes + 4 * TEMPLATE_PARAMS as u64);
        }
        peak = peak.max(shard_peak);
        match cloud.as_mut() {
            Some(c) => c.merge(&acc),
            None => cloud = Some(acc),
        }
    }
    let mean = cloud.expect("at least one shard").finalize(cohort as usize);
    (peak, mean)
}

fn main() {
    let smoke = std::env::var("FEDMP_BENCH_SMOKE").as_deref() == Ok("1");
    let mut failures = Vec::new();

    // ── 1. identity gate ────────────────────────────────────────────
    // The algebra itself: any shard tree == the flat average, bitwise.
    let flat_cohort: Vec<Vec<StateEntry>> = (0..24).map(synthetic_update).collect();
    let flat = average_states(&flat_cohort);
    for shards in [1usize, 3, 8] {
        let mut cloud: Option<ExactState> = None;
        for s in 0..shards {
            let lo = s * flat_cohort.len() / shards;
            let hi = (s + 1) * flat_cohort.len() / shards;
            let mut acc = ExactState::like(&flat_cohort[0]);
            for st in &flat_cohort[lo..hi] {
                acc.fold(st);
            }
            match cloud.as_mut() {
                Some(c) => c.merge(&acc),
                None => cloud = Some(acc),
            }
        }
        let hier = cloud.expect("shards >= 1").finalize(flat_cohort.len());
        let same = flat.iter().zip(&hier).all(|(a, b)| {
            a.tensor.data().iter().zip(b.tensor.data()).all(|(x, y)| x.to_bits() == y.to_bits())
        });
        if !same {
            failures.push(format!("aggregation algebra: {shards}-shard tree != flat average"));
        }
    }

    // The engines: every (threads, shards, edges) config must reproduce
    // the (1, 1, 1) flat-grouping history byte for byte.
    let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
    spec.fl.rounds = if smoke { 1 } else { 2 };
    spec.fl.eval_every = spec.fl.rounds;
    let population = 100_000u64;
    let cohort = if smoke { 6 } else { 8 };
    let topologies: &[(usize, usize)] = &[(1, 1), (4, 2), (8, 4)];
    let threads: &[usize] = if smoke { &[1, 2] } else { &[1, 4] };
    let mut reference: Option<String> = None;
    let mut gate_rows = Vec::new();
    for &(shards, edges) in topologies {
        let opts = HierarchyOptions { cohort, shards, edges, ..Default::default() };
        for &t in threads {
            parallel::override_threads(Some(t));
            let start = Instant::now();
            let h_loop = run_hier(&spec, population, &opts);
            let loop_secs = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let h_thr = match run_hier_threaded(&spec, population, &opts) {
                Ok(h) => h,
                Err(e) => {
                    failures.push(format!("threaded hier failed at s={shards} e={edges}: {e}"));
                    parallel::override_threads(None);
                    continue;
                }
            };
            let thr_secs = start.elapsed().as_secs_f64();
            parallel::override_threads(None);
            let c_loop = canonical(&h_loop);
            let c_thr = canonical(&h_thr);
            if c_loop != c_thr {
                failures.push(format!(
                    "loop vs threaded histories differ at threads={t} shards={shards} edges={edges}"
                ));
            }
            match &reference {
                None => reference = Some(c_loop.clone()),
                Some(r) if *r != c_loop => failures.push(format!(
                    "history changed vs flat grouping at threads={t} shards={shards} edges={edges}"
                )),
                Some(_) => {}
            }
            gate_rows.push(json!({
                "threads": t, "shards": shards, "edges": edges,
                "loop_secs": loop_secs, "threaded_secs": thr_secs,
                "identical": c_loop == c_thr,
            }));
        }
    }

    // ── 2. cohort curve ─────────────────────────────────────────────
    let cohorts: &[u64] = if smoke { &[100, 1_000] } else { &[100, 1_000, 10_000, 100_000] };
    let shards = 8usize;
    let mut curve_rows = Vec::new();
    let mut table = Vec::new();
    let mut peaks = Vec::new();
    for &c in cohorts {
        let start = Instant::now();
        let (peak, mean) = stream_cohort(c, shards);
        let secs = start.elapsed().as_secs_f64();
        // Keep the finalised mean observable so the fold can't be
        // optimised away.
        let checksum: u32 = mean[0].tensor.data().iter().map(|v| v.to_bits() >> 24).sum();
        peaks.push(peak);
        curve_rows.push(json!({
            "cohort": c, "shards": shards,
            "per_shard_peak_bytes": peak,
            "fold_secs": secs,
            "mean_checksum": checksum,
        }));
        table.push(vec![
            format!("{c}"),
            format!("{shards}"),
            format!("{peak}"),
            format!("{secs:.2}s"),
        ]);
    }
    let (lo, hi) =
        (peaks.iter().copied().min().unwrap_or(0), peaks.iter().copied().max().unwrap_or(0));
    let variation = if lo > 0 { (hi - lo) as f64 / lo as f64 } else { f64::INFINITY };
    if variation > 0.10 {
        failures.push(format!(
            "per-shard peak memory varies {:.1}% across the cohort curve (limit 10%)",
            variation * 100.0
        ));
    }
    print_table(
        &format!("cohort curve ({shards} shard reducers, {TEMPLATE_PARAMS}-param template)"),
        &["cohort", "shards", "per-shard peak B", "fold time"],
        &table,
    );
    println!("per-shard peak variation across curve: {:.2}%", variation * 100.0);

    // ── 3. engine-measured rows ─────────────────────────────────────
    let engine_cohorts: &[usize] = if smoke { &[6] } else { &[8, 32] };
    let mut engine_rows = Vec::new();
    for &c in engine_cohorts {
        let opts = HierarchyOptions { cohort: c, shards: 4, edges: 2, ..Default::default() };
        let manifest = RunManifest::new("scale", spec.seed, c, spec.fl.rounds, 1);
        let session = TraceSession::capture(&manifest);
        let h = run_hier(&spec, population, &opts);
        let trace = session.finish();
        let peak = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ShardReduced { peak_bytes, .. } => Some(*peak_bytes),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        engine_rows.push(json!({
            "cohort": c, "population": population,
            "shards": 4, "edges": 2,
            "rounds": h.rounds.len(),
            "per_shard_peak_bytes": peak,
            "final_accuracy": h.final_accuracy(),
        }));
        println!("engine run: cohort {c} of {population} devices -> per-shard peak {peak} bytes");
    }

    save_result(
        "scale",
        &json!({
            "smoke": smoke,
            "identity_gate": gate_rows,
            "cohort_curve": curve_rows,
            "per_shard_peak_variation": variation,
            "engine_rows": engine_rows,
            "failures": failures,
        }),
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("\nidentity gate: all (threads, shards, edges) configs bit-identical to flat");
}
