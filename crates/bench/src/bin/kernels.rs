//! Reference-vs-blocked kernel benchmark.
//!
//! Times the naive `*_reference` GEMM kernels against the cache-blocked
//! production kernels on the GEMM shapes the width-1.0 model zoo
//! actually runs (im2col convolutions and linear layers, batch 64), plus
//! the conv2d forward pass itself, and writes the speedups to
//! `bench-results/kernels.json`. Run with:
//!
//! ```text
//! cargo run --release -p fedmp-bench --bin kernels
//! ```

use std::time::Instant;

use fedmp_tensor::{
    conv2d_forward, im2col, matmul_nt_reference, matmul_reference, matmul_tn_reference, parallel,
    seeded_rng, Conv2dSpec, Tensor,
};
use serde_json::json;

/// GEMM transpose configuration, matching the three `Tensor` kernels.
#[derive(Clone, Copy, PartialEq)]
enum Op {
    Nn,
    Nt,
    Tn,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Nn => "nn",
            Op::Nt => "nt",
            Op::Tn => "tn",
        }
    }
}

struct GemmCase {
    name: &'static str,
    op: Op,
    m: usize,
    k: usize,
    n: usize,
}

/// Every GEMM the width-1.0 zoo models issue per batch of 64 images:
/// conv layers as one im2col GEMM per image, linear layers as one
/// batched `nt` forward plus its `tn` weight gradient.
const GEMM_CASES: &[GemmCase] = &[
    GemmCase { name: "cnn_mnist/conv2_fwd", op: Op::Nn, m: 64, k: 800, n: 196 },
    GemmCase { name: "cnn_mnist/fc1_fwd_b64", op: Op::Nt, m: 64, k: 3136, n: 256 },
    GemmCase { name: "alexnet/conv3_fwd", op: Op::Nn, m: 384, k: 1728, n: 64 },
    GemmCase { name: "alexnet/fc1_fwd_b64", op: Op::Nt, m: 64, k: 4096, n: 512 },
    GemmCase { name: "alexnet/fc1_wgrad_b64", op: Op::Tn, m: 512, k: 64, n: 4096 },
    GemmCase { name: "vgg/conv_s3_fwd", op: Op::Nn, m: 256, k: 1152, n: 49 },
];

/// Best-of-reps wall clock for `f`, in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f()); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The pre-blocking conv2d forward: sequential batch loop over
/// `im2col` + reference GEMM, kept here as the benchmark baseline.
fn conv2d_forward_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Tensor {
    let d = input.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oc = weight.dims()[0];
    let (oh, ow) = spec.out_hw(h, w);
    let w_mat = weight.reshape(&[oc, c * spec.kh * spec.kw]);
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let out_img = oc * oh * ow;
    for i in 0..n {
        let cols = im2col(&input.data()[i * c * h * w..(i + 1) * c * h * w], c, h, w, spec);
        let res = matmul_reference(&w_mat, &cols);
        let dst = &mut out.data_mut()[i * out_img..(i + 1) * out_img];
        for f in 0..oc {
            let b = bias.data()[f];
            let src = &res.data()[f * oh * ow..(f + 1) * oh * ow];
            for (dv, &sv) in dst[f * oh * ow..(f + 1) * oh * ow].iter_mut().zip(src.iter()) {
                *dv = sv + b;
            }
        }
    }
    out
}

fn main() {
    let mut rng = seeded_rng(0xBE7C);
    let mut gemm_rows = Vec::new();
    let mut headline: Option<(String, usize, f64)> = None;

    for case in GEMM_CASES {
        let (m, k, n) = (case.m, case.k, case.n);
        let flops = 2 * m * k * n;
        // Operand layouts per transpose configuration.
        let (a_dims, b_dims): (&[usize], &[usize]) = match case.op {
            Op::Nn => (&[m, k], &[k, n]),
            Op::Nt => (&[m, k], &[n, k]),
            Op::Tn => (&[k, m], &[k, n]),
        };
        let a = Tensor::randn(a_dims, &mut rng);
        let b = Tensor::randn(b_dims, &mut rng);
        let reps = (200_000_000 / flops).clamp(3, 50);
        let reference_ms = time_ms(reps, || match case.op {
            Op::Nn => matmul_reference(&a, &b),
            Op::Nt => matmul_nt_reference(&a, &b),
            Op::Tn => matmul_tn_reference(&a, &b),
        });
        let blocked_ms = time_ms(reps, || match case.op {
            Op::Nn => a.matmul(&b),
            Op::Nt => a.matmul_nt(&b),
            Op::Tn => a.matmul_tn(&b),
        });
        let speedup = reference_ms / blocked_ms;
        println!(
            "gemm {:<24} {}  {m}x{k}x{n}: ref {reference_ms:8.3} ms  blocked {blocked_ms:8.3} ms  {speedup:5.2}x",
            case.name,
            case.op.name(),
        );
        if headline.as_ref().is_none_or(|&(_, f, _)| flops > f) {
            headline = Some((case.name.to_string(), flops, speedup));
        }
        gemm_rows.push(json!({
            "name": case.name,
            "op": case.op.name(),
            "m": m, "k": k, "n": n,
            "flops": flops,
            "reference_ms": reference_ms,
            "blocked_ms": blocked_ms,
            "speedup": speedup,
        }));
    }

    // Conv forward on the two conv-heavy zoo stages, full batch.
    let mut conv_rows = Vec::new();
    for (name, n, c, h, w, oc, kh, stride, padding) in [
        ("cnn_mnist/conv2_b8", 8usize, 32usize, 14usize, 14usize, 64usize, 5usize, 1usize, 2usize),
        ("alexnet/conv2_b8", 8, 64, 16, 16, 192, 3, 1, 1),
    ] {
        let spec = Conv2dSpec { kh, kw: kh, stride, padding };
        let input = Tensor::randn(&[n, c, h, w], &mut rng);
        let weight = Tensor::randn(&[oc, c, kh, kh], &mut rng);
        let bias = Tensor::zeros(&[oc]);
        let reference_ms = time_ms(3, || conv2d_forward_reference(&input, &weight, &bias, &spec));
        let blocked_ms = time_ms(3, || conv2d_forward(&input, &weight, &bias, &spec));
        let speedup = reference_ms / blocked_ms;
        println!(
            "conv {name:<24} ref {reference_ms:8.3} ms  blocked {blocked_ms:8.3} ms  {speedup:5.2}x"
        );
        conv_rows.push(json!({
            "name": name,
            "batch": n, "in_channels": c, "h": h, "w": w,
            "out_channels": oc, "kernel": kh, "stride": stride, "padding": padding,
            "reference_ms": reference_ms,
            "blocked_ms": blocked_ms,
            "speedup": speedup,
        }));
    }

    let (headline_name, headline_flops, headline_speedup) = headline.expect("at least one case");
    let report = json!({
        "generated_by": "cargo run --release -p fedmp-bench --bin kernels",
        "threads": parallel::configured_threads(),
        "gemm": gemm_rows,
        "conv": conv_rows,
        "headline": {
            "shape": headline_name,
            "flops": headline_flops,
            "speedup_vs_reference": headline_speedup,
        },
    });
    std::fs::create_dir_all("bench-results").expect("create bench-results/");
    let path = "bench-results/kernels.json";
    std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialise"))
        .expect("write kernels.json");
    println!("wrote {path} (headline {headline_name}: {headline_speedup:.2}x)");
}
