//! Reference vs scalar-blocked vs SIMD kernel benchmark, plus the
//! pruning-aware fast-path table.
//!
//! Times the naive `*_reference` GEMM kernels against the cache-blocked
//! scalar kernels and the AVX2/FMA microkernels on the GEMM shapes the
//! width-1.0 model zoo actually runs (im2col convolutions and linear
//! layers, batch 64), plus the conv2d forward pass itself, then
//! measures what structured pruning buys at the kernel level: a
//! ρ-pruned conv/FC layer through `conv2d_forward_pruned` /
//! `matmul_nt_pruned` against its dense baseline. Writes everything to
//! `bench-results/kernels.json`. Run with:
//!
//! ```text
//! cargo run --release -p fedmp-bench --bin kernels
//! ```
//!
//! Set `FEDMP_BENCH_SMOKE=1` (CI) to cut repetitions and skip the
//! timing-based gates; the *equivalence* gates — every path against the
//! reference oracle, every pruned run bitwise against dense-on-extracted
//! — always run, so a smoke pass still proves the kernels compute the
//! same numbers. Timing gates in full mode: on AVX2 hosts the headline
//! SIMD GEMM must beat the scalar blocked kernel ≥ 2×, and the
//! 70 %-pruned (out-only) layers must cost ≤ 40 % of their dense time
//! (the kept-FLOPs fraction is 30 % — time must track FLOPs).

use std::time::Instant;

use fedmp_pruning::ratio_keep_count;
use fedmp_tensor::simd::{self, SimdPath};
use fedmp_tensor::{
    conv2d_forward, conv2d_forward_pruned, im2col, matmul_nt_pruned, matmul_nt_reference,
    matmul_reference, matmul_tn_reference, parallel, seeded_rng, Conv2dSpec, Tensor,
};
use serde_json::json;

/// GEMM transpose configuration, matching the three `Tensor` kernels.
#[derive(Clone, Copy, PartialEq)]
enum Op {
    Nn,
    Nt,
    Tn,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Nn => "nn",
            Op::Nt => "nt",
            Op::Tn => "tn",
        }
    }
}

struct GemmCase {
    name: &'static str,
    op: Op,
    m: usize,
    k: usize,
    n: usize,
}

/// Every GEMM the width-1.0 zoo models issue per batch of 64 images:
/// conv layers as one im2col GEMM per image, linear layers as one
/// batched `nt` forward plus its `tn` weight gradient.
const GEMM_CASES: &[GemmCase] = &[
    GemmCase { name: "cnn_mnist/conv2_fwd", op: Op::Nn, m: 64, k: 800, n: 196 },
    GemmCase { name: "cnn_mnist/fc1_fwd_b64", op: Op::Nt, m: 64, k: 3136, n: 256 },
    GemmCase { name: "alexnet/conv3_fwd", op: Op::Nn, m: 384, k: 1728, n: 64 },
    GemmCase { name: "alexnet/fc1_fwd_b64", op: Op::Nt, m: 64, k: 4096, n: 512 },
    GemmCase { name: "alexnet/fc1_wgrad_b64", op: Op::Tn, m: 512, k: 64, n: 4096 },
    GemmCase { name: "vgg/conv_s3_fwd", op: Op::Nn, m: 256, k: 1152, n: 49 },
];

/// Best-of-reps wall clock for `f`, in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f()); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Best-of-reps for a *pair* of kernels, alternating them within one
/// measurement window (`d p d p …`). The pruned table gates on the
/// ratio of the two, and on a shared host a frequency dip during one
/// side's window would skew a ratio of separately-timed bests;
/// interleaving makes any dip hit both sides alike.
fn time_pair_ms<R1, R2>(
    reps: usize,
    mut d: impl FnMut() -> R1,
    mut p: impl FnMut() -> R2,
) -> (f64, f64) {
    std::hint::black_box(d()); // warm-up
    std::hint::black_box(p());
    let (mut bd, mut bp) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(d());
        bd = bd.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        std::hint::black_box(p());
        bp = bp.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (bd, bp)
}

/// Runs `f` with the SIMD dispatch forced to `path`, then restores the
/// default (`FEDMP_SIMD`-configured) dispatch.
fn with_path<R>(path: SimdPath, f: impl FnOnce() -> R) -> R {
    simd::override_path(Some(path));
    let out = f();
    simd::override_path(None);
    out
}

/// Equivalence gate: `got` agrees with the oracle within a relative
/// tolerance (the paths re-associate / fuse float ops, so bitwise
/// equality is only promised *within* a path, not across paths).
fn assert_close(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.dims(), want.dims(), "{what}: dims");
    for (i, (x, y)) in got.data().iter().zip(want.data().iter()).enumerate() {
        let tol = 1e-3 + 1e-4 * y.abs();
        assert!((x - y).abs() <= tol, "{what}: element {i}: {x} vs {y}");
    }
}

/// Bitwise gate: the pruned fast path must match the dense kernel on
/// physically extracted operands down to the last ulp.
fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.dims(), want.dims(), "{what}: dims");
    for (i, (x, y)) in got.data().iter().zip(want.data().iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

/// The pre-blocking conv2d forward: sequential batch loop over
/// `im2col` + reference GEMM, kept here as the benchmark baseline.
fn conv2d_forward_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Tensor {
    let d = input.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oc = weight.dims()[0];
    let (oh, ow) = spec.out_hw(h, w);
    let w_mat = weight.reshape(&[oc, c * spec.kh * spec.kw]);
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let out_img = oc * oh * ow;
    for i in 0..n {
        let cols = im2col(&input.data()[i * c * h * w..(i + 1) * c * h * w], c, h, w, spec);
        let res = matmul_reference(&w_mat, &cols);
        let dst = &mut out.data_mut()[i * out_img..(i + 1) * out_img];
        for f in 0..oc {
            let b = bias.data()[f];
            let src = &res.data()[f * oh * ow..(f + 1) * oh * ow];
            for (dv, &sv) in dst[f * oh * ow..(f + 1) * oh * ow].iter_mut().zip(src.iter()) {
                *dv = sv + b;
            }
        }
    }
    out
}

/// Physically extracts the kept rows/columns of a `[out, in]` weight.
fn gather_2d(w: &Tensor, kept_out: &[usize], kept_in: &[usize]) -> Tensor {
    let inf = w.dims()[1];
    let mut out = Tensor::zeros(&[kept_out.len(), kept_in.len()]);
    for (r, &fo) in kept_out.iter().enumerate() {
        for (c, &fi) in kept_in.iter().enumerate() {
            out.data_mut()[r * kept_in.len() + c] = w.data()[fo * inf + fi];
        }
    }
    out
}

/// Physically extracts kept filters/channels of an `[oc, c, kh, kw]`
/// conv weight.
fn gather_conv_weight(w: &Tensor, kept_out: &[usize], kept_in: &[usize]) -> Tensor {
    let d = w.dims();
    let (c, kh, kw) = (d[1], d[2], d[3]);
    let k2 = kh * kw;
    let mut out = Tensor::zeros(&[kept_out.len(), kept_in.len(), kh, kw]);
    for (r, &fo) in kept_out.iter().enumerate() {
        for (j, &fi) in kept_in.iter().enumerate() {
            let src = &w.data()[(fo * c + fi) * k2..(fo * c + fi + 1) * k2];
            let base = (r * kept_in.len() + j) * k2;
            out.data_mut()[base..base + k2].copy_from_slice(src);
        }
    }
    out
}

/// Gathers kept channels of an `[n, c, h, w]` activation.
fn gather_channels(x: &Tensor, kept: &[usize]) -> Tensor {
    let d = x.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let img = h * w;
    let mut out = Tensor::zeros(&[n, kept.len(), h, w]);
    for i in 0..n {
        for (j, &ch) in kept.iter().enumerate() {
            let src = &x.data()[(i * c + ch) * img..(i * c + ch + 1) * img];
            let base = (i * kept.len() + j) * img;
            out.data_mut()[base..base + img].copy_from_slice(src);
        }
    }
    out
}

/// Gathers kept columns of an `[m, f]` activation matrix.
fn gather_cols(x: &Tensor, kept: &[usize]) -> Tensor {
    let d = x.dims();
    let (m, f) = (d[0], d[1]);
    let mut out = Tensor::zeros(&[m, kept.len()]);
    for r in 0..m {
        for (c, &fi) in kept.iter().enumerate() {
            out.data_mut()[r * kept.len() + c] = x.data()[r * f + fi];
        }
    }
    out
}

fn main() {
    let smoke = std::env::var("FEDMP_BENCH_SMOKE").as_deref() == Ok("1");
    let has_avx2 = simd::avx2_supported();
    let detected = simd::detected_features();
    let selected = simd::active_path();
    println!("cpu: detected {detected}, dispatch selects `{}`", selected.name());

    let mut rng = seeded_rng(0xBE7C);
    let mut gemm_rows = Vec::new();
    let mut headline: Option<(String, usize, f64, Option<f64>)> = None;

    for case in GEMM_CASES {
        let (m, k, n) = (case.m, case.k, case.n);
        let flops = 2 * m * k * n;
        // Operand layouts per transpose configuration.
        let (a_dims, b_dims): (&[usize], &[usize]) = match case.op {
            Op::Nn => (&[m, k], &[k, n]),
            Op::Nt => (&[m, k], &[n, k]),
            Op::Tn => (&[k, m], &[k, n]),
        };
        let a = Tensor::randn(a_dims, &mut rng);
        let b = Tensor::randn(b_dims, &mut rng);
        let run = |op: Op| match op {
            Op::Nn => a.matmul(&b),
            Op::Nt => a.matmul_nt(&b),
            Op::Tn => a.matmul_tn(&b),
        };
        let reference = match case.op {
            Op::Nn => matmul_reference(&a, &b),
            Op::Nt => matmul_nt_reference(&a, &b),
            Op::Tn => matmul_tn_reference(&a, &b),
        };
        // Equivalence gates before any timing: both paths vs oracle.
        with_path(SimdPath::Scalar, || {
            assert_close(&run(case.op), &reference, &format!("{}/scalar", case.name));
        });
        if has_avx2 {
            with_path(SimdPath::Avx2, || {
                assert_close(&run(case.op), &reference, &format!("{}/simd", case.name));
            });
        }

        let reps = if smoke { 2 } else { (200_000_000 / flops).clamp(3, 50) };
        let reference_ms = time_ms(reps, || match case.op {
            Op::Nn => matmul_reference(&a, &b),
            Op::Nt => matmul_nt_reference(&a, &b),
            Op::Tn => matmul_tn_reference(&a, &b),
        });
        let scalar_ms = with_path(SimdPath::Scalar, || time_ms(reps, || run(case.op)));
        let simd_ms =
            has_avx2.then(|| with_path(SimdPath::Avx2, || time_ms(reps, || run(case.op))));
        let gflops = |ms: f64| flops as f64 / (ms * 1e6);
        let speedup = reference_ms / scalar_ms;
        let simd_speedup = simd_ms.map(|s| scalar_ms / s);
        println!(
            "gemm {:<24} {}  {m}x{k}x{n}: ref {reference_ms:8.3} ms  scalar {scalar_ms:8.3} ms  simd {}  {speedup:5.2}x ref/scalar{}",
            case.name,
            case.op.name(),
            simd_ms.map_or("     n/a".into(), |s| format!("{s:8.3} ms")),
            simd_speedup.map_or(String::new(), |s| format!("  {s:5.2}x scalar/simd")),
        );
        if headline.as_ref().is_none_or(|&(_, f, _, _)| flops > f) {
            headline = Some((case.name.to_string(), flops, speedup, simd_speedup));
        }
        gemm_rows.push(json!({
            "name": case.name,
            "op": case.op.name(),
            "m": m, "k": k, "n": n,
            "flops": flops,
            "reference_ms": reference_ms,
            "scalar_ms": scalar_ms,
            "simd_ms": simd_ms,
            "gflops_scalar": gflops(scalar_ms),
            "gflops_simd": simd_ms.map(gflops),
            "speedup_scalar_vs_reference": speedup,
            "speedup_simd_vs_scalar": simd_speedup,
        }));
    }

    // Conv forward on the two conv-heavy zoo stages, full batch.
    let mut conv_rows = Vec::new();
    for (name, n, c, h, w, oc, kh, stride, padding) in [
        ("cnn_mnist/conv2_b8", 8usize, 32usize, 14usize, 14usize, 64usize, 5usize, 1usize, 2usize),
        ("alexnet/conv2_b8", 8, 64, 16, 16, 192, 3, 1, 1),
    ] {
        let spec = Conv2dSpec { kh, kw: kh, stride, padding };
        let input = Tensor::randn(&[n, c, h, w], &mut rng);
        let weight = Tensor::randn(&[oc, c, kh, kh], &mut rng);
        let bias = Tensor::zeros(&[oc]);
        let reference = conv2d_forward_reference(&input, &weight, &bias, &spec);
        with_path(SimdPath::Scalar, || {
            assert_close(
                &conv2d_forward(&input, &weight, &bias, &spec),
                &reference,
                &format!("{name}/scalar"),
            );
        });
        if has_avx2 {
            with_path(SimdPath::Avx2, || {
                assert_close(
                    &conv2d_forward(&input, &weight, &bias, &spec),
                    &reference,
                    &format!("{name}/simd"),
                );
            });
        }
        let conv_reps = if smoke { 1 } else { 3 };
        let reference_ms =
            time_ms(conv_reps, || conv2d_forward_reference(&input, &weight, &bias, &spec));
        let scalar_ms = with_path(SimdPath::Scalar, || {
            time_ms(conv_reps, || conv2d_forward(&input, &weight, &bias, &spec))
        });
        let simd_ms = has_avx2.then(|| {
            with_path(SimdPath::Avx2, || {
                time_ms(conv_reps, || conv2d_forward(&input, &weight, &bias, &spec))
            })
        });
        let speedup = reference_ms / scalar_ms;
        println!(
            "conv {name:<24} ref {reference_ms:8.3} ms  scalar {scalar_ms:8.3} ms  simd {}  {speedup:5.2}x ref/scalar",
            simd_ms.map_or("     n/a".into(), |s| format!("{s:8.3} ms")),
        );
        conv_rows.push(json!({
            "name": name,
            "batch": n, "in_channels": c, "h": h, "w": w,
            "out_channels": oc, "kernel": kh, "stride": stride, "padding": padding,
            "reference_ms": reference_ms,
            "scalar_ms": scalar_ms,
            "simd_ms": simd_ms,
            "speedup_scalar_vs_reference": speedup,
            "speedup_simd_vs_scalar": simd_ms.map(|s| scalar_ms / s),
        }));
    }

    // ------------------------------------------------------------------
    // Pruning-aware fast paths: what does a ρ-pruned layer actually
    // cost, relative to its dense self, under the default dispatch?
    //
    // `out_only` prunes the filter/neuron dimension alone (kept-FLOPs
    // fraction = 1−ρ — the linearity the paper's cost model assumes);
    // `chained` prunes both dimensions as plan-chained interior layers
    // do (kept fraction ≈ (1−ρ)²).
    // ------------------------------------------------------------------
    let mut pruned_rows = Vec::new();
    let pruned_reps = if smoke { 1 } else { 7 };

    // Conv layer: alexnet/conv2 geometry, batch 8.
    let (cn, cc, chh, cww, coc, ckh) = (8usize, 64usize, 16usize, 16usize, 192usize, 3usize);
    let cspec = Conv2dSpec { kh: ckh, kw: ckh, stride: 1, padding: 1 };
    let cinput = Tensor::randn(&[cn, cc, chh, cww], &mut rng);
    let cweight = Tensor::randn(&[coc, cc, ckh, ckh], &mut rng);
    let cbias = Tensor::randn(&[coc], &mut rng);

    // Linear layer: alexnet/fc1 geometry, batch 64.
    let (lm, lif, lof) = (64usize, 4096usize, 512usize);
    let lx = Tensor::randn(&[lm, lif], &mut rng);
    let lw = Tensor::randn(&[lof, lif], &mut rng);

    for ratio in [0.3f32, 0.5, 0.7] {
        for chained in [false, true] {
            let ko_c = ratio_keep_count(coc, ratio);
            let ki_c = if chained { ratio_keep_count(cc, ratio) } else { cc };
            let kept_out: Vec<usize> = (0..ko_c).collect();
            let kept_in: Vec<usize> = (0..ki_c).collect();

            // Bitwise gate: pruned kernel == dense kernel on extracted
            // operands (always, smoke included).
            let got = conv2d_forward_pruned(&cinput, &cweight, &cbias, &cspec, &kept_out, &kept_in);
            let sub_w = gather_conv_weight(&cweight, &kept_out, &kept_in);
            let sub_b = {
                let mut b = Tensor::zeros(&[ko_c]);
                for (i, &f) in kept_out.iter().enumerate() {
                    b.data_mut()[i] = cbias.data()[f];
                }
                b
            };
            let sub_in =
                if ki_c == cc { cinput.clone() } else { gather_channels(&cinput, &kept_in) };
            let want = conv2d_forward(&sub_in, &sub_w, &sub_b, &cspec);
            let variant = if chained { "chained" } else { "out_only" };
            assert_bits_eq(&got, &want, &format!("conv ratio {ratio} {variant}"));

            let (conv_dense_ms, pruned_ms) = time_pair_ms(
                pruned_reps,
                || conv2d_forward(&cinput, &cweight, &cbias, &cspec),
                || conv2d_forward_pruned(&cinput, &cweight, &cbias, &cspec, &kept_out, &kept_in),
            );
            let kept_flops_frac = (ko_c * ki_c) as f64 / (coc * cc) as f64;
            let time_frac = pruned_ms / conv_dense_ms;
            println!(
                "pruned conv  ratio {ratio:.1} {variant:<8} kept {ko_c:3}/{coc} x {ki_c:3}/{cc}: {pruned_ms:8.3} ms  ({:.1}% of dense, {:.1}% of FLOPs)",
                time_frac * 100.0,
                kept_flops_frac * 100.0,
            );
            pruned_rows.push(json!({
                "layer": "alexnet/conv2_b8",
                "kind": "conv",
                "ratio": ratio,
                "variant": variant,
                "kept_out": ko_c, "out_full": coc,
                "kept_in": ki_c, "in_full": cc,
                "kept_flops_frac": kept_flops_frac,
                "dense_ms": conv_dense_ms,
                "pruned_ms": pruned_ms,
                "time_frac": time_frac,
            }));
            if !smoke && !chained && (ratio - 0.7).abs() < 1e-6 {
                assert!(
                    time_frac <= 0.40,
                    "pruned conv gate: 70%-pruned layer cost {:.1}% of dense (> 40%)",
                    time_frac * 100.0
                );
            }

            // Linear layer, same kept-set construction.
            let ko_l = ratio_keep_count(lof, ratio);
            let ki_l = if chained { ratio_keep_count(lif, ratio) } else { lif };
            let kept_out_l: Vec<usize> = (0..ko_l).collect();
            let kept_in_l: Vec<usize> = (0..ki_l).collect();
            let got = matmul_nt_pruned(&lx, &lw, &kept_out_l, &kept_in_l);
            let sub_w = gather_2d(&lw, &kept_out_l, &kept_in_l);
            let sub_x = if ki_l == lif { lx.clone() } else { gather_cols(&lx, &kept_in_l) };
            let want = sub_x.matmul_nt(&sub_w);
            assert_bits_eq(&got, &want, &format!("linear ratio {ratio} {variant}"));

            let (lin_dense_ms, pruned_ms) = time_pair_ms(
                pruned_reps,
                || lx.matmul_nt(&lw),
                || matmul_nt_pruned(&lx, &lw, &kept_out_l, &kept_in_l),
            );
            let kept_flops_frac = (ko_l * ki_l) as f64 / (lof * lif) as f64;
            let time_frac = pruned_ms / lin_dense_ms;
            println!(
                "pruned fc    ratio {ratio:.1} {variant:<8} kept {ko_l:3}/{lof} x {ki_l:4}/{lif}: {pruned_ms:8.3} ms  ({:.1}% of dense, {:.1}% of FLOPs)",
                time_frac * 100.0,
                kept_flops_frac * 100.0,
            );
            pruned_rows.push(json!({
                "layer": "alexnet/fc1_b64",
                "kind": "linear",
                "ratio": ratio,
                "variant": variant,
                "kept_out": ko_l, "out_full": lof,
                "kept_in": ki_l, "in_full": lif,
                "kept_flops_frac": kept_flops_frac,
                "dense_ms": lin_dense_ms,
                "pruned_ms": pruned_ms,
                "time_frac": time_frac,
            }));
            if !smoke && !chained && (ratio - 0.7).abs() < 1e-6 {
                assert!(
                    time_frac <= 0.40,
                    "pruned fc gate: 70%-pruned layer cost {:.1}% of dense (> 40%)",
                    time_frac * 100.0
                );
            }
        }
    }

    let (headline_name, headline_flops, headline_speedup, headline_simd) =
        headline.expect("at least one case");
    if !smoke && has_avx2 {
        let simd_speedup = headline_simd.expect("AVX2 host must have timed the SIMD path");
        assert!(
            simd_speedup >= 2.0,
            "simd gate: headline {headline_name} SIMD speedup {simd_speedup:.2}x < 2x over scalar"
        );
    } else if !has_avx2 {
        println!("simd gate skipped: AVX2+FMA not detected on this host");
    }

    let report = json!({
        "generated_by": "cargo run --release -p fedmp-bench --bin kernels",
        "threads": parallel::configured_threads(),
        "host_cpu_features": {
            "detected": detected,
            "selected_path": selected.name(),
            "avx2": has_avx2,
        },
        "gemm": gemm_rows,
        "conv": conv_rows,
        "pruned": pruned_rows,
        "headline": {
            "shape": headline_name,
            "flops": headline_flops,
            "speedup_vs_reference": headline_speedup,
            "speedup_simd_vs_scalar": headline_simd,
        },
    });
    std::fs::create_dir_all("bench-results").expect("create bench-results/");
    let path = "bench-results/kernels.json";
    std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialise"))
        .expect("write kernels.json");
    println!(
        "wrote {path} (headline {headline_name}: {headline_speedup:.2}x vs ref{})",
        headline_simd.map_or(String::new(), |s| format!(", simd {s:.2}x vs scalar")),
    );
}
