//! Table III: test accuracy each method reaches within a fixed virtual-
//! time budget, for all four models. The paper's shape: FedMP's column
//! dominates every row.

use fedmp_bench::{bench_spec, save_result};
use fedmp_core::{print_table, run_method, Method, TaskKind};
use serde_json::json;

fn main() {
    let methods = Method::paper_five();
    let mut rows = Vec::new();
    let mut results = Vec::new();

    for task in TaskKind::all() {
        let spec = bench_spec(task);
        let histories: Vec<_> = methods.iter().map(|&m| run_method(&spec, m)).collect();
        // Budget: the earliest finisher's horizon, so every method is
        // compared over a window it fully covered.
        let budget = histories.iter().map(|h| h.total_time()).fold(f64::INFINITY, f64::min);

        let mut row = vec![task.name().to_string(), format!("{budget:.0}s")];
        let mut cells = Vec::new();
        for h in &histories {
            let acc = h.best_accuracy_within(budget).unwrap_or(0.0);
            row.push(format!("{:.1}%", acc * 100.0));
            cells.push(json!({"method": h.method, "accuracy": acc}));
        }
        rows.push(row);
        results.push(json!({"task": task.name(), "budget": budget, "cells": cells}));
    }

    print_table(
        "Table III — accuracy within a fixed virtual-time budget",
        &["model", "budget", "Syn-FL", "UP-FL", "FedProx", "FlexCom", "FedMP"],
        &rows,
    );
    save_result("table3", &results);
}
