//! Table IV (§VI): the RNN extension. A 2-layer LSTM language model on
//! the PTB-like corpus under Syn-FL, UP-FL and FedMP (with ISS pruning).
//! The paper's shape: FedMP reaches the lowest perplexity within the
//! budget and the best speedup to the target perplexity; UP-FL can be
//! *slower* than Syn-FL (0.8×) because a uniform ratio misfits the
//! heterogeneous fleet.

use fedmp_bench::{fmt_speedup, save_result};
use fedmp_core::print_table;
use fedmp_data::{ptb_like, TextBatch};
use fedmp_edgesim::{heterogeneity_scenario, HeterogeneityLevel, TimeModel};
use fedmp_fl::{run_lm, LmMethod, LmOptions, LmSetup};
use fedmp_nn::zoo;
use fedmp_tensor::seeded_rng;
use serde_json::json;

fn main() {
    let workers = 4usize;
    let vocab = 50usize;
    let corpus = ptb_like(vocab, 60_000, 77);
    let (train, eval) = corpus.split(0.9);
    let lane = train.len() / workers;
    let worker_batches: Vec<Vec<TextBatch>> = (0..workers)
        .map(|w| {
            fedmp_data::TextDataset {
                tokens: train.tokens[w * lane..(w + 1) * lane].to_vec(),
                vocab,
            }
            .batches(8, 12)
        })
        .collect();
    let mut rng = seeded_rng(78);
    // Width compensation: charge the simulator for the paper-sized LSTM.
    let cost_scale = {
        let full = fedmp_nn::lstm_cost_per_token(&zoo::lstm_ptb(vocab, 1.0, &mut seeded_rng(1)));
        let scaled = fedmp_nn::lstm_cost_per_token(&zoo::lstm_ptb(vocab, 0.3, &mut seeded_rng(1)));
        fedmp_fl::CostScale {
            flops: full.flops_per_sample as f64 / scaled.flops_per_sample.max(1) as f64,
            bytes: full.params as f64 / scaled.params.max(1) as f64,
        }
    };
    let setup = LmSetup {
        worker_batches,
        eval_batches: eval.batches(8, 12),
        devices: heterogeneity_scenario(HeterogeneityLevel::Medium, workers, &mut rng),
        time: TimeModel::default(),
        cost_scale,
    };
    let rounds =
        if std::env::var("FEDMP_BENCH_PROFILE").as_deref() == Ok("full") { 32 } else { 16 };
    let opts = LmOptions { rounds, eval_every: 2, ..Default::default() };
    let global = zoo::lstm_ptb(vocab, 0.3, &mut rng);

    let methods = [LmMethod::SynFl, LmMethod::UpFl, LmMethod::FedMp];
    let histories: Vec<_> =
        methods.iter().map(|&m| run_lm(&setup, &opts, m, global.clone())).collect();

    // Budget: earliest finisher's horizon; target perplexity: what
    // Syn-FL reaches at 80% of the budget.
    let budget = histories.iter().map(|h| h.total_time()).fold(f64::INFINITY, f64::min);
    let target = histories[0].best_perplexity_within(budget * 0.8).unwrap_or(f32::INFINITY);
    let base_time = histories[0].time_to_perplexity(target);

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for h in &histories {
        let ppl = h.best_perplexity_within(budget);
        let t = h.time_to_perplexity(target);
        let speedup = match (base_time, t) {
            (Some(b), Some(t)) if t > 0.0 => Some(b / t),
            _ => None,
        };
        rows.push(vec![
            h.method.clone(),
            ppl.map_or("-".into(), |p| format!("{p:.2}")),
            fmt_speedup(speedup),
        ]);
        cells.push(json!({"method": h.method, "perplexity": ppl, "speedup": speedup}));
    }
    print_table(
        &format!("Table IV — LSTM/PTB-like (budget {budget:.0}s, target ppl {target:.1})"),
        &["method", "perplexity in budget", "speedup to target"],
        &rows,
    );
    save_result("table4", &json!({"budget": budget, "target": target, "rows": cells}));
}
