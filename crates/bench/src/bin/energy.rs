//! Extension experiment: fleet energy per method. FlexCom's motivation
//! \[13\] is energy-efficient FL; FedMP should cut *both* compute and
//! radio energy (smaller trained models, smaller transfers), while
//! compression-only methods cut radio energy alone and FedProx mainly
//! trims barrier idle time.

use fedmp_bench::{bench_spec, save_result};
use fedmp_core::{print_table, run_method, Method, TaskKind};
use fedmp_edgesim::EnergyModel;
use serde_json::json;

fn main() {
    let spec = bench_spec(TaskKind::CnnMnist);
    let built = spec.build();
    let mean_flops =
        built.devices.iter().map(|d| d.flops()).sum::<f64>() / built.devices.len() as f64;
    let energy = EnergyModel::default();

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for method in Method::paper_five() {
        let h = run_method(&spec, method);
        let report = energy.estimate_run(
            h.rounds.iter().map(|r| (r.round_time, r.mean_comp, r.mean_comm)),
            spec.workers,
            mean_flops,
        );
        rows.push(vec![
            h.method.clone(),
            format!("{:.0}J", report.compute_j),
            format!("{:.0}J", report.comm_j),
            format!("{:.0}J", report.idle_j),
            format!("{:.0}J", report.total_j()),
            format!("{:.1}%", 100.0 * h.final_accuracy().unwrap_or(0.0)),
        ]);
        results.push(json!({
            "method": h.method,
            "compute_j": report.compute_j,
            "comm_j": report.comm_j,
            "idle_j": report.idle_j,
            "total_j": report.total_j(),
            "final_acc": h.final_accuracy(),
        }));
    }
    print_table(
        "Extension — fleet energy over the full run (CNN/MNIST-like, equal rounds)",
        &["method", "compute", "radio", "barrier idle", "total", "final acc"],
        &rows,
    );
    save_result("energy", &results);
}
