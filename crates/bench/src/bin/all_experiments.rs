//! Runs the full experiment suite — every table and figure — writing
//! JSON under `bench-results/`. Each experiment is also runnable on its
//! own (`cargo run -p fedmp-bench --release --bin fig6`).

use std::process::Command;
use std::time::Instant;

fn main() {
    // Flagship results first; `fig6` also regenerates Table III from the
    // same runs (the standalone `table3` binary remains available).
    let bins = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig2",
        "fig4",
        "fig5",
        "fig11",
        "fig12",
        "table4",
        "ablation_bandit",
        "ablation_reward",
        "ablation_importance",
        "energy",
    ];
    let exe_dir =
        std::env::current_exe().expect("current exe path").parent().expect("exe dir").to_path_buf();

    let t0 = Instant::now();
    for bin in bins {
        println!("\n######## {bin} ########");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments completed in {:.0}s.", t0.elapsed().as_secs_f64());
    println!(
        "Results under bench-results/*.json — see EXPERIMENTS.md for the paper-vs-measured index."
    );
}
