//! Fig. 8: completion time to a target accuracy under the three §V-E
//! heterogeneity levels. The paper's shape: times grow from Low to High
//! for every method, FedMP stays fastest, and its advantage widens with
//! heterogeneity.

use fedmp_bench::{
    bench_spec, common_target, fmt_speedup, fmt_time, profile, save_result, Profile,
};
use fedmp_core::{print_table, run_method, speedup_table, Method, TaskKind};
use fedmp_edgesim::HeterogeneityLevel;
use serde_json::json;

fn main() {
    let methods = Method::paper_five();
    let levels = [
        ("Low", HeterogeneityLevel::Low),
        ("Medium", HeterogeneityLevel::Medium),
        ("High", HeterogeneityLevel::High),
    ];
    let mut results = Vec::new();

    let tasks: Vec<TaskKind> = if profile() == Profile::Full {
        vec![TaskKind::CnnMnist, TaskKind::AlexnetCifar]
    } else {
        vec![TaskKind::CnnMnist]
    };
    for task in tasks {
        for (label, level) in levels {
            let mut spec = bench_spec(task);
            spec.level = level;
            let histories: Vec<_> = methods.iter().map(|&m| run_method(&spec, m)).collect();
            let target = common_target(&histories);
            let table = speedup_table(&histories, target);
            let rows: Vec<Vec<String>> = table
                .iter()
                .map(|(n, t, s)| vec![n.clone(), fmt_time(*t), fmt_speedup(*s)])
                .collect();
            print_table(
                &format!(
                    "Fig. 8 — {} @ {label} heterogeneity (target {:.0}%)",
                    task.name(),
                    target * 100.0
                ),
                &["method", "time to target", "speedup vs Syn-FL"],
                &rows,
            );
            results.push(json!({
                "task": task.name(),
                "level": label,
                "target": target,
                "rows": table.iter().map(|(n, t, s)| json!({
                    "method": n, "time": t, "speedup": s,
                })).collect::<Vec<_>>(),
            }));
        }
    }
    save_result("fig8", &results);
}
