//! Fig. 5: average per-round computation and communication time vs the
//! pruning ratio. The paper's shape: both components fall monotonically
//! as the ratio grows.

use fedmp_bench::{bench_spec, save_result};
use fedmp_core::{print_table, run_method, Method, TaskKind};
use serde_json::json;

fn main() {
    let ratios = [0.0f32, 0.2, 0.4, 0.6, 0.8];
    let spec = {
        let mut s = bench_spec(TaskKind::AlexnetCifar);
        s.fl.rounds = 6; // timing only; no need to converge
        s
    };

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &ratio in &ratios {
        let h = run_method(&spec, Method::FedMpFixed(ratio));
        let comp: f64 = h.rounds.iter().map(|r| r.mean_comp).sum::<f64>() / h.rounds.len() as f64;
        let comm: f64 = h.rounds.iter().map(|r| r.mean_comm).sum::<f64>() / h.rounds.len() as f64;
        rows.push(vec![
            format!("{ratio:.1}"),
            format!("{comp:.2}s"),
            format!("{comm:.2}s"),
            format!("{:.2}s", comp + comm),
        ]);
        series.push(json!({"ratio": ratio, "comp": comp, "comm": comm}));
    }
    print_table(
        "Fig. 5 — per-round time vs pruning ratio (AlexNet/CIFAR-like)",
        &["pruning ratio", "computation", "communication", "total"],
        &rows,
    );
    save_result("fig5", &series);
}
