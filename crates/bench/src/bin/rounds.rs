//! Round-executor benchmark: serial vs parallel round loops.
//!
//! Times every loop engine's full round loop on the standard CNN/MNIST
//! 30-worker deployment at 1, 2 and 4 executor threads
//! (`fedmp_tensor::parallel::override_threads`), asserts the histories
//! are bit-identical across thread counts, and writes the wall-clock
//! table to `bench-results/rounds.json`. Run with:
//!
//! ```text
//! cargo run --release -p fedmp-bench --bin rounds
//! ```
//!
//! Set `FEDMP_BENCH_SMOKE=1` (CI) for a 6-worker, 2-round configuration
//! that exercises the same code paths in seconds.

use std::time::Instant;

use fedmp_bench::save_result;
use fedmp_core::{ExperimentSpec, TaskKind};
use fedmp_fl::{
    run_async, run_fedmp, run_fedmp_sockets, run_fedmp_threaded, run_fedmp_threaded_chaos,
    run_fedprox, run_flexcom, run_synfl, run_upfl, unique_socket_path, AsyncMode, AsyncOptions,
    ChaosOptions, FaultOptions, FedMpOptions, FedProxOptions, FlSetup, FlexComOptions, RunHistory,
    SocketRunOptions, ThreadNodes, UpFlOptions,
};
use fedmp_tensor::parallel;
use serde_json::json;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Fault intensities for the resilience table: a clean run, a mildly
/// lossy deployment, and a heavily degraded one.
const FAULT_PROBS: [f64; 3] = [0.0, 0.1, 0.3];

/// First round (1-based) whose evaluation reached `target` accuracy.
fn rounds_to_accuracy(h: &RunHistory, target: f32) -> Option<usize> {
    h.rounds.iter().position(|r| r.eval.is_some_and(|(_, acc)| acc >= target)).map(|i| i + 1)
}

fn canonical(h: &RunHistory) -> String {
    serde_json::to_string(h).expect("serialise history")
}

fn main() {
    let smoke = std::env::var("FEDMP_BENCH_SMOKE").as_deref() == Ok("1");
    let mut spec = ExperimentSpec::bench(TaskKind::CnnMnist);
    spec.workers = if smoke { 6 } else { 30 };
    spec.fl.rounds = if smoke { 2 } else { 6 };
    // Evaluation is identical work for every engine and thread count;
    // keep it off the inner rounds so the table measures the round loop.
    spec.fl.eval_every = spec.fl.rounds;

    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    let task = std::sync::Arc::new(built.task.clone());
    let global = built.model;
    let cfg = spec.fl;

    type Runner<'a> = Box<dyn Fn() -> RunHistory + 'a>;
    let engines: Vec<(&'static str, Runner<'_>)> = vec![
        ("FedMP", Box::new(|| run_fedmp(&cfg, &setup, global.clone(), &FedMpOptions::default()))),
        ("Syn-FL", Box::new(|| run_synfl(&cfg, &setup, global.clone()))),
        ("UP-FL", Box::new(|| run_upfl(&cfg, &setup, global.clone(), &UpFlOptions::default()))),
        (
            "FedProx",
            Box::new(|| run_fedprox(&cfg, &setup, global.clone(), &FedProxOptions::default())),
        ),
        (
            "FlexCom",
            Box::new(|| run_flexcom(&cfg, &setup, global.clone(), &FlexComOptions::default())),
        ),
        (
            "Asyn-FedMP",
            Box::new(|| {
                let opts = AsyncOptions { mode: AsyncMode::AsynFedMp, m: 2, ..Default::default() };
                run_async(&cfg, &setup, global.clone(), &opts)
            }),
        ),
        (
            "FedMP-threaded",
            Box::new(|| {
                run_fedmp_threaded(&cfg, &setup, global.clone(), &FedMpOptions::default())
                    .expect("threaded runtime")
            }),
        ),
        (
            "FedMP-sockets",
            Box::new(|| {
                // Fresh socket + node fleet per run; this row measures
                // the full framing/syscall cost of a round, so the gap
                // to FedMP-threaded is the transport tax.
                let sock = SocketRunOptions::new(unique_socket_path("rounds-bench"), Vec::new());
                let mut spawner = ThreadNodes {
                    task: std::sync::Arc::clone(&task),
                    socket: sock.socket.clone(),
                    connect_attempts: 12,
                    connect_backoff: core::time::Duration::from_millis(2),
                };
                run_fedmp_sockets(
                    &cfg,
                    &setup,
                    global.clone(),
                    &FedMpOptions::default(),
                    &ChaosOptions::none(),
                    &sock,
                    &mut spawner,
                )
                .expect("socket runtime")
            }),
        ),
    ];

    println!(
        "round-loop wall clock, CNN/MNIST, {} workers x {} rounds{}",
        spec.workers,
        spec.fl.rounds,
        if smoke { " (smoke)" } else { "" }
    );
    let mut rows = Vec::new();
    let mut headline = None;
    for (name, run) in &engines {
        let mut ms = Vec::with_capacity(THREAD_COUNTS.len());
        let mut baseline: Option<String> = None;
        for &threads in &THREAD_COUNTS {
            parallel::override_threads(Some(threads));
            let start = Instant::now();
            let history = run();
            ms.push(start.elapsed().as_secs_f64() * 1e3);
            let c = canonical(&history);
            match &baseline {
                None => baseline = Some(c),
                Some(b) => assert_eq!(
                    b, &c,
                    "{name}: history at {threads} executor threads differs from serial"
                ),
            }
        }
        parallel::override_threads(None);
        let speedup2 = ms[0] / ms[1];
        let speedup4 = ms[0] / ms[2];
        println!(
            "{name:<16} t1 {:9.1} ms  t2 {:9.1} ms  t4 {:9.1} ms  ({speedup2:4.2}x, {speedup4:4.2}x)",
            ms[0], ms[1], ms[2]
        );
        if *name == "FedMP" {
            headline = Some(speedup4);
        }
        rows.push(json!({
            "engine": name,
            "serial_ms": ms[0],
            "t2_ms": ms[1],
            "t4_ms": ms[2],
            "speedup_t2": speedup2,
            "speedup_t4": speedup4,
            "bit_identical": true,
        }));
    }

    // Resilience table: the threaded runtime under increasing fault
    // pressure. Evaluation runs every round here — the question is how
    // many rounds the run needs to reach the target once faults start
    // excluding participants, and what recovery costs in wall clock.
    let mut faulted_cfg = cfg;
    faulted_cfg.eval_every = 1;
    let target = if smoke { 0.25f32 } else { 0.5f32 };
    println!("\nfaulted threaded runtime (target accuracy {target:.2}):");
    let mut faulted_rows = Vec::new();
    for &p in &FAULT_PROBS {
        let opts = if p > 0.0 {
            FedMpOptions {
                faults: Some(FaultOptions {
                    fail_prob: p,
                    recover_rounds: 1,
                    ..Default::default()
                }),
                ..Default::default()
            }
        } else {
            FedMpOptions::default()
        };
        let chaos = if p > 0.0 {
            ChaosOptions {
                corrupt_prob: p,
                drop_prob: 0.5 * p,
                delay_prob: 0.5 * p,
                crash_prob: 0.25 * p,
                ..ChaosOptions::demo(cfg.seed)
            }
        } else {
            ChaosOptions::none()
        };
        let start = Instant::now();
        let history = run_fedmp_threaded_chaos(&faulted_cfg, &setup, global.clone(), &opts, &chaos)
            .expect("injected faults are recoverable, never terminal");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(history.rounds.len(), faulted_cfg.rounds, "faults must not shorten the run");
        let to_target = rounds_to_accuracy(&history, target);
        let retries: usize = history.rounds.iter().map(|r| r.retries).sum();
        let exclusions: usize = history.rounds.iter().map(|r| r.exclusions).sum();
        let reached = to_target.map_or("never".to_string(), |r| format!("round {r}"));
        println!(
            "fault {p:>4.0}%   wall {wall_ms:9.1} ms  target: {reached:<9}  \
             retransmits {retries:3}  exclusions {exclusions:3}",
            p = p * 100.0
        );
        faulted_rows.push(json!({
            "fault_prob": p,
            "wall_ms": wall_ms,
            "rounds_to_target": to_target,
            "retransmits": retries,
            "exclusions": exclusions,
        }));
    }

    let headline = headline.expect("FedMP row present");
    save_result(
        "rounds",
        &json!({
            "generated_by": "cargo run --release -p fedmp-bench --bin rounds",
            "smoke": smoke,
            "task": "CnnMnist",
            "workers": spec.workers,
            "rounds": spec.fl.rounds,
            "thread_counts": THREAD_COUNTS.to_vec(),
            "host_cpus": std::thread::available_parallelism().map_or(1, |n| n.get()),
            "engines": rows,
            "faulted": {
                "engine": "FedMP-threaded",
                "target_accuracy": target,
                "runs": faulted_rows,
            },
            "headline": {
                "engine": "FedMP",
                "speedup_t4_vs_serial": headline,
            },
        }),
    );
    println!("headline: FedMP {headline:.2}x at 4 executor threads vs serial");
}
