//! Fig. 9: completion time to a target accuracy under increasing
//! non-IID levels. The paper's shape: every method slows down as y
//! grows; FedMP stays fastest at every level.

use fedmp_bench::{bench_spec, fmt_speedup, fmt_time, profile, save_result, Profile};
use fedmp_core::{print_table, run_method, speedup_table, Method, TaskKind};
use serde_json::json;

fn main() {
    let methods = Method::paper_five();
    let mut results = Vec::new();

    // Label-skew tasks use y ∈ {0, 30, 60}%; missing-classes tasks use
    // y missing classes scaled to the class count.
    let settings: Vec<(TaskKind, [u32; 3])> = if profile() == Profile::Full {
        vec![(TaskKind::CnnMnist, [0, 30, 60]), (TaskKind::VggEmnist, [0, 10, 20])]
    } else {
        vec![(TaskKind::CnnMnist, [0, 30, 60])]
    };

    for (task, levels) in settings {
        // Fixed target per task so times are comparable across levels:
        // derived from the IID baseline runs.
        let mut iid_spec = bench_spec(task);
        iid_spec.non_iid = 0;
        let iid_histories: Vec<_> = methods.iter().map(|&m| run_method(&iid_spec, m)).collect();
        let target = fedmp_bench::common_target(&iid_histories) * 0.9;

        for &y in &levels {
            let mut spec = bench_spec(task);
            spec.non_iid = y;
            let histories: Vec<_> = if y == 0 {
                iid_histories.clone()
            } else {
                methods.iter().map(|&m| run_method(&spec, m)).collect()
            };
            let table = speedup_table(&histories, target);
            let rows: Vec<Vec<String>> = table
                .iter()
                .map(|(n, t, s)| vec![n.clone(), fmt_time(*t), fmt_speedup(*s)])
                .collect();
            print_table(
                &format!(
                    "Fig. 9 — {} @ non-IID y={y} (target {:.0}%)",
                    task.name(),
                    target * 100.0
                ),
                &["method", "time to target", "speedup vs Syn-FL"],
                &rows,
            );
            results.push(json!({
                "task": task.name(),
                "y": y,
                "target": target,
                "rows": table.iter().map(|(n, t, s)| json!({
                    "method": n, "time": t, "speedup": s,
                })).collect::<Vec<_>>(),
            }));
        }
    }
    save_result("fig9", &results);
}
