//! Ablation (DESIGN.md §5): the pruning-ratio decision policy.
//!
//! Compares E-UCB (arm-point splits), E-UCB with midpoint splits,
//! discrete discounted UCB, and ε-greedy on a simulated device-fitting
//! environment: reward peaks at a device-specific optimal ratio that
//! drifts mid-run (a worker's effective capability changes, e.g. thermal
//! throttling), which is exactly the non-stationarity the discounted
//! design targets.

use fedmp_bandit::{Bandit, DiscreteUcb, EUcbAgent, EUcbConfig, EpsilonGreedy};
use fedmp_bench::save_result;
use fedmp_core::print_table;
use serde_json::json;

/// Mean absolute distance from the optimum over the last quarter of the
/// run, plus total (pseudo-)regret.
fn evaluate(policy: &mut dyn Bandit, rounds: usize) -> (f32, f32) {
    let mut regret = 0.0f32;
    let mut tail_err = 0.0f32;
    let tail_start = rounds * 3 / 4;
    let mut tail_n = 0usize;
    for k in 0..rounds {
        let optimum = if k < rounds / 2 { 0.3f32 } else { 0.65 };
        let arm = policy.select();
        let reward = 1.0 - 2.0 * (arm - optimum).abs();
        policy.observe(reward);
        regret += 1.0 - reward;
        if k >= tail_start {
            tail_err += (arm - optimum).abs();
            tail_n += 1;
        }
    }
    (tail_err / tail_n as f32, regret)
}

fn main() {
    let rounds = 400usize;
    let seeds = [1u64, 2, 3, 4, 5];
    let mut rows = Vec::new();
    let mut results = Vec::new();

    type PolicyCtor = Box<dyn Fn(u64) -> Box<dyn Bandit>>;
    let policies: Vec<(&str, PolicyCtor)> = vec![
        (
            "E-UCB (split at arm)",
            Box::new(|seed| {
                Box::new(EUcbAgent::new(EUcbConfig { seed, ..Default::default() }))
                    as Box<dyn Bandit>
            }),
        ),
        (
            "E-UCB (midpoint split)",
            Box::new(|seed| {
                Box::new(EUcbAgent::new(EUcbConfig {
                    seed,
                    split_at_midpoint: true,
                    ..Default::default()
                })) as Box<dyn Bandit>
            }),
        ),
        (
            "Discrete D-UCB (9 arms)",
            Box::new(|_| Box::new(DiscreteUcb::new(9, 0.9, 0.95)) as Box<dyn Bandit>),
        ),
        (
            "epsilon-greedy (0.1)",
            Box::new(|seed| Box::new(EpsilonGreedy::new(9, 0.9, 0.1, seed)) as Box<dyn Bandit>),
        ),
    ];

    for (name, ctor) in &policies {
        let mut errs = Vec::new();
        let mut regrets = Vec::new();
        for &seed in &seeds {
            let mut p = ctor(seed);
            let (err, regret) = evaluate(p.as_mut(), rounds);
            errs.push(err);
            regrets.push(regret);
        }
        let mean_err = errs.iter().sum::<f32>() / errs.len() as f32;
        let mean_regret = regrets.iter().sum::<f32>() / regrets.len() as f32;
        rows.push(vec![name.to_string(), format!("{mean_err:.3}"), format!("{mean_regret:.0}")]);
        results.push(json!({"policy": name, "tail_error": mean_err, "regret": mean_regret}));
    }
    print_table(
        "Ablation — ratio-decision policy (non-stationary optimum, 400 rounds, 5 seeds)",
        &["policy", "tail |alpha - alpha*|", "cumulative regret"],
        &rows,
    );
    save_result("ablation_bandit", &results);
}
