//! Fig. 6 + Table III (they share the same runs): accuracy vs virtual
//! training time for the five methods on all four tasks, plus the
//! accuracy each method reaches within a fixed budget.
//!
//! The paper's shape: FedMP's curve dominates, Syn-FL is slowest, the
//! heterogeneity-aware baselines sit in between, and FedMP's Table III
//! column leads every row.

use fedmp_bench::{bench_spec, common_target, fmt_speedup, fmt_time, save_result};
use fedmp_core::{print_table, run_method, speedup_table, Method, TaskKind};
use serde_json::json;

fn main() {
    let methods = Method::paper_five();
    let mut fig6_results = Vec::new();
    let mut table3_rows = Vec::new();
    let mut table3_results = Vec::new();

    for task in TaskKind::all() {
        let spec = bench_spec(task);
        let histories: Vec<_> = methods.iter().map(|&m| run_method(&spec, m)).collect();

        // --- Fig. 6: time to the common target.
        let target = common_target(&histories);
        let table = speedup_table(&histories, target);
        let rows: Vec<Vec<String>> = table
            .iter()
            .map(|(name, t, s)| vec![name.clone(), fmt_time(*t), fmt_speedup(*s)])
            .collect();
        print_table(
            &format!("Fig. 6 — {} (time to {:.0}% accuracy)", task.name(), target * 100.0),
            &["method", "time to target", "speedup vs Syn-FL"],
            &rows,
        );
        fig6_results.push(json!({
            "task": task.name(),
            "target": target,
            "curves": histories.iter().map(|h| json!({
                "method": h.method,
                "series": h.accuracy_curve(),
            })).collect::<Vec<_>>(),
            "time_to_target": table.iter().map(|(n, t, s)| json!({
                "method": n, "time": t, "speedup": s,
            })).collect::<Vec<_>>(),
        }));

        // --- Table III: accuracy within the earliest finisher's budget.
        let budget = histories.iter().map(|h| h.total_time()).fold(f64::INFINITY, f64::min);
        let mut row = vec![task.name().to_string(), format!("{budget:.0}s")];
        let mut cells = Vec::new();
        for h in &histories {
            let acc = h.best_accuracy_within(budget).unwrap_or(0.0);
            row.push(format!("{:.1}%", acc * 100.0));
            cells.push(json!({"method": h.method, "accuracy": acc}));
        }
        table3_rows.push(row);
        table3_results.push(json!({"task": task.name(), "budget": budget, "cells": cells}));
    }

    print_table(
        "Table III — accuracy within a fixed virtual-time budget",
        &["model", "budget", "Syn-FL", "UP-FL", "FedProx", "FlexCom", "FedMP"],
        &table3_rows,
    );
    save_result("fig6", &fig6_results);
    save_result("table3", &table3_results);
}
