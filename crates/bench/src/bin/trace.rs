//! Trace tooling: record a traced FedMP run, summarize a trace back
//! into resource totals, or diff two traces event-by-event.
//!
//! ```text
//! cargo run --release -p fedmp-bench --bin trace -- record out.jsonl --rounds 8 --seed 1
//! cargo run --release -p fedmp-bench --bin trace -- chaos out.jsonl --rounds 8 --seed 1
//! cargo run --release -p fedmp-bench --bin trace -- summarize out.jsonl
//! cargo run --release -p fedmp-bench --bin trace -- diff a.jsonl b.jsonl
//! ```
//!
//! `summarize` reproduces exactly what `fedmp_fl::resource_totals`
//! reports for the live run; `diff` prints the first diverging event
//! (exit code 1) or confirms the traces are identical (exit code 0);
//! `chaos` records the fault-tolerant threaded runtime under the
//! deterministic demo chaos plan — recording it twice (or at different
//! `--threads`) and diffing proves recovery is reproducible. The event
//! schema is documented in `docs/TRACE_SCHEMA.md`.

use fedmp_core::{run_manifest, ExperimentSpec, TaskKind};
use fedmp_fl::{
    run_fedmp, run_fedmp_threaded_chaos, ChaosOptions, FaultOptions, FedMpOptions, FlSetup,
};
use fedmp_obs::{diff, summarize, Trace, TraceSession};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace record <out.jsonl> [--rounds N] [--seed S] [--threads T]\n\
         \x20      trace chaos <out.jsonl> [--rounds N] [--seed S] [--threads T]\n\
         \x20      trace summarize <trace.jsonl>\n\
         \x20      trace diff <a.jsonl> <b.jsonl>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("chaos") => chaos_cmd(&args[1..]),
        Some("summarize") => summarize_cmd(&args[1..]),
        Some("diff") => diff_cmd(&args[1..]),
        _ => usage(),
    }
}

/// Parses the shared `record`/`chaos` flags: `(rounds, seed, threads)`.
fn record_flags(args: &[String]) -> Option<(usize, u64, Option<usize>)> {
    let mut rounds = 6usize;
    let mut seed = 0u64;
    let mut threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next()?;
        match flag.as_str() {
            "--rounds" => rounds = value.parse().expect("--rounds takes an integer"),
            "--seed" => seed = value.parse().expect("--seed takes an integer"),
            "--threads" => threads = Some(value.parse().expect("--threads takes an integer")),
            _ => return None,
        }
    }
    Some((rounds, seed, threads))
}

/// Runs a seeded small-CNN FedMP experiment with tracing to `out`.
fn record(args: &[String]) -> ExitCode {
    let Some(out) = args.first() else { return usage() };
    let Some((rounds, seed, threads)) = record_flags(&args[1..]) else { return usage() };
    if threads.is_some() {
        fedmp_tensor::parallel::override_threads(threads);
    }

    let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
    spec.seed = seed;
    spec.fl.rounds = rounds;
    spec.fl.eval_every = 2;

    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    let manifest = run_manifest("FedMP", &spec);
    let session = TraceSession::to_file(out, &manifest).expect("open trace output");
    let history = run_fedmp(&spec.fl, &setup, built.model, &FedMpOptions::default());
    drop(session); // flush + close before re-reading

    let totals = fedmp_fl::resource_totals(&history, spec.workers);
    let trace = Trace::load(out).expect("re-read recorded trace");
    println!(
        "recorded {} events over {} rounds to {out}",
        trace.events.len(),
        history.rounds.len()
    );
    println!(
        "live resource totals: wall {:.2}s  compute {:.2}s  comm {:.2}s",
        totals.wall_secs, totals.compute_secs, totals.comm_secs
    );
    ExitCode::SUCCESS
}

/// Runs the same seeded experiment on the fault-tolerant threaded
/// runtime, with availability faults on and the seeded demo chaos plan
/// injecting transport corruption, drops, delays, and worker crashes.
/// The trace records the recovery machinery (`FrameRetransmit`,
/// `WorkerExcluded`, `WorkerRejoined`, `QuorumAggregate`) alongside the
/// usual round events.
fn chaos_cmd(args: &[String]) -> ExitCode {
    let Some(out) = args.first() else { return usage() };
    let Some((rounds, seed, threads)) = record_flags(&args[1..]) else { return usage() };
    if threads.is_some() {
        fedmp_tensor::parallel::override_threads(threads);
    }

    let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
    spec.seed = seed;
    spec.fl.rounds = rounds;
    spec.fl.eval_every = 2;

    let opts = FedMpOptions {
        faults: Some(FaultOptions { fail_prob: 0.2, recover_rounds: 1, ..Default::default() }),
        ..Default::default()
    };
    let chaos = ChaosOptions::demo(seed);

    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    let manifest = run_manifest("FedMP-threaded", &spec);
    let session = TraceSession::to_file(out, &manifest).expect("open trace output");
    let history = match run_fedmp_threaded_chaos(&spec.fl, &setup, built.model, &opts, &chaos) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    drop(session); // flush + close before re-reading

    let trace = Trace::load(out).expect("re-read recorded trace");
    let retries: usize = history.rounds.iter().map(|r| r.retries).sum();
    let exclusions: usize = history.rounds.iter().map(|r| r.exclusions).sum();
    println!(
        "recorded {} events over {} rounds to {out}",
        trace.events.len(),
        history.rounds.len()
    );
    println!("recovered faults: {retries} retransmits, {exclusions} exclusions");
    ExitCode::SUCCESS
}

/// Prints the manifest and the `ResourceTotals`-equivalent numbers
/// recomputed purely from a trace file.
fn summarize_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { return usage() };
    let trace = match Trace::load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = trace.manifest.as_ref().expect("load() guarantees a manifest");
    println!("trace     : {path}");
    println!("engine    : {}", manifest.engine);
    println!("seed      : {}", manifest.seed);
    println!("workers   : {}", manifest.workers);
    println!("threads   : {}", manifest.threads);
    println!("config    : {}", manifest.config_hash);
    println!("events    : {}", trace.events.len());
    match summarize(&trace) {
        Ok(t) => {
            println!("rounds    : {}", t.rounds);
            println!("wall      : {:.4} virtual s", t.wall_secs);
            println!("compute   : {:.4} worker·s", t.compute_secs);
            println!("comm      : {:.4} worker·s", t.comm_secs);
            println!("idle      : {:.4} worker·s", t.idle_secs);
            println!("utilisation: {:.1}%", 100.0 * t.utilisation());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Compares two traces; exit code 1 on the first diverging event.
fn diff_cmd(args: &[String]) -> ExitCode {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else { return usage() };
    let (ta, tb) = match (Trace::load(a), Trace::load(b)) {
        (Ok(x), Ok(y)) => (x, y),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let d = diff(&ta, &tb);
    for note in &d.manifest_notes {
        println!("manifest: {note}");
    }
    match &d.divergence {
        None => {
            println!("identical: {} events in both traces", d.len_a);
            ExitCode::SUCCESS
        }
        Some(div) => {
            println!("first divergence at event {}:", div.index);
            println!("  a: {}", div.a);
            println!("  b: {}", div.b);
            ExitCode::FAILURE
        }
    }
}
