//! Fig. 12: synchronous vs asynchronous settings (10 workers, m = 5).
//! The paper's shape: Asyn-FedMP beats Asyn-FL by 10–35 % on time to
//! target, and synchronous FedMP beats both (it aggregates information
//! from all workers each round).

use fedmp_bench::{bench_spec, fmt_speedup, fmt_time, profile, save_result, Profile};
use fedmp_core::{print_table, run_method, speedup_table, Method, TaskKind};
use serde_json::json;

fn main() {
    let methods = [Method::AsynFl { m: 5 }, Method::AsynFedMp { m: 5 }, Method::FedMp];
    let task = if profile() == Profile::Full { TaskKind::AlexnetCifar } else { TaskKind::CnnMnist };
    let spec = bench_spec(task);
    let histories: Vec<_> = methods.iter().map(|&m| run_method(&spec, m)).collect();
    let target = fedmp_bench::common_target(&histories);
    let table = speedup_table(&histories, target);

    let rows: Vec<Vec<String>> =
        table.iter().map(|(n, t, s)| vec![n.clone(), fmt_time(*t), fmt_speedup(*s)]).collect();
    print_table(
        &format!("Fig. 12 — async setting, m=5 of 10 (target {:.0}%)", target * 100.0),
        &["method", "time to target", "speedup vs Asyn-FL"],
        &rows,
    );
    save_result(
        "fig12",
        &json!({
            "target": target,
            "rows": table.iter().map(|(n, t, s)| json!({
                "method": n, "time": t, "speedup": s,
            })).collect::<Vec<_>>(),
        }),
    );
}
