//! Ablation (DESIGN.md §5): the Eq. 8 reward-denominator guard.
//!
//! The paper's reward divides by `|Tₙ − T̄|`, which explodes as a worker
//! approaches the fleet average. We floor the gap at
//! `gap_floor · T̄`; this ablation shows what each floor does to FedMP's
//! end-to-end time-to-target on the default task.

use fedmp_bandit::RewardConfig;
use fedmp_bench::{bench_spec, fmt_time, save_result};
use fedmp_core::{print_table, run_fedmp_custom, TaskKind};
use fedmp_fl::FedMpOptions;
use serde_json::json;

fn main() {
    let spec = bench_spec(TaskKind::CnnMnist);
    let mut rows = Vec::new();
    let mut results = Vec::new();

    // Reference target from the default configuration.
    let base = run_fedmp_custom(&spec, &FedMpOptions::default());
    let target = base.final_accuracy().unwrap_or(0.5) * 0.9;

    for gap_floor in [0.0f32, 0.05, 0.5] {
        let opts = FedMpOptions {
            reward: RewardConfig { gap_floor: gap_floor.max(1e-6), ..Default::default() },
            ..Default::default()
        };
        let h = run_fedmp_custom(&spec, &opts);
        let t = h.time_to_accuracy(target);
        let final_acc = h.final_accuracy().unwrap_or(0.0);
        rows.push(vec![format!("{gap_floor}"), fmt_time(t), format!("{:.1}%", final_acc * 100.0)]);
        results.push(json!({"gap_floor": gap_floor, "time_to_target": t, "final_acc": final_acc}));
    }
    print_table(
        &format!("Ablation — Eq. 8 gap floor (CNN/MNIST-like, target {:.0}%)", target * 100.0),
        &["gap floor", "time to target", "final accuracy"],
        &rows,
    );
    save_result("ablation_reward", &results);
}
