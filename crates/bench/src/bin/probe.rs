//! Calibration probe: quick Syn-FL vs FedMP comparison per task,
//! printing final accuracy, time-to-90%-of-final and the round-time
//! split. Use this after changing dataset difficulty, model widths or
//! simulator calibration to verify every task still (a) learns and
//! (b) discriminates between methods.

use fedmp_bench::bench_spec;
use fedmp_core::{print_table, run_method, Method, TaskKind};

fn main() {
    let mut rows = Vec::new();
    for task in TaskKind::all() {
        let spec = bench_spec(task);
        for method in [Method::SynFl, Method::FedMp] {
            let h = run_method(&spec, method);
            let final_acc = h.final_accuracy().unwrap_or(0.0);
            let target = final_acc * 0.9;
            let ttt = h.time_to_accuracy(target);
            rows.push(vec![
                task.name().into(),
                method.name(),
                format!("{:.1}%", final_acc * 100.0),
                ttt.map_or("-".into(), |t| format!("{t:.0}s")),
                format!("{:.0}s", h.total_time()),
            ]);
        }
    }
    print_table(
        "calibration probe",
        &["task", "method", "final acc", "time to 0.9x final", "total time"],
        &rows,
    );
}
