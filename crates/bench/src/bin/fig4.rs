//! Fig. 4: effect of the pruning granularity θ on training performance.
//! The paper's shape: completion time is flat for θ ∈ [0.01, 0.05] and
//! rises drastically for larger θ. Times are normalised per model, as in
//! the paper.
//!
//! Quick profile sweeps the CNN task over three θ values;
//! `FEDMP_BENCH_PROFILE=full` runs all four models over the paper's grid.

use fedmp_bench::{bench_spec, profile, save_result, Profile};
use fedmp_core::{print_table, run_fedmp_custom, TaskKind};
use fedmp_fl::FedMpOptions;
use serde_json::json;

fn main() {
    let full = profile() == Profile::Full;
    let thetas: &[f32] =
        if full { &[0.01, 0.02, 0.05, 0.1, 0.15, 0.25] } else { &[0.02, 0.05, 0.1, 0.25] };
    let tasks: &[TaskKind] =
        if full { &TaskKind::all() } else { &[TaskKind::CnnMnist, TaskKind::AlexnetCifar] };
    let mut results = Vec::new();

    for &task in tasks {
        let spec = bench_spec(task);
        // The smallest-θ run doubles as the target probe.
        let mut first_opts = FedMpOptions::default();
        first_opts.eucb.theta = thetas[0];
        let first_run = run_fedmp_custom(&spec, &first_opts);
        let target =
            first_run.best_accuracy_within(first_run.total_time() * 0.7).unwrap_or(0.3) * 0.95;

        let mut times = Vec::new();
        for (i, &theta) in thetas.iter().enumerate() {
            let h = if i == 0 {
                first_run.clone()
            } else {
                let mut opts = FedMpOptions::default();
                opts.eucb.theta = theta;
                run_fedmp_custom(&spec, &opts)
            };
            // Completion time to target; if missed, charge the full run
            // plus a penalty proportional to the shortfall (the paper's
            // largest-θ points simply take much longer).
            let t = h.time_to_accuracy(target).unwrap_or_else(|| {
                let short = target - h.final_accuracy().unwrap_or(0.0);
                h.total_time() * (1.0 + 4.0 * short.max(0.0) as f64)
            });
            times.push(t);
        }
        let t_min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let rows: Vec<Vec<String>> = thetas
            .iter()
            .zip(times.iter())
            .map(|(th, t)| vec![format!("{th}"), format!("{:.2}", t / t_min)])
            .collect();
        print_table(
            &format!("Fig. 4 — {} (target {:.0}%)", task.name(), target * 100.0),
            &["theta", "normalised completion time"],
            &rows,
        );
        results.push(json!({
            "task": task.name(),
            "target": target,
            "thetas": thetas,
            "normalised_times": times.iter().map(|t| t / t_min).collect::<Vec<_>>(),
        }));
    }
    save_result("fig4", &results);
}
