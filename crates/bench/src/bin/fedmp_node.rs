//! fedmp-node: one FedMP protocol participant as a real OS process.
//!
//! ```text
//! # parameter server: binds the socket, re-execs itself once per
//! # worker, runs the round protocol, reaps every child.
//! fedmp-node --role ps [--socket P] [--workers N] [--rounds N] \
//!            [--seed S] [--chaos] [--trace out.jsonl]
//!
//! # worker: connects to the PS socket and serves rounds until
//! # Shutdown (spawned by the ps role; the index is appended by the
//! # process spawner).
//! fedmp-node --role worker --socket P --worker I
//! ```
//!
//! The PS side is `fedmp_core::run_sockets` over
//! [`fedmp_fl::ProcessNodes`]: the experiment spec travels to each
//! worker inside the Setup frame ([`fedmp_core::spec_blob`]), so the
//! whole deployment derives its data, model and chaos fate draws from
//! the `--seed` value alone. `--chaos` switches on §V-A availability
//! faults plus the seeded demo chaos plan, re-mapped to packet-level
//! faults by the transport. `--trace` records the PS-side event stream
//! (see `docs/TRACE_SCHEMA.md`); recording the same seed twice and
//! `trace diff`-ing the artifacts is the reproducibility check CI runs.
//!
//! This binary sits in the no-panic and determinism lint scopes
//! (`analysis.toml`): every failure path exits with a typed message,
//! and the only ambient input is the argument list itself.

use core::time::Duration;
use fedmp_core::{run_manifest, run_sockets, spec_blob, task_from_blob, ExperimentSpec, TaskKind};
use fedmp_fl::{
    serve_worker, unique_socket_path, ChaosOptions, FaultOptions, FedMpOptions, ProcessNodes,
    SocketRunOptions,
};
use fedmp_obs::TraceSession;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    Ps,
    Worker,
}

struct Cli {
    role: Role,
    socket: Option<PathBuf>,
    worker: usize,
    workers: usize,
    rounds: usize,
    seed: u64,
    chaos: bool,
    trace: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fedmp-node --role ps [--socket P] [--workers N] [--rounds N] [--seed S] \
         [--chaos] [--trace out.jsonl]\n\
         \x20      fedmp-node --role worker --socket P --worker I"
    );
    ExitCode::from(2)
}

fn parse(args: &[String]) -> Option<Cli> {
    let mut role = None;
    let mut cli = Cli {
        role: Role::Ps,
        socket: None,
        worker: 0,
        workers: 3,
        rounds: 3,
        seed: 0,
        chaos: false,
        trace: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag.as_str() == "--chaos" {
            cli.chaos = true;
            continue;
        }
        let value = it.next()?;
        match flag.as_str() {
            "--role" => {
                role = match value.as_str() {
                    "ps" => Some(Role::Ps),
                    "worker" => Some(Role::Worker),
                    _ => return None,
                }
            }
            "--socket" => cli.socket = Some(PathBuf::from(value)),
            "--worker" => cli.worker = value.parse().ok()?,
            "--workers" => cli.workers = value.parse().ok()?,
            "--rounds" => cli.rounds = value.parse().ok()?,
            "--seed" => cli.seed = value.parse().ok()?,
            "--trace" => cli.trace = Some(PathBuf::from(value)),
            _ => return None,
        }
    }
    cli.role = role?;
    Some(cli)
}

fn main() -> ExitCode {
    // fedmp-analysis: allow(determinism) -- a CLI's behaviour IS its argument list; everything downstream of parse() is driven by --seed
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Some(cli) if cli.role == Role::Ps => run_ps(&cli),
        Some(cli) => run_worker(&cli),
        None => usage(),
    }
}

/// Parameter-server role: bind, spawn one `--role worker` child per
/// worker by re-executing this binary, run the socket protocol, reap.
fn run_ps(cli: &Cli) -> ExitCode {
    let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
    spec.workers = cli.workers;
    spec.seed = cli.seed;
    spec.fl.seed = cli.seed;
    spec.fl.rounds = cli.rounds;
    spec.fl.eval_every = cli.rounds.max(1);

    let (opts, chaos) = if cli.chaos {
        (
            FedMpOptions {
                faults: Some(FaultOptions {
                    fail_prob: 0.2,
                    recover_rounds: 1,
                    ..Default::default()
                }),
                ..Default::default()
            },
            ChaosOptions::demo(cli.seed),
        )
    } else {
        (FedMpOptions::default(), ChaosOptions::none())
    };

    let socket = match &cli.socket {
        Some(p) => p.clone(),
        None => unique_socket_path("node"),
    };
    let sock = SocketRunOptions::new(socket.clone(), spec_blob(&spec));
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fedmp-node: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut spawner = ProcessNodes {
        program,
        args: vec![
            "--role".to_string(),
            "worker".to_string(),
            "--socket".to_string(),
            socket.display().to_string(),
        ],
    };

    let session = match &cli.trace {
        None => None,
        Some(out) => {
            let manifest = run_manifest("FedMP-sockets", &spec);
            match TraceSession::to_file(out, &manifest) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("fedmp-node: cannot open trace output {}: {e}", out.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let run = run_sockets(&spec, &opts, &chaos, &sock, &mut spawner);
    drop(session); // flush + close before reporting

    match run {
        Ok(history) => {
            let retries: usize = history.rounds.iter().map(|r| r.retries).sum();
            let exclusions: usize = history.rounds.iter().map(|r| r.exclusions).sum();
            let acc = history.final_accuracy().unwrap_or(f32::NAN);
            println!(
                "fedmp-node ps: {} rounds over {} worker processes  \
                 retransmits {retries}  exclusions {exclusions}  final acc {acc:.4}",
                history.rounds.len(),
                cli.workers,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fedmp-node ps: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Worker role: serve rounds on the PS socket until Shutdown. The
/// dataset shard is rebuilt from the Setup frame's spec blob, so a
/// worker needs nothing but the socket path and its index.
fn run_worker(cli: &Cli) -> ExitCode {
    let Some(socket) = cli.socket.clone() else {
        return usage();
    };
    match serve_worker(&socket, cli.worker, 40, Duration::from_millis(5), |blob| {
        task_from_blob(blob)
    }) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fedmp-node worker {}: {e}", cli.worker);
            ExitCode::FAILURE
        }
    }
}
