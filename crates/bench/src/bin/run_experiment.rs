//! General-purpose experiment runner: load an [`ExperimentSpec`] from a
//! JSON file (or use a named preset), run any method, and dump the full
//! run history.
//!
//! ```text
//! # presets: cnn | alexnet | vgg | resnet
//! cargo run --release -p fedmp-bench --bin run_experiment -- cnn FedMp
//! cargo run --release -p fedmp-bench --bin run_experiment -- my_spec.json SynFl out.json
//! ```

use fedmp_core::{print_table, run_method, ExperimentSpec, Method, TaskKind};

fn parse_method(s: &str) -> Method {
    match s {
        "SynFl" | "syn-fl" | "synfl" => Method::SynFl,
        "UpFl" | "up-fl" | "upfl" => Method::UpFl,
        "FedProx" | "fedprox" => Method::FedProx,
        "FlexCom" | "flexcom" => Method::FlexCom,
        "FedMp" | "fedmp" | "FedMP" => Method::FedMp,
        "FedMpBsp" | "bsp" => Method::FedMpBsp,
        "AsynFl" | "asyn-fl" => Method::AsynFl { m: 5 },
        "AsynFedMp" | "asyn-fedmp" => Method::AsynFedMp { m: 5 },
        other => {
            if let Some(r) = other.strip_prefix("fixed:") {
                Method::FedMpFixed(r.parse().expect("fixed ratio must be a float"))
            } else {
                panic!("unknown method {other}; see --help text in the source header")
            }
        }
    }
}

fn parse_spec(s: &str) -> ExperimentSpec {
    match s {
        "cnn" => ExperimentSpec::bench(TaskKind::CnnMnist),
        "alexnet" => ExperimentSpec::bench(TaskKind::AlexnetCifar),
        "vgg" => ExperimentSpec::bench(TaskKind::VggEmnist),
        "resnet" => ExperimentSpec::bench(TaskKind::ResnetTiny),
        path => {
            let body =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read spec {path}: {e}"));
            serde_json::from_str(&body).unwrap_or_else(|e| panic!("parse spec {path}: {e}"))
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: run_experiment <preset|spec.json> <method> [out.json]");
        eprintln!("methods: SynFl UpFl FedProx FlexCom FedMp FedMpBsp AsynFl AsynFedMp fixed:<r>");
        std::process::exit(2);
    }
    let spec = parse_spec(&args[0]);
    let method = parse_method(&args[1]);

    println!("task: {} | workers: {} | rounds: {}", spec.task.name(), spec.workers, spec.fl.rounds);
    let history = run_method(&spec, method);

    let rows: Vec<Vec<String>> = history
        .rounds
        .iter()
        .filter(|r| r.eval.is_some())
        .map(|r| {
            let (loss, acc) = r.eval.expect("filtered");
            vec![
                r.round.to_string(),
                format!("{:.0}s", r.sim_time),
                format!("{loss:.3}"),
                format!("{:.1}%", acc * 100.0),
            ]
        })
        .collect();
    print_table(
        &history.method.clone(),
        &["round", "virtual time", "test loss", "accuracy"],
        &rows,
    );

    if let Some(out) = args.get(2) {
        fedmp_core::save_json(out, &history);
        println!("history written to {out}");
    }
}
