//! Fig. 2: effect of a **fixed** pruning ratio on test accuracy under a
//! given time budget. The paper's shape: accuracy first rises with the
//! ratio (cheaper rounds ⇒ more rounds inside the budget) then falls
//! (important filters removed).
//!
//! Quick profile sweeps the CNN task; `FEDMP_BENCH_PROFILE=full` adds
//! AlexNet/CIFAR-like and a denser ratio grid, matching the paper's two
//! panels.

use fedmp_bench::{bench_spec, profile, save_result, Profile};
use fedmp_core::{print_table, run_method, Method, TaskKind};
use serde_json::json;

fn main() {
    let full = profile() == Profile::Full;
    let ratios: &[f32] = if full {
        &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8]
    };
    let tasks: &[TaskKind] = &[TaskKind::CnnMnist, TaskKind::AlexnetCifar];
    let _ = full;
    let mut results = Vec::new();

    for &task in tasks {
        let spec = bench_spec(task);
        // The ratio-0 run doubles as the budget baseline.
        let base = run_method(&spec, Method::FedMpFixed(0.0));
        let budget = base.total_time() * 0.6;

        let mut rows = Vec::new();
        let mut series = Vec::new();
        for &ratio in ratios {
            let h = if ratio == 0.0 {
                base.clone()
            } else {
                run_method(&spec, Method::FedMpFixed(ratio))
            };
            let acc = h.best_accuracy_within(budget).unwrap_or(0.0);
            rows.push(vec![format!("{ratio:.1}"), format!("{:.1}%", acc * 100.0)]);
            series.push(json!({"ratio": ratio, "accuracy": acc}));
        }
        print_table(
            &format!("Fig. 2 — {} (budget {budget:.0}s virtual)", task.name()),
            &["pruning ratio", "accuracy in budget"],
            &rows,
        );
        results.push(json!({"task": task.name(), "budget": budget, "series": series}));
    }
    save_result("fig2", &results);
}
