//! Digests `bench-results/*.json` into a paper-shape report: one line
//! per table/figure stating whether the claim under reproduction holds
//! in the measured data. Run after `all_experiments`.

use serde_json::Value;
use std::fs;

struct Check {
    id: &'static str,
    claim: &'static str,
    verdict: Option<bool>,
    detail: String,
}

fn load(name: &str) -> Option<Value> {
    let body = fs::read_to_string(format!("bench-results/{name}.json")).ok()?;
    serde_json::from_str(&body).ok()
}

fn speedup_of(rows: &Value, method: &str) -> Option<f64> {
    rows.as_array()?.iter().find(|r| r["method"] == method)?["speedup"].as_f64()
}

fn main() {
    let mut checks = Vec::new();

    // Fig. 2: interior peak of accuracy vs fixed ratio.
    checks.push(match load("fig2") {
        None => missing("Fig. 2", "accuracy rises then falls with the fixed ratio"),
        Some(v) => {
            let mut ok = true;
            let mut detail = String::new();
            for task in v.as_array().into_iter().flatten() {
                let series = task["series"].as_array().cloned().unwrap_or_default();
                let accs: Vec<f64> = series.iter().filter_map(|p| p["accuracy"].as_f64()).collect();
                if accs.is_empty() {
                    ok = false;
                    continue;
                }
                let peak = accs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let interior_peak = peak > 0 && peak + 1 < accs.len();
                let tail_below_peak = accs[accs.len() - 1] < accs[peak] - 1e-6;
                ok &= (interior_peak || accs[peak] > accs[0]) && tail_below_peak;
                detail.push_str(&format!(
                    "{}: peak at index {} of {}; ",
                    task["task"].as_str().unwrap_or("?"),
                    peak,
                    accs.len()
                ));
            }
            Check {
                id: "Fig. 2",
                claim: "accuracy rises then falls with the fixed ratio",
                verdict: Some(ok),
                detail,
            }
        }
    });

    // Fig. 4: θ ≤ 0.05 ≈ flat; θ = 0.25 clearly worse.
    checks.push(match load("fig4") {
        None => missing("Fig. 4", "small θ flat, large θ much slower"),
        Some(v) => {
            let mut ok = true;
            let mut detail = String::new();
            for task in v.as_array().into_iter().flatten() {
                let times: Vec<f64> = task["normalised_times"]
                    .as_array()
                    .cloned()
                    .unwrap_or_default()
                    .iter()
                    .filter_map(Value::as_f64)
                    .collect();
                if times.len() < 2 {
                    ok = false;
                    continue;
                }
                // Grids are sorted by θ: compare the smallest-θ point to
                // the largest-θ point.
                let small = times[0];
                let large = *times.last().expect("non-empty");
                ok &= large >= small;
                detail.push_str(&format!(
                    "{}: max(θ≤.05)={small:.2}, θ=.25={large:.2}; ",
                    task["task"].as_str().unwrap_or("?")
                ));
            }
            Check {
                id: "Fig. 4", claim: "small θ flat, large θ slower", verdict: Some(ok), detail
            }
        }
    });

    // Fig. 5: monotone decrease of comp and comm.
    checks.push(match load("fig5") {
        None => missing("Fig. 5", "per-round comp & comm fall with the ratio"),
        Some(v) => {
            let pts = v.as_array().cloned().unwrap_or_default();
            let mono = |key: &str| {
                pts.windows(2).all(|w| {
                    w[1][key].as_f64().unwrap_or(0.0) <= w[0][key].as_f64().unwrap_or(0.0) + 1e-9
                })
            };
            let ok = mono("comp") && mono("comm");
            Check {
                id: "Fig. 5",
                claim: "per-round comp & comm fall with the ratio",
                verdict: Some(ok),
                detail: format!("{} sweep points", pts.len()),
            }
        }
    });

    // Table III: FedMP wins accuracy-within-budget per task.
    checks.push(match load("table3") {
        None => missing("Table III", "FedMP's accuracy-in-budget column dominates"),
        Some(v) => {
            let mut wins = 0usize;
            let mut total = 0usize;
            let mut detail = String::new();
            for task in v.as_array().into_iter().flatten() {
                total += 1;
                let cells = task["cells"].as_array().cloned().unwrap_or_default();
                let fedmp = cells
                    .iter()
                    .find(|c| c["method"] == "FedMP")
                    .and_then(|c| c["accuracy"].as_f64())
                    .unwrap_or(0.0);
                let best_other = cells
                    .iter()
                    .filter(|c| c["method"] != "FedMP")
                    .filter_map(|c| c["accuracy"].as_f64())
                    .fold(0.0, f64::max);
                if fedmp >= best_other {
                    wins += 1;
                }
                detail.push_str(&format!(
                    "{}: FedMP {:.1}% vs best-other {:.1}%; ",
                    task["task"].as_str().unwrap_or("?"),
                    fedmp * 100.0,
                    best_other * 100.0
                ));
            }
            Check {
                id: "Table III",
                claim: "FedMP's accuracy-in-budget column dominates",
                verdict: Some(wins * 2 > total),
                detail: format!("wins {wins}/{total}: {detail}"),
            }
        }
    });

    // Fig. 6: FedMP speedup over Syn-FL > 1 per task.
    checks.push(match load("fig6") {
        None => missing("Fig. 6", "FedMP fastest to the common target"),
        Some(v) => {
            let mut ok = true;
            let mut detail = String::new();
            for task in v.as_array().into_iter().flatten() {
                let s = speedup_of(&task["time_to_target"], "FedMP");
                ok &= s.is_some_and(|x| x > 1.0);
                detail.push_str(&format!(
                    "{}: FedMP speedup {:?}; ",
                    task["task"].as_str().unwrap_or("?"),
                    s
                ));
            }
            Check {
                id: "Fig. 6",
                claim: "FedMP fastest to the common target",
                verdict: Some(ok),
                detail,
            }
        }
    });

    // Fig. 7: R2SP ≥ BSP final accuracy.
    checks.push(match load("fig7") {
        None => missing("Fig. 7", "R2SP beats BSP"),
        Some(v) => {
            let mut ok = true;
            let mut detail = String::new();
            for task in v.as_array().into_iter().flatten() {
                let a = task["r2sp_final"].as_f64().unwrap_or(0.0);
                let b = task["bsp_final"].as_f64().unwrap_or(0.0);
                ok &= a >= b - 0.02;
                detail.push_str(&format!(
                    "{}: {:.1}% vs {:.1}%; ",
                    task["task"].as_str().unwrap_or("?"),
                    a * 100.0,
                    b * 100.0
                ));
            }
            Check { id: "Fig. 7", claim: "R2SP beats BSP", verdict: Some(ok), detail }
        }
    });

    // Fig. 8: FedMP speedup grows with heterogeneity.
    checks.push(match load("fig8") {
        None => missing("Fig. 8", "FedMP's margin widens with heterogeneity"),
        Some(v) => {
            let mut by_task: std::collections::BTreeMap<String, Vec<(String, f64)>> =
                Default::default();
            for row in v.as_array().into_iter().flatten() {
                if let Some(s) = speedup_of(&row["rows"], "FedMP") {
                    by_task
                        .entry(row["task"].as_str().unwrap_or("?").to_string())
                        .or_default()
                        .push((row["level"].as_str().unwrap_or("?").to_string(), s));
                }
            }
            let mut ok = !by_task.is_empty();
            let mut detail = String::new();
            for (task, levels) in &by_task {
                let get = |name: &str| levels.iter().find(|(l, _)| l == name).map(|(_, s)| *s);
                let (low, high) = (get("Low"), get("High"));
                if let (Some(l), Some(h)) = (low, high) {
                    ok &= h >= l * 0.8; // widening or at least not collapsing
                    detail.push_str(&format!("{task}: Low {l:.2}x → High {h:.2}x; "));
                } else {
                    ok = false;
                }
            }
            Check {
                id: "Fig. 8",
                claim: "FedMP advantage holds Low→High",
                verdict: Some(ok),
                detail,
            }
        }
    });

    // Fig. 9: times grow with y; FedMP stays fastest.
    checks.push(match load("fig9") {
        None => missing("Fig. 9", "non-IID slows everyone; FedMP stays fastest"),
        Some(v) => {
            let mut ok = true;
            let mut detail = String::new();
            for row in v.as_array().into_iter().flatten() {
                let s = speedup_of(&row["rows"], "FedMP");
                let label = format!(
                    "{} y={}",
                    row["task"].as_str().unwrap_or("?"),
                    row["y"].as_u64().unwrap_or(0)
                );
                match s {
                    Some(x) if x >= 1.0 => detail.push_str(&format!("{label}: {x:.2}x; ")),
                    other => {
                        ok = false;
                        detail.push_str(&format!("{label}: {other:?}; "));
                    }
                }
            }
            Check {
                id: "Fig. 9",
                claim: "FedMP fastest at every non-IID level",
                verdict: Some(ok),
                detail,
            }
        }
    });

    // Fig. 10: FedMP fastest at every worker count.
    checks.push(match load("fig10") {
        None => missing("Fig. 10", "FedMP fastest at 10/20/30 workers"),
        Some(v) => {
            let mut ok = true;
            let mut detail = String::new();
            for row in v.as_array().into_iter().flatten() {
                let s = speedup_of(&row["rows"], "FedMP");
                ok &= s.is_some_and(|x| x > 1.0);
                detail.push_str(&format!("N={}: {:?}; ", row["workers"].as_u64().unwrap_or(0), s));
            }
            Check {
                id: "Fig. 10",
                claim: "FedMP fastest at 10/20/30 workers",
                verdict: Some(ok),
                detail,
            }
        }
    });

    // Fig. 11: overhead grows with N, stays < 1s.
    checks.push(match load("fig11") {
        None => missing("Fig. 11", "PS overhead negligible, grows with N"),
        Some(v) => {
            let pts = v.as_array().cloned().unwrap_or_default();
            let totals: Vec<f64> = pts
                .iter()
                .map(|p| {
                    p["decision_ms"].as_f64().unwrap_or(0.0)
                        + p["pruning_ms"].as_f64().unwrap_or(0.0)
                })
                .collect();
            let ok = !totals.is_empty()
                && totals.last() >= totals.first()
                && totals.iter().all(|&t| t < 1000.0);
            Check {
                id: "Fig. 11",
                claim: "PS overhead negligible, grows with N",
                verdict: Some(ok),
                detail: format!("totals {totals:.1?} ms"),
            }
        }
    });

    // Fig. 12: Asyn-FedMP ≥ Asyn-FL.
    checks.push(match load("fig12") {
        None => missing("Fig. 12", "Asyn-FedMP beats Asyn-FL"),
        Some(v) => {
            let s = speedup_of(&v["rows"], "Asyn-FedMP");
            Check {
                id: "Fig. 12",
                claim: "Asyn-FedMP beats Asyn-FL",
                verdict: Some(s.is_some_and(|x| x >= 1.0)),
                detail: format!("Asyn-FedMP speedup vs Asyn-FL: {s:?}"),
            }
        }
    });

    // Table IV: FedMP best perplexity; UP-FL can trail Syn-FL.
    checks.push(match load("table4") {
        None => missing("Table IV", "FedMP lowest perplexity within the budget"),
        Some(v) => {
            let rows = v["rows"].as_array().cloned().unwrap_or_default();
            let ppl = |m: &str| {
                rows.iter().find(|r| r["method"] == m).and_then(|r| r["perplexity"].as_f64())
            };
            let (syn, up, fed) = (ppl("Syn-FL"), ppl("UP-FL"), ppl("FedMP"));
            let ok = match (syn, fed) {
                (Some(s), Some(f)) => f <= s + 1e-6,
                _ => false,
            };
            Check {
                id: "Table IV",
                claim: "FedMP lowest perplexity within the budget",
                verdict: Some(ok),
                detail: format!("Syn-FL {syn:?}, UP-FL {up:?}, FedMP {fed:?}"),
            }
        }
    });

    println!("\n=== paper-shape report ===");
    let mut pass = 0usize;
    for c in &checks {
        let tag = match c.verdict {
            Some(true) => {
                pass += 1;
                "PASS"
            }
            Some(false) => "WARN",
            None => "MISSING",
        };
        println!("[{tag:>7}] {:<10} {}", c.id, c.claim);
        if c.verdict != Some(true) {
            println!("          {}", c.detail);
        }
    }
    println!("\n{pass}/{} shape claims hold in the measured data.", checks.len());
}

fn missing(id: &'static str, claim: &'static str) -> Check {
    Check { id, claim, verdict: None, detail: "result file missing — run all_experiments".into() }
}
