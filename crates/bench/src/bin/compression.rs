//! Compression × pruning ablation: wire-v2 codec policies against the
//! dense baseline, at two fixed pruning ratios.
//!
//! Runs FedMP on a High-heterogeneity fleet (so the adaptive policy's
//! slow-link branch actually fires on the Far-link workers) under every
//! uplink codec policy, captures the per-worker wire traffic and Eq. 5
//! communication seconds from the trace stream, and writes the grid to
//! `bench-results/compression.json`. Run with:
//!
//! ```text
//! cargo run --release -p fedmp-bench --bin compression
//! ```
//!
//! Set `FEDMP_BENCH_SMOKE=1` (CI) for a 6-worker, 3-round configuration
//! that exercises the same code paths in seconds.
//!
//! In-bin regression gates:
//! * int8 top-k uplink traffic is ≥ 4× smaller per round than dense;
//! * the adaptive policy shifts Eq. 5 communication time down on the
//!   bandwidth-constrained (Far-link) workers;
//! * every compressed cell's converged accuracy stays within tolerance
//!   of the dense baseline at matched rounds.

use fedmp_bench::save_result;
use fedmp_core::{ExperimentSpec, TaskKind};
use fedmp_edgesim::{HeterogeneityLevel, SLOW_LINK_BPS};
use fedmp_fl::{run_fedmp, Codec, CompressionPolicy, FedMpOptions, FlSetup, RunHistory};
use fedmp_obs::{RunManifest, TraceEvent, TraceSession};
use serde_json::json;

/// First round (1-based) whose evaluation reached `target` accuracy.
fn rounds_to_accuracy(h: &RunHistory, target: f32) -> Option<usize> {
    h.rounds.iter().position(|r| r.eval.is_some_and(|(_, acc)| acc >= target)).map(|i| i + 1)
}

/// Trace-derived cell metrics.
struct CellStats {
    uplink_bytes: f64,
    downlink_bytes: f64,
    slow_comm_mean: f64,
    fast_comm_mean: f64,
}

fn cell_stats(events: &[TraceEvent], slow: &[bool]) -> CellStats {
    let mut s = CellStats {
        uplink_bytes: 0.0,
        downlink_bytes: 0.0,
        slow_comm_mean: 0.0,
        fast_comm_mean: 0.0,
    };
    let (mut slow_n, mut fast_n) = (0usize, 0usize);
    for ev in events {
        if let TraceEvent::LocalTrain { worker, comm_secs, bytes_down, bytes_up, .. } = ev {
            s.uplink_bytes += bytes_up;
            s.downlink_bytes += bytes_down;
            if slow[*worker] {
                s.slow_comm_mean += comm_secs;
                slow_n += 1;
            } else {
                s.fast_comm_mean += comm_secs;
                fast_n += 1;
            }
        }
    }
    s.slow_comm_mean /= slow_n.max(1) as f64;
    s.fast_comm_mean /= fast_n.max(1) as f64;
    s
}

fn main() {
    let smoke = std::env::var("FEDMP_BENCH_SMOKE").as_deref() == Ok("1");
    let mut spec = ExperimentSpec::bench(TaskKind::CnnMnist);
    // High heterogeneity includes cluster C (Far links, 12 Mbit/s) —
    // the bandwidth-constrained class the adaptive policy compresses.
    spec.level = HeterogeneityLevel::High;
    spec.workers = if smoke { 6 } else { 10 };
    spec.fl.rounds = if smoke { 3 } else { 8 };
    spec.fl.eval_every = 1;

    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    let global = built.model;
    let cfg = spec.fl;
    let slow: Vec<bool> = built.devices.iter().map(|d| d.is_slow_link(SLOW_LINK_BPS)).collect();
    let slow_count = slow.iter().filter(|&&s| s).count();
    assert!(
        slow_count > 0 && slow_count < slow.len(),
        "fleet must mix slow and fast links for the ablation to mean anything"
    );

    let policies: [(&str, CompressionPolicy); 5] = [
        ("dense", CompressionPolicy::dense()),
        ("f16-up", CompressionPolicy::uniform_uplink(Codec::DenseF16)),
        ("int8-up", CompressionPolicy::uniform_uplink(Codec::Int8)),
        ("topk-int8-up", CompressionPolicy::uniform_uplink(Codec::TopKInt8 { keep: 0.1 })),
        ("adaptive", CompressionPolicy::adaptive()),
    ];
    let ratios: [f32; 2] = [0.0, 0.5];

    println!(
        "compression x pruning, CNN/MNIST, {} workers ({} slow links) x {} rounds{}",
        spec.workers,
        slow_count,
        spec.fl.rounds,
        if smoke { " (smoke)" } else { "" }
    );

    let mut cells = Vec::new();
    // Keyed copies for the regression gates below.
    let mut dense_per_ratio: Vec<(f32, f64, f64, f32)> = Vec::new(); // (ratio, up/round, slow_comm, acc)
    for &ratio in &ratios {
        for (name, policy) in &policies {
            let opts = FedMpOptions {
                fixed_ratio: Some(ratio),
                compression: *policy,
                ..Default::default()
            };
            let manifest = RunManifest::new(
                &format!("compression-{name}"),
                cfg.seed,
                spec.workers,
                cfg.rounds,
                1,
            );
            let session = TraceSession::capture(&manifest);
            let history = run_fedmp(&cfg, &setup, global.clone(), &opts);
            let trace = session.finish();
            let stats = cell_stats(&trace.events, &slow);
            let acc = history.final_accuracy().expect("evaluated run");
            let up_per_round = stats.uplink_bytes / cfg.rounds as f64;
            if *name == "dense" {
                dense_per_ratio.push((ratio, up_per_round, stats.slow_comm_mean, acc));
            }
            let dense_row =
                dense_per_ratio.iter().find(|(r, ..)| *r == ratio).expect("dense cell runs first");
            let target = (dense_row.3 * 0.9).min(0.99);
            let to_target = rounds_to_accuracy(&history, target);
            println!(
                "ratio {ratio:.1} {name:<13} up/round {up_per_round:12.0} B  \
                 slow-comm {:.2}s  fast-comm {:.2}s  acc {acc:.3}",
                stats.slow_comm_mean, stats.fast_comm_mean
            );
            cells.push(json!({
                "policy": name,
                "fixed_ratio": ratio,
                "uplink_bytes_total": stats.uplink_bytes,
                "uplink_bytes_per_round": up_per_round,
                "downlink_bytes_total": stats.downlink_bytes,
                "slow_comm_secs_mean": stats.slow_comm_mean,
                "fast_comm_secs_mean": stats.fast_comm_mean,
                "final_accuracy": acc,
                "target_accuracy": target,
                "rounds_to_target": to_target,
                "sim_time_total": history.rounds.last().map(|r| r.sim_time),
            }));
        }
    }

    // Regression gates over the grid.
    let cell = |policy: &str, ratio: f32| {
        cells
            .iter()
            .find(|c| c["policy"] == policy && c["fixed_ratio"].as_f64() == Some(ratio as f64))
            .unwrap_or_else(|| panic!("missing cell {policy}/{ratio}"))
    };
    for &ratio in &ratios {
        let dense = cell("dense", ratio);
        let topk = cell("topk-int8-up", ratio);
        let adaptive = cell("adaptive", ratio);
        let dense_up = dense["uplink_bytes_per_round"].as_f64().unwrap();
        let topk_up = topk["uplink_bytes_per_round"].as_f64().unwrap();
        assert!(
            topk_up * 4.0 <= dense_up,
            "ratio {ratio}: int8 top-k uplink not >=4x smaller: {topk_up} vs {dense_up}"
        );
        let dense_slow = dense["slow_comm_secs_mean"].as_f64().unwrap();
        let adaptive_slow = adaptive["slow_comm_secs_mean"].as_f64().unwrap();
        assert!(
            adaptive_slow < dense_slow,
            "ratio {ratio}: adaptive policy did not shift Eq. 5 comm time on slow links: \
             {adaptive_slow} vs {dense_slow}"
        );
        let dense_acc = dense["final_accuracy"].as_f64().unwrap();
        for (name, _) in &policies {
            let acc = cell(name, ratio)["final_accuracy"].as_f64().unwrap();
            assert!(
                acc > dense_acc - 0.15,
                "ratio {ratio}: policy {name} accuracy {acc} fell out of tolerance of dense \
                 {dense_acc} at matched rounds"
            );
        }
    }
    let headline_dense = cell("dense", 0.0)["uplink_bytes_per_round"].as_f64().unwrap();
    let headline_topk = cell("topk-int8-up", 0.0)["uplink_bytes_per_round"].as_f64().unwrap();
    let reduction = headline_dense / headline_topk;

    save_result(
        "compression",
        &json!({
            "generated_by": "cargo run --release -p fedmp-bench --bin compression",
            "smoke": smoke,
            "task": "CnnMnist",
            "workers": spec.workers,
            "slow_link_workers": slow_count,
            "rounds": spec.fl.rounds,
            "slow_link_bps": SLOW_LINK_BPS,
            "cells": cells,
            "headline": {
                "policy": "topk-int8-up",
                "uplink_reduction_vs_dense": reduction,
            },
        }),
    );
    println!("headline: int8 top-k uplink {reduction:.1}x smaller than dense per round");
}
