//! Discrete-arm comparators for the E-UCB ablation benches: a classic
//! discounted UCB over a fixed ratio grid, and ε-greedy.

use crate::Bandit;
use fedmp_tensor::parallel::sum_f32;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Discounted UCB1 over a fixed grid of pruning ratios — what "UCB
/// without the adaptive partition tree" looks like.
#[derive(Debug, Clone)]
pub struct DiscreteUcb {
    arms: Vec<f32>,
    lambda: f32,
    /// Exploration weight ξ (see `EUcbConfig::explore_weight`).
    explore_weight: f32,
    /// `(arm index, reward)` history, oldest first.
    history: Vec<(usize, f32)>,
    pending: Option<usize>,
}

impl DiscreteUcb {
    /// A uniform grid of `n_arms` ratios over `[0, alpha_max)`.
    pub fn new(n_arms: usize, alpha_max: f32, lambda: f32) -> Self {
        assert!(n_arms >= 2, "need at least two arms");
        let arms = (0..n_arms).map(|i| alpha_max * i as f32 / n_arms as f32).collect();
        DiscreteUcb { arms, lambda, explore_weight: 0.1, history: Vec::new(), pending: None }
    }

    fn counts_and_means(&self) -> (Vec<f32>, Vec<f32>) {
        let k = self.history.len();
        let mut n = vec![0.0f32; self.arms.len()];
        let mut sum = vec![0.0f32; self.arms.len()];
        for (s, (arm, r)) in self.history.iter().enumerate() {
            let w = self.lambda.powi((k - s) as i32);
            n[*arm] += w;
            sum[*arm] += w * r;
        }
        let means =
            n.iter().zip(sum.iter()).map(|(&n, &s)| if n > 0.0 { s / n } else { 0.0 }).collect();
        (n, means)
    }
}

impl Bandit for DiscreteUcb {
    fn select(&mut self) -> f32 {
        assert!(self.pending.is_none(), "select() called twice without observe()");
        let (n, means) = self.counts_and_means();
        let total = sum_f32(n.iter().copied());
        let scale = {
            let k = self.history.len();
            let mut num = 0.0f32;
            let mut den = 0.0f32;
            for (s, (_, r)) in self.history.iter().enumerate() {
                let w = self.lambda.powi((k - s) as i32);
                num += w * r.abs();
                den += w;
            }
            if den > 0.0 {
                (num / den).max(1e-6)
            } else {
                1.0
            }
        };
        let mut best = 0usize;
        let mut best_u = f32::NEG_INFINITY;
        for i in 0..self.arms.len() {
            let u = if n[i] <= 0.0 {
                f32::INFINITY
            } else {
                means[i] + self.explore_weight * scale * (2.0 * total.max(1.0).ln() / n[i]).sqrt()
            };
            if u > best_u {
                best_u = u;
                best = i;
            }
        }
        self.pending = Some(best);
        self.arms[best]
    }

    fn observe(&mut self, reward: f32) {
        let arm = self.pending.take().expect("observe() without a pending select()");
        self.history.push((arm, reward));
    }
}

/// ε-greedy over a fixed ratio grid: with probability ε explore
/// uniformly, otherwise exploit the best (discount-free) empirical mean.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    arms: Vec<f32>,
    epsilon: f32,
    counts: Vec<u32>,
    sums: Vec<f32>,
    pending: Option<usize>,
    rng: StdRng,
}

impl EpsilonGreedy {
    /// A uniform grid of `n_arms` ratios over `[0, alpha_max)`.
    pub fn new(n_arms: usize, alpha_max: f32, epsilon: f32, seed: u64) -> Self {
        assert!(n_arms >= 2, "need at least two arms");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        EpsilonGreedy {
            arms: (0..n_arms).map(|i| alpha_max * i as f32 / n_arms as f32).collect(),
            epsilon,
            counts: vec![0; n_arms],
            sums: vec![0.0; n_arms],
            pending: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Bandit for EpsilonGreedy {
    fn select(&mut self) -> f32 {
        assert!(self.pending.is_none(), "select() called twice without observe()");
        let explore = self.rng.gen::<f32>() < self.epsilon;
        let arm = if explore || self.counts.iter().all(|&c| c == 0) {
            self.rng.gen_range(0..self.arms.len())
        } else {
            (0..self.arms.len())
                .max_by(|&a, &b| {
                    let ma = if self.counts[a] > 0 {
                        self.sums[a] / self.counts[a] as f32
                    } else {
                        f32::NEG_INFINITY
                    };
                    let mb = if self.counts[b] > 0 {
                        self.sums[b] / self.counts[b] as f32
                    } else {
                        f32::NEG_INFINITY
                    };
                    ma.partial_cmp(&mb).expect("finite means")
                })
                .expect("non-empty arms")
        };
        self.pending = Some(arm);
        self.arms[arm]
    }

    fn observe(&mut self, reward: f32) {
        let arm = self.pending.take().expect("observe() without a pending select()");
        self.counts[arm] += 1;
        self.sums[arm] += reward;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn best_arm_frequency(bandit: &mut dyn Bandit, optimum: f32, rounds: usize) -> f32 {
        let mut near = 0usize;
        let mut arms = Vec::new();
        for _ in 0..rounds {
            let a = bandit.select();
            arms.push(a);
            bandit.observe(1.0 - 2.0 * (a - optimum).abs());
        }
        for &a in &arms[rounds / 2..] {
            if (a - optimum).abs() < 0.15 {
                near += 1;
            }
        }
        near as f32 / (rounds - rounds / 2) as f32
    }

    #[test]
    fn discrete_ucb_finds_best_arm() {
        let mut b = DiscreteUcb::new(9, 0.9, 0.95);
        let f = best_arm_frequency(&mut b, 0.5, 300);
        assert!(f > 0.5, "best-arm frequency {f}");
    }

    #[test]
    fn epsilon_greedy_finds_best_arm() {
        let mut b = EpsilonGreedy::new(9, 0.9, 0.1, 1);
        let f = best_arm_frequency(&mut b, 0.5, 300);
        assert!(f > 0.5, "best-arm frequency {f}");
    }

    #[test]
    fn discrete_ucb_tries_every_arm_first() {
        let mut b = DiscreteUcb::new(5, 0.9, 0.95);
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push(b.select());
            b.observe(0.0);
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seen.dedup();
        assert_eq!(seen.len(), 5, "initial sweep skipped an arm");
    }

    #[test]
    fn arms_span_requested_range() {
        let b = DiscreteUcb::new(10, 0.8, 0.9);
        assert_eq!(b.arms[0], 0.0);
        assert!(*b.arms.last().unwrap() < 0.8);
    }
}
