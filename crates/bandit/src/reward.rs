//! The E-UCB reward function (paper Eq. 8).

use serde::{Deserialize, Serialize};

/// Reward shaping parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Floor for the completion-time gap `|Tₙ − T̄|`, preventing division
    /// blow-up when a worker lands exactly on the average (the paper
    /// leaves this case implicit).
    pub gap_floor: f32,
    /// Cap on the reward magnitude so one lucky round cannot dominate
    /// the discounted mean.
    pub reward_cap: f32,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig { gap_floor: 0.05, reward_cap: 100.0 }
    }
}

/// Eq. 8: `R(αₙ) = ΔLoss / |Tₙ − T̄|`.
///
/// * `delta_loss` — the round's loss improvement (the worker's
///   contribution to convergence); negative improvements yield negative
///   rewards, discouraging ratios that hurt the model.
/// * `t_n` — this worker's completion time for the round.
/// * `t_avg` — the mean completion time over all workers.
///
/// The gap in the denominator is floored at `cfg.gap_floor · t_avg` and
/// the result clamped to `±cfg.reward_cap`.
pub fn eucb_reward(delta_loss: f32, t_n: f64, t_avg: f64, cfg: &RewardConfig) -> f32 {
    assert!(t_n >= 0.0 && t_avg >= 0.0, "times must be non-negative");
    let gap = (t_n - t_avg).abs().max(cfg.gap_floor as f64 * t_avg.max(1e-9)) as f32;
    let r = delta_loss / gap.max(1e-9);
    r.clamp(-cfg.reward_cap, cfg.reward_cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_gap_means_bigger_reward() {
        let cfg = RewardConfig::default();
        let near = eucb_reward(1.0, 10.5, 10.0, &cfg);
        let far = eucb_reward(1.0, 20.0, 10.0, &cfg);
        assert!(near > far, "{near} vs {far}");
    }

    #[test]
    fn negative_progress_is_penalised() {
        let cfg = RewardConfig::default();
        assert!(eucb_reward(-0.5, 12.0, 10.0, &cfg) < 0.0);
    }

    #[test]
    fn zero_gap_does_not_explode() {
        let cfg = RewardConfig::default();
        let r = eucb_reward(1.0, 10.0, 10.0, &cfg);
        assert!(r.is_finite());
        assert!(r <= cfg.reward_cap);
    }

    #[test]
    fn reward_is_capped() {
        let cfg = RewardConfig { gap_floor: 1e-6, reward_cap: 50.0 };
        let r = eucb_reward(1000.0, 10.0 + 1e-7, 10.0, &cfg);
        assert_eq!(r, 50.0);
    }

    #[test]
    fn reward_scales_with_loss_progress() {
        let cfg = RewardConfig::default();
        let small = eucb_reward(0.1, 12.0, 10.0, &cfg);
        let big = eucb_reward(0.4, 12.0, 10.0, &cfg);
        assert!((big / small - 4.0).abs() < 1e-4);
    }
}
