//! # fedmp-bandit
//!
//! The Extended Upper Confidence Bound (E-UCB) online-learning algorithm
//! of the FedMP paper (§IV-C, Algorithm 1), plus discrete comparators
//! used by the ablation benchmarks.
//!
//! E-UCB treats the continuous pruning-ratio space `[0, α_max)` as a
//! growing set of partition regions (leaves of an incremental regression
//! tree). Each round it computes a **discounted** UCB per region
//! (Eqs. 9–11), pulls an arm uniformly inside the best region, and
//! splits that region at the pulled arm until region diameters fall
//! below the exploration granularity `θ`.
//!
//! ```
//! use fedmp_bandit::{Bandit, EUcbAgent, EUcbConfig};
//!
//! let mut agent = EUcbAgent::new(EUcbConfig::default());
//! for _ in 0..50 {
//!     let ratio = agent.select();
//!     // environment: reward peaks at ratio 0.5
//!     let reward = 1.0 - (ratio - 0.5).abs();
//!     agent.observe(reward);
//! }
//! assert!(agent.num_regions() > 1);
//! ```

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
mod discrete;
mod eucb;
mod reward;

pub use discrete::{DiscreteUcb, EpsilonGreedy};
pub use eucb::{EUcbAgent, EUcbConfig};
pub use reward::{eucb_reward, RewardConfig};

/// Common interface for the pruning-ratio decision policies, so the
/// ablation benches can swap them freely.
pub trait Bandit {
    /// Chooses the next arm (a pruning ratio). Must be followed by
    /// exactly one [`Bandit::observe`] call.
    fn select(&mut self) -> f32;
    /// Reports the reward of the last selected arm.
    fn observe(&mut self, reward: f32);
}
