//! E-UCB: discounted UCB over an adaptively partitioned continuous arm
//! space (paper Algorithm 1).

use crate::Bandit;
use fedmp_tensor::parallel::sum_f32;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// E-UCB hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EUcbConfig {
    /// Exploration granularity θ: regions whose diameter is below θ are
    /// not split further. The paper recommends θ ∈ [0.01, 0.05] (§V-B).
    pub theta: f32,
    /// Discount factor λ ∈ (0, 1) weighting recent rewards more (the
    /// paper uses 0.95).
    pub lambda: f32,
    /// Upper bound of the arm space: ratios are drawn from `[0, alpha_max)`.
    /// Kept below 1 so every sub-model retains at least one unit.
    pub alpha_max: f32,
    /// Exploration weight ξ scaling the padding function. Discounting
    /// caps the effective per-region sample count at `1/(1−λ)`, so the
    /// raw Eq. 10 padding never vanishes; following the tunable-ξ form of
    /// Garivier & Moulines's D-UCB we scale the padding by
    /// `ξ · (discounted mean |reward|)`, which makes exploration pressure
    /// reward-scale-invariant.
    pub explore_weight: f32,
    /// Split rule ablation: `false` (default) splits the chosen region
    /// at the pulled arm (Algorithm 1 line 8); `true` always splits at
    /// the midpoint. Compared in `fedmp-bench --bin ablation_bandit`.
    pub split_at_midpoint: bool,
    /// RNG seed for within-region arm sampling.
    pub seed: u64,
}

impl Default for EUcbConfig {
    fn default() -> Self {
        EUcbConfig {
            theta: 0.02,
            lambda: 0.95,
            alpha_max: 0.8,
            explore_weight: 0.1,
            split_at_midpoint: false,
            seed: 0,
        }
    }
}

/// One leaf of the incremental partition tree: the half-open interval
/// `[lo, hi)` of the arm space.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Region {
    lo: f32,
    hi: f32,
}

impl Region {
    fn contains(&self, x: f32) -> bool {
        x >= self.lo && x < self.hi
    }
    fn diameter(&self) -> f32 {
        self.hi - self.lo
    }
}

/// Per-worker E-UCB agent (the paper creates one agent per worker).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EUcbAgent {
    cfg: EUcbConfig,
    regions: Vec<Region>,
    /// `(arm, reward)` per completed round, oldest first.
    history: Vec<(f32, f32)>,
    /// Arm awaiting its reward.
    pending: Option<f32>,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl EUcbAgent {
    /// A fresh agent with the whole arm space as a single region
    /// (Algorithm 1, line 1).
    pub fn new(cfg: EUcbConfig) -> Self {
        assert!(cfg.theta > 0.0, "theta must be positive");
        assert!(cfg.lambda > 0.0 && cfg.lambda < 1.0, "lambda must be in (0, 1)");
        assert!(cfg.alpha_max > 0.0 && cfg.alpha_max < 1.0, "alpha_max must be in (0, 1)");
        let rng = StdRng::seed_from_u64(cfg.seed);
        EUcbAgent {
            regions: vec![Region { lo: 0.0, hi: cfg.alpha_max }],
            history: Vec::new(),
            pending: None,
            cfg,
            rng,
        }
    }

    /// Current number of partition regions (tree leaves).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The current partition as `(lo, hi)` pairs, sorted by `lo`.
    pub fn regions(&self) -> Vec<(f32, f32)> {
        let mut v: Vec<(f32, f32)> = self.regions.iter().map(|r| (r.lo, r.hi)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite bounds"));
        v
    }

    /// Completed round count.
    pub fn rounds(&self) -> usize {
        self.history.len()
    }

    /// Discounted visit count `N_k(λ, P)` of a region (Eq. 9's
    /// denominator).
    fn discounted_count(&self, region: &Region) -> f32 {
        let k = self.history.len();
        sum_f32(
            self.history
                .iter()
                .enumerate()
                .filter(|(_, (arm, _))| region.contains(*arm))
                .map(|(s, _)| self.cfg.lambda.powi((k - s) as i32)),
        )
    }

    /// Discounted empirical mean reward `R̄_k(λ, P)` (Eq. 9).
    fn discounted_mean(&self, region: &Region) -> f32 {
        let k = self.history.len();
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for (s, (arm, reward)) in self.history.iter().enumerate() {
            if region.contains(*arm) {
                let w = self.cfg.lambda.powi((k - s) as i32);
                num += w * reward;
                den += w;
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Discounted mean reward magnitude — the adaptive scale `B` of the
    /// padding function.
    fn reward_scale(&self) -> f32 {
        let k = self.history.len();
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for (s, (_, reward)) in self.history.iter().enumerate() {
            let w = self.cfg.lambda.powi((k - s) as i32);
            num += w * reward.abs();
            den += w;
        }
        if den > 0.0 {
            (num / den).max(1e-6)
        } else {
            1.0
        }
    }

    /// Global discounted mean reward — the prior an unvisited region
    /// inherits.
    fn global_mean(&self) -> f32 {
        let k = self.history.len();
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for (s, (_, reward)) in self.history.iter().enumerate() {
            let w = self.cfg.lambda.powi((k - s) as i32);
            num += w * reward;
            den += w;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Upper confidence bound `U_k(P) = R̄ + c` (Eqs. 10–11).
    ///
    /// Splitting creates a fresh child region almost every round; giving
    /// unvisited regions an infinite bound (as textbook UCB does) would
    /// force exploration on nearly every pull and leave no horizon for
    /// exploitation. Following the practical-Lipschitz-bandit treatment
    /// the paper cites ([37]), an unvisited region instead **inherits
    /// the global mean as its prior** with a small pseudo-count, keeping
    /// optimism bounded.
    fn ucb(&self, region: &Region, n_total: f32) -> f32 {
        if self.history.is_empty() {
            return f32::INFINITY; // very first pull: nothing known yet
        }
        let n = self.discounted_count(region);
        let scale = self.cfg.explore_weight * self.reward_scale();
        let log_term = 2.0 * n_total.max(std::f32::consts::E).ln();
        if n <= 0.0 {
            let pseudo = 0.5f32;
            return self.global_mean() + scale * (log_term / pseudo).sqrt();
        }
        self.discounted_mean(region) + scale * (log_term / n).sqrt()
    }

    /// Discards the pending pull without a reward, as if `select()` had
    /// never been called. Used when the pulled arm's outcome is
    /// unobservable — the worker's upload was lost, corrupted beyond
    /// the retransmit budget, or the worker crashed — so the arm must
    /// not bias the statistics with a made-up reward. A no-op with
    /// nothing pending.
    pub fn abandon(&mut self) {
        self.pending = None;
    }
}

impl Bandit for EUcbAgent {
    /// Algorithm 1 lines 3–8: choose the region maximising the UCB, pull
    /// an arm uniformly inside it, and split the region at the pulled arm
    /// while its diameter exceeds θ.
    fn select(&mut self) -> f32 {
        assert!(self.pending.is_none(), "select() called twice without observe()");
        let n_total = sum_f32(self.regions.iter().map(|r| self.discounted_count(r)));

        // Best region by UCB (ties: first, i.e. lowest creation index).
        let mut best = 0usize;
        let mut best_ucb = f32::NEG_INFINITY;
        for (j, r) in self.regions.iter().enumerate() {
            let u = self.ucb(r, n_total);
            if u > best_ucb {
                best_ucb = u;
                best = j;
            }
        }
        let region = self.regions[best];
        let arm = if region.diameter() > 0.0 {
            self.rng.gen_range(region.lo..region.hi)
        } else {
            region.lo
        };

        // Split while the region diameter exceeds θ (line 7–8), but —
        // as incremental regression trees do (the paper's §IV-C
        // implementation) — only once the leaf has accumulated enough
        // (discounted) samples to justify the finer partition. Without
        // this, the tree outgrows the horizon and the policy degenerates
        // into round-robin exploration of unvisited leaves.
        let enough_data = self.discounted_count(&region) >= 1.5;
        if region.diameter() > self.cfg.theta && enough_data {
            let margin = 0.05 * region.diameter();
            let split = if !self.cfg.split_at_midpoint
                && arm > region.lo + margin
                && arm < region.hi - margin
            {
                arm
            } else {
                0.5 * (region.lo + region.hi)
            };
            self.regions[best] = Region { lo: region.lo, hi: split };
            self.regions.push(Region { lo: split, hi: region.hi });
        }

        self.pending = Some(arm);
        arm
    }

    /// Algorithm 1 line 12: records the observed reward for the pending
    /// arm. Emits a `BanditDecision` trace event when tracing is
    /// enabled (engines observe in worker-index order, so the events'
    /// positions attribute them).
    fn observe(&mut self, reward: f32) {
        let arm = self.pending.take().expect("observe() without a pending select()");
        assert!(reward.is_finite(), "reward must be finite");
        self.history.push((arm, reward));
        fedmp_obs::emit(|| fedmp_obs::TraceEvent::BanditDecision {
            arm,
            reward,
            regions: self.regions.len(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(env: impl Fn(f32) -> f32, rounds: usize, cfg: EUcbConfig) -> (EUcbAgent, Vec<f32>) {
        let mut agent = EUcbAgent::new(cfg);
        let mut arms = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let a = agent.select();
            arms.push(a);
            agent.observe(env(a));
        }
        (agent, arms)
    }

    #[test]
    fn partition_always_covers_arm_space_disjointly() {
        let cfg = EUcbConfig::default();
        let (agent, _) = run(|a| 1.0 - (a - 0.4).abs(), 120, cfg);
        let regions = agent.regions();
        assert!((regions[0].0 - 0.0).abs() < 1e-7);
        assert!((regions.last().unwrap().1 - cfg.alpha_max).abs() < 1e-6);
        for w in regions.windows(2) {
            assert!((w[0].1 - w[1].0).abs() < 1e-6, "gap/overlap between {w:?}");
        }
    }

    #[test]
    fn converges_near_the_optimal_arm() {
        // Reward peaks at α* = 0.6; late arms should concentrate nearby.
        let cfg = EUcbConfig { seed: 3, lambda: 0.99, explore_weight: 0.1, ..Default::default() };
        let (_, arms) = run(|a| 1.0 - 2.0 * (a - 0.6).abs(), 300, cfg);
        let late = &arms[200..];
        let close = late.iter().filter(|&&a| (a - 0.6).abs() < 0.15).count();
        assert!(close * 2 > late.len(), "only {close}/{} late arms near optimum", late.len());
    }

    #[test]
    fn theta_bounds_region_granularity() {
        let cfg = EUcbConfig { theta: 0.1, ..Default::default() };
        let (agent, _) = run(|a| a, 200, cfg);
        // No region that was ever split has diameter < θ·margin; all
        // regions are ≥ some fraction of θ (split stops below θ).
        for (lo, hi) in agent.regions() {
            assert!(hi - lo > 0.1 * 0.04, "degenerate region [{lo}, {hi})");
        }
        // And the tree stopped growing: with θ=0.1 over [0,0.9) at most
        // ~2·(0.9/0.1) leaves even with uneven splits.
        assert!(agent.num_regions() <= 40, "{} regions", agent.num_regions());
    }

    #[test]
    fn smaller_theta_grows_bigger_tree() {
        let coarse = run(|a| a, 200, EUcbConfig { theta: 0.2, ..Default::default() }).0;
        let fine = run(|a| a, 200, EUcbConfig { theta: 0.02, ..Default::default() }).0;
        assert!(fine.num_regions() > coarse.num_regions());
    }

    #[test]
    fn arms_stay_in_range() {
        let cfg = EUcbConfig { alpha_max: 0.7, ..Default::default() };
        let (_, arms) = run(|a| a, 100, cfg);
        assert!(arms.iter().all(|&a| (0.0..0.7).contains(&a)));
    }

    #[test]
    fn unvisited_regions_are_explored_first() {
        let mut agent = EUcbAgent::new(EUcbConfig::default());
        // Round 1 splits [0, 0.9) into two; round 2 must visit the
        // still-unvisited half (infinite UCB).
        let a1 = agent.select();
        agent.observe(10.0); // huge reward for the visited half
        let a2 = agent.select();
        agent.observe(0.0);
        let (lo, hi) = if a1 < a2 { (a1, a2) } else { (a2, a1) };
        assert!(lo < hi, "second arm should explore the other region");
    }

    #[test]
    fn discounting_adapts_to_nonstationary_rewards() {
        // Optimum moves from 0.2 to 0.7 halfway; a discounted agent must
        // follow.
        let cfg = EUcbConfig { seed: 5, lambda: 0.8, explore_weight: 0.3, ..Default::default() };
        let mut agent = EUcbAgent::new(cfg);
        let mut arms = Vec::new();
        for k in 0..400 {
            let a = agent.select();
            let optimum = if k < 200 { 0.2 } else { 0.7 };
            agent.observe(1.0 - 2.0 * (a - optimum).abs());
            arms.push(a);
        }
        // Directional adaptation: mean distance to the *new* optimum must
        // shrink from right after the shift to the end of the run, and
        // the final stretch must beat a uniform-random policy (≈ 0.28).
        let err = |range: std::ops::Range<usize>| {
            arms[range.clone()].iter().map(|a| (a - 0.7f32).abs()).sum::<f32>() / range.len() as f32
        };
        let just_after = err(200..260);
        let late = err(340..400);
        assert!(
            late < just_after,
            "no adaptation: err {just_after:.3} right after shift vs {late:.3} late"
        );
        assert!(late < 0.28, "late tracking error {late:.3} no better than random");
    }

    #[test]
    #[should_panic(expected = "observe() without a pending select()")]
    fn observe_without_select_panics() {
        let mut agent = EUcbAgent::new(EUcbConfig::default());
        agent.observe(1.0);
    }

    #[test]
    #[should_panic(expected = "select() called twice")]
    fn double_select_panics() {
        let mut agent = EUcbAgent::new(EUcbConfig::default());
        let _ = agent.select();
        let _ = agent.select();
    }

    #[test]
    fn abandon_discards_the_pending_pull() {
        let mut agent = EUcbAgent::new(EUcbConfig::default());
        let _ = agent.select();
        agent.abandon();
        // A fresh select is legal again, and the abandoned pull left no
        // reward behind.
        let _ = agent.select();
        agent.observe(0.5);
        assert_eq!(agent.rounds(), 1);
        // Abandoning with nothing pending is a no-op.
        agent.abandon();
        let _ = agent.select();
        agent.observe(0.25);
        assert_eq!(agent.rounds(), 2);
    }
}
