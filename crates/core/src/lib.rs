//! # fedmp-core
//!
//! The FedMP orchestrator: experiment specifications, the method
//! dispatcher, overhead instrumentation and report output. This crate is
//! the public face of the reproduction — `fedmp-bench` and the examples
//! only talk to this API.
//!
//! ```no_run
//! use fedmp_core::{ExperimentSpec, Method, TaskKind};
//!
//! let spec = ExperimentSpec::small(TaskKind::CnnMnist);
//! let history = fedmp_core::run_method(&spec, Method::FedMp);
//! println!("time to 70% accuracy: {:?}", history.time_to_accuracy(0.7));
//! ```

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
mod checkpoint;
mod config;
mod overhead;
mod report;
mod runner;
mod trace;

pub use checkpoint::{load_state, restore_lm, restore_model, save_model};
pub use config::{BuiltExperiment, ExperimentSpec, TaskKind};
pub use overhead::{measure_overhead, OverheadReport};
pub use report::{ensure_dir, print_table, save_json};
pub use runner::{
    run_fedmp_custom, run_hier, run_hier_threaded, run_method, run_methods, run_sockets,
    run_threaded, spec_blob, speedup_table, task_from_blob, Method,
};
pub use trace::{maybe_trace, run_manifest, trace_requested};
