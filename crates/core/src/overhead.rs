//! Fig. 11 instrumentation: wall-clock cost of the PS-side algorithm
//! (pruning-ratio decision + model pruning), the one measurement the
//! paper reports in real time rather than on the virtual clock.

use fedmp_bandit::{Bandit, EUcbAgent, EUcbConfig};
use fedmp_nn::Sequential;
use fedmp_pruning::{extract_sequential, plan_sequential};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Measured per-round PS overhead.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Workers measured.
    pub workers: usize,
    /// Pruning-ratio decision time per round (seconds, all workers).
    pub decision_secs: f64,
    /// Model pruning (plan + extract) time per round (seconds, all
    /// workers).
    pub pruning_secs: f64,
}

impl OverheadReport {
    /// Total algorithm overhead per round.
    pub fn total_secs(&self) -> f64 {
        self.decision_secs + self.pruning_secs
    }
}

/// Measures the mean per-round algorithm overhead for `workers` workers
/// over `rounds` simulated decision+pruning cycles on `model`.
pub fn measure_overhead(
    model: &Sequential,
    input_chw: (usize, usize, usize),
    workers: usize,
    rounds: usize,
) -> OverheadReport {
    assert!(rounds > 0, "need at least one round");
    let mut agents: Vec<EUcbAgent> = (0..workers)
        .map(|w| EUcbAgent::new(EUcbConfig { seed: w as u64, ..Default::default() }))
        .collect();

    let mut decision = 0.0f64;
    let mut pruning = 0.0f64;
    for round in 0..rounds {
        let t0 = Instant::now();
        let ratios: Vec<f32> = agents.iter_mut().map(|a| a.select()).collect();
        decision += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        for &r in &ratios {
            let plan = plan_sequential(model, input_chw, r);
            let sub = extract_sequential(model, &plan);
            std::hint::black_box(&sub);
        }
        pruning += t1.elapsed().as_secs_f64();

        // Feed synthetic rewards so the decision trees keep growing as
        // they would in a real run.
        for (w, a) in agents.iter_mut().enumerate() {
            a.observe(1.0 / (1.0 + (w + round) as f32));
        }
    }
    OverheadReport {
        workers,
        decision_secs: decision / rounds as f64,
        pruning_secs: pruning / rounds as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn overhead_grows_with_worker_count() {
        // Wall-clock measurement: take the min of three trials per size
        // so scheduler noise on loaded machines cannot flip the
        // comparison (16 workers do 8× the decision+pruning work).
        let mut rng = seeded_rng(140);
        let model = zoo::cnn_mnist(0.25, &mut rng);
        let min_of = |workers: usize| {
            (0..3)
                .map(|_| measure_overhead(&model, (1, 28, 28), workers, 3).total_secs())
                .fold(f64::INFINITY, f64::min)
        };
        let small = min_of(2);
        let large = min_of(16);
        assert!(large > small, "16-worker overhead {large} not above 2-worker {small}");
        assert_eq!(measure_overhead(&model, (1, 28, 28), 2, 1).workers, 2);
    }

    #[test]
    fn overhead_is_small_relative_to_training() {
        // The paper's point: decision+pruning is negligible next to
        // hundreds of seconds of training. Even on this laptop-scale
        // model it must be well under a second per round for 10 workers.
        let mut rng = seeded_rng(141);
        let model = zoo::cnn_mnist(0.25, &mut rng);
        let report = measure_overhead(&model, (1, 28, 28), 10, 3);
        assert!(report.total_secs() < 1.0, "overhead {}s", report.total_secs());
    }
}
