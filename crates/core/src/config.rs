//! Experiment specifications: the paper's four CNN-family tasks, their
//! synthetic datasets, worker fleets and partitions, bundled so every
//! bench and example builds runs the same way.

use fedmp_data::{
    cifar_like, emnist_like, iid_partition, label_skew_partition, missing_classes_partition,
    mnist_like, tiny_imagenet_like, SynthSpec,
};
use fedmp_edgesim::{heterogeneity_scenario, DeviceProfile, HeterogeneityLevel, TimeModel};
use fedmp_fl::{FlConfig, ImageTask};
use fedmp_nn::{zoo, Sequential};
use fedmp_tensor::seeded_rng;
use serde::{Deserialize, Serialize};

/// The paper's four image tasks (§V-A "Models and datasets").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// CNN on MNIST(-like).
    CnnMnist,
    /// AlexNet on CIFAR-10(-like).
    AlexnetCifar,
    /// VGG on EMNIST(-like).
    VggEmnist,
    /// ResNet on Tiny-ImageNet(-like).
    ResnetTiny,
}

impl TaskKind {
    /// Display name matching the paper's table rows.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::CnnMnist => "CNN/MNIST",
            TaskKind::AlexnetCifar => "AlexNet/CIFAR-10",
            TaskKind::VggEmnist => "VGG/EMNIST",
            TaskKind::ResnetTiny => "ResNet/Tiny-ImageNet",
        }
    }

    /// The synthetic stand-in dataset for this task.
    pub fn synth_spec(self, data_scale: f32, seed: u64) -> SynthSpec {
        match self {
            TaskKind::CnnMnist => mnist_like(data_scale, seed),
            TaskKind::AlexnetCifar => cifar_like(data_scale, seed),
            TaskKind::VggEmnist => emnist_like(data_scale, seed),
            TaskKind::ResnetTiny => tiny_imagenet_like(data_scale, seed),
        }
    }

    /// Instantiates the (width-scaled) model.
    pub fn build_model(self, width: f32, seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        match self {
            TaskKind::CnnMnist => zoo::cnn_mnist(width, &mut rng),
            TaskKind::AlexnetCifar => zoo::alexnet_cifar(width, &mut rng),
            TaskKind::VggEmnist => zoo::vgg_emnist(width, &mut rng),
            TaskKind::ResnetTiny => zoo::resnet_tiny(width, &mut rng),
        }
    }

    /// Which non-IID partitioner §V-F prescribes for this dataset:
    /// label-skew for MNIST/CIFAR-10, missing-classes for
    /// EMNIST/Tiny-ImageNet.
    pub fn uses_label_skew(self) -> bool {
        matches!(self, TaskKind::CnnMnist | TaskKind::AlexnetCifar)
    }

    /// All four tasks in the paper's presentation order.
    pub fn all() -> [TaskKind; 4] {
        [TaskKind::CnnMnist, TaskKind::AlexnetCifar, TaskKind::VggEmnist, TaskKind::ResnetTiny]
    }
}

/// A full experiment description; `build()` materialises it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Which model/dataset pair.
    pub task: TaskKind,
    /// Model width multiplier (1.0 = paper-shaped, smaller = faster).
    pub width: f32,
    /// Dataset size multiplier.
    pub data_scale: f32,
    /// Number of workers (the paper's default is 10).
    pub workers: usize,
    /// Cluster mix (§V-E; the default experiments use Medium = 5A+5B).
    pub level: HeterogeneityLevel,
    /// Non-IID level y (0 = IID): percent for label-skew tasks, number
    /// of missing classes otherwise (§V-F).
    pub non_iid: u32,
    /// Engine configuration.
    pub fl: FlConfig,
    /// Master seed for data, devices and model init.
    pub seed: u64,
}

impl ExperimentSpec {
    /// A laptop-scale configuration used by tests and quick examples.
    pub fn small(task: TaskKind) -> Self {
        let width = match task {
            TaskKind::CnnMnist => 0.25,
            TaskKind::AlexnetCifar => 0.08,
            TaskKind::VggEmnist => 0.12,
            TaskKind::ResnetTiny => 0.15,
        };
        let data_scale = match task {
            TaskKind::CnnMnist | TaskKind::AlexnetCifar => 0.1,
            TaskKind::VggEmnist => 0.2,
            TaskKind::ResnetTiny => 1.0,
        };
        ExperimentSpec {
            task,
            width,
            data_scale,
            workers: 4,
            level: HeterogeneityLevel::Medium,
            non_iid: 0,
            fl: FlConfig { rounds: 10, eval_every: 2, ..Default::default() },
            seed: 42,
        }
    }

    /// The benchmark-scale configuration: closer to the paper's setup
    /// (10 workers, Medium heterogeneity) at reduced width so the full
    /// suite completes in minutes.
    pub fn bench(task: TaskKind) -> Self {
        let mut spec = Self::small(task);
        spec.workers = 10;
        spec.fl.rounds = 24;
        spec.fl.eval_every = 2;
        spec
    }

    /// Width-compensation factors: how much cheaper the width-scaled
    /// model is than the paper-sized (width 1.0) architecture, so the
    /// simulator charges paper-scale time for laptop-scale training.
    pub fn cost_scale(&self) -> fedmp_fl::CostScale {
        if (self.width - 1.0).abs() < 1e-6 {
            return fedmp_fl::CostScale::default();
        }
        let chw = {
            let spec = self.task.synth_spec(self.data_scale, self.seed);
            (spec.channels, spec.height, spec.width)
        };
        let full = fedmp_nn::model_cost(&self.task.build_model(1.0, self.seed ^ 0x0DE1), chw);
        let scaled =
            fedmp_nn::model_cost(&self.task.build_model(self.width, self.seed ^ 0x0DE1), chw);
        fedmp_fl::CostScale {
            flops: full.flops_per_sample as f64 / scaled.flops_per_sample.max(1) as f64,
            bytes: full.params as f64 / scaled.params.max(1) as f64,
        }
    }

    /// Materialises the dataset, partition, fleet and initial model.
    pub fn build(&self) -> BuiltExperiment {
        let synth = self.task.synth_spec(self.data_scale, self.seed);
        let (train, test) = synth.generate();
        let mut rng = seeded_rng(self.seed ^ 0xDA7A);
        let partition = if self.non_iid == 0 {
            iid_partition(&train, self.workers, &mut rng)
        } else if self.task.uses_label_skew() {
            label_skew_partition(&train, self.workers, self.non_iid, &mut rng)
        } else {
            missing_classes_partition(&train, self.workers, self.non_iid as usize, &mut rng)
        };
        let task = ImageTask::new(train, test, partition);
        let mut dev_rng = seeded_rng(self.seed ^ 0xDE71CE);
        let devices = heterogeneity_scenario(self.level, self.workers, &mut dev_rng);
        let model = self.task.build_model(self.width, self.seed ^ 0x0DE1);
        BuiltExperiment {
            task,
            devices,
            model,
            time: TimeModel::default(),
            cost_scale: self.cost_scale(),
        }
    }
}

/// A materialised experiment, ready to run.
#[derive(Debug, Clone)]
pub struct BuiltExperiment {
    /// The federated task.
    pub task: ImageTask,
    /// The simulated fleet.
    pub devices: Vec<DeviceProfile>,
    /// The initial global model.
    pub model: Sequential,
    /// Virtual-clock model.
    pub time: TimeModel,
    /// Width-compensation factors for the simulator.
    pub cost_scale: fedmp_fl::CostScale,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_spec_builds_consistently() {
        let spec = ExperimentSpec::small(TaskKind::CnnMnist);
        let built = spec.build();
        assert_eq!(built.task.workers(), 4);
        assert_eq!(built.devices.len(), 4);
        assert_eq!(built.task.input_chw, (1, 28, 28));
        // Deterministic: same spec → same first sample and same devices.
        let again = spec.build();
        assert_eq!(built.task.train.sample(0), again.task.train.sample(0));
        assert_eq!(built.devices, again.devices);
    }

    #[test]
    fn non_iid_selects_correct_partitioner() {
        let mut spec = ExperimentSpec::small(TaskKind::VggEmnist);
        spec.non_iid = 10; // 10 missing classes of 62
        let built = spec.build();
        // Some class must be absent on worker 0.
        let d = &built.task.train;
        let mut present = vec![false; d.num_classes];
        for &i in &built.task.partition[0] {
            present[d.label(i)] = true;
        }
        assert!(present.iter().any(|&p| !p), "missing-classes partition not applied");
    }

    #[test]
    fn all_tasks_build() {
        for task in TaskKind::all() {
            let built = ExperimentSpec::small(task).build();
            assert!(!built.task.train.is_empty(), "{}", task.name());
        }
    }
}
