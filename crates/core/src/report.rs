//! Result output: aligned console tables and JSON files for
//! EXPERIMENTS.md.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// Creates a directory (and parents) if missing.
pub fn ensure_dir(path: impl AsRef<Path>) {
    fs::create_dir_all(path.as_ref()).expect("create results directory");
}

/// Serialises `value` as pretty JSON at `path` (parent directories are
/// created).
pub fn save_json(path: impl AsRef<Path>, value: &impl Serialize) {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create parent directory");
    }
    let json = serde_json::to_string_pretty(value).expect("serialise result");
    fs::write(path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Prints an aligned console table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_json_roundtrip() {
        let dir = std::env::temp_dir().join("fedmp-report-test");
        let path = dir.join("x/y.json");
        save_json(&path, &serde_json::json!({"a": 1}));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"a\": 1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["method", "time"],
            &[vec!["FedMP".into(), "1.0".into()], vec!["Syn-FL".into(), "4.1".into()]],
        );
    }
}
