//! Model checkpointing: save and restore global-model snapshots as
//! JSON. The PS uses this to persist training state between experiment
//! phases, and the examples use it to hand models across processes.

use fedmp_nn::{LstmLm, Sequential, StateEntry};
use std::fs;
use std::path::Path;

/// Saves a model snapshot (its full named state) to `path`.
pub fn save_model(path: impl AsRef<Path>, state: &[StateEntry]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let body = serde_json::to_vec(state).expect("serialise model state");
    fs::write(path, body)
}

/// Loads a snapshot previously written by [`save_model`].
pub fn load_state(path: impl AsRef<Path>) -> std::io::Result<Vec<StateEntry>> {
    let body = fs::read(path.as_ref())?;
    Ok(serde_json::from_slice(&body).expect("parse model state"))
}

/// Restores a checkpoint into a model of identical architecture.
pub fn restore_model(path: impl AsRef<Path>, model: &mut Sequential) -> std::io::Result<()> {
    let state = load_state(path)?;
    model.load_state(&state);
    Ok(())
}

/// Restores a checkpoint into a language model of identical
/// architecture.
pub fn restore_lm(path: impl AsRef<Path>, model: &mut LstmLm) -> std::io::Result<()> {
    let state = load_state(path)?;
    model.load_state(&state);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_nn::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn sequential_roundtrip() {
        let dir = std::env::temp_dir().join("fedmp-ckpt-test");
        let path = dir.join("cnn.json");
        let mut rng = seeded_rng(240);
        let m = zoo::cnn_mnist(0.1, &mut rng);
        save_model(&path, &m.state()).unwrap();

        let mut m2 = zoo::cnn_mnist(0.1, &mut seeded_rng(999));
        assert_ne!(m2.state()[0].tensor, m.state()[0].tensor);
        restore_model(&path, &mut m2).unwrap();
        for (a, b) in m2.state().iter().zip(m.state().iter()) {
            assert_eq!(a.tensor, b.tensor, "{}", a.name);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lm_roundtrip() {
        let dir = std::env::temp_dir().join("fedmp-ckpt-lm-test");
        let path = dir.join("lm.json");
        let mut rng = seeded_rng(241);
        let lm = zoo::lstm_ptb(20, 0.1, &mut rng);
        save_model(&path, &lm.state()).unwrap();
        let mut lm2 = zoo::lstm_ptb(20, 0.1, &mut seeded_rng(5));
        restore_lm(&path, &mut lm2).unwrap();
        assert_eq!(lm2.state()[2].tensor, lm.state()[2].tensor);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut rng = seeded_rng(242);
        let mut m = zoo::cnn_mnist(0.1, &mut rng);
        assert!(restore_model("/nonexistent/fedmp.json", &mut m).is_err());
    }
}
