//! Run-level trace plumbing: build a [`RunManifest`] from an
//! [`ExperimentSpec`] and open a [`TraceSession`] when the
//! `FEDMP_TRACE` environment variable names an output directory.

use crate::config::ExperimentSpec;
use fedmp_obs::{RunManifest, TraceSession};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Builds the manifest describing a run of `engine` on `spec`:
/// schema version, engine name, seed, worker count, round count, the
/// effective kernel thread count, the active GEMM dispatch path, an
/// FNV-1a hash of the serialised spec, and crate versions.
pub fn run_manifest(engine: &str, spec: &ExperimentSpec) -> RunManifest {
    let serialised = serde_json::to_string(spec).expect("spec serialises");
    let mut m = RunManifest::new(
        engine,
        spec.seed,
        spec.workers,
        spec.fl.rounds,
        fedmp_tensor::parallel::configured_threads(),
    );
    m.simd_path = fedmp_tensor::simd::active_path().name().to_string();
    m.config_hash = fedmp_obs::config_hash(&serialised);
    m.crate_versions.insert("fedmp-core".to_string(), env!("CARGO_PKG_VERSION").to_string());
    m
}

/// Monotonic artifact counter so multiple traced runs in one process
/// get distinct file names (`000-fedmp.jsonl`, `001-synfl.jsonl`, …).
static TRACE_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Opens a file-backed trace session for `engine` if the `FEDMP_TRACE`
/// environment variable is set to an output directory (created if
/// missing). Returns `None` — tracing disabled, zero overhead — when
/// the variable is unset or empty.
///
/// Each call writes a new numbered artifact `NNN-<engine>.jsonl` whose
/// first line is the run manifest. Hold the returned session for the
/// duration of the run and call [`TraceSession::finish`] (or drop it)
/// afterwards; sessions are exclusive, so traced runs serialise.
/// Whether `FEDMP_TRACE` requests tracing for this process. Callers
/// that would otherwise run several methods concurrently (e.g.
/// [`crate::run_methods`]) use this to fall back to serial execution,
/// because trace sessions are process-exclusive.
pub fn trace_requested() -> bool {
    trace_dir().is_some()
}

/// The single sanctioned `FEDMP_TRACE` read: the one place this crate
/// touches the environment, so exactly one suppression covers it.
fn trace_dir() -> Option<String> {
    // fedmp-analysis: allow(determinism) -- FEDMP_TRACE only selects where the trace is written; it never influences the simulated run itself
    std::env::var("FEDMP_TRACE").ok().filter(|d| !d.is_empty())
}

pub fn maybe_trace(engine: &str, spec: &ExperimentSpec) -> Option<TraceSession> {
    let dir = PathBuf::from(trace_dir()?);
    std::fs::create_dir_all(&dir).ok()?;
    let slug: String = engine
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect();
    let n = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{n:03}-{slug}.jsonl"));
    let manifest = run_manifest(engine, spec);
    TraceSession::to_file(&path, &manifest).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskKind;

    #[test]
    fn manifest_reflects_the_spec() {
        let spec = ExperimentSpec::small(TaskKind::CnnMnist);
        let m = run_manifest("FedMP", &spec);
        assert_eq!(m.engine, "FedMP");
        assert_eq!(m.seed, spec.seed);
        assert_eq!(m.workers, spec.workers);
        assert_eq!(m.rounds, spec.fl.rounds);
        assert_eq!(m.config_hash.len(), 16);
        assert!(["avx2", "scalar"].contains(&m.simd_path.as_str()));
        assert!(m.crate_versions.contains_key("fedmp-core"));
        assert!(m.crate_versions.contains_key("fedmp-obs"));

        // Same spec → same hash; different seed → different hash.
        let again = run_manifest("FedMP", &spec);
        assert_eq!(m.config_hash, again.config_hash);
        let mut other = spec.clone();
        other.seed ^= 1;
        assert_ne!(m.config_hash, run_manifest("FedMP", &other).config_hash);
    }
}
