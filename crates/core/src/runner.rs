//! Method dispatch: run any of the paper's methods against a built
//! experiment and compare outcomes.

use crate::config::ExperimentSpec;
use fedmp_edgesim::Population;
use fedmp_fl::{
    run_async, run_fedmp, run_fedmp_hier, run_fedmp_hier_threaded, run_fedmp_sockets,
    run_fedmp_threaded_chaos, run_fedprox, run_flexcom, run_synfl, run_upfl, AsyncMode,
    AsyncOptions, ChaosOptions, CompressionPolicy, FedMpOptions, FedProxOptions, FlSetup,
    FlexComOptions, HierSetup, HierarchyOptions, ImageTask, NodeSpawner, RunHistory, RuntimeError,
    SocketRunOptions, SyncScheme, UpFlOptions,
};
use serde::{Deserialize, Serialize};

/// Every training method the evaluation section compares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Full-model synchronous FedAvg \[5\].
    SynFl,
    /// Uniform adaptive pruning \[15\].
    UpFl,
    /// Proximal + capability-scaled local iterations \[19\].
    FedProx,
    /// Heterogeneous upload compression \[13\].
    FlexCom,
    /// The paper's system.
    FedMp,
    /// FedMP with traditional BSP instead of R2SP (Fig. 7 ablation).
    FedMpBsp,
    /// FedMP at a fixed uniform ratio (Fig. 2 / Fig. 5 sweeps).
    FedMpFixed(f32),
    /// FedMP under the adaptive wire-v2 compression policy: slow links
    /// download `f16` and upload int8 top-k deltas with error feedback.
    FedMpCompressed,
    /// Asynchronous FedAvg \[43\], aggregating `m` arrivals per round.
    AsynFl {
        /// Arrivals per aggregation.
        m: usize,
    },
    /// Algorithm 2: asynchronous FedMP.
    AsynFedMp {
        /// Arrivals per aggregation.
        m: usize,
    },
}

impl Method {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            Method::SynFl => "Syn-FL".into(),
            Method::UpFl => "UP-FL".into(),
            Method::FedProx => "FedProx".into(),
            Method::FlexCom => "FlexCom".into(),
            Method::FedMp => "FedMP".into(),
            Method::FedMpBsp => "FedMP-BSP".into(),
            Method::FedMpFixed(r) => format!("FedMP(α={r})"),
            Method::FedMpCompressed => "FedMP-compressed".into(),
            Method::AsynFl { .. } => "Asyn-FL".into(),
            Method::AsynFedMp { .. } => "Asyn-FedMP".into(),
        }
    }

    /// The five synchronous methods of Table III / Fig. 6 / Fig. 8 /
    /// Fig. 9 / Fig. 10, in the paper's column order.
    pub fn paper_five() -> [Method; 5] {
        [Method::SynFl, Method::UpFl, Method::FedProx, Method::FlexCom, Method::FedMp]
    }
}

/// Builds the experiment described by `spec` and runs `method` on it.
///
/// When the `FEDMP_TRACE` environment variable names a directory, the
/// run is traced: a JSONL artifact with a run manifest plus one event
/// stream is written there (see [`crate::maybe_trace`]).
pub fn run_method(spec: &ExperimentSpec, method: Method) -> RunHistory {
    let _trace = crate::trace::maybe_trace(&method.name(), spec);
    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    match method {
        Method::SynFl => run_synfl(&spec.fl, &setup, built.model),
        Method::UpFl => run_upfl(&spec.fl, &setup, built.model, &UpFlOptions::default()),
        Method::FedProx => run_fedprox(&spec.fl, &setup, built.model, &FedProxOptions::default()),
        Method::FlexCom => run_flexcom(&spec.fl, &setup, built.model, &FlexComOptions::default()),
        Method::FedMp => run_fedmp(&spec.fl, &setup, built.model, &FedMpOptions::default()),
        Method::FedMpBsp => {
            let opts = FedMpOptions { sync: SyncScheme::BSP, ..Default::default() };
            run_fedmp(&spec.fl, &setup, built.model, &opts)
        }
        Method::FedMpFixed(ratio) => {
            let opts = FedMpOptions { fixed_ratio: Some(ratio), ..Default::default() };
            run_fedmp(&spec.fl, &setup, built.model, &opts)
        }
        Method::FedMpCompressed => {
            let opts =
                FedMpOptions { compression: CompressionPolicy::adaptive(), ..Default::default() };
            run_fedmp(&spec.fl, &setup, built.model, &opts)
        }
        Method::AsynFl { m } => {
            let opts = AsyncOptions { mode: AsyncMode::AsynFl, m, ..Default::default() };
            run_async(&spec.fl, &setup, built.model, &opts)
        }
        Method::AsynFedMp { m } => {
            let opts = AsyncOptions { mode: AsyncMode::AsynFedMp, m, ..Default::default() };
            run_async(&spec.fl, &setup, built.model, &opts)
        }
    }
}

/// Runs every method in `methods` against `spec`, returning histories
/// in input order. Independent runs fan out across the deterministic
/// round executor ([`fedmp_fl::exec::ordered_map`]); each engine's own
/// per-worker fan-out then runs inline on its pool thread, so every
/// history is bit-identical to calling [`run_method`] in a loop. When
/// `FEDMP_TRACE` requests tracing the runs stay serial: trace sessions
/// are process-exclusive and artifact numbering is order-sensitive.
pub fn run_methods(spec: &ExperimentSpec, methods: &[Method]) -> Vec<RunHistory> {
    if crate::trace::trace_requested() {
        return methods.iter().map(|&m| run_method(spec, m)).collect();
    }
    // fedmp-analysis: allow(executor-purity) -- run_method only emits when FEDMP_TRACE is set, and the guard above serializes exactly that case
    fedmp_fl::exec::ordered_map(methods.to_vec(), |_, m| run_method(spec, m))
}

/// Runs FedMP on the fault-tolerant threaded PS/worker runtime
/// ([`fedmp_fl::run_fedmp_threaded_chaos`]) against the experiment
/// described by `spec`, under the given transport chaos plan
/// ([`ChaosOptions::none`] for a clean run). Traced like [`run_method`]
/// when `FEDMP_TRACE` names a directory.
///
/// # Errors
/// Propagates the runtime's terminal protocol violations
/// ([`RuntimeError`]); every *injected* fault is recovered in-run.
pub fn run_threaded(
    spec: &ExperimentSpec,
    opts: &FedMpOptions,
    chaos: &ChaosOptions,
) -> Result<RunHistory, RuntimeError> {
    let _trace = crate::trace::maybe_trace("FedMP-threaded", spec);
    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    run_fedmp_threaded_chaos(&spec.fl, &setup, built.model, opts, chaos)
}

/// Runs FedMP on the real socket transport
/// ([`fedmp_fl::run_fedmp_sockets`]): the PS binds the Unix socket in
/// `sock`, `spawner` brings up one node per worker (in-process threads
/// or real OS processes), and the round protocol crosses the kernel as
/// length-prefixed frames with `chaos` re-mapped to packet-level
/// faults. Traced like [`run_method`] when `FEDMP_TRACE` names a
/// directory.
///
/// # Errors
/// Propagates terminal protocol and transport violations
/// ([`RuntimeError`]); every *injected* fault is recovered in-run.
pub fn run_sockets<S: NodeSpawner>(
    spec: &ExperimentSpec,
    opts: &FedMpOptions,
    chaos: &ChaosOptions,
    sock: &SocketRunOptions,
    spawner: &mut S,
) -> Result<RunHistory, RuntimeError> {
    let _trace = crate::trace::maybe_trace("FedMP-sockets", spec);
    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    run_fedmp_sockets(&spec.fl, &setup, built.model, opts, chaos, sock, spawner)
}

/// The experiment spec serialised for shipment to worker nodes inside
/// the socket SETUP frame: `fedmp-node --role worker` rebuilds its
/// dataset shard from exactly these bytes, so PS and workers provably
/// derive their data from one seed. Serialising a spec cannot fail
/// (it is a plain value tree), so the empty-blob fallback is dead in
/// practice and merely keeps this path total.
pub fn spec_blob(spec: &ExperimentSpec) -> Vec<u8> {
    serde_json::to_vec(spec).unwrap_or_default()
}

/// Worker-side inverse of [`spec_blob`]: rebuild the training task a
/// socket node should serve from the SETUP payload. `None` means the
/// blob did not parse as an [`ExperimentSpec`], which the node reports
/// as a handshake failure rather than guessing at a dataset.
pub fn task_from_blob(blob: &[u8]) -> Option<ImageTask> {
    let spec: ExperimentSpec = serde_json::from_slice(blob).ok()?;
    Some(spec.build().task)
}

/// Runs population-scale hierarchical FedMP ([`run_fedmp_hier`])
/// against the experiment described by `spec`: the spec's dataset and
/// model are built as usual, but the fleet is replaced by a lazy
/// seeded [`Population`] of `population` devices at the spec's
/// heterogeneity level, sampled `opts.cohort` clients per round.
/// Traced like [`run_method`] when `FEDMP_TRACE` names a directory.
pub fn run_hier(spec: &ExperimentSpec, population: u64, opts: &HierarchyOptions) -> RunHistory {
    let _trace = crate::trace::maybe_trace("FedMP-hier", spec);
    let built = spec.build();
    let pop = Population::new(population, spec.seed, spec.level);
    let mut setup = HierSetup::new(&built.task, pop, built.time);
    setup.cost_scale = built.cost_scale;
    run_fedmp_hier(&spec.fl, &setup, built.model, opts)
}

/// [`run_hier`] on the threaded runtime: every edge aggregator is a
/// recoverable protocol participant on its own thread
/// ([`run_fedmp_hier_threaded`]), bit-identical to the loop engine.
///
/// # Errors
/// Propagates the runtime's terminal protocol violations
/// ([`RuntimeError`]); every *injected* fault is recovered in-run.
pub fn run_hier_threaded(
    spec: &ExperimentSpec,
    population: u64,
    opts: &HierarchyOptions,
) -> Result<RunHistory, RuntimeError> {
    let _trace = crate::trace::maybe_trace("FedMP-hier-threaded", spec);
    let built = spec.build();
    let pop = Population::new(population, spec.seed, spec.level);
    let mut setup = HierSetup::new(&built.task, pop, built.time);
    setup.cost_scale = built.cost_scale;
    run_fedmp_hier_threaded(&spec.fl, &setup, built.model, opts)
}

/// Runs FedMP with caller-supplied options (θ sweeps, custom reward
/// shaping, BSP ablations) on the experiment described by `spec`.
pub fn run_fedmp_custom(spec: &ExperimentSpec, opts: &FedMpOptions) -> RunHistory {
    let _trace = crate::trace::maybe_trace("FedMP-custom", spec);
    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    run_fedmp(&spec.fl, &setup, built.model, opts)
}

/// Speedups relative to the first (baseline) history, by
/// time-to-target-accuracy. `None` appears when a method never reached
/// the target.
pub fn speedup_table(
    histories: &[RunHistory],
    target: f32,
) -> Vec<(String, Option<f64>, Option<f64>)> {
    let base = histories.first().and_then(|h| h.time_to_accuracy(target));
    histories
        .iter()
        .map(|h| {
            let t = h.time_to_accuracy(target);
            let speedup = match (base, t) {
                (Some(b), Some(t)) if t > 0.0 => Some(b / t),
                _ => None,
            };
            (h.method.clone(), t, speedup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskKind;

    #[test]
    fn every_method_runs_end_to_end() {
        let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
        spec.fl.rounds = 3;
        spec.fl.eval_every = 2;
        for method in [
            Method::SynFl,
            Method::UpFl,
            Method::FedProx,
            Method::FlexCom,
            Method::FedMp,
            Method::FedMpBsp,
            Method::FedMpFixed(0.5),
            Method::FedMpCompressed,
            Method::AsynFl { m: 2 },
            Method::AsynFedMp { m: 2 },
        ] {
            let h = run_method(&spec, method);
            assert_eq!(h.rounds.len(), 3, "{}", method.name());
            assert!(h.final_accuracy().is_some(), "{}", method.name());
        }
    }

    #[test]
    fn hier_runners_agree_end_to_end() {
        let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
        spec.fl.rounds = 2;
        spec.fl.eval_every = 2;
        let opts = HierarchyOptions { cohort: 6, shards: 3, edges: 2, ..Default::default() };
        let h = run_hier(&spec, 100, &opts);
        assert_eq!(h.rounds.len(), 2);
        assert!(h.final_accuracy().is_some());
        let ht = run_hier_threaded(&spec, 100, &opts).expect("threaded hier");
        assert_eq!(
            serde_json::to_string(&h).unwrap(),
            serde_json::to_string(&ht).unwrap(),
            "core hier runners diverged"
        );
    }

    #[test]
    fn run_methods_matches_serial_run_method_exactly() {
        let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
        spec.fl.rounds = 2;
        spec.fl.eval_every = 1;
        let methods = [Method::SynFl, Method::FedMpFixed(0.5)];
        let batch = run_methods(&spec, &methods);
        assert_eq!(batch.len(), methods.len());
        for (&m, h) in methods.iter().zip(batch.iter()) {
            let solo = run_method(&spec, m);
            assert_eq!(
                serde_json::to_string(h).unwrap(),
                serde_json::to_string(&solo).unwrap(),
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn socket_runner_matches_the_loop_engine() {
        let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
        spec.fl.rounds = 2;
        spec.fl.eval_every = 2;
        let opts = FedMpOptions::default();
        let h_loop = run_method(&spec, Method::FedMp);

        let task = std::sync::Arc::new(spec.build().task);
        let sock =
            SocketRunOptions::new(fedmp_fl::unique_socket_path("core-runner"), spec_blob(&spec));
        let mut spawner = fedmp_fl::ThreadNodes {
            task,
            socket: sock.socket.clone(),
            connect_attempts: 12,
            connect_backoff: core::time::Duration::from_millis(2),
        };
        let h_sock = run_sockets(&spec, &opts, &ChaosOptions::none(), &sock, &mut spawner)
            .expect("socket run");
        assert_eq!(
            serde_json::to_string(&h_loop).unwrap(),
            serde_json::to_string(&h_sock).unwrap(),
            "core socket runner diverged from the loop engine"
        );
        let rebuilt = task_from_blob(&spec_blob(&spec)).expect("blob round trip");
        assert_eq!(rebuilt.workers(), spec.workers);
        assert!(task_from_blob(b"not a spec").is_none());
    }

    #[test]
    fn speedup_table_is_relative_to_first() {
        let mut fast = RunHistory::new("fast");
        let mut slow = RunHistory::new("slow");
        for (h, scale) in [(&mut slow, 10.0f64), (&mut fast, 5.0)] {
            for i in 0..3 {
                h.rounds.push(fedmp_fl::RoundRecord {
                    round: i,
                    sim_time: scale * (i + 1) as f64,
                    round_time: scale,
                    mean_comp: 0.0,
                    mean_comm: 0.0,
                    train_loss: 0.0,
                    eval: Some((0.0, 0.3 * (i + 1) as f32)),
                    ..Default::default()
                });
            }
        }
        let table = speedup_table(&[slow, fast], 0.6);
        assert_eq!(table[0].2, Some(1.0));
        assert_eq!(table[1].2, Some(2.0));
    }
}
