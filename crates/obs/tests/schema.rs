//! Keeps `docs/TRACE_SCHEMA.md` honest: every event kind the enum can
//! produce must be documented, and the documented schema version must
//! match the code.

use fedmp_obs::{TraceEvent, SCHEMA_VERSION};

fn schema_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/TRACE_SCHEMA.md");
    std::fs::read_to_string(path).expect("docs/TRACE_SCHEMA.md exists")
}

#[test]
fn every_event_kind_is_documented() {
    let doc = schema_doc();
    for kind in TraceEvent::KINDS {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "event kind `{kind}` is missing from docs/TRACE_SCHEMA.md"
        );
    }
}

#[test]
fn schema_version_matches_the_doc() {
    let doc = schema_doc();
    assert!(
        doc.contains(SCHEMA_VERSION),
        "docs/TRACE_SCHEMA.md does not mention schema version {SCHEMA_VERSION}"
    );
}

#[test]
fn sample_events_serialise_under_their_documented_kind() {
    for ev in TraceEvent::samples() {
        let line = serde_json::to_string(&ev).unwrap();
        assert!(
            line.starts_with(&format!("{{\"{}\":", ev.kind())),
            "event {line} is not externally tagged by its kind"
        );
    }
}
