//! # fedmp-obs
//!
//! The workspace-wide observability layer: a lightweight structured-event
//! API that every engine, the edge simulator, the bandit and the kernel
//! scheduler emit through, plus the tooling to read what they wrote.
//!
//! Three pieces:
//!
//! 1. **Events** ([`TraceEvent`]): typed per-round records — round
//!    boundaries, per-worker local training, bandit decisions,
//!    aggregations, fault injection/recovery and kernel-scheduler
//!    dispatch counters. Serialised one-per-line as JSONL.
//! 2. **Sessions** ([`TraceSession`]): a process-global JSONL sink.
//!    Recording is off by default and [`emit`] is a single relaxed
//!    atomic load on that path, so instrumented code costs nothing when
//!    nobody is listening. Event construction happens inside a closure
//!    that only runs while a session is active.
//! 3. **Traces** ([`Trace`]): parse a recorded JSONL file back into
//!    events, [`summarize`] it into resource totals matching
//!    `fedmp_fl::resource_totals`, or [`diff`] two traces to find the
//!    first diverging event.
//!
//! Every trace file starts with a [`RunManifest`] line (config hash,
//! seed, engine, thread count, crate versions) so an artifact is
//! reproducible on its own. The full format is documented in
//! `docs/TRACE_SCHEMA.md`, which a test in this crate keeps in sync with
//! the event enum.

#![deny(missing_docs)]
// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
mod event;
mod manifest;
mod session;
mod trace;

pub use event::TraceEvent;
pub use manifest::{config_hash, RunManifest, SCHEMA_VERSION};
pub use session::{emit, enabled, TraceSession};
pub use trace::{diff, summarize, Trace, TraceDiff, TraceError, TraceTotals};

/// This crate's version, for run manifests.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
